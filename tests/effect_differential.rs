//! Differential coverage of the lowered block ops: every [`Effect`]
//! variant must execute identically through the block engine's
//! `exec_effect`, the megablock trace tier above it, and the step
//! engine's `execute` — over randomized register states and the corner
//! cases that bite (`i32::MIN / -1`, divide by zero, carry chains,
//! trailing `imm` prefixes).
//!
//! Each case is a short straight-line body (so the block engine fuses
//! it into a single superblock) followed by the exit-port store; the
//! trace, block, and step engines run it from the same randomized CPU
//! state and must agree on trace, stats, outcome, CPU, and memory.

use mb_isa::{Assembler, Cond, Insn, MbFeatures, MemSize, Reg, ShiftKind};
use mb_sim::{Engine, MbConfig, System, EXIT_PORT_BASE};

// `Reg`'s registers are associated constants, which `use` cannot glob —
// local aliases keep the instruction tables readable.
const R0: Reg = Reg::R0;
const R3: Reg = Reg::R3;
const R4: Reg = Reg::R4;
const R5: Reg = Reg::R5;
const R6: Reg = Reg::R6;
const R7: Reg = Reg::R7;
const R8: Reg = Reg::R8;
const R9: Reg = Reg::R9;
const R10: Reg = Reg::R10;
const R11: Reg = Reg::R11;
const R12: Reg = Reg::R12;
const R13: Reg = Reg::R13;
const R14: Reg = Reg::R14;
const R15: Reg = Reg::R15;
const R16: Reg = Reg::R16;
const R17: Reg = Reg::R17;
const R18: Reg = Reg::R18;
const R19: Reg = Reg::R19;
const R20: Reg = Reg::R20;
const R21: Reg = Reg::R21;
const R22: Reg = Reg::R22;
const R23: Reg = Reg::R23;
const R24: Reg = Reg::R24;
const R25: Reg = Reg::R25;
const R26: Reg = Reg::R26;
const R27: Reg = Reg::R27;
const R31: Reg = Reg::R31;

/// Paper features plus the divider, so `Idiv` is executable.
fn features() -> MbFeatures {
    MbFeatures { divider: true, ..MbFeatures::paper_default() }
}

/// splitmix64: deterministic randomized register states without a rand
/// dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn word(&mut self) -> u32 {
        self.next() as u32
    }
}

/// Builds `body` followed by the exit-port store.
fn program(body: &[Insn]) -> mb_isa::Program {
    let mut a = Assembler::new(0);
    for insn in body {
        a.push(*insn);
    }
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    a.finish().unwrap()
}

/// Runs one body on one engine from the seeded register state.
fn run_one(
    config: MbConfig,
    p: &mb_isa::Program,
    seed: u64,
) -> (mb_sim::Outcome, mb_sim::Trace, System) {
    let mut sys = System::new(config);
    sys.load_program(p).unwrap();
    let mut rng = Rng(seed);
    // Randomize every writable register except r31 (the exit base the
    // program sets itself) — memory cases pin their base registers via
    // `li` inside the body, so addresses stay valid.
    for n in 1..=30u8 {
        sys.cpu_mut().set_reg(Reg::new(n), rng.word());
    }
    sys.cpu_mut().set_carry(rng.next() & 1 != 0);
    let (out, trace) = sys.run_traced(1_000_000).unwrap();
    assert!(out.exited(), "differential case must exit (pc {:#x})", sys.cpu().pc());
    (out, trace, sys)
}

/// Runs one body under the trace, block, and step engines across
/// several seeds and asserts bit-identical results.
fn differential(name: &str, body: &[Insn]) {
    let p = program(body);
    for seed in [1u64, 2, 3, 0xDEAD_BEEF, 0x1234_5678_9ABC_DEF0] {
        let trace_cfg = MbConfig::paper_default().with_features(features());
        let block_cfg = trace_cfg.clone().with_traces(false);
        let step_cfg = trace_cfg.clone().with_blocks(false);
        assert_eq!(System::new(trace_cfg.clone()).active_engine(), Engine::Trace);

        let (out_t, trace_t, sys_t) = run_one(trace_cfg, &p, seed);
        let (out_b, trace_b, sys_b) = run_one(block_cfg, &p, seed);
        let (out_s, trace_s, sys_s) = run_one(step_cfg, &p, seed);

        assert_eq!(out_t, out_s, "{name} seed {seed}: trace-engine outcome diverged");
        assert_eq!(out_b, out_s, "{name} seed {seed}: block-engine outcome diverged");
        assert_eq!(trace_t, trace_s, "{name} seed {seed}: trace-engine events diverged");
        assert_eq!(trace_b, trace_s, "{name} seed {seed}: block-engine events diverged");
        assert_eq!(sys_t.cpu(), sys_s.cpu(), "{name} seed {seed}: trace-engine CPU diverged");
        assert_eq!(sys_b.cpu(), sys_s.cpu(), "{name} seed {seed}: block-engine CPU diverged");
        assert_eq!(sys_t.stats(), sys_s.stats(), "{name} seed {seed}: trace-engine stats diverged");
        assert_eq!(sys_b.stats(), sys_s.stats(), "{name} seed {seed}: block-engine stats diverged");
        for addr in (0x200..0x240).step_by(4) {
            assert_eq!(
                sys_t.dmem().read_word(addr).unwrap(),
                sys_s.dmem().read_word(addr).unwrap(),
                "{name} seed {seed}: dmem diverged at {addr:#x}"
            );
        }
    }
}

#[test]
fn add_and_rsub_carry_matrix() {
    // All four K/C combinations of Add and Rsub, chained so carries
    // written by one feed the next.
    differential(
        "add_rsub",
        &[
            Insn::Add { rd: R3, ra: R4, rb: R5, keep_carry: false, use_carry: false },
            Insn::Add { rd: R6, ra: R7, rb: R8, keep_carry: false, use_carry: true },
            Insn::Add { rd: R9, ra: R10, rb: R11, keep_carry: true, use_carry: true },
            Insn::Add { rd: R12, ra: R13, rb: R14, keep_carry: true, use_carry: false },
            Insn::Rsub { rd: R15, ra: R16, rb: R17, keep_carry: false, use_carry: false },
            Insn::Rsub { rd: R18, ra: R19, rb: R20, keep_carry: false, use_carry: true },
            Insn::Rsub { rd: R21, ra: R22, rb: R23, keep_carry: true, use_carry: true },
            Insn::Rsub { rd: R24, ra: R25, rb: R26, keep_carry: true, use_carry: false },
        ],
    );
}

#[test]
fn immediate_add_rsub_with_and_without_prefix() {
    differential(
        "addi_rsubi",
        &[
            Insn::Addi { rd: R3, ra: R4, imm: -17, keep_carry: false, use_carry: false },
            Insn::Addi { rd: R5, ra: R6, imm: 12345, keep_carry: false, use_carry: true },
            Insn::Imm { imm: 0x1234 },
            Insn::Addi { rd: R7, ra: R8, imm: 0x5678, keep_carry: true, use_carry: false },
            Insn::Rsubi { rd: R9, ra: R10, imm: -2, keep_carry: false, use_carry: false },
            Insn::Imm { imm: -1 },
            Insn::Rsubi { rd: R11, ra: R12, imm: 7, keep_carry: true, use_carry: true },
        ],
    );
}

#[test]
fn compare_signed_and_unsigned() {
    differential(
        "cmp",
        &[
            Insn::Cmp { rd: R3, ra: R4, rb: R5, unsigned: false },
            Insn::Cmp { rd: R6, ra: R7, rb: R8, unsigned: true },
            // Equal operands: the subtraction is zero and only the
            // forced sign bit distinguishes the encodings.
            Insn::Cmp { rd: R9, ra: R10, rb: R10, unsigned: false },
            Insn::Cmp { rd: R11, ra: R10, rb: R10, unsigned: true },
        ],
    );
}

#[test]
fn multiply_register_and_immediate() {
    differential(
        "mul",
        &[
            Insn::Mul { rd: R3, ra: R4, rb: R5 },
            Insn::Muli { rd: R6, ra: R7, imm: -3 },
            Insn::Imm { imm: 0x0001 },
            Insn::Muli { rd: R8, ra: R9, imm: 0x0001 },
        ],
    );
}

#[test]
fn divide_including_zero_and_overflow() {
    differential(
        "idiv",
        &[
            Insn::Idiv { rd: R3, ra: R4, rb: R5, unsigned: false },
            Insn::Idiv { rd: R6, ra: R7, rb: R8, unsigned: true },
            // Divide by zero (ra = r0): MicroBlaze-style quotient 0.
            Insn::Idiv { rd: R9, ra: R0, rb: R10, unsigned: false },
            Insn::Idiv { rd: R11, ra: R0, rb: R10, unsigned: true },
        ],
    );
}

#[test]
fn divide_min_by_minus_one_wraps() {
    let body = [
        Insn::addik(R4, R0, -1),
        Insn::Imm { imm: i16::MIN }, // r5 = 0x8000_0000 = i32::MIN
        Insn::addik(R5, R0, 0),
        // rd = rb ÷ ra = i32::MIN / -1: wraps to i32::MIN, must not trap.
        Insn::Idiv { rd: R3, ra: R4, rb: R5, unsigned: false },
        Insn::Idiv { rd: R6, ra: R4, rb: R5, unsigned: true },
    ];
    differential("idiv_min", &body);
}

#[test]
fn shifts_logic_and_extends() {
    differential(
        "shifts_logic",
        &[
            Insn::Bs { rd: R3, ra: R4, rb: R5, kind: ShiftKind::LogicalLeft },
            Insn::Bs { rd: R6, ra: R7, rb: R8, kind: ShiftKind::LogicalRight },
            Insn::Bs { rd: R9, ra: R10, rb: R11, kind: ShiftKind::ArithmeticRight },
            Insn::Bsi { rd: R12, ra: R13, amount: 7, kind: ShiftKind::LogicalLeft },
            Insn::Bsi { rd: R14, ra: R15, amount: 31, kind: ShiftKind::ArithmeticRight },
            Insn::Bsi { rd: R16, ra: R17, amount: 0, kind: ShiftKind::LogicalRight },
            Insn::Sra { rd: R18, ra: R19 },
            Insn::Src { rd: R20, ra: R21 },
            Insn::Srl { rd: R22, ra: R23 },
            Insn::Or { rd: R3, ra: R4, rb: R5 },
            Insn::And { rd: R6, ra: R7, rb: R8 },
            Insn::Xor { rd: R9, ra: R10, rb: R11 },
            Insn::Andn { rd: R12, ra: R13, rb: R14 },
            Insn::Ori { rd: R15, ra: R16, imm: 0x0F0F_u16 as i16 },
            Insn::Andi { rd: R17, ra: R18, imm: -256 },
            Insn::Xori { rd: R19, ra: R20, imm: 0x33CC_u16 as i16 },
            Insn::Andni { rd: R21, ra: R22, imm: 0x00FF },
            Insn::Sext8 { rd: R24, ra: R25 },
            Insn::Sext16 { rd: R26, ra: R27 },
        ],
    );
}

#[test]
fn loads_and_stores_every_size() {
    let mut body = vec![
        Insn::addik(R8, R0, 0x200), // pinned base: random registers never form the address
        Insn::addik(R9, R0, 0x10),  // pinned Type-A offset
    ];
    body.extend([
        Insn::Storei { size: MemSize::Word, rd: R3, ra: R8, imm: 0 },
        Insn::Storei { size: MemSize::Half, rd: R4, ra: R8, imm: 4 },
        Insn::Storei { size: MemSize::Byte, rd: R5, ra: R8, imm: 6 },
        Insn::Store { size: MemSize::Word, rd: R6, ra: R8, rb: R9 },
        Insn::Loadi { size: MemSize::Word, rd: R10, ra: R8, imm: 0 },
        Insn::Loadi { size: MemSize::Half, rd: R11, ra: R8, imm: 4 },
        Insn::Loadi { size: MemSize::Byte, rd: R12, ra: R8, imm: 6 },
        Insn::Load { size: MemSize::Word, rd: R13, ra: R8, rb: R9 },
        // imm-prefixed (fused) addressing on both a load and a store.
        Insn::Imm { imm: 0 },
        Insn::Storei { size: MemSize::Word, rd: R7, ra: R8, imm: 0x20 },
        Insn::Imm { imm: 0 },
        Insn::Loadi { size: MemSize::Word, rd: R14, ra: R8, imm: 0x20 },
    ]);
    differential("mem", &body);
}

#[test]
fn trailing_imm_before_register_branch_stays_architectural() {
    // A loop body ending `imm` + register-target backward branch: the
    // branch can never chain into a guard, so the block ends with an
    // architectural (`ImmTrailing`) prefix the stepped branch consumes.
    let mut a = Assembler::new(0);
    a.li(R3, 5);
    a.li(R10, -12i32); // backward offset for the register branch
    a.label("top");
    a.push(Insn::addik(R4, R4, 9));
    a.push(Insn::addik(R3, R3, -1));
    a.push(Insn::Imm { imm: 0x7 });
    a.push(Insn::Bc { cond: Cond::Ne, ra: R3, rb: R10, delay: false });
    a.li(R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(R0, R31, 0));
    let p = a.finish().unwrap();

    let run = |config: MbConfig| {
        let mut sys = System::new(config);
        sys.load_program(&p).unwrap();
        let (out, trace) = sys.run_traced(1_000_000).unwrap();
        assert!(out.exited());
        (out, trace, sys)
    };
    let (out_t, trace_t, sys_t) = run(MbConfig::paper_default());
    let (out_s, trace_s, sys_s) = run(MbConfig::paper_default().with_blocks(false));
    assert_eq!(out_t, out_s);
    assert_eq!(trace_t, trace_s);
    assert_eq!(sys_t.cpu(), sys_s.cpu());
    assert_eq!(sys_t.stats(), sys_s.stats());
    assert_eq!(sys_t.cpu().reg(R4), 45);
}

#[test]
fn trailing_imm_fused_into_a_loop_guard() {
    // A redundant `imm -1` before the backward `bnei`: the prefix folds
    // into the guard's statically-resolved target, and the trace still
    // loops — bit-identically to the step engine consuming the prefix
    // architecturally every iteration.
    let mut a = Assembler::new(0);
    a.li(R3, 6); // one word
                 // top = 4:
    a.push(Insn::addik(R4, R4, 2)); // 4
    a.push(Insn::addik(R3, R3, -1)); // 8
    a.push(Insn::Imm { imm: -1 }); // 12
    a.push(Insn::Bci { cond: Cond::Ne, ra: R3, imm: -12, delay: false }); // 16 -> 4
    a.li(R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(R0, R31, 0));
    let p = a.finish().unwrap();

    let run = |config: MbConfig| {
        let mut sys = System::new(config);
        sys.load_program(&p).unwrap();
        let (out, trace) = sys.run_traced(1_000_000).unwrap();
        assert!(out.exited());
        (out, trace, sys)
    };
    let (out_t, trace_t, sys_t) = run(MbConfig::paper_default());
    let (out_s, trace_s, sys_s) = run(MbConfig::paper_default().with_blocks(false));
    assert_eq!(out_t, out_s);
    assert_eq!(trace_t, trace_s);
    assert_eq!(sys_t.cpu(), sys_s.cpu());
    assert_eq!(sys_t.stats(), sys_s.stats());
    assert_eq!(sys_t.cpu().reg(R4), 12);
}
