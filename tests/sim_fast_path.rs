//! Fast-path equivalence: the pre-decoded fetch store, the superblock
//! engine, the trace sinks, and the streaming aggregates must be
//! invisible to simulated results.
//!
//! Five contracts are locked in here:
//!
//! 1. the pre-decoded fetch path produces an instruction-for-instruction
//!    identical [`Trace`], identical [`ExecStats`], and identical
//!    [`Outcome`] to the decode-per-fetch reference loop
//!    (`MbConfig::with_predecode(false)`);
//! 2. the superblock engine (`MbConfig::with_blocks`) and the megablock
//!    trace engine above it (`MbConfig::with_traces`, the default)
//!    match the per-instruction step engine the same way — including
//!    across mid-run patches, guard-failure side exits, and cycle
//!    budgets that expire mid-block or mid-trace;
//! 3. decode-cache and block-store invalidation: after an imem patch
//!    through [`System::imem_mut`] — the WCLA binary-patching interface
//!    — the patched words execute, never stale pre-decoded ones, stale
//!    fused blocks, or stale chained traces;
//! 4. a [`TraceSummary`] streamed during the run equals every aggregate
//!    computed from the full trace;
//! 5. every configuration dispatches the engine it reports via
//!    [`System::active_engine`] — in particular, caches no longer
//!    silently downgrade block dispatch to stepping.

use mb_isa::{encode, Assembler, Insn, MbFeatures, MemSize, Reg};
use mb_sim::cache::CacheConfig;
use mb_sim::{Engine, MbConfig, NullSink, System, Trace, TraceSummary, EXIT_PORT_BASE};

/// Trace engine on (the default configuration).
fn fast_config() -> MbConfig {
    MbConfig::paper_default()
}

/// Superblocks without loop-trace chaining (the PR 5 block engine).
fn block_config() -> MbConfig {
    MbConfig::paper_default().with_traces(false)
}

/// Pre-decoded fetch but per-instruction stepping (the PR 3 fast path).
fn step_config() -> MbConfig {
    MbConfig::paper_default().with_blocks(false)
}

fn reference_config() -> MbConfig {
    MbConfig::paper_default().with_predecode(false).with_blocks(false)
}

/// The trace engine with both caches configured: the configuration that
/// used to silently downgrade to per-instruction stepping and now
/// dispatches careful (per-op accounted) blocks.
fn cached_config(base: MbConfig) -> MbConfig {
    let mut config = base;
    config.icache = Some(CacheConfig::small());
    config.dcache = Some(CacheConfig::small());
    config
}

#[test]
fn every_config_reports_the_engine_it_dispatches() {
    assert_eq!(System::new(fast_config()).active_engine(), Engine::Trace);
    assert_eq!(System::new(block_config()).active_engine(), Engine::Block);
    assert_eq!(System::new(step_config()).active_engine(), Engine::Step);
    assert_eq!(System::new(reference_config()).active_engine(), Engine::Reference);
    // Caches no longer demote the engine: the dispatch switches to
    // per-op accounting instead (pinned by the cached equality tests).
    assert_eq!(System::new(cached_config(fast_config())).active_engine(), Engine::Trace);
    assert_eq!(System::new(cached_config(block_config())).active_engine(), Engine::Block);
}

#[test]
fn predecoded_fetch_matches_decode_per_fetch_reference() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());

        let mut fast = built.instantiate(&fast_config());
        let (fast_out, fast_trace) = fast.run_traced(500_000_000).unwrap();

        let mut reference = built.instantiate(&reference_config());
        let (ref_out, ref_trace) = reference.run_traced(500_000_000).unwrap();

        assert_eq!(fast_out, ref_out, "{}: outcome must be identical", workload.name);
        assert_eq!(
            fast_trace, ref_trace,
            "{}: traces must match instruction-for-instruction",
            workload.name
        );
        assert_eq!(fast.stats(), reference.stats(), "{}: ExecStats must match", workload.name);
        assert_eq!(fast.cpu(), reference.cpu(), "{}: final CPU state must match", workload.name);
    }
}

#[test]
fn untraced_run_has_identical_stats_to_traced_run() {
    // NullSink vs full-trace sink is a compile-time policy; the
    // simulated outcome and statistics must not notice.
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());

    let mut untraced = built.instantiate(&fast_config());
    let out_untraced = untraced.run(500_000_000).unwrap();

    let mut traced = built.instantiate(&fast_config());
    let (out_traced, _) = traced.run_traced(500_000_000).unwrap();

    assert_eq!(out_untraced, out_traced);
    assert_eq!(untraced.stats(), traced.stats());
    assert_eq!(untraced.cpu(), traced.cpu());
    built.verify(untraced.dmem()).unwrap();
}

/// Builds a two-iteration loop whose body instruction at a known PC can
/// be patched between iterations.
fn patchable_loop() -> (mb_isa::Program, u32, u32) {
    let mut a = Assembler::new(0);
    a.li(Reg::R3, 2); // one word: addik r3, r0, 2
    a.label("top");
    a.push(Insn::addik(Reg::R4, Reg::R4, 5)); // the patch target
    a.push(Insn::addik(Reg::R3, Reg::R3, -1));
    a.bnei(Reg::R3, "top");
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    let program = a.finish().unwrap();
    let body_pc = 4; // first instruction after the one-word li
    let branch_pc = 12;
    (program, body_pc, branch_pc)
}

/// Steps until the PC equals `target`, with a safety bound.
fn step_until(sys: &mut System, target: u32) {
    let mut guard = 0;
    while sys.cpu().pc() != target {
        sys.step(&mut NullSink).unwrap();
        guard += 1;
        assert!(guard < 10_000, "never reached pc {target:#x}");
    }
}

/// Runs the patch-mid-execution scenario on one configuration: execute
/// the loop body once (hot in any decode cache), rewrite the body
/// instruction through `imem_mut`, finish the program.
fn run_patch_scenario(config: &MbConfig) -> System {
    let (program, body_pc, branch_pc) = patchable_loop();
    let mut sys = System::new(config.clone());
    sys.load_program(&program).unwrap();
    // First iteration has executed the body once when the branch is
    // reached — exactly when a stale decode-cache entry would exist.
    step_until(&mut sys, branch_pc);
    sys.imem_mut().write_word(body_pc, encode(&Insn::addik(Reg::R4, Reg::R4, 7))).unwrap();
    let out = sys.run(10_000).unwrap();
    assert!(out.exited());
    sys
}

#[test]
fn imem_patch_invalidates_predecoded_store() {
    // fast_config has the block engine on, so this exercises both the
    // predecode-slot and the fused-block invalidation paths.
    let fast = run_patch_scenario(&fast_config());
    // Iteration 1 added 5, iteration 2 must execute the patched word.
    assert_eq!(fast.cpu().reg(Reg::R4), 12, "stale pre-decoded instruction executed");

    // And the whole machine state matches the per-instruction step
    // engine and the decode-per-fetch loop subjected to the identical
    // patch sequence.
    let stepped = run_patch_scenario(&step_config());
    let reference = run_patch_scenario(&reference_config());
    assert_eq!(reference.cpu().reg(Reg::R4), 12);
    assert_eq!(fast.cpu(), stepped.cpu());
    assert_eq!(fast.stats(), stepped.stats());
    assert_eq!(fast.cpu(), reference.cpu());
    assert_eq!(fast.stats(), reference.stats());
}

#[test]
fn faulting_block_preserves_step_engine_prefix_state() {
    // An `imm` directly before a register-indexed load that faults: the
    // step engine clears a pending prefix only *after* a successful
    // Type-A access, so it still holds the prefix at the fault point —
    // the block engine must restore it when unwinding the fused block,
    // leaving bit-identical CPU state on the error path too.
    let run = |config: &MbConfig| {
        let mut a = Assembler::new(0);
        a.li(Reg::R2, 0x0010_0000); // beyond the 64 KiB dmem, below the OPB window
        a.push(Insn::Imm { imm: 0x0123 });
        a.push(Insn::Load { size: MemSize::Word, rd: Reg::R1, ra: Reg::R2, rb: Reg::R0 });
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        let program = a.finish().unwrap();
        let mut sys = System::new(config.clone());
        sys.load_program(&program).unwrap();
        let err = sys.run(10_000).unwrap_err();
        (sys, err)
    };
    let (blocks, err_b) = run(&fast_config());
    let (stepped, err_s) = run(&step_config());
    assert_eq!(err_b, err_s, "both engines must raise the identical fault");
    assert!(blocks.cpu().has_imm_prefix(), "the pending prefix must survive the Type-A fault");
    assert_eq!(blocks.cpu(), stepped.cpu(), "post-fault CPU state must match");
    assert_eq!(blocks.stats(), stepped.stats(), "post-fault stats must match");
}

#[test]
fn trace_block_and_step_engines_match_on_all_workloads() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());

        let mut traces = built.instantiate(&fast_config());
        assert_eq!(traces.active_engine(), Engine::Trace);
        let (out_t, trace_t) = traces.run_traced(500_000_000).unwrap();

        let mut blocks = built.instantiate(&block_config());
        assert_eq!(blocks.active_engine(), Engine::Block);
        let (out_b, trace_b) = blocks.run_traced(500_000_000).unwrap();

        let mut stepped = built.instantiate(&step_config());
        assert_eq!(stepped.active_engine(), Engine::Step);
        let (out_s, trace_s) = stepped.run_traced(500_000_000).unwrap();

        assert_eq!(out_b, out_s, "{}: outcome must be identical", workload.name);
        assert_eq!(out_t, out_s, "{}: trace-engine outcome must be identical", workload.name);
        assert_eq!(
            trace_b, trace_s,
            "{}: block retirement must synthesize the identical event stream",
            workload.name
        );
        assert_eq!(
            trace_t, trace_s,
            "{}: loop-trace retirement (guard side exits included) must \
             synthesize the identical event stream",
            workload.name
        );
        assert_eq!(blocks.stats(), stepped.stats(), "{}: ExecStats must match", workload.name);
        assert_eq!(
            traces.stats(),
            stepped.stats(),
            "{}: trace ExecStats must match",
            workload.name
        );
        assert_eq!(blocks.cpu(), stepped.cpu(), "{}: final CPU state must match", workload.name);
        assert_eq!(traces.cpu(), stepped.cpu(), "{}: trace CPU state must match", workload.name);
        built.verify(blocks.dmem()).unwrap();
        built.verify(traces.dmem()).unwrap();
    }
}

#[test]
fn cached_configs_retire_blocks_with_identical_results() {
    // The configuration that used to silently step: caches on, blocks
    // on. Careful dispatch must match per-instruction stepping with the
    // identical cache model bit-for-bit — outcome, trace, stats, CPU,
    // and dmem.
    for workload in workloads::paper_suite() {
        let built = workload.build(MbFeatures::paper_default());

        let mut careful = built.instantiate(&cached_config(fast_config()));
        let (out_c, trace_c) = careful.run_traced(2_000_000_000).unwrap();

        let mut stepped = built.instantiate(&cached_config(step_config()));
        assert_eq!(stepped.active_engine(), Engine::Step);
        let (out_s, trace_s) = stepped.run_traced(2_000_000_000).unwrap();

        assert_eq!(out_c, out_s, "{}: cached outcome must be identical", workload.name);
        assert_eq!(trace_c, trace_s, "{}: cached event streams must match", workload.name);
        assert_eq!(
            careful.stats(),
            stepped.stats(),
            "{}: cached ExecStats must match",
            workload.name
        );
        assert_eq!(careful.cpu(), stepped.cpu(), "{}: cached CPU state must match", workload.name);
        built.verify(careful.dmem()).unwrap();
    }
}

#[test]
fn cached_sliced_execution_stops_at_step_engine_boundaries() {
    // Careful dispatch checks the budget per op, so slice boundaries
    // land mid-block; they must be the step engine's exact boundaries.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let budgets = [1u64, 3, 7, 17, 33, 129, 513];

    let mut careful = built.instantiate(&cached_config(fast_config()));
    let mut stepped = built.instantiate(&cached_config(step_config()));
    let mut trace_c = Trace::new();
    let mut trace_s = Trace::new();
    for (i, &budget) in budgets.iter().cycle().enumerate() {
        let out_c = careful.run_slice(budget, &mut trace_c).unwrap();
        let out_s = stepped.run_slice(budget, &mut trace_s).unwrap();
        assert_eq!(out_c, out_s, "slice {i} (budget {budget}) diverged");
        assert_eq!(
            careful.cpu().pc(),
            stepped.cpu().pc(),
            "slice {i} (budget {budget}): boundary PC diverged"
        );
        assert_eq!(careful.stats(), stepped.stats(), "slice {i}: stats diverged");
        if out_c.exited() {
            break;
        }
        assert!(i < 20_000_000, "workload never exited under sliced execution");
    }
    assert_eq!(trace_c, trace_s, "cached sliced traces must be event-identical");
    assert_eq!(careful.cpu(), stepped.cpu());
    built.verify(careful.dmem()).unwrap();
}

#[test]
fn sliced_block_execution_stops_at_step_engine_boundaries() {
    // Slice budgets small enough that they constantly expire mid-block:
    // the engine must split at the exact instruction boundary the step
    // engine would have used, observable as identical PC / stats /
    // outcome after every slice.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let budgets = [1u64, 3, 7, 17, 33, 129, 513];

    let mut blocks = built.instantiate(&fast_config());
    let mut stepped = built.instantiate(&step_config());
    let mut trace_b = Trace::new();
    let mut trace_s = Trace::new();
    for (i, &budget) in budgets.iter().cycle().enumerate() {
        let out_b = blocks.run_slice(budget, &mut trace_b).unwrap();
        let out_s = stepped.run_slice(budget, &mut trace_s).unwrap();
        assert_eq!(out_b, out_s, "slice {i} (budget {budget}) diverged");
        assert_eq!(
            blocks.cpu().pc(),
            stepped.cpu().pc(),
            "slice {i} (budget {budget}): boundary PC diverged"
        );
        assert_eq!(blocks.stats(), stepped.stats(), "slice {i}: stats diverged");
        if out_b.exited() {
            break;
        }
        assert!(i < 20_000_000, "workload never exited under sliced execution");
    }
    assert_eq!(trace_b, trace_s, "sliced traces must be event-identical");
    assert_eq!(blocks.cpu(), stepped.cpu());
    built.verify(blocks.dmem()).unwrap();
}

/// A 100-iteration counting loop: one-word `li`, two-op body, backward
/// `bnei` — the shape the trace tier chains. Returns the program plus
/// the body and guard-word PCs.
fn hot_loop() -> (mb_isa::Program, u32, u32) {
    let mut a = Assembler::new(0);
    a.li(Reg::R3, 100);
    a.label("top");
    a.push(Insn::addik(Reg::R4, Reg::R4, 5));
    a.push(Insn::addik(Reg::R3, Reg::R3, -1));
    a.bnei(Reg::R3, "top");
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    (a.finish().unwrap(), 4, 12)
}

#[test]
fn mid_trace_patches_to_body_and_guard_words_take_effect() {
    // Run one slice so the loop trace is chained and hot, then — in the
    // warp-online hot-patch window between slices — rewrite both a body
    // word and the guard word itself. The stale trace must be dropped:
    // the patched body executes and the patched (no longer a branch)
    // guard word falls through to the exit. Every engine must agree.
    let run = |config: &MbConfig| {
        let (program, body_pc, guard_pc) = hot_loop();
        let mut sys = System::new(config.clone());
        sys.load_program(&program).unwrap();
        let out = sys.run_slice(100, &mut NullSink).unwrap();
        assert!(!out.exited(), "slice must stop mid-loop");
        sys.imem_mut().write_word(body_pc, encode(&Insn::addik(Reg::R4, Reg::R4, 7))).unwrap();
        sys.imem_mut().write_word(guard_pc, encode(&Insn::addik(Reg::R5, Reg::R5, 1))).unwrap();
        let out = sys.run(1_000_000).unwrap();
        assert!(out.exited());
        sys
    };
    let traces = run(&fast_config());
    let blocks = run(&block_config());
    let stepped = run(&step_config());
    let reference = run(&reference_config());
    assert_eq!(traces.cpu().reg(Reg::R5), 1, "patched guard word must execute");
    assert_eq!(traces.cpu(), stepped.cpu());
    assert_eq!(traces.stats(), stepped.stats());
    assert_eq!(blocks.cpu(), stepped.cpu());
    assert_eq!(blocks.stats(), stepped.stats());
    assert_eq!(reference.cpu(), stepped.cpu());
}

#[test]
fn write_log_overflow_mid_slice_still_invalidates_traces() {
    // Overflow the imem write log (`WRITE_LOG_CAP` spans) with scattered
    // writes to unreachable words before patching the hot body: the
    // incremental invalidation path gives up and the store must fall
    // back to a full flush that still drops the stale block and trace.
    let run = |config: &MbConfig| {
        let (program, body_pc, _) = hot_loop();
        let mut sys = System::new(config.clone());
        sys.load_program(&program).unwrap();
        let out = sys.run_slice(100, &mut NullSink).unwrap();
        assert!(!out.exited(), "slice must stop mid-loop");
        for i in 0..12u32 {
            sys.imem_mut()
                .write_word(0x8000 + i * 64, encode(&Insn::addik(Reg::R5, Reg::R5, 1)))
                .unwrap();
        }
        sys.imem_mut().write_word(body_pc, encode(&Insn::addik(Reg::R4, Reg::R4, 7))).unwrap();
        let out = sys.run(1_000_000).unwrap();
        assert!(out.exited());
        sys
    };
    let traces = run(&fast_config());
    let blocks = run(&block_config());
    let stepped = run(&step_config());
    assert_eq!(traces.cpu(), stepped.cpu());
    assert_eq!(traces.stats(), stepped.stats());
    assert_eq!(blocks.cpu(), stepped.cpu());
    assert_eq!(blocks.stats(), stepped.stats());
}

#[test]
fn guard_failure_side_exit_resumes_at_the_architectural_boundary() {
    // A nested loop: the inner guard fails every 4th iteration (side
    // exit to the outer decrement, a non-chainable forward fall-
    // through), and the outer backward branch re-enters the inner
    // trace. Slice budgets force boundaries inside and around the
    // side exits; everything must match the step engine exactly.
    let program = {
        let mut a = Assembler::new(0);
        a.li(Reg::R10, 25); // outer iterations
        a.label("outer");
        a.li(Reg::R3, 4); // inner iterations
        a.label("inner");
        a.push(Insn::addik(Reg::R4, Reg::R4, 3));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "inner");
        a.push(Insn::addik(Reg::R10, Reg::R10, -1));
        a.bnei(Reg::R10, "outer");
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        a.finish().unwrap()
    };
    for budget in [5u64, 23, 101, 1_000_000] {
        let mut traces = System::new(fast_config());
        let mut stepped = System::new(step_config());
        traces.load_program(&program).unwrap();
        stepped.load_program(&program).unwrap();
        let mut trace_t = Trace::new();
        let mut trace_s = Trace::new();
        loop {
            let out_t = traces.run_slice(budget, &mut trace_t).unwrap();
            let out_s = stepped.run_slice(budget, &mut trace_s).unwrap();
            assert_eq!(out_t, out_s, "budget {budget} diverged");
            assert_eq!(traces.cpu().pc(), stepped.cpu().pc(), "budget {budget}: boundary PC");
            if out_t.exited() {
                break;
            }
        }
        assert_eq!(trace_t, trace_s, "budget {budget}: event streams must match");
        assert_eq!(traces.cpu(), stepped.cpu(), "budget {budget}");
        assert_eq!(traces.stats(), stepped.stats(), "budget {budget}");
        assert_eq!(traces.cpu().reg(Reg::R4), 25 * 4 * 3);
    }
}

#[test]
fn trailing_imm_guard_prefix_survives_slice_boundaries() {
    // A loop whose guard needs an `imm` prefix (32-bit backward
    // displacement): the trailing `imm` fuses into the guard when the
    // trace chains. A slice boundary landing between the `imm` and the
    // branch must leave the architectural prefix pending, exactly as
    // the step engine would — for the trace engine (guard skipped on
    // budget expiry) and the careful cached path (per-op budget exit)
    // alike. Full-CPU equality every slice catches a dropped prefix.
    let program = {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, 50);
        a.push(Insn::addik(Reg::R4, Reg::R4, 9));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.push(Insn::Imm { imm: -1 });
        a.push(Insn::Bci { cond: mb_isa::Cond::Ne, ra: Reg::R3, imm: -12, delay: false });
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        a.finish().unwrap()
    };
    let pairs: [(MbConfig, MbConfig); 2] = [
        (fast_config(), step_config()),
        (cached_config(fast_config()), cached_config(step_config())),
    ];
    for (engine_config, step_config) in pairs {
        for budget in [1u64, 2, 3, 4, 5, 7, 11] {
            let mut fast = System::new(engine_config.clone());
            let mut stepped = System::new(step_config.clone());
            fast.load_program(&program).unwrap();
            stepped.load_program(&program).unwrap();
            let mut trace_f = Trace::new();
            let mut trace_s = Trace::new();
            loop {
                let out_f = fast.run_slice(budget, &mut trace_f).unwrap();
                let out_s = stepped.run_slice(budget, &mut trace_s).unwrap();
                assert_eq!(out_f, out_s, "budget {budget} diverged");
                assert_eq!(
                    fast.cpu(),
                    stepped.cpu(),
                    "budget {budget}: full CPU state (incl. imm prefix) at the boundary"
                );
                if out_f.exited() {
                    break;
                }
            }
            assert_eq!(trace_f, trace_s, "budget {budget}: event streams must match");
            assert_eq!(fast.stats(), stepped.stats(), "budget {budget}");
            assert_eq!(fast.cpu().reg(Reg::R4), 50 * 9);
        }
    }
}

#[test]
fn summary_sink_equals_full_trace_aggregates() {
    for workload in workloads::paper_suite() {
        let built = workload.build(MbFeatures::paper_default());

        let mut traced = built.instantiate(&fast_config());
        let (out_t, trace) = traced.run_traced(500_000_000).unwrap();

        let mut summarized = built.instantiate(&fast_config());
        let (out_s, summary) = summarized.run_summarized(500_000_000).unwrap();

        assert_eq!(out_t, out_s, "{}", workload.name);
        // The summary streamed during execution is exactly the summary
        // of the recorded trace...
        assert_eq!(summary, TraceSummary::of_trace(&trace), "{}", workload.name);
        // ...and every aggregate matches the trace's own answers.
        assert_eq!(summary.len(), trace.len() as u64, "{}", workload.name);
        assert_eq!(summary.cycles(), trace.cycles(), "{}", workload.name);
        assert_eq!(summary.class_histogram(), trace.class_histogram(), "{}", workload.name);
        assert_eq!(
            summary.backward_taken(),
            trace.iter().filter(|e| e.is_backward_taken_branch()).count() as u64,
            "{}",
            workload.name
        );
        let (start, end) = built.kernel.range();
        for (lo, hi) in [(start, end), (0, u32::MAX), (start, start), (end, end + 64)] {
            assert_eq!(
                summary.cycles_in_range(lo, hi),
                trace.cycles_in_range(lo, hi),
                "{}: cycles [{lo:#x},{hi:#x})",
                workload.name
            );
            assert_eq!(
                summary.instructions_in_range(lo, hi),
                trace.instructions_in_range(lo, hi),
                "{}: insns [{lo:#x},{hi:#x})",
                workload.name
            );
        }
        assert_eq!(
            summary.backward_taken_at(built.kernel.tail),
            trace
                .iter()
                .filter(|e| e.pc == built.kernel.tail && e.is_backward_taken_branch())
                .count() as u64,
            "{}",
            workload.name
        );
    }
}
