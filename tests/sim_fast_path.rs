//! Fast-path equivalence: the pre-decoded fetch store, the trace sinks,
//! and the streaming aggregates must be invisible to simulated results.
//!
//! Three contracts are locked in here:
//!
//! 1. the pre-decoded fetch path produces an instruction-for-instruction
//!    identical [`Trace`], identical [`ExecStats`], and identical
//!    [`Outcome`] to the decode-per-fetch reference loop
//!    (`MbConfig::with_predecode(false)`);
//! 2. decode-cache invalidation: after an imem patch through
//!    [`System::imem_mut`] — the WCLA binary-patching interface — the
//!    patched words execute, never stale pre-decoded ones;
//! 3. a [`TraceSummary`] streamed during the run equals every aggregate
//!    computed from the full trace.

use mb_isa::{encode, Assembler, Insn, MbFeatures, Reg};
use mb_sim::{MbConfig, NullSink, System, TraceSummary, EXIT_PORT_BASE};

fn fast_config() -> MbConfig {
    MbConfig::paper_default()
}

fn reference_config() -> MbConfig {
    MbConfig::paper_default().with_predecode(false)
}

#[test]
fn predecoded_fetch_matches_decode_per_fetch_reference() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());

        let mut fast = built.instantiate(&fast_config());
        let (fast_out, fast_trace) = fast.run_traced(500_000_000).unwrap();

        let mut reference = built.instantiate(&reference_config());
        let (ref_out, ref_trace) = reference.run_traced(500_000_000).unwrap();

        assert_eq!(fast_out, ref_out, "{}: outcome must be identical", workload.name);
        assert_eq!(
            fast_trace, ref_trace,
            "{}: traces must match instruction-for-instruction",
            workload.name
        );
        assert_eq!(fast.stats(), reference.stats(), "{}: ExecStats must match", workload.name);
        assert_eq!(fast.cpu(), reference.cpu(), "{}: final CPU state must match", workload.name);
    }
}

#[test]
fn untraced_run_has_identical_stats_to_traced_run() {
    // NullSink vs full-trace sink is a compile-time policy; the
    // simulated outcome and statistics must not notice.
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());

    let mut untraced = built.instantiate(&fast_config());
    let out_untraced = untraced.run(500_000_000).unwrap();

    let mut traced = built.instantiate(&fast_config());
    let (out_traced, _) = traced.run_traced(500_000_000).unwrap();

    assert_eq!(out_untraced, out_traced);
    assert_eq!(untraced.stats(), traced.stats());
    assert_eq!(untraced.cpu(), traced.cpu());
    built.verify(untraced.dmem()).unwrap();
}

/// Builds a two-iteration loop whose body instruction at a known PC can
/// be patched between iterations.
fn patchable_loop() -> (mb_isa::Program, u32, u32) {
    let mut a = Assembler::new(0);
    a.li(Reg::R3, 2); // one word: addik r3, r0, 2
    a.label("top");
    a.push(Insn::addik(Reg::R4, Reg::R4, 5)); // the patch target
    a.push(Insn::addik(Reg::R3, Reg::R3, -1));
    a.bnei(Reg::R3, "top");
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    let program = a.finish().unwrap();
    let body_pc = 4; // first instruction after the one-word li
    let branch_pc = 12;
    (program, body_pc, branch_pc)
}

/// Steps until the PC equals `target`, with a safety bound.
fn step_until(sys: &mut System, target: u32) {
    let mut guard = 0;
    while sys.cpu().pc() != target {
        sys.step(&mut NullSink).unwrap();
        guard += 1;
        assert!(guard < 10_000, "never reached pc {target:#x}");
    }
}

/// Runs the patch-mid-execution scenario on one configuration: execute
/// the loop body once (hot in any decode cache), rewrite the body
/// instruction through `imem_mut`, finish the program.
fn run_patch_scenario(config: &MbConfig) -> System {
    let (program, body_pc, branch_pc) = patchable_loop();
    let mut sys = System::new(config.clone());
    sys.load_program(&program).unwrap();
    // First iteration has executed the body once when the branch is
    // reached — exactly when a stale decode-cache entry would exist.
    step_until(&mut sys, branch_pc);
    sys.imem_mut().write_word(body_pc, encode(&Insn::addik(Reg::R4, Reg::R4, 7))).unwrap();
    let out = sys.run(10_000).unwrap();
    assert!(out.exited());
    sys
}

#[test]
fn imem_patch_invalidates_predecoded_store() {
    let fast = run_patch_scenario(&fast_config());
    // Iteration 1 added 5, iteration 2 must execute the patched word.
    assert_eq!(fast.cpu().reg(Reg::R4), 12, "stale pre-decoded instruction executed");

    // And the whole machine state matches the decode-per-fetch loop
    // subjected to the identical patch sequence.
    let reference = run_patch_scenario(&reference_config());
    assert_eq!(reference.cpu().reg(Reg::R4), 12);
    assert_eq!(fast.cpu(), reference.cpu());
    assert_eq!(fast.stats(), reference.stats());
}

#[test]
fn summary_sink_equals_full_trace_aggregates() {
    for workload in workloads::paper_suite() {
        let built = workload.build(MbFeatures::paper_default());

        let mut traced = built.instantiate(&fast_config());
        let (out_t, trace) = traced.run_traced(500_000_000).unwrap();

        let mut summarized = built.instantiate(&fast_config());
        let (out_s, summary) = summarized.run_summarized(500_000_000).unwrap();

        assert_eq!(out_t, out_s, "{}", workload.name);
        // The summary streamed during execution is exactly the summary
        // of the recorded trace...
        assert_eq!(summary, TraceSummary::of_trace(&trace), "{}", workload.name);
        // ...and every aggregate matches the trace's own answers.
        assert_eq!(summary.len(), trace.len() as u64, "{}", workload.name);
        assert_eq!(summary.cycles(), trace.cycles(), "{}", workload.name);
        assert_eq!(summary.class_histogram(), trace.class_histogram(), "{}", workload.name);
        assert_eq!(
            summary.backward_taken(),
            trace.iter().filter(|e| e.is_backward_taken_branch()).count() as u64,
            "{}",
            workload.name
        );
        let (start, end) = built.kernel.range();
        for (lo, hi) in [(start, end), (0, u32::MAX), (start, start), (end, end + 64)] {
            assert_eq!(
                summary.cycles_in_range(lo, hi),
                trace.cycles_in_range(lo, hi),
                "{}: cycles [{lo:#x},{hi:#x})",
                workload.name
            );
            assert_eq!(
                summary.instructions_in_range(lo, hi),
                trace.instructions_in_range(lo, hi),
                "{}: insns [{lo:#x},{hi:#x})",
                workload.name
            );
        }
        assert_eq!(
            summary.backward_taken_at(built.kernel.tail),
            trace
                .iter()
                .filter(|e| e.pc == built.kernel.tail && e.is_backward_taken_branch())
                .count() as u64,
            "{}",
            workload.name
        );
    }
}
