//! Fast-path equivalence: the pre-decoded fetch store, the superblock
//! engine, the trace sinks, and the streaming aggregates must be
//! invisible to simulated results.
//!
//! Four contracts are locked in here:
//!
//! 1. the pre-decoded fetch path produces an instruction-for-instruction
//!    identical [`Trace`], identical [`ExecStats`], and identical
//!    [`Outcome`] to the decode-per-fetch reference loop
//!    (`MbConfig::with_predecode(false)`);
//! 2. the superblock engine (`MbConfig::with_blocks`, the default)
//!    matches the per-instruction step engine the same way — including
//!    across mid-run patches and cycle budgets that expire mid-block;
//! 3. decode-cache and block-store invalidation: after an imem patch
//!    through [`System::imem_mut`] — the WCLA binary-patching interface
//!    — the patched words execute, never stale pre-decoded ones or
//!    stale fused blocks;
//! 4. a [`TraceSummary`] streamed during the run equals every aggregate
//!    computed from the full trace.

use mb_isa::{encode, Assembler, Insn, MbFeatures, MemSize, Reg};
use mb_sim::{MbConfig, NullSink, System, Trace, TraceSummary, EXIT_PORT_BASE};

/// Block engine on (the default configuration).
fn fast_config() -> MbConfig {
    MbConfig::paper_default()
}

/// Pre-decoded fetch but per-instruction stepping (the PR 3 fast path).
fn step_config() -> MbConfig {
    MbConfig::paper_default().with_blocks(false)
}

fn reference_config() -> MbConfig {
    MbConfig::paper_default().with_predecode(false).with_blocks(false)
}

#[test]
fn predecoded_fetch_matches_decode_per_fetch_reference() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());

        let mut fast = built.instantiate(&fast_config());
        let (fast_out, fast_trace) = fast.run_traced(500_000_000).unwrap();

        let mut reference = built.instantiate(&reference_config());
        let (ref_out, ref_trace) = reference.run_traced(500_000_000).unwrap();

        assert_eq!(fast_out, ref_out, "{}: outcome must be identical", workload.name);
        assert_eq!(
            fast_trace, ref_trace,
            "{}: traces must match instruction-for-instruction",
            workload.name
        );
        assert_eq!(fast.stats(), reference.stats(), "{}: ExecStats must match", workload.name);
        assert_eq!(fast.cpu(), reference.cpu(), "{}: final CPU state must match", workload.name);
    }
}

#[test]
fn untraced_run_has_identical_stats_to_traced_run() {
    // NullSink vs full-trace sink is a compile-time policy; the
    // simulated outcome and statistics must not notice.
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());

    let mut untraced = built.instantiate(&fast_config());
    let out_untraced = untraced.run(500_000_000).unwrap();

    let mut traced = built.instantiate(&fast_config());
    let (out_traced, _) = traced.run_traced(500_000_000).unwrap();

    assert_eq!(out_untraced, out_traced);
    assert_eq!(untraced.stats(), traced.stats());
    assert_eq!(untraced.cpu(), traced.cpu());
    built.verify(untraced.dmem()).unwrap();
}

/// Builds a two-iteration loop whose body instruction at a known PC can
/// be patched between iterations.
fn patchable_loop() -> (mb_isa::Program, u32, u32) {
    let mut a = Assembler::new(0);
    a.li(Reg::R3, 2); // one word: addik r3, r0, 2
    a.label("top");
    a.push(Insn::addik(Reg::R4, Reg::R4, 5)); // the patch target
    a.push(Insn::addik(Reg::R3, Reg::R3, -1));
    a.bnei(Reg::R3, "top");
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
    let program = a.finish().unwrap();
    let body_pc = 4; // first instruction after the one-word li
    let branch_pc = 12;
    (program, body_pc, branch_pc)
}

/// Steps until the PC equals `target`, with a safety bound.
fn step_until(sys: &mut System, target: u32) {
    let mut guard = 0;
    while sys.cpu().pc() != target {
        sys.step(&mut NullSink).unwrap();
        guard += 1;
        assert!(guard < 10_000, "never reached pc {target:#x}");
    }
}

/// Runs the patch-mid-execution scenario on one configuration: execute
/// the loop body once (hot in any decode cache), rewrite the body
/// instruction through `imem_mut`, finish the program.
fn run_patch_scenario(config: &MbConfig) -> System {
    let (program, body_pc, branch_pc) = patchable_loop();
    let mut sys = System::new(config.clone());
    sys.load_program(&program).unwrap();
    // First iteration has executed the body once when the branch is
    // reached — exactly when a stale decode-cache entry would exist.
    step_until(&mut sys, branch_pc);
    sys.imem_mut().write_word(body_pc, encode(&Insn::addik(Reg::R4, Reg::R4, 7))).unwrap();
    let out = sys.run(10_000).unwrap();
    assert!(out.exited());
    sys
}

#[test]
fn imem_patch_invalidates_predecoded_store() {
    // fast_config has the block engine on, so this exercises both the
    // predecode-slot and the fused-block invalidation paths.
    let fast = run_patch_scenario(&fast_config());
    // Iteration 1 added 5, iteration 2 must execute the patched word.
    assert_eq!(fast.cpu().reg(Reg::R4), 12, "stale pre-decoded instruction executed");

    // And the whole machine state matches the per-instruction step
    // engine and the decode-per-fetch loop subjected to the identical
    // patch sequence.
    let stepped = run_patch_scenario(&step_config());
    let reference = run_patch_scenario(&reference_config());
    assert_eq!(reference.cpu().reg(Reg::R4), 12);
    assert_eq!(fast.cpu(), stepped.cpu());
    assert_eq!(fast.stats(), stepped.stats());
    assert_eq!(fast.cpu(), reference.cpu());
    assert_eq!(fast.stats(), reference.stats());
}

#[test]
fn faulting_block_preserves_step_engine_prefix_state() {
    // An `imm` directly before a register-indexed load that faults: the
    // step engine clears a pending prefix only *after* a successful
    // Type-A access, so it still holds the prefix at the fault point —
    // the block engine must restore it when unwinding the fused block,
    // leaving bit-identical CPU state on the error path too.
    let run = |config: &MbConfig| {
        let mut a = Assembler::new(0);
        a.li(Reg::R2, 0x0010_0000); // beyond the 64 KiB dmem, below the OPB window
        a.push(Insn::Imm { imm: 0x0123 });
        a.push(Insn::Load { size: MemSize::Word, rd: Reg::R1, ra: Reg::R2, rb: Reg::R0 });
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        let program = a.finish().unwrap();
        let mut sys = System::new(config.clone());
        sys.load_program(&program).unwrap();
        let err = sys.run(10_000).unwrap_err();
        (sys, err)
    };
    let (blocks, err_b) = run(&fast_config());
    let (stepped, err_s) = run(&step_config());
    assert_eq!(err_b, err_s, "both engines must raise the identical fault");
    assert!(blocks.cpu().has_imm_prefix(), "the pending prefix must survive the Type-A fault");
    assert_eq!(blocks.cpu(), stepped.cpu(), "post-fault CPU state must match");
    assert_eq!(blocks.stats(), stepped.stats(), "post-fault stats must match");
}

#[test]
fn block_engine_matches_step_engine_on_all_workloads() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());

        let mut blocks = built.instantiate(&fast_config());
        let (out_b, trace_b) = blocks.run_traced(500_000_000).unwrap();

        let mut stepped = built.instantiate(&step_config());
        let (out_s, trace_s) = stepped.run_traced(500_000_000).unwrap();

        assert_eq!(out_b, out_s, "{}: outcome must be identical", workload.name);
        assert_eq!(
            trace_b, trace_s,
            "{}: block retirement must synthesize the identical event stream",
            workload.name
        );
        assert_eq!(blocks.stats(), stepped.stats(), "{}: ExecStats must match", workload.name);
        assert_eq!(blocks.cpu(), stepped.cpu(), "{}: final CPU state must match", workload.name);
        built.verify(blocks.dmem()).unwrap();
    }
}

#[test]
fn sliced_block_execution_stops_at_step_engine_boundaries() {
    // Slice budgets small enough that they constantly expire mid-block:
    // the engine must split at the exact instruction boundary the step
    // engine would have used, observable as identical PC / stats /
    // outcome after every slice.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let budgets = [1u64, 3, 7, 17, 33, 129, 513];

    let mut blocks = built.instantiate(&fast_config());
    let mut stepped = built.instantiate(&step_config());
    let mut trace_b = Trace::new();
    let mut trace_s = Trace::new();
    for (i, &budget) in budgets.iter().cycle().enumerate() {
        let out_b = blocks.run_slice(budget, &mut trace_b).unwrap();
        let out_s = stepped.run_slice(budget, &mut trace_s).unwrap();
        assert_eq!(out_b, out_s, "slice {i} (budget {budget}) diverged");
        assert_eq!(
            blocks.cpu().pc(),
            stepped.cpu().pc(),
            "slice {i} (budget {budget}): boundary PC diverged"
        );
        assert_eq!(blocks.stats(), stepped.stats(), "slice {i}: stats diverged");
        if out_b.exited() {
            break;
        }
        assert!(i < 20_000_000, "workload never exited under sliced execution");
    }
    assert_eq!(trace_b, trace_s, "sliced traces must be event-identical");
    assert_eq!(blocks.cpu(), stepped.cpu());
    built.verify(blocks.dmem()).unwrap();
}

#[test]
fn summary_sink_equals_full_trace_aggregates() {
    for workload in workloads::paper_suite() {
        let built = workload.build(MbFeatures::paper_default());

        let mut traced = built.instantiate(&fast_config());
        let (out_t, trace) = traced.run_traced(500_000_000).unwrap();

        let mut summarized = built.instantiate(&fast_config());
        let (out_s, summary) = summarized.run_summarized(500_000_000).unwrap();

        assert_eq!(out_t, out_s, "{}", workload.name);
        // The summary streamed during execution is exactly the summary
        // of the recorded trace...
        assert_eq!(summary, TraceSummary::of_trace(&trace), "{}", workload.name);
        // ...and every aggregate matches the trace's own answers.
        assert_eq!(summary.len(), trace.len() as u64, "{}", workload.name);
        assert_eq!(summary.cycles(), trace.cycles(), "{}", workload.name);
        assert_eq!(summary.class_histogram(), trace.class_histogram(), "{}", workload.name);
        assert_eq!(
            summary.backward_taken(),
            trace.iter().filter(|e| e.is_backward_taken_branch()).count() as u64,
            "{}",
            workload.name
        );
        let (start, end) = built.kernel.range();
        for (lo, hi) in [(start, end), (0, u32::MAX), (start, start), (end, end + 64)] {
            assert_eq!(
                summary.cycles_in_range(lo, hi),
                trace.cycles_in_range(lo, hi),
                "{}: cycles [{lo:#x},{hi:#x})",
                workload.name
            );
            assert_eq!(
                summary.instructions_in_range(lo, hi),
                trace.instructions_in_range(lo, hi),
                "{}: insns [{lo:#x},{hi:#x})",
                workload.name
            );
        }
        assert_eq!(
            summary.backward_taken_at(built.kernel.tail),
            trace
                .iter()
                .filter(|e| e.pc == built.kernel.tail && e.is_backward_taken_branch())
                .count() as u64,
            "{}",
            workload.name
        );
    }
}
