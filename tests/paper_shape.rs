//! Paper-shape assertions: the reproduced Figures 6 and 7 must show the
//! same qualitative story the paper tells — who wins, by roughly what
//! factor, and in which order — without requiring absolute numbers to
//! match a testbed we don't have.

use warp_core::experiments::{figure6, figure7, run_paper_suite, summary};
use warp_core::WarpOptions;

#[test]
fn figures_6_and_7_reproduce_the_papers_shape() {
    let comparisons = run_paper_suite(&WarpOptions::default()).expect("suite runs");
    let fig6 = figure6(&comparisons);
    let fig7 = figure7(&comparisons);
    let s = summary(&comparisons);

    // --- Figure 6 shape -------------------------------------------------
    let avg6 = &fig6[fig6.len() - 1].speedups;
    // ARM ladder is monotone: ARM7 < ARM9 < ARM10 < ARM11.
    assert!(avg6[1] < avg6[2] && avg6[2] < avg6[3] && avg6[3] < avg6[4], "ARM ladder {avg6:?}");
    // Warp beats ARM7, ARM9, and ARM10 on average (paper's key claim).
    assert!(avg6[5] > avg6[1] && avg6[5] > avg6[2] && avg6[5] > avg6[3], "warp avg {avg6:?}");
    // ARM11 remains faster than warp on average, by roughly the paper's
    // 2.6x (band 1.5..4).
    assert!(
        (1.5..4.0).contains(&s.arm11_speed_over_warp),
        "ARM11/warp {:.2} (paper 2.6)",
        s.arm11_speed_over_warp
    );
    // brev is the outlier: 16.9x in the paper; accept 10..25.
    let brev = fig6.iter().find(|r| r.benchmark == "brev").unwrap();
    assert!((10.0..25.0).contains(&brev.speedups[5]), "brev warp {:.1}", brev.speedups[5]);
    // Average warp speedup in the paper band 5.8 (accept 4..8) and the
    // excluding-brev average well below it (paper 3.6, accept 2..5).
    assert!((4.0..8.0).contains(&s.avg_warp_speedup), "avg {:.2}", s.avg_warp_speedup);
    assert!(
        (2.0..5.0).contains(&s.avg_warp_speedup_excl_brev),
        "avg excl brev {:.2}",
        s.avg_warp_speedup_excl_brev
    );
    // Warp vs ARM10: paper 1.3x faster; accept 1.0..2.0.
    assert!(
        (1.0..2.0).contains(&s.warp_speed_over_arm10),
        "warp/ARM10 {:.2}",
        s.warp_speed_over_arm10
    );

    // --- Figure 7 shape -------------------------------------------------
    let avg7 = &fig7[fig7.len() - 1].energy;
    // The MicroBlaze alone is the energy hog of the whole lineup.
    for (i, e) in avg7.iter().enumerate().skip(1) {
        assert!(*e < 1.0, "system {i} must use less energy than the soft core, got {e:.2}");
    }
    // ARM energy ordering: the small cores are the most frugal.
    assert!(avg7[1] < avg7[3] && avg7[2] < avg7[3] && avg7[3] < avg7[4], "ARM energy {avg7:?}");
    // Warp uses less energy than ARM10 and ARM11 (the paper's claim).
    assert!(avg7[5] < avg7[3] && avg7[5] < avg7[4], "warp energy {avg7:?}");
    // MicroBlaze uses ~48% more than ARM11; accept 1.2..2.2.
    assert!(
        (1.2..2.2).contains(&s.mb_energy_over_arm11),
        "MB/ARM11 energy {:.2}",
        s.mb_energy_over_arm11
    );
    // Average warp energy reduction: paper 57%; accept 45..80%.
    assert!(
        (0.45..0.80).contains(&s.avg_energy_reduction),
        "avg reduction {:.2}",
        s.avg_energy_reduction
    );
    // brev's reduction is the maximum (paper 94%).
    let brev7 = fig7.iter().find(|r| r.benchmark == "brev").unwrap();
    assert!(brev7.energy[5] < 0.15, "brev warp energy {:.2}", brev7.energy[5]);
}

#[test]
fn section2_study_reproduces_the_papers_shape() {
    let rows = warp_core::experiments::config_study();
    let slow = |bench: &str, cfg_prefix: &str| -> f64 {
        rows.iter()
            .find(|r| r.benchmark == bench && r.config.starts_with(cfg_prefix))
            .map(|r| r.slowdown)
            .expect("row present")
    };
    let brev = slow("brev", "no barrel");
    let matmul = slow("matmul", "no multiplier");
    // Paper: brev 2.1x, matmul 1.3x. Accept bands and, crucially, the
    // ordering: brev is far more sensitive than matmul.
    assert!((1.6..2.6).contains(&brev), "brev slowdown {brev:.2} (paper 2.1)");
    assert!((1.1..1.9).contains(&matmul), "matmul slowdown {matmul:.2} (paper 1.3)");
    assert!(brev > matmul, "shift-bound brev must suffer more than matmul");
}
