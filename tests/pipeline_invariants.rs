//! Cross-crate pipeline invariants that no single crate can check alone.

use mb_isa::MbFeatures;
use mb_sim::MbConfig;
use warp_wcla::patch::{apply_patch, revert_patch, stub_base_for, PatchPlan};
use warp_wcla::WclaCircuit;

/// A patched-then-reverted binary must behave exactly like the original.
#[test]
fn patch_revert_restores_software_behavior() {
    let built = workloads::by_name("bitmnp").unwrap().build(MbFeatures::paper_default());
    let kernel =
        warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
    let head_word = built.program.word_at(kernel.head).unwrap();
    let plan =
        PatchPlan::new(&kernel, head_word, stub_base_for(built.program.end()), kernel.tail + 4)
            .unwrap();

    let mut sys = built.instantiate(&MbConfig::paper_default());
    apply_patch(sys.imem_mut(), &plan).unwrap();
    revert_patch(sys.imem_mut(), &plan).unwrap();
    let outcome = sys.run(200_000_000).unwrap();
    assert!(outcome.exited());
    built.verify(sys.dmem()).unwrap();
}

/// The WCLA's cycle model must never claim hardware is slower than an
/// equivalent ideal software loop would allow it to be fast — i.e. the
/// per-iteration hardware time stays below the software kernel's
/// per-iteration time for every paper workload (the premise of warping).
#[test]
fn hardware_iteration_beats_software_iteration() {
    for workload in workloads::paper_suite() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel =
            warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail)
                .unwrap();
        let (circuit, _) = WclaCircuit::build(kernel).unwrap();

        // Software: count the kernel's per-iteration cycles from the
        // streaming summary — region totals and per-PC backward-branch
        // counts need no recorded event vector.
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (_, summary) = sys.run_summarized(500_000_000).unwrap();
        let (start, end) = built.kernel.range();
        let kernel_cycles = summary.cycles_in_range(start, end);
        let backward = summary.backward_taken_at(built.kernel.tail);
        let iterations = backward + circuit_invocations(&built);
        let sw_ns_per_iter = kernel_cycles as f64 / iterations.max(1) as f64 / 85e6 * 1e9;

        let hw_ns_per_iter =
            circuit.model.cycles_per_iteration as f64 / circuit.model.fabric_clock_hz as f64 * 1e9;
        assert!(
            hw_ns_per_iter < sw_ns_per_iter,
            "{}: HW {hw_ns_per_iter:.1} ns/iter vs SW {sw_ns_per_iter:.1} ns/iter",
            workload.name
        );
    }
}

/// Number of not-taken exits = number of invocations of the loop.
fn circuit_invocations(built: &workloads::BuiltWorkload) -> u64 {
    // Every loop entry ends with exactly one not-taken tail branch.
    // matmul re-enters per (i, j); the others once.
    if built.name == "matmul" {
        (workloads::matmul_dim() * workloads::matmul_dim()) as u64
    } else {
        1
    }
}

/// Bitstream sizes stay within an on-chip configuration budget.
#[test]
fn bitstreams_are_kilobytes_not_megabytes() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel =
            warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail)
                .unwrap();
        let (circuit, _) = WclaCircuit::build(kernel).unwrap();
        let bytes = circuit.compiled.bitstream.len_bytes();
        assert!(
            bytes < 4 * 1024 * 1024,
            "{}: bitstream {bytes} B exceeds on-chip budget",
            workload.name
        );
    }
}
