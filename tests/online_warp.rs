//! The online runtime against the offline pipeline: convergence,
//! mid-run invalidation, and phased re-warping.
//!
//! Five contracts:
//!
//! 1. **online == offline convergence** — warping a single-kernel
//!    workload online must install the *exact* circuit the offline
//!    staged pipeline compiles (same kernel fingerprint, same
//!    [`ExecModel`](warp_mb::warp_wcla::ExecModel) cycles/iteration),
//!    and the end-to-end online speedup must sit in the band the
//!    offline amortization model predicts;
//! 2. **mid-run patch invalidation** — the orchestrator's hot patch
//!    must behave identically with the pre-decoded fetch store on and
//!    off (the `tests/sim_fast_path.rs` contract, replayed from inside
//!    the online runtime);
//! 3. **phased re-warp** — on a workload whose hot loop shifts mid-run
//!    (A → A′ → B), the timeline must show three warp events, each
//!    after the first evicting its predecessor, with the
//!    shifted-but-similar A′ re-warp charging at most half of A's
//!    modeled CAD budget (the incremental-CAD payoff), and results
//!    bit-identical to software-only execution (verified against the
//!    golden model inside the run);
//! 4. **incremental == from-scratch** — compiling A′ through the
//!    sub-kernel caches populated by A must produce bit-identical
//!    artifacts (bitstream, cycle model, patch plan) to an empty-cache
//!    compile, differing only in the work/cost accounting;
//! 5. **thread-count invariance** — the whole online timeline must be
//!    identical under `WARP_CAD_THREADS=1` and `=4`: background CAD
//!    workers trade host wall-clock only, never modeled cycles.

use mb_isa::MbFeatures;
use warp_bench::online::offline_reference;
use warp_mb::warp_online::{NeverPolicy, OnlineConfig, Orchestrator, ThresholdPolicy, TopKPolicy};
use warp_mb::{mb_sim, workloads};

#[test]
fn online_converges_to_the_offline_pipeline_on_every_single_kernel_workload() {
    for workload in workloads::all().into_iter().filter(|w| w.name != "phased") {
        let built = workload.build(MbFeatures::paper_default());

        // Offline staged reference with the OCPM clock pre-scaled so
        // the warp lands within a few repeats — the same helper the
        // `onlineperf` harness uses, so the scaling rule, the detection
        // threshold, and the amortization columns cannot drift apart.
        let offline = offline_reference(&built);
        let sw_cycles = offline.report.sw_cycles;

        let repeats = 3;
        let config = OnlineConfig {
            options: offline.options.clone(),
            slice_cycles: 10_000,
            decay_interval: 0, // convergence, not phase tracking
            repeats,
            ..OnlineConfig::default()
        };
        let report = Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: offline.kernel_heat })
            .run()
            .unwrap();

        // Exactly one warp, of exactly the offline kernel...
        assert_eq!(report.events.len(), 1, "{}", built.name);
        let event = &report.events[0];
        assert_eq!((event.head, event.tail), (built.kernel.head, built.kernel.tail));
        assert_eq!(event.fingerprint, offline.fingerprint, "{}", built.name);
        // ...installing the identical circuit: the online WCLA obeys
        // the exact cycle model the offline pipeline derived.
        assert_eq!(event.model, offline.model, "{}: ExecModel must match", built.name);
        assert_eq!(event.dpm, offline.dpm, "{}", built.name);
        assert!(event.hw.invocations >= 1, "{}: hardware never ran", built.name);
        assert!(event.patched_cycle >= event.detected_cycle + event.cad_cycles);

        // Hardware raises application progress per cycle.
        let insns_per_iter = f64::from(built.kernel.words());
        assert!(
            report.post_warp_progress(insns_per_iter) > report.pre_warp_ipc(),
            "{}: post-warp progress must beat pre-warp",
            built.name
        );

        // Convergence of the timeline itself: before the patch the
        // online runtime *is* software, and after it the workload must
        // run at the offline steady-state ratio — so the whole online
        // timeline is predictable from the patch cycle and the offline
        // speedup alone. A mis-modeled stub, a circuit that is not the
        // offline one, or broken invalidation would all bend this.
        let steady = offline.report.speedup();
        let total_sw = sw_cycles * u64::from(repeats);
        let predicted =
            event.patched_cycle as f64 + (total_sw - event.patched_cycle) as f64 / steady;
        let ratio = report.cycles as f64 / predicted;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "{}: online {} cycles vs predicted {:.0} (ratio {ratio:.3})",
            built.name,
            report.cycles,
            predicted
        );

        // And the speedup sits where the amortization model says it
        // must: the scaled CAD pays back within these repeats
        // (break-even <= repeats), so online ends up strictly faster
        // than software but never faster than the offline steady state.
        let online_speedup = report.speedup_vs(total_sw);
        assert!(
            offline.break_even_runs <= u64::from(repeats),
            "{}: CAD must amortize here",
            built.name
        );
        assert!(
            online_speedup > 1.0,
            "{}: online must beat software ({online_speedup:.3})",
            built.name
        );
        assert!(
            online_speedup <= steady + 1e-9,
            "{}: online {online_speedup:.3} cannot beat the steady state {steady:.3}",
            built.name
        );
    }
}

#[test]
fn orchestrator_patch_replays_the_fast_path_invalidation_contract() {
    // The same online run with the pre-decoded fetch store on and off:
    // the mid-run hot patch must be invisible to simulated results —
    // identical timeline, identical warp events, identical totals.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let run = |predecode: bool| {
        let config = OnlineConfig {
            mb: mb_sim::MbConfig::paper_default().with_predecode(predecode),
            repeats: 2,
            ..OnlineConfig::default()
        };
        Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: 512 })
            .run()
            .unwrap()
    };
    let fast = run(true);
    let reference = run(false);

    assert_eq!(fast.cycles, reference.cycles);
    assert_eq!(fast.instructions, reference.instructions);
    assert_eq!(fast.slices, reference.slices);
    assert_eq!(fast.exit_code, reference.exit_code);
    assert_eq!(fast.events, reference.events, "patch timeline must be fetch-path independent");
    assert_eq!(fast.events.len(), 1);
    assert!(fast.events[0].patched_cycle < fast.cycles, "the patch landed mid-run");
}

#[test]
fn phased_workload_rewarps_with_eviction() {
    let features = MbFeatures::paper_default();
    let built = workloads::phased::build_scaled(features, 300, 150, 700);
    let [kernel_a, kernel_a2, kernel_b] = workloads::phased::phase_kernels(&built);

    // The three phase kernels are genuinely different circuits.
    let fp = |k: &workloads::KernelBounds| {
        warp_mb::warp_cdfg::decompile_loop(&built.program, k.head, k.tail).unwrap().fingerprint()
    };
    let (fp_a, fp_a2, fp_b) = (fp(&kernel_a), fp(&kernel_a2), fp(&kernel_b));
    assert_ne!(fp_a, fp_a2);
    assert_ne!(fp_a, fp_b);
    assert_ne!(fp_a2, fp_b);

    let config = OnlineConfig {
        slice_cycles: 20_000,
        decay_interval: 8,
        repeats: 1,
        ..OnlineConfig::default()
    };
    let report = Orchestrator::new(&built, config.clone())
        .with_policy(ThresholdPolicy { min_count: 3000 })
        .run()
        .unwrap();

    assert_eq!(
        report.events.len(),
        3,
        "the shifting hot loop must force exactly two re-warps: {report}"
    );
    let [first, second, third] = [&report.events[0], &report.events[1], &report.events[2]];
    assert_eq!((first.head, first.tail), (kernel_a.head, kernel_a.tail));
    assert_eq!(first.fingerprint, fp_a);
    assert_eq!(first.evicted, None);
    assert_eq!((second.head, second.tail), (kernel_a2.head, kernel_a2.tail));
    assert_eq!(second.fingerprint, fp_a2);
    assert_eq!(
        second.evicted,
        Some((kernel_a.head, kernel_a.tail)),
        "the A' re-warp must evict phase A's circuit"
    );
    assert_eq!((third.head, third.tail), (kernel_b.head, kernel_b.tail));
    assert_eq!(third.fingerprint, fp_b);
    assert_eq!(
        third.evicted,
        Some((kernel_a2.head, kernel_a2.tail)),
        "the B re-warp must evict phase A''s circuit"
    );
    assert!(first.patched_cycle < second.detected_cycle, "events in timeline order");
    assert!(second.patched_cycle < third.detected_cycle, "events in timeline order");
    assert!(
        first.hw.invocations > 0 && second.hw.invocations > 0 && third.hw.invocations > 0,
        "all three circuits must run"
    );
    assert!(report.profiler.decays > 0, "decay is what lets later phases rise");

    // The incremental-CAD payoff: A' is a shifted-but-similar kernel
    // (same cone structure, different mixing constant and streams), so
    // its compile replays A's mapped clusters, placement, and net
    // routes, and must charge at most half of A's modeled CAD budget.
    assert_eq!(first.reused_clusters, 0, "phase A compiles through empty caches");
    assert!(
        second.reused_clusters > 0,
        "A' must replay clusters A mapped ({} of {})",
        second.reused_clusters,
        second.total_clusters
    );
    assert!(
        second.cad_cycles * 2 <= first.cad_cycles,
        "incremental re-warp must charge at most half of from-scratch: A' {} vs A {}",
        second.cad_cycles,
        first.cad_cycles
    );
    assert!(!second.cache_hit, "A' is a new kernel, not a whole-circuit hit");
    // Overlap is bounded below by the budget itself (patch never lands
    // before the modeled CAD completes).
    for e in &report.events {
        assert!(e.cad_overlap_cycles >= e.cad_cycles);
    }

    // Results were verified bit-identical to the golden model inside
    // the run; the warped timeline must also beat the software-only
    // arm of the A-B (same slice scheduler, NeverPolicy).
    let software = Orchestrator::new(&built, config).with_policy(NeverPolicy).run().unwrap();
    assert!(software.events.is_empty());
    assert!(
        report.cycles < software.cycles,
        "online {} cycles vs software {} cycles",
        report.cycles,
        software.cycles
    );
}

#[test]
fn incremental_rewarp_is_bit_identical_to_from_scratch() {
    use warp_mb::warp_core::pipeline;
    use warp_mb::warp_profiler::HotRegion;
    use warp_mb::warp_wcla::CadCaches;

    let built = workloads::phased::build(MbFeatures::paper_default());
    let [kernel_a, kernel_a2, _] = workloads::phased::phase_kernels(&built);
    let hot = |k: &workloads::KernelBounds| HotRegion { head: k.head, tail: k.tail, count: 10_000 };
    let da = pipeline::decompile(&built, &hot(&kernel_a)).unwrap();
    let da2 = pipeline::decompile(&built, &hot(&kernel_a2)).unwrap();

    // Warm the sub-kernel caches with phase A, then compile A' through
    // them (the evict + re-warp path) and from scratch.
    let caches = CadCaches::new();
    let a = pipeline::compile_circuit_cached(&da, Some(&caches)).unwrap();
    let incremental = pipeline::compile_circuit_cached(&da2, Some(&caches)).unwrap();
    let scratch = pipeline::compile_circuit(&da2).unwrap();

    // Bit-identity: every artifact that reaches hardware or the
    // simulated timeline is equal — the caches are pure memoization.
    assert_eq!(
        incremental.circuit.compiled.bitstream.words(),
        scratch.circuit.compiled.bitstream.words(),
        "configuration bitstream must be bit-identical"
    );
    assert_eq!(incremental.circuit.compiled.route_stats, scratch.circuit.compiled.route_stats);
    assert_eq!(incremental.circuit.model, scratch.circuit.model, "cycle model must be identical");
    assert_eq!(incremental.fingerprint, scratch.fingerprint);
    let plan_inc = pipeline::plan_patch(&built, &incremental).unwrap();
    let plan_scratch = pipeline::plan_patch(&built, &scratch).unwrap();
    assert_eq!(plan_inc, plan_scratch, "patched binary must be identical");

    // Only the work accounting differs: the incremental compile replays
    // A's clusters/placement/routes and charges a fraction of the cost.
    assert!(incremental.work.map.clusters_reused > 0);
    assert_eq!(scratch.work.map.clusters_reused, 0);
    assert!(incremental.work.fabric.place_restored);
    assert!(
        incremental.work.fabric.nets_restored > 0 || scratch.circuit.compiled.route_stats.nets == 0
    );
    assert!(
        incremental.dpm.total_cycles() * 2 <= scratch.dpm.total_cycles(),
        "incremental CAD {} must be at most half of from-scratch {}",
        incremental.dpm.total_cycles(),
        scratch.dpm.total_cycles()
    );
    // Sanity: A itself was a full-price compile through empty caches.
    assert_eq!(a.work.map.clusters_reused, 0);
}

#[test]
fn online_timeline_is_identical_across_cad_thread_counts() {
    let built = workloads::phased::build_scaled(MbFeatures::paper_default(), 150, 75, 350);
    let run = |threads: &str| {
        std::env::set_var(warp_mb::warp_core::CAD_THREADS_ENV, threads);
        let config = OnlineConfig {
            slice_cycles: 20_000,
            decay_interval: 8,
            repeats: 1,
            ..OnlineConfig::default()
        };
        let report = Orchestrator::new(&built, config)
            .with_policy(ThresholdPolicy { min_count: 1500 })
            .run()
            .unwrap();
        std::env::remove_var(warp_mb::warp_core::CAD_THREADS_ENV);
        report
    };
    let one = run("1");
    let four = run("4");

    // The modeled timeline is byte-identical: worker count trades host
    // wall-clock only.
    assert_eq!(one.cycles, four.cycles);
    assert_eq!(one.instructions, four.instructions);
    assert_eq!(one.slices, four.slices);
    assert_eq!(one.exit_code, four.exit_code);
    assert_eq!(one.profiler, four.profiler);
    assert_eq!(one.events, four.events, "warp events must be thread-count independent");
    assert!(one.events.len() >= 2, "the phased run must re-warp: {one}");
}

#[test]
fn online_error_chain_reaches_the_leaf_cause() {
    use std::error::Error;
    // A workload that cannot exit within the timeline budget surfaces
    // BudgetExhausted; a golden-model mismatch would surface Verify.
    // Here: drive the budget to (effectively) zero and check the
    // chain-free variant, then check a wrapped chain end-to-end.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let config = OnlineConfig { max_cycles: 1, ..OnlineConfig::default() };
    let err = Orchestrator::new(&built, config).with_policy(NeverPolicy).run().unwrap_err();
    assert!(err.to_string().contains("budget"));
    assert!(err.source().is_none());

    // WarpError::PatchApply now carries the memory fault as a typed
    // source: the chain is walkable to the leaf.
    let mem = mb_sim::Bram::new(16).write_word(0x100, 0).unwrap_err();
    let wrapped = warp_mb::warp_core::WarpError::PatchApply(mem);
    let leaf = wrapped.source().expect("PatchApply exposes the MemError");
    assert!(leaf.to_string().contains("0x"));
}
