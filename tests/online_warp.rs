//! The online runtime against the offline pipeline: convergence,
//! mid-run invalidation, and phased re-warping.
//!
//! Three contracts:
//!
//! 1. **online == offline convergence** — warping a single-kernel
//!    workload online must install the *exact* circuit the offline
//!    staged pipeline compiles (same kernel fingerprint, same
//!    [`ExecModel`](warp_mb::warp_wcla::ExecModel) cycles/iteration),
//!    and the end-to-end online speedup must sit in the band the
//!    offline amortization model predicts;
//! 2. **mid-run patch invalidation** — the orchestrator's hot patch
//!    must behave identically with the pre-decoded fetch store on and
//!    off (the `tests/sim_fast_path.rs` contract, replayed from inside
//!    the online runtime);
//! 3. **phased re-warp** — on a workload whose hot loop shifts mid-run,
//!    the timeline must show two warp events, the second evicting the
//!    first, with results bit-identical to software-only execution
//!    (verified against the golden model inside the run).

use mb_isa::MbFeatures;
use warp_bench::online::offline_reference;
use warp_mb::warp_online::{NeverPolicy, OnlineConfig, Orchestrator, ThresholdPolicy, TopKPolicy};
use warp_mb::{mb_sim, workloads};

#[test]
fn online_converges_to_the_offline_pipeline_on_every_single_kernel_workload() {
    for workload in workloads::all().into_iter().filter(|w| w.name != "phased") {
        let built = workload.build(MbFeatures::paper_default());

        // Offline staged reference with the OCPM clock pre-scaled so
        // the warp lands within a few repeats — the same helper the
        // `onlineperf` harness uses, so the scaling rule, the detection
        // threshold, and the amortization columns cannot drift apart.
        let offline = offline_reference(&built);
        let sw_cycles = offline.report.sw_cycles;

        let repeats = 3;
        let config = OnlineConfig {
            options: offline.options.clone(),
            slice_cycles: 10_000,
            decay_interval: 0, // convergence, not phase tracking
            repeats,
            ..OnlineConfig::default()
        };
        let report = Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: offline.kernel_heat })
            .run()
            .unwrap();

        // Exactly one warp, of exactly the offline kernel...
        assert_eq!(report.events.len(), 1, "{}", built.name);
        let event = &report.events[0];
        assert_eq!((event.head, event.tail), (built.kernel.head, built.kernel.tail));
        assert_eq!(event.fingerprint, offline.fingerprint, "{}", built.name);
        // ...installing the identical circuit: the online WCLA obeys
        // the exact cycle model the offline pipeline derived.
        assert_eq!(event.model, offline.model, "{}: ExecModel must match", built.name);
        assert_eq!(event.dpm, offline.dpm, "{}", built.name);
        assert!(event.hw.invocations >= 1, "{}: hardware never ran", built.name);
        assert!(event.patched_cycle >= event.detected_cycle + event.cad_cycles);

        // Hardware raises application progress per cycle.
        let insns_per_iter = f64::from(built.kernel.words());
        assert!(
            report.post_warp_progress(insns_per_iter) > report.pre_warp_ipc(),
            "{}: post-warp progress must beat pre-warp",
            built.name
        );

        // Convergence of the timeline itself: before the patch the
        // online runtime *is* software, and after it the workload must
        // run at the offline steady-state ratio — so the whole online
        // timeline is predictable from the patch cycle and the offline
        // speedup alone. A mis-modeled stub, a circuit that is not the
        // offline one, or broken invalidation would all bend this.
        let steady = offline.report.speedup();
        let total_sw = sw_cycles * u64::from(repeats);
        let predicted =
            event.patched_cycle as f64 + (total_sw - event.patched_cycle) as f64 / steady;
        let ratio = report.cycles as f64 / predicted;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "{}: online {} cycles vs predicted {:.0} (ratio {ratio:.3})",
            built.name,
            report.cycles,
            predicted
        );

        // And the speedup sits where the amortization model says it
        // must: the scaled CAD pays back within these repeats
        // (break-even <= repeats), so online ends up strictly faster
        // than software but never faster than the offline steady state.
        let online_speedup = report.speedup_vs(total_sw);
        assert!(
            offline.break_even_runs <= u64::from(repeats),
            "{}: CAD must amortize here",
            built.name
        );
        assert!(
            online_speedup > 1.0,
            "{}: online must beat software ({online_speedup:.3})",
            built.name
        );
        assert!(
            online_speedup <= steady + 1e-9,
            "{}: online {online_speedup:.3} cannot beat the steady state {steady:.3}",
            built.name
        );
    }
}

#[test]
fn orchestrator_patch_replays_the_fast_path_invalidation_contract() {
    // The same online run with the pre-decoded fetch store on and off:
    // the mid-run hot patch must be invisible to simulated results —
    // identical timeline, identical warp events, identical totals.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let run = |predecode: bool| {
        let config = OnlineConfig {
            mb: mb_sim::MbConfig::paper_default().with_predecode(predecode),
            repeats: 2,
            ..OnlineConfig::default()
        };
        Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: 512 })
            .run()
            .unwrap()
    };
    let fast = run(true);
    let reference = run(false);

    assert_eq!(fast.cycles, reference.cycles);
    assert_eq!(fast.instructions, reference.instructions);
    assert_eq!(fast.slices, reference.slices);
    assert_eq!(fast.exit_code, reference.exit_code);
    assert_eq!(fast.events, reference.events, "patch timeline must be fetch-path independent");
    assert_eq!(fast.events.len(), 1);
    assert!(fast.events[0].patched_cycle < fast.cycles, "the patch landed mid-run");
}

#[test]
fn phased_workload_rewarps_with_eviction() {
    let features = MbFeatures::paper_default();
    let built = workloads::phased::build_scaled(features, 300, 700);
    let [kernel_a, kernel_b] = workloads::phased::phase_kernels(&built);

    // The two phase kernels are genuinely different circuits.
    let fp_a = warp_mb::warp_cdfg::decompile_loop(&built.program, kernel_a.head, kernel_a.tail)
        .unwrap()
        .fingerprint();
    let fp_b = warp_mb::warp_cdfg::decompile_loop(&built.program, kernel_b.head, kernel_b.tail)
        .unwrap()
        .fingerprint();
    assert_ne!(fp_a, fp_b);

    let config = OnlineConfig {
        slice_cycles: 20_000,
        decay_interval: 8,
        repeats: 1,
        ..OnlineConfig::default()
    };
    let report = Orchestrator::new(&built, config.clone())
        .with_policy(ThresholdPolicy { min_count: 3000 })
        .run()
        .unwrap();

    assert_eq!(
        report.events.len(),
        2,
        "the shifting hot loop must force exactly one re-warp: {report}"
    );
    let [first, second] = [&report.events[0], &report.events[1]];
    assert_eq!((first.head, first.tail), (kernel_a.head, kernel_a.tail));
    assert_eq!(first.fingerprint, fp_a);
    assert_eq!(first.evicted, None);
    assert_eq!((second.head, second.tail), (kernel_b.head, kernel_b.tail));
    assert_eq!(second.fingerprint, fp_b);
    assert_eq!(
        second.evicted,
        Some((kernel_a.head, kernel_a.tail)),
        "the re-warp must evict phase A's circuit"
    );
    assert!(first.patched_cycle < second.detected_cycle, "events in timeline order");
    assert!(first.hw.invocations > 0 && second.hw.invocations > 0, "both circuits must run");
    assert!(report.profiler.decays > 0, "decay is what lets phase B rise");

    // Results were verified bit-identical to the golden model inside
    // the run; the warped timeline must also beat the software-only
    // arm of the A-B (same slice scheduler, NeverPolicy).
    let software = Orchestrator::new(&built, config).with_policy(NeverPolicy).run().unwrap();
    assert!(software.events.is_empty());
    assert!(
        report.cycles < software.cycles,
        "online {} cycles vs software {} cycles",
        report.cycles,
        software.cycles
    );
}

#[test]
fn online_error_chain_reaches_the_leaf_cause() {
    use std::error::Error;
    // A workload that cannot exit within the timeline budget surfaces
    // BudgetExhausted; a golden-model mismatch would surface Verify.
    // Here: drive the budget to (effectively) zero and check the
    // chain-free variant, then check a wrapped chain end-to-end.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let config = OnlineConfig { max_cycles: 1, ..OnlineConfig::default() };
    let err = Orchestrator::new(&built, config).with_policy(NeverPolicy).run().unwrap_err();
    assert!(err.to_string().contains("budget"));
    assert!(err.source().is_none());

    // WarpError::PatchApply now carries the memory fault as a typed
    // source: the chain is walkable to the leaf.
    let mem = mb_sim::Bram::new(16).write_word(0x100, 0).unwrap_err();
    let wrapped = warp_mb::warp_core::WarpError::PatchApply(mem);
    let leaf = wrapped.source().expect("PatchApply exposes the MemError");
    assert!(leaf.to_string().contains("0x"));
}
