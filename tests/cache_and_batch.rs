//! The staged pipeline's two scaling layers must be invisible in the
//! numbers: a circuit-cache hit yields a report bit-identical to a cold
//! run, and the parallel batch runner reproduces the sequential
//! Figure 6/7 results exactly.

use mb_isa::MbFeatures;
use warp_core::experiments::{figure6, figure7, run_paper_suite};
use warp_core::pipeline::run_staged;
use warp_core::{warp_run, BatchRunner, CircuitCache, WarpOptions};

/// A second warp of an identical kernel must hit the cache, perform
/// zero synthesis/place/route work, and still return an identical
/// report.
#[test]
fn cache_hit_reproduces_the_cold_run_bit_identically() {
    let options = WarpOptions::default();
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let cache = CircuitCache::new();

    let cold = run_staged(&built, &options, Some(&cache)).unwrap();
    assert!(!cold.stats.cache_hit, "first warp must compile");
    assert!(cold.stats.cad_ns > 0, "the cold run pays for the CAD chain");

    let warm = run_staged(&built, &options, Some(&cache)).unwrap();
    assert!(warm.stats.cache_hit, "second warp of the same kernel must hit");
    assert_eq!(warm.stats.cad_ns, 0, "a hit performs zero synthesis/place/route work");

    assert_eq!(cold.report, warm.report, "a cache hit must not change a single bit");
    let stats = cache.stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

    // The cached path is also indistinguishable from the uncached one.
    let uncached = warp_run(&built, &options).unwrap();
    assert_eq!(uncached, warm.report);
}

/// The parallel batch runner must reproduce the exact sequential
/// Figure 6/7 numbers, in the same order, regardless of thread count.
#[test]
fn batch_runner_matches_sequential_figures_exactly() {
    let options = WarpOptions::default();
    let sequential = run_paper_suite(&options).unwrap();

    let runner = BatchRunner::new(options).with_threads(4);
    let cache = CircuitCache::new();
    let parallel = runner.run_suite(&workloads::paper_suite(), &cache).unwrap();

    assert_eq!(sequential, parallel, "parallel suite must equal the sequential suite");

    // And therefore the rendered figures agree to the last bit.
    for (s, p) in figure6(&sequential).iter().zip(figure6(&parallel)) {
        assert_eq!(s.benchmark, p.benchmark);
        assert_eq!(s.speedups, p.speedups);
    }
    for (s, p) in figure7(&sequential).iter().zip(figure7(&parallel)) {
        assert_eq!(s.benchmark, p.benchmark);
        assert_eq!(s.energy, p.energy);
    }
}

/// Kernel fingerprints are stable across independent decompilations and
/// distinct across all nine workloads.
#[test]
fn fingerprints_are_stable_and_distinct_across_workloads() {
    let mut seen: Vec<(&str, u64)> = Vec::new();
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let a = warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail)
            .unwrap();
        let b = warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail)
            .unwrap();
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: fingerprint must be stable across decompilations",
            workload.name
        );
        for (other, fp) in &seen {
            assert_ne!(a.fingerprint(), *fp, "{} and {other} must not collide", workload.name);
        }
        seen.push((workload.name, a.fingerprint()));
    }
    assert_eq!(seen.len(), 9, "the paper's six workloads plus the three extras");
}

/// One shared cache across the whole suite: nine distinct kernels miss
/// once each, and a rerun of the suite is all hits.
#[test]
fn suite_reruns_are_pure_cache_hits() {
    let runner = BatchRunner::new(WarpOptions::default()).with_threads(2);
    let cache = CircuitCache::new();
    let apps = workloads::all();

    let first = runner.warp_all(&apps, &cache).unwrap();
    assert_eq!(cache.len(), apps.len());
    assert!(first.iter().all(|m| !m.stats.cache_hit));

    let second = runner.warp_all(&apps, &cache).unwrap();
    assert!(second.iter().all(|m| m.stats.cache_hit && m.stats.cad_ns == 0));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.report, b.report);
    }
    assert_eq!(cache.stats().hits, apps.len() as u64);
}
