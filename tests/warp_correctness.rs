//! Workspace integration: every workload must survive the complete warp
//! flow with bit-exact results and a real speedup.

use mb_isa::MbFeatures;
use warp_core::{warp_run, WarpOptions};

#[test]
fn every_workload_warps_correctly() {
    let options = WarpOptions::default();
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let report = warp_run(&built, &options)
            .unwrap_or_else(|e| panic!("{}: warp failed: {e}", workload.name));

        // Verification already happened inside warp_run (memory compared
        // against the golden model); check the performance contract.
        assert!(report.profiler_agrees, "{}: profiler picked a different loop", workload.name);
        assert!(
            report.speedup() > 1.2,
            "{}: speedup {:.2} — hardware must beat software",
            workload.name,
            report.speedup()
        );
        assert!(report.energy_reduction() > 0.0, "{}: warping must not cost energy", workload.name);
        assert!(report.hw.invocations >= 1, "{}: hardware never ran", workload.name);
        assert!(
            report.mb_stall_cycles < report.warped_cycles,
            "{}: stall accounting is inconsistent",
            workload.name
        );
    }
}

#[test]
fn warp_overhead_amortizes() {
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
    let report = warp_run(&built, &WarpOptions::default()).unwrap();
    // A single run may not pay for the CAD work; a long-running
    // application does (the warp-processing premise).
    let one = report.speedup_amortized(1);
    let many = report.speedup_amortized(100_000);
    assert!(many > one, "amortized speedup must grow with runs");
    assert!(
        (report.speedup() - many).abs() < 0.1,
        "amortized speedup {many:.2} approaches steady-state {:.2}",
        report.speedup()
    );
}

#[test]
fn dead_code_in_binaries_never_executes_after_patch() {
    // The patched region's interior instructions are unreachable; make
    // sure the warped run never faults and exits with the same code.
    let options = WarpOptions::default();
    let built = workloads::by_name("g3fax").unwrap().build(MbFeatures::paper_default());
    let report = warp_run(&built, &options).unwrap();
    assert!(report.warped_cycles > 0);
    // Kernel loop executed zero times in software: every iteration ran
    // in hardware.
    assert_eq!(
        report.hw.iterations,
        workloads::by_name("g3fax").map(|_| 1500).unwrap(),
        "all 1500 g3fax codes must expand in hardware"
    );
}
