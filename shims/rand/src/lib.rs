//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! a tiny, deterministic implementation of exactly the API surface the
//! tests use: `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen` for primitive integer types. The generator is SplitMix64,
//! which is plenty for seeding deterministic test inputs (it is *not*
//! cryptographic, and neither is the real `StdRng` contractually).

#![forbid(unsafe_code)]

/// A random number generator: anything that can produce `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample a value uniformly in `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from an RNG (the role of
/// `rand::distributions::Standard`).
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..8).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 8);
    }

    #[test]
    fn bool_and_small_ints_cover_both_halves() {
        let mut rng = StdRng::seed_from_u64(7);
        let bools: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
        }
    }
}
