//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! deterministic mini-proptest implementing the API subset its tests use:
//!
//! * [`Strategy`] with `prop_map` and `boxed`
//! * [`any`] over primitive types, integer ranges as strategies,
//!   `prop::sample::select`, and tuple strategies up to arity 5
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros
//!
//! There is no shrinking: a failing case is reported with its generated
//! value via the plain `assert!`/`assert_eq!` machinery. Each `proptest!`
//! test runs a fixed number of deterministic iterations, so failures are
//! reproducible across runs and machines.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

/// Number of cases each `proptest!` test body runs.
pub const DEFAULT_CASES: usize = 256;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of values of `Self::Value`.
///
/// Unlike real proptest there is no value tree or shrinking; `generate`
/// produces a single concrete value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed alternative strategies ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Types with a canonical uniform strategy, used by [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = i128::from(self.start);
                let hi = i128::from(self.end);
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Mirror of the `proptest::prop` namespace (`prop::sample::select`).
pub mod prop {
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniformly select one element of `items`.
        #[must_use]
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select() needs a non-empty vec");
            Select { items }
        }

        pub struct Select<T> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.items[rng.below(self.items.len())].clone()
            }
        }
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Strategy, TestRng,
    };
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define deterministic property tests.
///
/// Each test runs [`DEFAULT_CASES`](crate::DEFAULT_CASES) cases from a
/// fixed seed, so failures reproduce exactly.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($arg:ident in $strategy:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = $strategy;
                // Seed differs per test name so sibling tests don't share
                // sequences, but is fixed across runs.
                let seed = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                let mut rng = $crate::TestRng::new(seed);
                for _case in 0..$crate::DEFAULT_CASES {
                    let $arg = $crate::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` without shrinking: delegates to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` without shrinking: delegates to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = 0u8..32;
        for _ in 0..256 {
            assert!(s.generate(&mut rng) < 32);
        }
    }

    #[test]
    fn select_draws_every_item_eventually() {
        let mut rng = TestRng::new(2);
        let s = prop::sample::select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::new(3);
        let s = prop_oneof![(0u8..4).prop_map(|v| v as u32), any::<bool>().prop_map(u32::from),];
        for _ in 0..64 {
            assert!(s.generate(&mut rng) < 4);
        }
    }

    proptest! {
        /// The macro form itself must compile with doc comments + attrs.
        #[test]
        fn macro_form_runs(x in any::<u16>()) {
            let wide = u32::from(x);
            prop_assert!(wide <= u32::from(u16::MAX));
            prop_assert_eq!(wide as u16, x, "round trip {}", x);
        }
    }
}
