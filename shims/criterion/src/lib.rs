//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal benchmark harness with the API the `warp-bench` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], `sample_size`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the plain and the
//! `name = ...; config = ...; targets = ...` forms).
//!
//! It measures wall-clock time per iteration and prints a one-line summary
//! (min / median / max over samples) per benchmark. There is no statistical
//! analysis, warm-up modelling, or HTML report — the goal is that `cargo
//! bench` builds, runs, and produces comparable numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, configured per group via [`criterion_group!`].
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run `f` under the timing harness and print a summary line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX));
            }
        }
        samples.sort_unstable();
        if let (Some(min), Some(max)) = (samples.first(), samples.last()) {
            let median = samples[samples.len() / 2];
            println!(
                "bench {id:<40} min {min:>12?}  median {median:>12?}  max {max:>12?}  ({} samples)",
                samples.len()
            );
        } else {
            println!("bench {id:<40} produced no samples");
        }
        self
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed call to warm caches and reach steady state.
        black_box(routine());
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)` or
/// the configured form with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        // 3 samples x (1 warm-up + 1 timed) calls.
        assert_eq!(calls, 6);
    }

    criterion_group!(plain_group, noop_bench);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(2);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn both_group_forms_run() {
        plain_group();
        configured_group();
    }
}
