//! Umbrella crate for the Warp-MB workspace: a reproduction of
//! *"A Study of the Speedups and Competitiveness of FPGA Soft Processor
//! Cores using Dynamic Hardware/Software Partitioning"*
//! (Lysecky & Vahid, DATE 2005).
//!
//! This crate re-exports every member crate so examples and integration
//! tests can use a single dependency. See the individual crates for the
//! actual implementation:
//!
//! * [`mb_isa`] — MicroBlaze-style ISA, assembler, codegen
//! * [`mb_sim`] — cycle-approximate system simulator
//! * [`workloads`] — the six paper benchmarks plus extras
//! * [`warp_profiler`] — on-chip frequent-loop profiler model
//! * [`warp_cdfg`] — binary decompilation to CDFGs
//! * [`warp_synth`] — RT/logic synthesis, ROCM minimizer, LUT mapping
//! * [`warp_fabric`] — configurable logic fabric with place & route
//! * [`warp_wcla`] — warp configurable logic architecture
//! * [`arm_sim`] — ARM7/9/10/11 hard-core timing baselines
//! * [`warp_power`] — power models and the paper's energy equations
//! * [`warp_core`] — end-to-end warp processor orchestration
//! * [`warp_online`] — the online runtime: profile, warp, and hot-patch
//!   while the program runs

#![forbid(unsafe_code)]

pub use arm_sim;
pub use mb_isa;
pub use mb_sim;
pub use warp_cdfg;
pub use warp_core;
pub use warp_fabric;
pub use warp_online;
pub use warp_power;
pub use warp_profiler;
pub use warp_synth;
pub use warp_wcla;
pub use workloads;
