//! Synthesis and mapping must preserve every workload kernel's function:
//! DFG interpreter == gate netlist == LUT netlist, on random inputs.

use mb_isa::MbFeatures;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warp_cdfg::{decompile_loop, KernelEnv};
use warp_synth::bits::InputWord;
use warp_synth::map::map_netlist;
use warp_synth::synthesize;

#[test]
fn all_workload_kernels_synthesize_and_map_equivalently() {
    let mut rng = StdRng::seed_from_u64(0xDA7E_2005);
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let report = synthesize(&kernel);
        let mapped = map_netlist(&report.netlist);

        for trial in 0..20 {
            // Random per-(stream, offset) load values, invariants, accs.
            let mut loads = std::collections::HashMap::new();
            for (si, s) in kernel.streams.iter().enumerate() {
                for &off in &s.load_offsets {
                    loads.insert((si, off), rng.gen::<u32>());
                }
            }
            let inv: u32 = rng.gen();
            let acc0: u32 = rng.gen();

            // Reference: DFG interpreter for one iteration at base 0 per
            // stream (addresses resolve back to (stream, offset)).
            let mut env = KernelEnv { counter: 1, ..KernelEnv::default() };
            for (si, s) in kernel.streams.iter().enumerate() {
                env.pointers.insert(s.base, (si as u32) << 16);
            }
            for a in &kernel.accs {
                env.accs.insert(a.reg, acc0);
            }
            for &r in &kernel.invariants {
                env.invariants.insert(r, inv);
            }
            let mut ref_stores = Vec::new();
            kernel.interpret(
                &mut env,
                |addr| loads[&((addr >> 16) as usize, (addr & 0xFFFF) as i32)],
                |addr, v| ref_stores.push((addr, v)),
            );

            // Both netlists with identical inputs.
            let mut ff_state = Vec::new();
            for _ in &kernel.accs {
                for bit in 0..32 {
                    ff_state.push(acc0 >> bit & 1 == 1);
                }
            }
            let input_fn = |w: InputWord| -> u32 {
                match w {
                    InputWord::Load { stream, offset } => loads[&(stream, offset)],
                    InputWord::Invariant(_) => inv,
                    InputWord::MacOut(_) => unreachable!(),
                }
            };
            let gate_res = report.netlist.eval(input_fn, &ff_state);
            let lut_res = mapped.eval(input_fn, &ff_state);

            for (i, (gate_out, lut_out)) in
                report.netlist.outputs().iter().zip(mapped.outputs()).enumerate()
            {
                let want = ref_stores[i].1;
                assert_eq!(
                    gate_res.word(&gate_out.bits),
                    want,
                    "{} store {i} trial {trial}: gate netlist diverges",
                    workload.name
                );
                assert_eq!(
                    lut_res.word(&lut_out.bits),
                    want,
                    "{} store {i} trial {trial}: LUT netlist diverges",
                    workload.name
                );
            }
            // Accumulator next states.
            for (k, a) in kernel.accs.iter().enumerate() {
                let want = env.accs[&a.reg];
                let gate_next: u32 = (0..32)
                    .map(|bit| u32::from(gate_res.bit(report.netlist.ffs()[k * 32 + bit].d)) << bit)
                    .sum();
                let lut_next: u32 = (0..32)
                    .map(|bit| u32::from(lut_res.value(mapped.ffs()[k * 32 + bit].d)) << bit)
                    .sum();
                assert_eq!(gate_next, want, "{} acc gate mismatch", workload.name);
                assert_eq!(lut_next, want, "{} acc LUT mismatch", workload.name);
            }
        }
    }
}

#[test]
fn brev_kernel_is_nearly_all_wires() {
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
    let report = synthesize(&kernel);
    // The paper: "the resulting hardware circuit is much more efficient,
    // requiring only wires to implement the bit reversal".
    assert_eq!(report.stats.gates, 0, "brev must synthesize to pure wiring");
    let mapped = map_netlist(&report.netlist);
    assert_eq!(mapped.lut_count(), 0);
}

#[test]
fn synthesis_cost_summary_is_sane() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let report = synthesize(&kernel);
        let mapped = map_netlist(&report.netlist);
        let st = mapped.stats();
        assert!(st.luts <= 4096, "{}: {} LUTs exceed any sane fabric", workload.name, st.luts);
        assert_eq!(st.macs as usize, kernel.mul_ops_per_iter(), "{}", workload.name);
        println!(
            "{:>8}: {:>5} gates {:>4} LUTs depth {:>2} ffs {:>3} macs {:>2}",
            workload.name, report.stats.gates, st.luts, st.depth, st.ffs, st.macs
        );
    }
}
