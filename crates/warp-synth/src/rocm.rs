//! ROCM — the Riverside On-Chip logic Minimizer.
//!
//! Lysecky & Vahid's DAC 2003 paper "On-chip Logic Minimization"
//! observed that Espresso's full expand/reduce/irredundant iteration is
//! far too memory- and compute-hungry for an on-chip CAD tool, and that a
//! *single* expand pass followed by an irredundant-cover pass achieves
//! nearly the same quality at a fraction of the cost. This module
//! implements that lean minimizer over single-output covers of up to 16
//! variables (cube lists in positional notation).
//!
//! # Example
//!
//! ```
//! use warp_synth::rocm::Cover;
//!
//! // f(a, b) = a·b + a·b̄  minimizes to  f = a.
//! let cover = Cover::from_minterms(2, &[0b01, 0b11]); // a = bit 0
//! let min = cover.minimize();
//! assert_eq!(min.cube_count(), 1);
//! assert_eq!(min.literal_count(), 1);
//! ```

use std::fmt;

/// One product term over up to 16 variables: variable `i` appears when
/// `mask` bit `i` is set, with the polarity of `value` bit `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cube {
    /// Care mask: which variables are bound in this cube.
    pub mask: u16,
    /// Polarity of each bound variable.
    pub value: u16,
}

impl Cube {
    /// A cube binding every one of `num_vars` variables to the bits of
    /// `minterm`.
    #[must_use]
    pub fn minterm(num_vars: u8, minterm: u16) -> Self {
        let mask = if num_vars >= 16 { u16::MAX } else { (1u16 << num_vars) - 1 };
        Cube { mask, value: minterm & mask }
    }

    /// Whether the cube contains the point.
    #[must_use]
    pub fn contains(&self, point: u16) -> bool {
        point & self.mask == self.value & self.mask
    }

    /// Whether this cube covers every point of `other`.
    #[must_use]
    pub fn covers(&self, other: &Cube) -> bool {
        // Every variable bound here must be bound identically there.
        self.mask & other.mask == self.mask && (self.value ^ other.value) & self.mask == 0
    }

    /// Number of literals (bound variables).
    #[must_use]
    pub fn literals(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Iterates over all points (minterm assignments) inside the cube,
    /// restricted to `num_vars` variables.
    pub fn points(&self, num_vars: u8) -> impl Iterator<Item = u16> + '_ {
        let free = !self.mask & if num_vars >= 16 { u16::MAX } else { (1u16 << num_vars) - 1 };
        let free_bits: Vec<u16> = (0..16).map(|i| 1u16 << i).filter(|b| free & b != 0).collect();
        let n = free_bits.len() as u32;
        let base = self.value & self.mask;
        (0..(1u32 << n)).map(move |combo| {
            let mut p = base;
            for (j, &b) in free_bits.iter().enumerate() {
                if combo >> j & 1 == 1 {
                    p |= b;
                }
            }
            p
        })
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..16).rev() {
            let bit = 1u16 << i;
            if self.mask & bit == 0 {
                write!(f, "-")?;
            } else if self.value & bit != 0 {
                write!(f, "1")?;
            } else {
                write!(f, "0")?;
            }
        }
        Ok(())
    }
}

/// A single-output cover: the ON-set as a list of cubes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cover {
    num_vars: u8,
    cubes: Vec<Cube>,
}

impl Cover {
    /// Creates a cover from explicit cubes.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 16`.
    #[must_use]
    pub fn new(num_vars: u8, cubes: Vec<Cube>) -> Self {
        assert!(num_vars <= 16, "ROCM covers support at most 16 variables");
        Cover { num_vars, cubes }
    }

    /// Creates a cover with one cube per minterm.
    #[must_use]
    pub fn from_minterms(num_vars: u8, minterms: &[u16]) -> Self {
        Cover::new(num_vars, minterms.iter().map(|&m| Cube::minterm(num_vars, m)).collect())
    }

    /// Creates a cover from a truth table (bit `i` of `truth` = output
    /// for input assignment `i`).
    #[must_use]
    pub fn from_truth(num_vars: u8, truth: u64) -> Self {
        assert!(num_vars <= 6, "truth-table constructor supports up to 6 variables");
        let minterms: Vec<u16> = (0..(1u16 << num_vars)).filter(|&m| truth >> m & 1 == 1).collect();
        Cover::from_minterms(num_vars, &minterms)
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> u8 {
        self.num_vars
    }

    /// The cube list.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of product terms.
    #[must_use]
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count (the standard two-level cost metric).
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literals).sum()
    }

    /// Whether the function is 1 at `point`.
    #[must_use]
    pub fn contains(&self, point: u16) -> bool {
        self.cubes.iter().any(|c| c.contains(point))
    }

    /// Evaluates the whole truth table (only for ≤ 16 variables; cost is
    /// `2^num_vars`).
    #[must_use]
    pub fn truth(&self) -> Vec<bool> {
        (0..(1u32 << self.num_vars)).map(|p| self.contains(p as u16)).collect()
    }

    /// The ROCM minimization: one expand pass, then an irredundant-cover
    /// pass.
    ///
    /// *Expand*: each cube tries to drop each of its literals in turn;
    /// a literal is dropped when the enlarged cube still lies inside the
    /// function's ON-set. *Irredundant*: cubes whose points are all
    /// covered by the rest of the cover are removed. Unlike Espresso
    /// there is no reduce/expand iteration — this is the deliberate
    /// memory/time trade-off of the on-chip tool.
    #[must_use]
    pub fn minimize(&self) -> Cover {
        let mut expanded: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        for &cube in &self.cubes {
            let mut c = cube;
            // Single expand pass: try dropping each literal once.
            for var in 0..self.num_vars {
                let bit = 1u16 << var;
                if c.mask & bit == 0 {
                    continue;
                }
                let candidate = Cube { mask: c.mask & !bit, value: c.value & !bit };
                if candidate.points(self.num_vars).all(|p| self.contains(p)) {
                    c = candidate;
                }
            }
            expanded.push(c);
        }

        // Drop duplicates and cubes covered by a single other cube.
        expanded.sort_by_key(|c| c.mask.count_ones());
        let mut kept: Vec<Cube> = Vec::new();
        for c in expanded {
            if !kept.iter().any(|k| k.covers(&c)) {
                kept.push(c);
            }
        }

        // Irredundant pass: remove cubes whose points are covered by the
        // union of the others (largest cubes kept preferentially).
        kept.sort_by_key(|c| std::cmp::Reverse(c.mask.count_ones()));
        let mut result: Vec<Cube> = kept.clone();
        let mut i = 0;
        while i < result.len() {
            let candidate = result[i];
            let others: Vec<Cube> =
                result.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, c)| *c).collect();
            let redundant =
                candidate.points(self.num_vars).all(|p| others.iter().any(|c| c.contains(p)));
            if redundant {
                result.remove(i);
            } else {
                i += 1;
            }
        }
        Cover::new(self.num_vars, result)
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".i {}", self.num_vars)?;
        for c in &self.cubes {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Minimizes a 3-variable truth table (a LUT function) and returns its
/// two-level literal cost — the metric the mapper reports for the
/// on-chip tool model.
#[must_use]
pub fn lut3_sop_cost(truth: u8) -> u32 {
    Cover::from_truth(3, u64::from(truth)).minimize().literal_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_variable_reduction() {
        // f = a·b + a·b̄ = a.
        let c = Cover::from_minterms(2, &[0b01, 0b11]);
        let m = c.minimize();
        assert_eq!(m.cube_count(), 1);
        assert_eq!(m.cubes()[0], Cube { mask: 0b01, value: 0b01 });
    }

    #[test]
    fn tautology_reduces_to_empty_cube() {
        let c = Cover::from_minterms(2, &[0b00, 0b01, 0b10, 0b11]);
        let m = c.minimize();
        assert_eq!(m.cube_count(), 1);
        assert_eq!(m.literal_count(), 0, "constant-1 needs no literals");
    }

    #[test]
    fn xor_cannot_be_reduced() {
        let c = Cover::from_minterms(2, &[0b01, 0b10]);
        let m = c.minimize();
        assert_eq!(m.cube_count(), 2);
        assert_eq!(m.literal_count(), 4);
    }

    #[test]
    fn redundant_consensus_cube_removed() {
        // f = a·b + b̄·c + a·c : the a·c term is redundant (consensus).
        // vars: a=bit0, b=bit1, c=bit2.
        let cubes = vec![
            Cube { mask: 0b011, value: 0b011 }, // a·b
            Cube { mask: 0b110, value: 0b100 }, // b̄·c
            Cube { mask: 0b101, value: 0b101 }, // a·c
        ];
        let c = Cover::new(3, cubes);
        let m = c.minimize();
        assert!(m.cube_count() <= 2, "consensus term must be dropped, got {m}");
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let c = Cover::from_minterms(3, &[]);
        let m = c.minimize();
        assert_eq!(m.cube_count(), 0);
        assert!(m.truth().iter().all(|&b| !b));
    }

    #[test]
    fn display_positional_notation() {
        let c = Cube { mask: 0b11, value: 0b01 };
        let s = c.to_string();
        assert!(s.ends_with("01"), "got {s}");
    }

    #[test]
    fn lut3_costs() {
        assert_eq!(lut3_sop_cost(0x00), 0); // constant 0
        assert_eq!(lut3_sop_cost(0xFF), 0); // constant 1 (one empty cube)
        assert_eq!(lut3_sop_cost(0xAA), 1); // f = a (bit i set when bit0 of i set)
    }

    proptest! {
        /// Minimization must preserve the function exactly.
        #[test]
        fn minimize_preserves_function(truth in any::<u16>()) {
            let c = Cover::from_truth(4, u64::from(truth));
            let m = c.minimize();
            for p in 0..16u16 {
                prop_assert_eq!(c.contains(p), m.contains(p), "point {}", p);
            }
        }

        /// Minimization never increases the cube or literal counts.
        #[test]
        fn minimize_never_grows(truth in any::<u16>()) {
            let c = Cover::from_truth(4, u64::from(truth));
            let m = c.minimize();
            prop_assert!(m.cube_count() <= c.cube_count());
            prop_assert!(m.literal_count() <= c.literal_count());
        }

        /// Expansion on random 5-variable covers stays sound.
        #[test]
        fn five_var_covers_sound(truth in any::<u32>()) {
            let c = Cover::from_truth(5, u64::from(truth));
            let m = c.minimize();
            for p in 0..32u16 {
                prop_assert_eq!(c.contains(p), m.contains(p));
            }
        }
    }
}
