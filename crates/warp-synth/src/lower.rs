//! Lowering: word-level [`LoopKernel`] DFG → bit-level [`GateNetlist`].

use std::collections::HashMap;

use warp_cdfg::{LoopKernel, NodeId, Op};

use crate::bits::{GateNetlist, InputWord, MacMode, NetlistStats, ShiftDir, Word};

/// Synthesis outcome: the netlist plus cost reporting for the DPM model.
#[derive(Clone, Debug)]
pub struct SynthReport {
    /// The swept bit-level netlist.
    pub netlist: GateNetlist,
    /// Netlist statistics after folding and sweeping.
    pub stats: NetlistStats,
    /// Gates before sweeping (for tool-cost reporting).
    pub gates_before_sweep: u64,
}

/// Per fused `Mul` node, the consuming node that absorbs it.
type FusedMuls = HashMap<NodeId, NodeId>;
/// Per consumer, the fusion recipe: the `Mul` node, which argument slot
/// it occupies, and the MAC mode.
type FusionRecipes = HashMap<NodeId, (NodeId, usize, MacMode)>;

/// Plans multiply-accumulate fusion: an `Add`/`Sub` whose single-use
/// argument is a `Mul` executes entirely on the MAC (its accumulate
/// port), leaving no adder in the fabric. Returns, per fused `Mul` node,
/// the consuming node; and per consumer, the fusion recipe.
fn plan_mac_fusion(kernel: &LoopKernel) -> (FusedMuls, FusionRecipes) {
    // Use counts over DFG args, stores, and accumulator updates.
    let mut uses: HashMap<NodeId, usize> = HashMap::new();
    for (_, node) in kernel.dfg.iter() {
        for &a in &node.args {
            *uses.entry(a).or_insert(0) += 1;
        }
    }
    for s in &kernel.stores {
        *uses.entry(s.value).or_insert(0) += 1;
    }
    for a in &kernel.accs {
        *uses.entry(a.next).or_insert(0) += 1;
    }

    let mut fused_mul: HashMap<NodeId, NodeId> = HashMap::new(); // mul -> consumer
    let mut recipe: HashMap<NodeId, (NodeId, usize, MacMode)> = HashMap::new(); // consumer -> (mul, addend_arg, mode)
    for (id, node) in kernel.dfg.iter() {
        let (a0, a1, is_add) = match node.op {
            Op::Add => (node.args[0], node.args[1], true),
            Op::Sub => (node.args[0], node.args[1], false),
            _ => continue,
        };
        let is_fusable = |arg: NodeId| {
            matches!(kernel.dfg.node(arg).op, Op::Mul)
                && uses.get(&arg).copied().unwrap_or(0) == 1
                && !fused_mul.contains_key(&arg)
        };
        if is_add {
            // addend + prod, either order.
            if is_fusable(a1) {
                fused_mul.insert(a1, id);
                recipe.insert(id, (a1, 0, MacMode::MulAdd));
            } else if is_fusable(a0) {
                fused_mul.insert(a0, id);
                recipe.insert(id, (a0, 1, MacMode::MulAdd));
            }
        } else {
            // Sub computes args[0] - args[1].
            if is_fusable(a1) {
                fused_mul.insert(a1, id);
                recipe.insert(id, (a1, 0, MacMode::AddendMinusProd));
            } else if is_fusable(a0) {
                fused_mul.insert(a0, id);
                recipe.insert(id, (a0, 1, MacMode::ProdMinusAddend));
            }
        }
    }
    (fused_mul, recipe)
}

/// Synthesizes a decompiled kernel into a bit-level gate netlist.
///
/// Word-level operations lower as the WCLA implements them: adds and
/// subtracts become carry-select adders, logic ops become per-bit gates,
/// constant shifts and sign extensions become wiring, dynamic shifts
/// become 5-level mux barrels, multiplies are extracted onto the 32-bit
/// MAC, and multiply-accumulate patterns fuse onto the MAC's accumulate
/// port. Loop-carried accumulators become 32 flip-flops each.
#[must_use]
pub fn synthesize(kernel: &LoopKernel) -> SynthReport {
    let mut n = GateNetlist::new();
    let (fused_mul, fusion_recipe) = plan_mac_fusion(kernel);

    // Accumulator state registers first (their Q bits are inputs to the
    // body logic).
    let mut acc_ffs = Vec::new();
    for a in &kernel.accs {
        let mut q_word = [0u32; 32];
        let mut ff_ids = [0usize; 32];
        for bit in 0..32u8 {
            let (idx, q) = n.ff(a.reg, bit);
            ff_ids[bit as usize] = idx;
            q_word[bit as usize] = q;
        }
        acc_ffs.push((a.reg, ff_ids, q_word));
    }

    // Lower every DFG node to a word of bits.
    let mut words: Vec<Word> = Vec::with_capacity(kernel.dfg.len());
    for (id, node) in kernel.dfg.iter() {
        let arg = |i: usize| words[node.args[i].0 as usize];
        let w: Word = match node.op {
            Op::LoadValue { stream, offset } => n.input_word(InputWord::Load { stream, offset }),
            Op::Invariant { reg } => n.input_word(InputWord::Invariant(reg)),
            Op::Acc { reg } => acc_ffs
                .iter()
                .find(|(r, _, _)| *r == reg)
                .map(|(_, _, q)| *q)
                .expect("accumulator declared"),
            Op::Const(c) => n.const_word(c),
            Op::Add | Op::Sub if fusion_recipe.contains_key(&id) => {
                // Fused multiply-accumulate: the MAC performs both the
                // product and this add/subtract.
                let (mul_id, addend_arg, mode) = fusion_recipe[&id];
                let mul_node = kernel.dfg.node(mul_id);
                let ma = words[mul_node.args[0].0 as usize];
                let mb = words[mul_node.args[1].0 as usize];
                let addend = arg(addend_arg);
                n.mac_fused(ma, mb, addend, mode)
            }
            Op::Add => n.add_word(arg(0), arg(1), false),
            Op::Sub => n.sub_word(arg(0), arg(1)),
            Op::Mul if fused_mul.contains_key(&id) => {
                // Placeholder word; never read (the consumer re-derives
                // the operands). Use the operands' first bits to keep
                // the topological invariant trivially satisfied.
                arg(0)
            }
            Op::Mul => n.mac(arg(0), arg(1)),
            Op::And => n.and_word(arg(0), arg(1)),
            Op::Or => n.or_word(arg(0), arg(1)),
            Op::Xor => n.xor_word(arg(0), arg(1)),
            Op::AndNot => n.andnot_word(arg(0), arg(1)),
            Op::Shl(k) => n.shl_word(arg(0), k),
            Op::Shr(k) => n.shr_word(arg(0), k),
            Op::Sar(k) => n.sar_word(arg(0), k),
            Op::ShlDyn => n.dyn_shift_word(arg(0), arg(1), ShiftDir::Left),
            Op::ShrDyn => n.dyn_shift_word(arg(0), arg(1), ShiftDir::LogicalRight),
            Op::SarDyn => n.dyn_shift_word(arg(0), arg(1), ShiftDir::ArithmeticRight),
            Op::Sext8 => n.sext8_word(arg(0)),
            Op::Sext16 => n.sext16_word(arg(0)),
        };
        words.push(w);
    }

    // Outputs: one word per store, in body order.
    for (i, s) in kernel.stores.iter().enumerate() {
        n.output(i, words[s.value.0 as usize]);
    }

    // Accumulator next-state wiring.
    for (a, (_, ff_ids, _)) in kernel.accs.iter().zip(&acc_ffs) {
        let next = words[a.next.0 as usize];
        for bit in 0..32 {
            n.set_ff_d(ff_ids[bit], next[bit]);
        }
    }

    let gates_before_sweep = n.stats().gates;
    n.sweep();
    let stats = n.stats();
    SynthReport { netlist: n, stats, gates_before_sweep }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Assembler, Insn, Reg};
    use warp_cdfg::{decompile_loop, KernelEnv};

    fn build_kernel(body: impl FnOnce(&mut Assembler)) -> LoopKernel {
        let mut a = Assembler::new(0);
        a.label("head");
        body(&mut a);
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        decompile_loop(&p, p.symbol("head").unwrap(), p.symbol("tail").unwrap()).unwrap()
    }

    /// Netlist evaluation must match the DFG interpreter on random data.
    fn check_equivalence(kernel: &LoopKernel, samples: &[u32]) {
        let report = synthesize(kernel);
        let n = &report.netlist;
        for (i, &x) in samples.iter().enumerate() {
            let y = samples[(i + 1) % samples.len()];
            // Reference: DFG interpreter for one iteration.
            let mut env = KernelEnv { counter: 1, ..KernelEnv::default() };
            for s in &kernel.streams {
                env.pointers.insert(s.base, 0x1000);
            }
            for a in &kernel.accs {
                env.accs.insert(a.reg, y);
            }
            for &r in &kernel.invariants {
                env.invariants.insert(r, y);
            }
            let mut ref_stores = Vec::new();
            kernel.interpret(&mut env, |_addr| x, |addr, v| ref_stores.push((addr, v)));

            // Netlist: same inputs.
            let mut ff_state = Vec::new();
            for _ in &kernel.accs {
                for bit in 0..32 {
                    ff_state.push(y >> bit & 1 == 1);
                }
            }
            let res = n.eval(
                |w| match w {
                    InputWord::Load { .. } => x,
                    InputWord::Invariant(_) => y,
                    InputWord::MacOut(_) => unreachable!("resolved internally"),
                },
                &ff_state,
            );
            for (out, (_, ref_v)) in n.outputs().iter().zip(&ref_stores) {
                assert_eq!(res.word(&out.bits), *ref_v, "store mismatch for input {x:#010x}");
            }
            // Accumulator next state.
            for (k, a) in kernel.accs.iter().enumerate() {
                let next: u32 =
                    (0..32).map(|bit| u32::from(res.bit(n.ffs()[k * 32 + bit].d)) << bit).sum();
                assert_eq!(next, env.accs[&a.reg], "acc {} mismatch for input {x:#010x}", a.reg);
            }
        }
    }

    const SAMPLES: [u32; 8] =
        [0, 1, u32::MAX, 0x8000_0000, 0x7FFF_FFFF, 0xDEAD_BEEF, 0x0F0F_0F0F, 12345];

    #[test]
    fn xor_copy_kernel_is_equivalent_and_tiny() {
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            a.push(Insn::Xori { rd: Reg::R9, ra: Reg::R9, imm: 0x55 });
            a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        });
        check_equivalence(&k, &SAMPLES);
    }

    #[test]
    fn bit_reversal_kernel_is_pure_wiring() {
        // brev-style stage: shifts and constant masks only.
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            a.push(Insn::bsrli(Reg::R10, Reg::R9, 1));
            a.push(Insn::Imm { imm: 0x5555 });
            a.push(Insn::Andi { rd: Reg::R10, ra: Reg::R10, imm: 0x5555 });
            a.push(Insn::Imm { imm: 0x5555 });
            a.push(Insn::Andi { rd: Reg::R11, ra: Reg::R9, imm: 0x5555 });
            a.push(Insn::bslli(Reg::R11, Reg::R11, 1));
            a.push(Insn::Or { rd: Reg::R9, ra: Reg::R10, rb: Reg::R11 });
            a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        });
        let report = synthesize(&k);
        // Shifts are wires; masks with constants fold; the OR of two
        // disjoint-masked values is the only possible logic — and with
        // constant masks it folds to wiring too (or(a,0)=a).
        assert_eq!(report.stats.gates, 0, "bit swap stage must be pure wiring");
        check_equivalence(&k, &SAMPLES);
    }

    #[test]
    fn adder_kernel_counts_gates() {
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            a.push(Insn::lwi(Reg::R10, Reg::R6, 0));
            a.push(Insn::addk(Reg::R11, Reg::R9, Reg::R10));
            a.push(Insn::swi(Reg::R11, Reg::R6, 4));
        });
        let report = synthesize(&k);
        assert!(
            report.stats.gates > 100,
            "32-bit ripple adder expected, got {}",
            report.stats.gates
        );
        check_equivalence(&k, &SAMPLES);
    }

    #[test]
    fn multiply_extracts_onto_mac() {
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            a.push(Insn::Muli { rd: Reg::R10, ra: Reg::R9, imm: 181 });
            a.push(Insn::swi(Reg::R10, Reg::R6, 0));
        });
        let report = synthesize(&k);
        assert_eq!(report.stats.macs, 1);
        assert_eq!(report.stats.gates, 0, "multiply lives in the MAC, not the fabric");
        check_equivalence(&k, &SAMPLES);
    }

    #[test]
    fn accumulator_becomes_flipflops() {
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            a.push(Insn::Xor { rd: Reg::R22, ra: Reg::R22, rb: Reg::R9 });
        });
        let report = synthesize(&k);
        assert_eq!(report.stats.ffs, 32);
        check_equivalence(&k, &SAMPLES);
    }

    #[test]
    fn dynamic_shift_kernel_equivalent() {
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            a.push(Insn::Andi { rd: Reg::R10, ra: Reg::R9, imm: 31 });
            a.push(Insn::Bs {
                rd: Reg::R11,
                ra: Reg::R9,
                rb: Reg::R10,
                kind: mb_isa::ShiftKind::LogicalLeft,
            });
            a.push(Insn::swi(Reg::R11, Reg::R6, 0));
        });
        let report = synthesize(&k);
        assert!(report.stats.gates > 0, "barrel muxes expected");
        check_equivalence(&k, &SAMPLES);
    }

    #[test]
    fn sweep_reduces_or_keeps_size() {
        let k = build_kernel(|a| {
            a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
            // High bits discarded by the final mask: their adder logic is
            // partially dead.
            a.push(Insn::addik(Reg::R9, Reg::R9, 77));
            a.push(Insn::Andi { rd: Reg::R9, ra: Reg::R9, imm: 0xFF });
            a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        });
        let report = synthesize(&k);
        assert!(
            report.stats.gates < report.gates_before_sweep,
            "masked-off adder bits should be swept ({} -> {})",
            report.gates_before_sweep,
            report.stats.gates
        );
        check_equivalence(&k, &SAMPLES);
    }
}
