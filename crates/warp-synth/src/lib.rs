//! RT/logic synthesis for the warp configurable logic architecture.
//!
//! This crate is the synthesis stage of the ROCPART on-chip CAD chain:
//! it lowers a decompiled [`LoopKernel`](warp_cdfg::LoopKernel) to a
//! bit-level gate netlist and technology-maps it onto the WCLA's 3-input
//! LUT fabric.
//!
//! * `lower` / [`synthesize`] — word-level DFG → [`GateNetlist`]:
//!   ripple-carry adders for add/subtract, mux networks for dynamic
//!   shifts, **pure rewiring for constant shifts and masks** (which is
//!   why the paper's `brev` kernel reduces to wires), and extraction of
//!   multiplies onto the WCLA's 32-bit MAC. Aggressive constant folding
//!   and structural hashing run during construction, and dead logic is
//!   swept before mapping.
//! * [`rocm`] — the Riverside On-Chip logic Minimizer (DAC'03): a lean
//!   two-level cube minimizer (single expand pass + irredundant cover)
//!   designed to run in the tiny memory budget of an on-chip CAD tool.
//! * [`map`] — technology mapping into 3-input LUTs by greedy cut
//!   enlargement, producing the [`LutNetlist`] that
//!   placement and routing consume.
//!
//! Every stage is checked for functional equivalence against the DFG's
//! reference evaluation (see the crate's tests), so a synthesis bug
//! cannot silently corrupt an experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
mod lower;
pub mod map;
pub mod rocm;

pub use bits::{BitDef, BitId, GateNetlist, InputWord, NetlistStats, Word};
pub use lower::{synthesize, SynthReport};
pub use map::{LutNetlist, MapStats};
