//! Technology mapping onto 3-input LUTs.
//!
//! The WCLA's configurable-logic fabric is built from 3-input, 2-output
//! LUTs (two independent 3-LUTs per CLB). This module covers the gate
//! netlist with 3-input LUTs using greedy cut enlargement — the lean
//! mapping pass of the on-chip tool flow — and produces the
//! [`LutNetlist`] that placement and routing consume.
//!
//! Mapping is organized around **root cones** (one per output bit,
//! flip-flop input, and MAC operand bit — the "LUT clusters" of the
//! incremental flow): every decision the mapper makes for a cone is a
//! pure function of the cone's transitive fan-in structure, so a
//! [`MapCache`] can memoize mapped cones by content hash and replay
//! them bit-identically when a *similar* kernel re-warps. The work that
//! was actually performed (vs. replayed) is reported in [`MapWork`] and
//! feeds the on-chip CAD cost model.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use mb_isa::Reg;
use warp_cdfg::fingerprint::Fnv1a;

use crate::bits::{BitDef, BitId, GateNetlist, InputWord};
use crate::rocm;

/// Index of a node in a [`LutNetlist`].
pub type LutRef = u32;

/// Maximum LUT fan-in of the WCLA fabric.
pub const LUT_INPUTS: usize = 3;

/// One node of the mapped netlist.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum LutNode {
    /// Constant 0/1 (tied off in the fabric).
    Const(bool),
    /// A fabric input bit.
    Input {
        /// Which input word.
        word: InputWord,
        /// Bit position.
        bit: u8,
    },
    /// Flip-flop output (accumulator state bit).
    FfQ(usize),
    /// A configured LUT.
    Lut {
        /// 1–3 input nodes.
        inputs: Vec<LutRef>,
        /// Truth table over the inputs (bit `i` = output for input
        /// assignment `i`, input 0 = LSB).
        truth: u8,
    },
}

/// A flip-flop in the mapped netlist.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct LutFf {
    /// Accumulator register.
    pub reg: Reg,
    /// Bit within the register.
    pub bit: u8,
    /// Next-state input.
    pub d: LutRef,
}

/// A MAC operation with mapped operand bits.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct LutMac {
    /// Multiplicand bits.
    pub a: [LutRef; 32],
    /// Multiplier bits.
    pub b: [LutRef; 32],
    /// Accumulate input bits.
    pub addend: [LutRef; 32],
    /// Accumulate function.
    pub mode: crate::bits::MacMode,
}

/// An output word with mapped bits.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct LutOutput {
    /// Index into the kernel's store list.
    pub store: usize,
    /// Output bits.
    pub bits: [LutRef; 32],
}

/// Mapping statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct MapStats {
    /// Number of LUTs.
    pub luts: u64,
    /// Number of flip-flops.
    pub ffs: u64,
    /// Number of MAC operations.
    pub macs: u64,
    /// LUT levels on the longest path.
    pub depth: u64,
    /// Total LUT input pins in use.
    pub pins: u64,
    /// Sum of minimized SOP literal costs over all LUTs (ROCM metric).
    pub sop_literals: u64,
}

/// A 3-LUT netlist ready for placement and routing.
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct LutNetlist {
    nodes: Vec<LutNode>,
    ffs: Vec<LutFf>,
    macs: Vec<LutMac>,
    outputs: Vec<LutOutput>,
}

impl LutNetlist {
    /// All nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[LutNode] {
        &self.nodes
    }

    /// The flip-flops.
    #[must_use]
    pub fn ffs(&self) -> &[LutFf] {
        &self.ffs
    }

    /// The MAC schedule.
    #[must_use]
    pub fn macs(&self) -> &[LutMac] {
        &self.macs
    }

    /// The output words.
    #[must_use]
    pub fn outputs(&self) -> &[LutOutput] {
        &self.outputs
    }

    /// Number of LUT nodes (excluding inputs/constants/FFs).
    #[must_use]
    pub fn lut_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, LutNode::Lut { .. })).count()
    }

    /// Evaluates the netlist for one iteration (same contract as
    /// [`GateNetlist::eval`]).
    pub fn eval(&self, mut inputs: impl FnMut(InputWord) -> u32, ff_state: &[bool]) -> LutEval {
        let mut vals = vec![false; self.nodes.len()];
        let mut mac_vals: Vec<Option<u32>> = vec![None; self.macs.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let value = match node {
                LutNode::Const(v) => *v,
                LutNode::Input { word, bit } => match word {
                    InputWord::MacOut(k) => {
                        let v = *mac_vals[*k].get_or_insert_with(|| {
                            let take = |w: &[LutRef; 32]| -> u32 {
                                w.iter().enumerate().fold(0u32, |acc, (j, &b)| {
                                    acc | (u32::from(vals[b as usize]) << j)
                                })
                            };
                            let m = &self.macs[*k];
                            let prod = take(&m.a).wrapping_mul(take(&m.b));
                            m.mode.apply(prod, take(&m.addend))
                        });
                        v >> bit & 1 == 1
                    }
                    other => inputs(*other) >> bit & 1 == 1,
                },
                LutNode::FfQ(k) => ff_state.get(*k).copied().unwrap_or(false),
                LutNode::Lut { inputs: ins, truth } => {
                    let mut idx = 0u8;
                    for (j, &r) in ins.iter().enumerate() {
                        if vals[r as usize] {
                            idx |= 1 << j;
                        }
                    }
                    truth >> idx & 1 == 1
                }
            };
            vals[i] = value;
        }
        LutEval { vals }
    }

    /// Mapping statistics.
    #[must_use]
    pub fn stats(&self) -> MapStats {
        let mut depth = vec![0u64; self.nodes.len()];
        let mut s = MapStats {
            ffs: self.ffs.len() as u64,
            macs: self.macs.len() as u64,
            ..MapStats::default()
        };
        for (i, node) in self.nodes.iter().enumerate() {
            if let LutNode::Lut { inputs, truth } = node {
                s.luts += 1;
                s.pins += inputs.len() as u64;
                s.sop_literals += u64::from(rocm::lut3_sop_cost(*truth));
                depth[i] = inputs.iter().map(|&r| depth[r as usize]).max().unwrap_or(0) + 1;
                s.depth = s.depth.max(depth[i]);
            }
        }
        s
    }
}

/// Result of a [`LutNetlist::eval`].
#[derive(Clone, Debug)]
pub struct LutEval {
    vals: Vec<bool>,
}

impl LutEval {
    /// The value of one node.
    #[must_use]
    pub fn value(&self, r: LutRef) -> bool {
        self.vals[r as usize]
    }

    /// Reassembles a word.
    #[must_use]
    pub fn word(&self, bits: &[LutRef; 32]) -> u32 {
        bits.iter()
            .enumerate()
            .fold(0u32, |acc, (i, &b)| acc | (u32::from(self.vals[b as usize]) << i))
    }
}

/// Maximum cuts kept per node during enumeration.
const MAX_CUTS: usize = 8;

/// Enumerates 3-feasible cuts for every bit (standard k-feasible cut
/// enumeration, pruned to [`MAX_CUTS`] per node).
///
/// Returns, per bit, the cut list usable by *parents* (including the
/// trivial cut `{bit}` for non-constant bits) and, for gates, the
/// non-trivial cuts usable to map the bit itself.
/// All cuts of one bit; each cut is the list of leaf bits feeding it.
type CutList = Vec<Vec<BitId>>;

/// Enumerates cuts for the bits with `scope` set (a transitive-fan-in
/// closed set); everything out of scope is skipped. `None` = all bits.
fn enumerate_cuts(n: &GateNetlist, scope: Option<&[bool]>) -> Vec<CutList> {
    let len = n.defs().len();
    let mut parent_cuts: Vec<CutList> = vec![Vec::new(); len];
    let mut own_cuts: Vec<CutList> = vec![Vec::new(); len];
    for id in 0..len as BitId {
        if let Some(s) = scope {
            if !s[id as usize] {
                continue;
            }
        }
        let def = n.def(id);
        match def {
            BitDef::Const(_) => {
                // Constants fold into truth tables: empty cut.
                parent_cuts[id as usize] = vec![vec![]];
            }
            BitDef::Input { .. } | BitDef::FfQ(_) => {
                parent_cuts[id as usize] = vec![vec![id]];
            }
            _ => {
                let args = def.args();
                // Cartesian merge of argument cut lists.
                let mut merged: Vec<Vec<BitId>> = vec![vec![]];
                for &a in &args {
                    let mut next = Vec::new();
                    for base in &merged {
                        for ac in &parent_cuts[a as usize] {
                            let mut c: Vec<BitId> = base.iter().chain(ac.iter()).copied().collect();
                            c.sort_unstable();
                            c.dedup();
                            if c.len() <= LUT_INPUTS {
                                next.push(c);
                            }
                        }
                    }
                    merged = next;
                    if merged.is_empty() {
                        break;
                    }
                }
                merged.sort();
                merged.dedup();
                // Prefer cuts that materialize few extra gates and stay
                // small.
                merged.sort_by_key(|c| {
                    let gate_members = c.iter().filter(|&&m| n.def(m).is_gate()).count();
                    (gate_members, c.len())
                });
                merged.truncate(MAX_CUTS);
                own_cuts[id as usize] = merged.clone();
                let mut pl = merged;
                pl.insert(0, vec![id]);
                pl.truncate(MAX_CUTS);
                parent_cuts[id as usize] = pl;
            }
        }
    }
    own_cuts
}

/// Chooses the mapping cut for a gate: fewest gate members, then fewest
/// members.
fn choose_cut(own: &[Vec<BitId>]) -> Vec<BitId> {
    own.first().cloned().unwrap_or_default()
}

/// Evaluates the cone of `bit` under an assignment to its cut.
fn cone_value(n: &GateNetlist, bit: BitId, cut: &[BitId], assignment: u8) -> bool {
    fn eval(
        n: &GateNetlist,
        b: BitId,
        cut: &[BitId],
        assignment: u8,
        memo: &mut HashMap<BitId, bool>,
    ) -> bool {
        if let Some(pos) = cut.iter().position(|&c| c == b) {
            return assignment >> pos & 1 == 1;
        }
        if let Some(&v) = memo.get(&b) {
            return v;
        }
        let v = match n.def(b) {
            BitDef::Const(c) => c,
            BitDef::Input { .. } | BitDef::FfQ(_) => {
                unreachable!("cut must cover all non-constant leaves")
            }
            BitDef::Not(a) => !eval(n, a, cut, assignment, memo),
            BitDef::And(a, c) => {
                eval(n, a, cut, assignment, memo) && eval(n, c, cut, assignment, memo)
            }
            BitDef::Or(a, c) => {
                eval(n, a, cut, assignment, memo) || eval(n, c, cut, assignment, memo)
            }
            BitDef::Xor(a, c) => {
                eval(n, a, cut, assignment, memo) ^ eval(n, c, cut, assignment, memo)
            }
            BitDef::Mux { sel, t, f } => {
                if eval(n, sel, cut, assignment, memo) {
                    eval(n, t, cut, assignment, memo)
                } else {
                    eval(n, f, cut, assignment, memo)
                }
            }
        };
        memo.insert(b, v);
        v
    }
    let mut memo = HashMap::new();
    eval(n, bit, cut, assignment, &mut memo)
}

/// One bit of a root cone, canonicalized by renaming every bit in the
/// cone's transitive fan-in to its rank in ascending-id order.
///
/// Two cones with equal canonical forms map identically: every decision
/// the cut search makes (cut-member sorts, cut-list ordering, truth
/// tables) only ever compares bit ids for *order*, and ranks preserve
/// order. Inputs and flip-flop outputs collapse to [`CanonBit::Leaf`]
/// because both behave as opaque cut leaves; constants keep their value
/// because it folds into truth tables.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum CanonBit {
    /// Constant bit.
    Const(bool),
    /// Input or flip-flop output: an opaque cut leaf.
    Leaf,
    /// NOT gate.
    Not(u32),
    /// AND gate (argument positions preserved).
    And(u32, u32),
    /// OR gate.
    Or(u32, u32),
    /// XOR gate.
    Xor(u32, u32),
    /// MUX gate.
    Mux {
        /// Select rank.
        sel: u32,
        /// Then rank.
        t: u32,
        /// Else rank.
        f: u32,
    },
}

/// One materialized bit of a cached cone: its fan-in rank and, for
/// gates, the chosen cut (as ranks) plus LUT truth table (`None` for
/// leaves and constants, which materialize from their own defs).
type PlannedBit = (u32, Option<(Vec<u32>, u8)>);

/// A memoized root-cone mapping: which fan-in ranks materialize, and
/// the gate plan for each.
#[derive(Clone, PartialEq, Debug)]
struct CachedCone {
    /// The canonical structure — stored in full so a hash collision is
    /// detected by equality instead of silently replaying the wrong
    /// cone.
    canon: Vec<CanonBit>,
    /// `(rank, gate plan)` for every bit the mapped cone materializes.
    needed: Vec<PlannedBit>,
}

/// Memoized root-cone mappings, shared across compiles.
///
/// The cache is purely an accelerator: [`map_netlist_cached`] produces
/// a bit-identical [`LutNetlist`] whether a cone is replayed or mapped
/// from scratch — only the reported [`MapWork`] changes. Entries are
/// verified structurally on every hit, so a content-hash collision
/// degrades to a miss, never to a wrong netlist.
#[derive(Debug, Default)]
pub struct MapCache {
    cones: Mutex<HashMap<u64, CachedCone>>,
}

impl MapCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized cones.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cones.lock().expect("map cache lock").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: u64, canon: &[CanonBit]) -> Option<CachedCone> {
        let cones = self.cones.lock().expect("map cache lock");
        cones.get(&key).filter(|c| c.canon == canon).cloned()
    }

    fn insert(&self, key: u64, cone: CachedCone) {
        self.cones.lock().expect("map cache lock").entry(key).or_insert(cone);
    }
}

/// Mapping work actually performed (vs. replayed from a [`MapCache`]),
/// for the on-chip CAD cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct MapWork {
    /// Unique root cones (LUT clusters) in this netlist.
    pub clusters: u64,
    /// Clusters replayed from the cache.
    pub clusters_reused: u64,
    /// Gate bits that went through cut enumeration — the mapping work
    /// the lean processor actually performed.
    pub gates_enumerated: u64,
}

/// The root bits of a netlist — every bit the mapped netlist must
/// materialize directly: output bits, flip-flop inputs, MAC operands.
fn root_bits(n: &GateNetlist) -> Vec<BitId> {
    let mut roots = Vec::new();
    for o in n.outputs() {
        roots.extend(o.bits);
    }
    for f in n.ffs() {
        roots.push(f.d);
    }
    for m in n.macs() {
        roots.extend(m.a);
        roots.extend(m.b);
        roots.extend(m.addend);
    }
    roots
}

/// The transitive fan-in of `root` (inclusive), ascending by id.
fn cone_tfi(n: &GateNetlist, root: BitId) -> Vec<BitId> {
    let mut seen: HashSet<BitId> = HashSet::new();
    let mut stack = vec![root];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            stack.extend(n.def(b).args());
        }
    }
    let mut ids: Vec<BitId> = seen.into_iter().collect();
    ids.sort_unstable();
    ids
}

/// Canonicalizes a cone: each fan-in bit becomes its rank-renamed def.
fn canonicalize(n: &GateNetlist, tfi: &[BitId]) -> Vec<CanonBit> {
    let rank: HashMap<BitId, u32> = tfi.iter().enumerate().map(|(k, &b)| (b, k as u32)).collect();
    tfi.iter()
        .map(|&b| match n.def(b) {
            BitDef::Const(v) => CanonBit::Const(v),
            BitDef::Input { .. } | BitDef::FfQ(_) => CanonBit::Leaf,
            BitDef::Not(a) => CanonBit::Not(rank[&a]),
            BitDef::And(a, c) => CanonBit::And(rank[&a], rank[&c]),
            BitDef::Or(a, c) => CanonBit::Or(rank[&a], rank[&c]),
            BitDef::Xor(a, c) => CanonBit::Xor(rank[&a], rank[&c]),
            BitDef::Mux { sel, t, f } => {
                CanonBit::Mux { sel: rank[&sel], t: rank[&t], f: rank[&f] }
            }
        })
        .collect()
}

/// Stable content hash of a canonical cone (the [`MapCache`] key).
fn canon_key(canon: &[CanonBit]) -> u64 {
    let mut h = Fnv1a::new();
    canon.hash(&mut h);
    h.finish()
}

/// Maps a gate netlist onto 3-input LUTs.
///
/// Every output bit, flip-flop input, and MAC operand is materialized;
/// interior gates are absorbed into LUT cones wherever a 3-feasible cut
/// exists.
#[must_use]
pub fn map_netlist(n: &GateNetlist) -> LutNetlist {
    map_netlist_cached(n, None).0
}

/// Maps a gate netlist onto 3-input LUTs, replaying root cones whose
/// structure is already memoized in `cache` (and memoizing the rest).
///
/// The produced netlist is **bit-identical** to [`map_netlist`]'s —
/// from-scratch mapping *is* this function with an empty cache; the
/// cache only changes the [`MapWork`] accounting.
#[must_use]
pub fn map_netlist_cached(n: &GateNetlist, cache: Option<&MapCache>) -> (LutNetlist, MapWork) {
    let defs_len = n.defs().len();
    let mut work = MapWork::default();

    // Unique root cones, in first-appearance order.
    let mut roots: Vec<BitId> = Vec::new();
    let mut is_root = vec![false; defs_len];
    for b in root_bits(n) {
        if !is_root[b as usize] {
            is_root[b as usize] = true;
            roots.push(b);
        }
    }
    work.clusters = roots.len() as u64;

    // Per-gate mapping plan: the chosen cut, plus the truth table when
    // replayed (fresh cones compute truths at materialization).
    let mut plan: Vec<Option<(Vec<BitId>, Option<u8>)>> = vec![None; defs_len];
    let mut needed = vec![false; defs_len];
    let mut tfis: Vec<Vec<BitId>> = Vec::with_capacity(roots.len());
    let mut canons: Vec<Vec<CanonBit>> = Vec::with_capacity(roots.len());
    let mut keys: Vec<u64> = Vec::with_capacity(roots.len());
    let mut missed: Vec<usize> = Vec::new();

    for (i, &r) in roots.iter().enumerate() {
        let tfi = cone_tfi(n, r);
        let canon = canonicalize(n, &tfi);
        let key = canon_key(&canon);
        match cache.and_then(|c| c.lookup(key, &canon)) {
            Some(cone) => {
                // Replay: mark the cone's needed closure and record each
                // gate's cut and truth, translated back from ranks.
                work.clusters_reused += 1;
                for (rank, gate) in &cone.needed {
                    let id = tfi[*rank as usize];
                    needed[id as usize] = true;
                    if let (Some((cut_ranks, truth)), None) = (gate, &plan[id as usize]) {
                        let cut: Vec<BitId> =
                            cut_ranks.iter().map(|&cr| tfi[cr as usize]).collect();
                        plan[id as usize] = Some((cut, Some(*truth)));
                    }
                }
            }
            None => missed.push(i),
        }
        tfis.push(tfi);
        canons.push(canon);
        keys.push(key);
    }

    // Cut enumeration over the union of missed cones' fan-ins only —
    // this is the work the incremental flow skips.
    let mut in_scope = vec![false; defs_len];
    for &i in &missed {
        for &id in &tfis[i] {
            in_scope[id as usize] = true;
        }
    }
    let own_cuts = enumerate_cuts(n, Some(&in_scope));
    for id in 0..defs_len as BitId {
        if in_scope[id as usize] && n.def(id).is_gate() {
            work.gates_enumerated += 1;
            if plan[id as usize].is_none() {
                plan[id as usize] = Some((choose_cut(&own_cuts[id as usize]), None));
            }
        }
    }

    // Needed bits for missed roots: the root plus, transitively, cut
    // members of needed gates. (Replayed cones marked theirs above.)
    for &i in &missed {
        let mut stack = vec![roots[i]];
        while let Some(b) = stack.pop() {
            if needed[b as usize] {
                continue;
            }
            needed[b as usize] = true;
            if let Some((cut, _)) = &plan[b as usize] {
                stack.extend(cut.iter().copied());
            }
        }
    }

    // Materialize in topological order; identical whether a gate's plan
    // was replayed or freshly chosen.
    let mut out = LutNetlist::default();
    let mut map: Vec<Option<LutRef>> = vec![None; defs_len];
    let mut final_truth: Vec<Option<u8>> = vec![None; defs_len];
    for id in 0..defs_len as BitId {
        if !needed[id as usize] {
            continue;
        }
        let node = match n.def(id) {
            BitDef::Const(v) => LutNode::Const(v),
            BitDef::Input { word, bit } => LutNode::Input { word, bit },
            BitDef::FfQ(k) => LutNode::FfQ(k),
            _ => {
                let (cut, replayed) = plan[id as usize].clone().expect("needed gates have cuts");
                if cut.is_empty() {
                    // The cone folds to a constant.
                    let v = match replayed {
                        Some(t) => t & 1 == 1,
                        None => cone_value(n, id, &cut, 0),
                    };
                    final_truth[id as usize] = Some(u8::from(v));
                    LutNode::Const(v)
                } else {
                    let inputs: Vec<LutRef> = cut
                        .iter()
                        .map(|&c| map[c as usize].expect("cut member materialized"))
                        .collect();
                    let truth = replayed.unwrap_or_else(|| {
                        let mut t = 0u8;
                        for a in 0..(1u8 << cut.len()) {
                            if cone_value(n, id, &cut, a) {
                                t |= 1 << a;
                            }
                        }
                        t
                    });
                    final_truth[id as usize] = Some(truth);
                    LutNode::Lut { inputs, truth }
                }
            }
        };
        map[id as usize] = Some(out.nodes.len() as LutRef);
        out.nodes.push(node);
    }

    let remap = |b: BitId| map[b as usize].expect("root bit materialized");
    for o in n.outputs() {
        out.outputs.push(LutOutput { store: o.store, bits: o.bits.map(remap) });
    }
    for f in n.ffs() {
        out.ffs.push(LutFf { reg: f.reg, bit: f.bit, d: remap(f.d) });
    }
    for m in n.macs() {
        out.macs.push(LutMac {
            a: m.a.map(remap),
            b: m.b.map(remap),
            addend: m.addend.map(remap),
            mode: m.mode,
        });
    }

    // Memoize every freshly mapped cone: its root-local needed closure
    // with the final cuts and truths, rank-renamed.
    if let Some(cache) = cache {
        for &i in &missed {
            let tfi = &tfis[i];
            let rank: HashMap<BitId, u32> =
                tfi.iter().enumerate().map(|(k, &b)| (b, k as u32)).collect();
            let mut local = vec![false; tfi.len()];
            let mut stack = vec![roots[i]];
            while let Some(b) = stack.pop() {
                let rk = rank[&b] as usize;
                if local[rk] {
                    continue;
                }
                local[rk] = true;
                if let Some((cut, _)) = &plan[b as usize] {
                    stack.extend(cut.iter().copied());
                }
            }
            let needed_ranks: Vec<PlannedBit> = tfi
                .iter()
                .enumerate()
                .filter(|&(k, _)| local[k])
                .map(|(k, &b)| {
                    let gate = plan[b as usize].as_ref().map(|(cut, _)| {
                        let cut_ranks: Vec<u32> = cut.iter().map(|m| rank[m]).collect();
                        (cut_ranks, final_truth[b as usize].expect("needed gate materialized"))
                    });
                    (k as u32, gate)
                })
                .collect();
            cache.insert(keys[i], CachedCone { canon: canons[i].clone(), needed: needed_ranks });
        }
    }

    (out, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::GateNetlist;

    #[test]
    fn small_cone_packs_into_one_lut() {
        // f = (a & b) ^ c — 3 inputs, must become exactly one LUT.
        let mut n = GateNetlist::new();
        let a = n.input(InputWord::Load { stream: 0, offset: 0 }, 0);
        let b = n.input(InputWord::Load { stream: 0, offset: 0 }, 1);
        let c = n.input(InputWord::Load { stream: 0, offset: 0 }, 2);
        let ab = n.and(a, b);
        let f = n.xor(ab, c);
        let mut bits = [n.constant(false); 32];
        bits[0] = f;
        n.output(0, bits);
        let mapped = map_netlist(&n);
        assert_eq!(mapped.lut_count(), 1, "two gates must share one LUT");
        // Check the function on all 8 assignments.
        for x in 0..8u32 {
            let res = mapped.eval(|_| x, &[]);
            let want = ((x & 1 != 0) && (x & 2 != 0)) ^ (x & 4 != 0);
            assert_eq!(res.word(&mapped.outputs()[0].bits) & 1 == 1, want, "x={x}");
        }
    }

    #[test]
    fn wire_outputs_need_no_luts() {
        let mut n = GateNetlist::new();
        let w = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let sh = n.shl_word(w, 5);
        n.output(0, sh);
        let mapped = map_netlist(&n);
        assert_eq!(mapped.lut_count(), 0, "wiring must map to zero LUTs");
        let res = mapped.eval(|_| 0xFFFF_FFFF, &[]);
        assert_eq!(res.word(&mapped.outputs()[0].bits), 0xFFFF_FFFF << 5);
    }

    #[test]
    fn adder_maps_with_reasonable_density() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = n.add_word(a, b, false);
        n.output(0, s);
        let gates = n.stats().gates;
        let mapped = map_netlist(&n);
        let luts = mapped.lut_count() as u64;
        assert!(luts < gates, "mapping must compress ({luts} LUTs vs {gates} gates)");
        // A 32-bit carry-select adder: two ripples plus muxes over
        // three blocks, one plain ripple block.
        assert!(luts <= 240, "adder should need ≤240 LUTs, got {luts}");
        // Functional check.
        for (x, y) in [(1u32, 2u32), (u32::MAX, 1), (0xABCD, 0x1234)] {
            let res = mapped
                .eval(|w| if matches!(w, InputWord::Load { stream: 0, .. }) { x } else { y }, &[]);
            assert_eq!(res.word(&mapped.outputs()[0].bits), x.wrapping_add(y));
        }
    }

    #[test]
    fn ff_and_mac_survive_mapping() {
        let mut n = GateNetlist::new();
        let (ff, q) = n.ff(Reg::R22, 0);
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let c = n.const_word(3);
        let p = n.mac(a, c);
        let d = n.xor(q, p[0]);
        n.set_ff_d(ff, d);
        let mapped = map_netlist(&n);
        assert_eq!(mapped.ffs().len(), 1);
        assert_eq!(mapped.macs().len(), 1);
        // value 5*3 = 15, bit0 = 1; ff q=0 -> d = 1.
        let res = mapped.eval(|_| 5, &[false]);
        assert!(res.value(mapped.ffs()[0].d));
    }

    #[test]
    fn cached_mapping_is_bit_identical_and_skips_replayed_work() {
        let adder = || {
            let mut n = GateNetlist::new();
            let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
            let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
            let s = n.add_word(a, b, false);
            n.output(0, s);
            n
        };
        let n = adder();
        let fresh = map_netlist(&n);

        let cache = MapCache::new();
        let (first, w1) = map_netlist_cached(&n, Some(&cache));
        assert_eq!(first, fresh, "an empty cache must not change the mapping");
        assert_eq!(w1.clusters_reused, 0);
        assert!(w1.gates_enumerated > 0);
        assert!(!cache.is_empty());

        // The same structure again (a fresh netlist, so ids could in
        // principle differ): every cone replays, zero enumeration, and
        // the result is still bit-identical.
        let (second, w2) = map_netlist_cached(&adder(), Some(&cache));
        assert_eq!(second, fresh, "replayed mapping must be bit-identical");
        assert_eq!(w2.clusters_reused, w2.clusters, "every cone must hit");
        assert_eq!(w2.gates_enumerated, 0, "no cut enumeration on a full hit");
    }

    #[test]
    fn similar_netlists_share_cones_across_the_cache() {
        // Two mixers with different shift distances: the interior cone
        // *shapes* coincide (xor-of-xor over opaque leaves), so mapping
        // the second after the first reuses nearly every cluster.
        let mixer = |l: u8, r: u8| {
            let mut n = GateNetlist::new();
            let x = n.input_word(InputWord::Load { stream: 0, offset: 0 });
            let m = n.input_word(InputWord::Load { stream: 1, offset: 0 });
            let sh = n.shl_word(x, l);
            let sr = n.shr_word(x, r);
            let t = n.xor_word(sh, sr);
            let y = n.xor_word(t, m);
            n.output(0, y);
            n
        };
        let cache = MapCache::new();
        let (_, w1) = map_netlist_cached(&mixer(3, 7), Some(&cache));
        assert_eq!(w1.clusters_reused, 0);
        let n2 = mixer(5, 9);
        let (mapped, w2) = map_netlist_cached(&n2, Some(&cache));
        assert_eq!(mapped, map_netlist(&n2), "reuse must not change the result");
        assert_eq!(w2.clusters_reused, w2.clusters, "all mixer cone shapes recur");
        assert_eq!(w2.gates_enumerated, 0);
    }

    #[test]
    fn stats_count_pins_and_depth() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = n.add_word(a, b, false);
        n.output(0, s);
        let mapped = map_netlist(&n);
        let st = mapped.stats();
        assert!(st.luts > 0);
        assert!(st.pins >= st.luts, "every LUT uses at least one pin");
        assert!(st.depth > 1, "carry chain spans levels");
        assert!(st.sop_literals > 0);
    }
}
