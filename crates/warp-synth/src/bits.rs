//! Bit-level gate netlists.
//!
//! A [`GateNetlist`] is a topologically-ordered array of bit definitions:
//! constants, input bits, flip-flop outputs, and 1–3 input gates. The
//! builder methods fold constants and hash-cons structurally identical
//! gates as the netlist is constructed, so word-level operations whose
//! logic disappears (shifts by constants, masks with constant words)
//! really do cost zero gates.

use std::collections::HashMap;

use mb_isa::Reg;

/// Index of a bit signal in a [`GateNetlist`].
pub type BitId = u32;

/// A 32-bit word as bit signals, LSB first.
pub type Word = [BitId; 32];

/// Identity of a word-level input to the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InputWord {
    /// The value loaded this iteration from a DADG stream offset.
    Load {
        /// Stream index.
        stream: usize,
        /// Byte offset from the stream cursor.
        offset: i32,
    },
    /// A loop-invariant scalar seeded at invocation.
    Invariant(Reg),
    /// The output of the k-th MAC operation this iteration.
    MacOut(usize),
}

/// Definition of one bit signal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BitDef {
    /// Constant 0 or 1.
    Const(bool),
    /// Bit `bit` of a word-level input.
    Input {
        /// Which word.
        word: InputWord,
        /// Bit position (0 = LSB).
        bit: u8,
    },
    /// Output of flip-flop `ff` (loop-carried accumulator state).
    FfQ(usize),
    /// Logical NOT.
    Not(BitId),
    /// Logical AND.
    And(BitId, BitId),
    /// Logical OR.
    Or(BitId, BitId),
    /// Logical XOR.
    Xor(BitId, BitId),
    /// 2:1 multiplexer: `sel ? t : f`.
    Mux {
        /// Select input.
        sel: BitId,
        /// Value when `sel` is 1.
        t: BitId,
        /// Value when `sel` is 0.
        f: BitId,
    },
}

impl BitDef {
    /// The bit's fan-in signals.
    #[must_use]
    pub fn args(&self) -> Vec<BitId> {
        match *self {
            BitDef::Const(_) | BitDef::Input { .. } | BitDef::FfQ(_) => vec![],
            BitDef::Not(a) => vec![a],
            BitDef::And(a, b) | BitDef::Or(a, b) | BitDef::Xor(a, b) => vec![a, b],
            BitDef::Mux { sel, t, f } => vec![sel, t, f],
        }
    }

    /// Whether this is a combinational gate (not an input/constant/FF).
    #[must_use]
    pub fn is_gate(&self) -> bool {
        matches!(
            self,
            BitDef::Not(_)
                | BitDef::And(..)
                | BitDef::Or(..)
                | BitDef::Xor(..)
                | BitDef::Mux { .. }
        )
    }
}

/// A loop-carried flip-flop (one bit of an accumulator register).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Ff {
    /// The accumulator register this bit belongs to.
    pub reg: Reg,
    /// Bit position within the register.
    pub bit: u8,
    /// The D input (next state), filled in once the body is lowered.
    pub d: BitId,
}

/// How a MAC operation combines its product with the addend — the
/// accumulate function of the WCLA's 32-bit multiplier-accumulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MacMode {
    /// `out = addend + a*b`.
    #[default]
    MulAdd,
    /// `out = addend - a*b`.
    AddendMinusProd,
    /// `out = a*b - addend`.
    ProdMinusAddend,
}

impl MacMode {
    /// Applies the accumulate function.
    #[must_use]
    pub fn apply(self, prod: u32, addend: u32) -> u32 {
        match self {
            MacMode::MulAdd => addend.wrapping_add(prod),
            MacMode::AddendMinusProd => addend.wrapping_sub(prod),
            MacMode::ProdMinusAddend => prod.wrapping_sub(addend),
        }
    }
}

/// One MAC operation: `out = f(a * b, addend)` (low 32 bits), serialized
/// on the WCLA's single 32-bit multiplier-accumulator. Plain multiplies
/// use a zero addend.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct MacOp {
    /// Multiplicand bits.
    pub a: Word,
    /// Multiplier bits.
    pub b: Word,
    /// Accumulate input bits.
    pub addend: Word,
    /// Accumulate function.
    pub mode: MacMode,
}

/// An output word (one store value per iteration).
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct OutputWord {
    /// Index into the kernel's store list.
    pub store: usize,
    /// The 32 output bits.
    pub bits: Word,
}

/// Size statistics for a gate netlist.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct NetlistStats {
    /// Combinational gates (after folding and sweeping).
    pub gates: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// MAC operations per iteration.
    pub macs: u64,
    /// Input bits.
    pub inputs: u64,
    /// Longest combinational path in gate levels.
    pub depth: u64,
}

/// A bit-level netlist with structural hashing and constant folding.
#[derive(Clone, Debug, Default)]
pub struct GateNetlist {
    defs: Vec<BitDef>,
    cse: HashMap<BitDef, BitId>,
    ffs: Vec<Ff>,
    macs: Vec<MacOp>,
    outputs: Vec<OutputWord>,
}

impl GateNetlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, def: BitDef) -> BitId {
        if let Some(&id) = self.cse.get(&def) {
            return id;
        }
        let id = self.defs.len() as BitId;
        self.defs.push(def);
        self.cse.insert(def, id);
        id
    }

    /// The definition of a bit.
    #[must_use]
    pub fn def(&self, id: BitId) -> BitDef {
        self.defs[id as usize]
    }

    /// All bit definitions in topological order.
    #[must_use]
    pub fn defs(&self) -> &[BitDef] {
        &self.defs
    }

    /// The flip-flops.
    #[must_use]
    pub fn ffs(&self) -> &[Ff] {
        &self.ffs
    }

    /// The MAC schedule.
    #[must_use]
    pub fn macs(&self) -> &[MacOp] {
        &self.macs
    }

    /// The output words.
    #[must_use]
    pub fn outputs(&self) -> &[OutputWord] {
        &self.outputs
    }

    /// A constant bit.
    pub fn constant(&mut self, v: bool) -> BitId {
        self.intern(BitDef::Const(v))
    }

    /// Whether a bit is a known constant.
    #[must_use]
    pub fn const_of(&self, id: BitId) -> Option<bool> {
        match self.defs[id as usize] {
            BitDef::Const(v) => Some(v),
            _ => None,
        }
    }

    /// An input bit.
    pub fn input(&mut self, word: InputWord, bit: u8) -> BitId {
        self.intern(BitDef::Input { word, bit })
    }

    /// A full input word (LSB first).
    pub fn input_word(&mut self, word: InputWord) -> Word {
        core::array::from_fn(|i| self.input(word, i as u8))
    }

    /// A constant word.
    pub fn const_word(&mut self, value: u32) -> Word {
        core::array::from_fn(|i| self.constant(value >> i & 1 == 1))
    }

    /// Declares a flip-flop for accumulator `reg` bit `bit`; the D input
    /// is wired later with [`GateNetlist::set_ff_d`].
    pub fn ff(&mut self, reg: Reg, bit: u8) -> (usize, BitId) {
        let idx = self.ffs.len();
        self.ffs.push(Ff { reg, bit, d: 0 });
        let q = self.intern(BitDef::FfQ(idx));
        (idx, q)
    }

    /// Wires a flip-flop's D input.
    pub fn set_ff_d(&mut self, ff: usize, d: BitId) {
        self.ffs[ff].d = d;
    }

    /// NOT with folding.
    pub fn not(&mut self, a: BitId) -> BitId {
        match self.defs[a as usize] {
            BitDef::Const(v) => self.constant(!v),
            BitDef::Not(x) => x,
            _ => self.intern(BitDef::Not(a)),
        }
    }

    /// AND with folding.
    pub fn and(&mut self, a: BitId, b: BitId) -> BitId {
        let (a, b) = (a.min(b), a.max(b));
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        self.intern(BitDef::And(a, b))
    }

    /// OR with folding.
    pub fn or(&mut self, a: BitId, b: BitId) -> BitId {
        let (a, b) = (a.min(b), a.max(b));
        match (self.const_of(a), self.const_of(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(true),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        self.intern(BitDef::Or(a, b))
    }

    /// XOR with folding.
    pub fn xor(&mut self, a: BitId, b: BitId) -> BitId {
        let (a, b) = (a.min(b), a.max(b));
        match (self.const_of(a), self.const_of(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.constant(false);
        }
        self.intern(BitDef::Xor(a, b))
    }

    /// 2:1 mux with folding.
    pub fn mux(&mut self, sel: BitId, t: BitId, f: BitId) -> BitId {
        match self.const_of(sel) {
            Some(true) => return t,
            Some(false) => return f,
            None => {}
        }
        if t == f {
            return t;
        }
        match (self.const_of(t), self.const_of(f)) {
            (Some(true), Some(false)) => return sel,
            (Some(false), Some(true)) => return self.not(sel),
            (Some(true), None) => return self.or(sel, f),
            (Some(false), None) => {
                let ns = self.not(sel);
                return self.and(ns, f);
            }
            (None, Some(false)) => return self.and(sel, t),
            (None, Some(true)) => {
                let ns = self.not(sel);
                return self.or(ns, t);
            }
            _ => {}
        }
        self.intern(BitDef::Mux { sel, t, f })
    }

    // ---- word-level constructors -------------------------------------

    /// Bitwise AND of two words.
    pub fn and_word(&mut self, a: Word, b: Word) -> Word {
        core::array::from_fn(|i| self.and(a[i], b[i]))
    }

    /// Bitwise OR of two words.
    pub fn or_word(&mut self, a: Word, b: Word) -> Word {
        core::array::from_fn(|i| self.or(a[i], b[i]))
    }

    /// Bitwise XOR of two words.
    pub fn xor_word(&mut self, a: Word, b: Word) -> Word {
        core::array::from_fn(|i| self.xor(a[i], b[i]))
    }

    /// `a & !b` of two words.
    pub fn andnot_word(&mut self, a: Word, b: Word) -> Word {
        core::array::from_fn(|i| {
            let nb = self.not(b[i]);
            self.and(a[i], nb)
        })
    }

    /// Ripple addition over a bit slice; returns the sums and carry-out.
    fn ripple_slice(&mut self, a: &[BitId], b: &[BitId], cin: BitId) -> (Vec<BitId>, BitId) {
        let mut carry = cin;
        let mut sums = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.xor(a[i], b[i]);
            sums.push(self.xor(axb, carry));
            let and1 = self.and(a[i], b[i]);
            let and2 = self.and(carry, axb);
            carry = self.or(and1, and2);
        }
        (sums, carry)
    }

    /// Addition with carry-in, implemented as a carry-select adder with
    /// 8-bit blocks — the synthesis choice that keeps word arithmetic
    /// within a few fabric cycles (≈12 LUT levels instead of 33) at a
    /// modest area premium over plain ripple.
    pub fn add_word(&mut self, a: Word, b: Word, carry_in: bool) -> Word {
        const BLOCK: usize = 8;
        let cin = self.constant(carry_in);
        let zero = self.constant(false);
        let one = self.constant(true);
        let (mut sums, mut carry) = self.ripple_slice(&a[0..BLOCK], &b[0..BLOCK], cin);
        let mut lo = BLOCK;
        while lo < 32 {
            let hi = lo + BLOCK;
            let (s0, c0) = self.ripple_slice(&a[lo..hi], &b[lo..hi], zero);
            let (s1, c1) = self.ripple_slice(&a[lo..hi], &b[lo..hi], one);
            for i in 0..BLOCK {
                sums.push(self.mux(carry, s1[i], s0[i]));
            }
            carry = self.mux(carry, c1, c0);
            lo = hi;
        }
        sums.try_into().expect("32 sum bits")
    }

    /// Ripple-carry addition (kept for the adder-architecture ablation
    /// study; linear depth, fewer gates).
    pub fn add_word_ripple(&mut self, a: Word, b: Word, carry_in: bool) -> Word {
        let mut carry = self.constant(carry_in);
        core::array::from_fn(|i| {
            let axb = self.xor(a[i], b[i]);
            let sum = self.xor(axb, carry);
            let and1 = self.and(a[i], b[i]);
            let and2 = self.and(carry, axb);
            carry = self.or(and1, and2);
            sum
        })
    }

    /// Subtraction `a - b` (two's complement).
    pub fn sub_word(&mut self, a: Word, b: Word) -> Word {
        let nb: Word = core::array::from_fn(|i| self.not(b[i]));
        self.add_word(a, nb, true)
    }

    /// Logical shift left by a constant — pure rewiring.
    pub fn shl_word(&mut self, a: Word, k: u8) -> Word {
        let k = (k & 31) as usize;
        let zero = self.constant(false);
        core::array::from_fn(|i| if i >= k { a[i - k] } else { zero })
    }

    /// Logical shift right by a constant — pure rewiring.
    pub fn shr_word(&mut self, a: Word, k: u8) -> Word {
        let k = (k & 31) as usize;
        let zero = self.constant(false);
        core::array::from_fn(|i| if i + k < 32 { a[i + k] } else { zero })
    }

    /// Arithmetic shift right by a constant — rewiring with sign fill.
    pub fn sar_word(&mut self, a: Word, k: u8) -> Word {
        let k = (k & 31) as usize;
        core::array::from_fn(|i| if i + k < 32 { a[i + k] } else { a[31] })
    }

    /// Dynamic shift: a 5-level mux barrel using the low 5 bits of
    /// `amount`.
    pub fn dyn_shift_word(&mut self, a: Word, amount: Word, kind: ShiftDir) -> Word {
        let mut cur = a;
        for level in 0..5u8 {
            let k = 1u8 << level;
            let shifted = match kind {
                ShiftDir::Left => self.shl_word(cur, k),
                ShiftDir::LogicalRight => self.shr_word(cur, k),
                ShiftDir::ArithmeticRight => self.sar_word(cur, k),
            };
            let sel = amount[level as usize];
            cur = core::array::from_fn(|i| self.mux(sel, shifted[i], cur[i]));
        }
        cur
    }

    /// Sign-extend the low byte — rewiring.
    pub fn sext8_word(&mut self, a: Word) -> Word {
        core::array::from_fn(|i| if i < 8 { a[i] } else { a[7] })
    }

    /// Sign-extend the low half — rewiring.
    pub fn sext16_word(&mut self, a: Word) -> Word {
        core::array::from_fn(|i| if i < 16 { a[i] } else { a[15] })
    }

    /// Registers a plain multiply on the MAC, returning its output word
    /// (which enters the fabric as an input).
    pub fn mac(&mut self, a: Word, b: Word) -> Word {
        let addend = self.const_word(0);
        self.mac_fused(a, b, addend, MacMode::MulAdd)
    }

    /// Registers a fused multiply-accumulate on the MAC.
    pub fn mac_fused(&mut self, a: Word, b: Word, addend: Word, mode: MacMode) -> Word {
        let idx = self.macs.len();
        self.macs.push(MacOp { a, b, addend, mode });
        self.input_word(InputWord::MacOut(idx))
    }

    /// Declares an output word for store `store`.
    pub fn output(&mut self, store: usize, bits: Word) {
        self.outputs.push(OutputWord { store, bits });
    }

    // ---- analysis ------------------------------------------------------

    /// Evaluates the netlist for one iteration.
    ///
    /// `inputs` resolves load/invariant words; `ff_state` is the current
    /// accumulator state (indexed by FF number). Returns the value of
    /// every bit plus the resolved MAC outputs.
    pub fn eval(&self, mut inputs: impl FnMut(InputWord) -> u32, ff_state: &[bool]) -> EvalResult {
        let mut vals = vec![false; self.defs.len()];
        let mut mac_vals: Vec<Option<u32>> = vec![None; self.macs.len()];
        for (i, def) in self.defs.iter().enumerate() {
            let value = match *def {
                BitDef::Const(v) => v,
                BitDef::Input { word, bit } => match word {
                    InputWord::MacOut(k) => {
                        let v = *mac_vals[k].get_or_insert_with(|| {
                            // Operand bits precede the MAC output bits in
                            // topological order, so they are resolved.
                            let take = |w: &Word| -> u32 {
                                w.iter().enumerate().fold(0u32, |acc, (j, &b)| {
                                    acc | (u32::from(vals[b as usize]) << j)
                                })
                            };
                            let m = &self.macs[k];
                            let prod = take(&m.a).wrapping_mul(take(&m.b));
                            m.mode.apply(prod, take(&m.addend))
                        });
                        v >> bit & 1 == 1
                    }
                    other => inputs(other) >> bit & 1 == 1,
                },
                BitDef::FfQ(k) => ff_state.get(k).copied().unwrap_or(false),
                BitDef::Not(a) => !vals[a as usize],
                BitDef::And(a, b) => vals[a as usize] && vals[b as usize],
                BitDef::Or(a, b) => vals[a as usize] || vals[b as usize],
                BitDef::Xor(a, b) => vals[a as usize] ^ vals[b as usize],
                BitDef::Mux { sel, t, f } => {
                    if vals[sel as usize] {
                        vals[t as usize]
                    } else {
                        vals[f as usize]
                    }
                }
            };
            vals[i] = value;
        }
        EvalResult { bits: vals }
    }

    /// Removes logic not reachable from outputs, FF inputs, or MAC
    /// operands, remapping all ids. Returns the number of bits removed.
    pub fn sweep(&mut self) -> usize {
        let mut live = vec![false; self.defs.len()];
        let mut stack: Vec<BitId> = Vec::new();
        for o in &self.outputs {
            stack.extend(o.bits);
        }
        for f in &self.ffs {
            stack.push(f.d);
        }
        for m in &self.macs {
            stack.extend(m.a);
            stack.extend(m.b);
            stack.extend(m.addend);
        }
        while let Some(id) = stack.pop() {
            if live[id as usize] {
                continue;
            }
            live[id as usize] = true;
            stack.extend(self.defs[id as usize].args());
        }
        // Keep FF Q bits alive if their FF's D is live (state must
        // persist) — and conservatively keep all FFQ/Input defs that are
        // live only.
        let mut remap: Vec<Option<BitId>> = vec![None; self.defs.len()];
        let mut new_defs = Vec::new();
        for (i, def) in self.defs.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let mapped = match *def {
                BitDef::Const(v) => BitDef::Const(v),
                BitDef::Input { word, bit } => BitDef::Input { word, bit },
                BitDef::FfQ(k) => BitDef::FfQ(k),
                BitDef::Not(a) => BitDef::Not(remap[a as usize].expect("topo")),
                BitDef::And(a, b) => {
                    BitDef::And(remap[a as usize].expect("topo"), remap[b as usize].expect("topo"))
                }
                BitDef::Or(a, b) => {
                    BitDef::Or(remap[a as usize].expect("topo"), remap[b as usize].expect("topo"))
                }
                BitDef::Xor(a, b) => {
                    BitDef::Xor(remap[a as usize].expect("topo"), remap[b as usize].expect("topo"))
                }
                BitDef::Mux { sel, t, f } => BitDef::Mux {
                    sel: remap[sel as usize].expect("topo"),
                    t: remap[t as usize].expect("topo"),
                    f: remap[f as usize].expect("topo"),
                },
            };
            remap[i] = Some(new_defs.len() as BitId);
            new_defs.push(mapped);
        }
        let removed = self.defs.len() - new_defs.len();
        let map_id = |id: BitId| remap[id as usize].expect("referenced bit is live");
        for o in &mut self.outputs {
            o.bits = o.bits.map(map_id);
        }
        for f in &mut self.ffs {
            f.d = map_id(f.d);
        }
        for m in &mut self.macs {
            m.a = m.a.map(map_id);
            m.b = m.b.map(map_id);
            m.addend = m.addend.map(map_id);
        }
        self.defs = new_defs;
        self.cse.clear();
        for (i, d) in self.defs.iter().enumerate() {
            self.cse.insert(*d, i as BitId);
        }
        removed
    }

    /// Size and depth statistics.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut depth = vec![0u64; self.defs.len()];
        let mut max_depth = 0;
        let mut gates = 0;
        let mut inputs = 0;
        for (i, def) in self.defs.iter().enumerate() {
            if def.is_gate() {
                gates += 1;
                depth[i] = def.args().iter().map(|&a| depth[a as usize]).max().unwrap_or(0) + 1;
                max_depth = max_depth.max(depth[i]);
            } else {
                if matches!(def, BitDef::Input { .. }) {
                    inputs += 1;
                }
                depth[i] = 0;
            }
        }
        NetlistStats {
            gates,
            ffs: self.ffs.len() as u64,
            macs: self.macs.len() as u64,
            inputs,
            depth: max_depth,
        }
    }
}

/// Direction of a dynamic shift.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShiftDir {
    /// Shift left, zero fill.
    Left,
    /// Shift right, zero fill.
    LogicalRight,
    /// Shift right, sign fill.
    ArithmeticRight,
}

/// Result of evaluating a netlist.
#[derive(Clone, Debug)]
pub struct EvalResult {
    bits: Vec<bool>,
}

impl EvalResult {
    /// The value of one bit.
    #[must_use]
    pub fn bit(&self, id: BitId) -> bool {
        self.bits[id as usize]
    }

    /// Reassembles a word from its bit signals.
    #[must_use]
    pub fn word(&self, w: &Word) -> u32 {
        w.iter()
            .enumerate()
            .fold(0u32, |acc, (i, &b)| acc | (u32::from(self.bits[b as usize]) << i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word_val(n: &GateNetlist, w: &Word, inputs: impl FnMut(InputWord) -> u32) -> u32 {
        n.eval(inputs, &[]).word(w)
    }

    #[test]
    fn adder_matches_wrapping_add() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let sum = n.add_word(a, b, false);
        for (x, y) in [(5u32, 7u32), (u32::MAX, 1), (0x8000_0000, 0x8000_0000), (12345, 99999)] {
            let v = word_val(&n, &sum, |w| match w {
                InputWord::Load { stream: 0, .. } => x,
                _ => y,
            });
            assert_eq!(v, x.wrapping_add(y));
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let d = n.sub_word(a, b);
        for (x, y) in [(5u32, 7u32), (0, 1), (0xFFFF_0000, 0x1234)] {
            let v = word_val(&n, &d, |w| match w {
                InputWord::Load { stream: 0, .. } => x,
                _ => y,
            });
            assert_eq!(v, x.wrapping_sub(y));
        }
    }

    #[test]
    fn constant_shift_is_pure_wiring() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let before = n.stats().gates;
        let sh = n.shl_word(a, 7);
        let sh2 = n.shr_word(sh, 3);
        let sar = n.sar_word(sh2, 2);
        assert_eq!(n.stats().gates, before, "constant shifts must not add gates");
        let v = word_val(&n, &sar, |_| 0xF000_0081);
        assert_eq!(v, ((((0xF000_0081u32 << 7) >> 3) as i32) >> 2) as u32);
    }

    #[test]
    fn mask_with_constant_folds_away() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let mask = n.const_word(0x0000_FFFF);
        let before = n.stats().gates;
        let masked = n.and_word(a, mask);
        assert_eq!(n.stats().gates, before, "and with constant mask is wiring");
        let v = word_val(&n, &masked, |_| 0xABCD_1234);
        assert_eq!(v, 0x0000_1234);
    }

    #[test]
    fn dynamic_shift_barrel_matches_reference() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let amt = n.input_word(InputWord::Invariant(Reg::R20));
        let l = n.dyn_shift_word(a, amt, ShiftDir::Left);
        let r = n.dyn_shift_word(a, amt, ShiftDir::LogicalRight);
        let s = n.dyn_shift_word(a, amt, ShiftDir::ArithmeticRight);
        for (x, k) in [(0x8000_0101u32, 0u32), (0x8000_0101, 5), (0x8000_0101, 31), (7, 33)] {
            let res = n.eval(
                |w| match w {
                    InputWord::Invariant(_) => k,
                    _ => x,
                },
                &[],
            );
            assert_eq!(res.word(&l), x << (k & 31), "shl {x:#x} by {k}");
            assert_eq!(res.word(&r), x >> (k & 31), "shr {x:#x} by {k}");
            assert_eq!(res.word(&s), ((x as i32) >> (k & 31)) as u32, "sar {x:#x} by {k}");
        }
    }

    #[test]
    fn mac_output_reenters_fabric() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let c = n.const_word(181);
        let p = n.mac(a, c);
        let doubled = n.add_word(p, p, false);
        let res = n.eval(|_| 1000, &[]);
        assert_eq!(res.word(&p), 181_000);
        assert_eq!(res.word(&doubled), 362_000);
        assert_eq!(n.macs().len(), 1);
    }

    #[test]
    fn ff_state_reads_back() {
        let mut n = GateNetlist::new();
        let (ff0, q0) = n.ff(Reg::R22, 0);
        let nq = n.not(q0);
        n.set_ff_d(ff0, nq);
        let r0 = n.eval(|_| 0, &[false]);
        assert!(!r0.bit(q0));
        assert!(r0.bit(nq));
        let r1 = n.eval(|_| 0, &[true]);
        assert!(r1.bit(q0));
        assert!(!r1.bit(nq));
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let _dead = n.add_word(a, b, false); // never used
        let live = n.xor_word(a, b);
        n.output(0, live);
        let before = n.defs().len();
        let removed = n.sweep();
        assert!(removed > 0, "dead adder must be swept");
        assert!(n.defs().len() < before);
        let v = n.eval(
            |w| if matches!(w, InputWord::Load { stream: 0, .. }) { 0xF0F0 } else { 0x1234 },
            &[],
        );
        assert_eq!(v.word(&n.outputs()[0].bits), 0xF0F0 ^ 0x1234);
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let mut n = GateNetlist::new();
        let a = n.input(InputWord::Load { stream: 0, offset: 0 }, 0);
        let b = n.input(InputWord::Load { stream: 0, offset: 0 }, 1);
        let g1 = n.and(a, b);
        let g2 = n.and(b, a); // commuted — must hash to the same gate
        assert_eq!(g1, g2);
        let x1 = n.xor(a, a);
        assert_eq!(n.const_of(x1), Some(false));
    }

    #[test]
    fn mux_folding_identities() {
        let mut n = GateNetlist::new();
        let a = n.input(InputWord::Load { stream: 0, offset: 0 }, 0);
        let t = n.input(InputWord::Load { stream: 0, offset: 0 }, 1);
        let one = n.constant(true);
        let zero = n.constant(false);
        assert_eq!(n.mux(one, t, a), t);
        assert_eq!(n.mux(zero, t, a), a);
        assert_eq!(n.mux(a, t, t), t);
        assert_eq!(n.mux(a, one, zero), a);
        let m = n.mux(a, zero, one);
        assert_eq!(n.def(m), BitDef::Not(a));
    }

    #[test]
    fn sext_is_wiring() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let before = n.stats().gates;
        let e8 = n.sext8_word(a);
        let e16 = n.sext16_word(a);
        assert_eq!(n.stats().gates, before);
        let r = n.eval(|_| 0x80, &[]);
        assert_eq!(r.word(&e8), 0xFFFF_FF80);
        assert_eq!(r.word(&e16), 0x80);
    }

    #[test]
    fn depth_tracks_ripple_chain() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = n.add_word_ripple(a, b, false);
        n.output(0, s);
        let d = n.stats().depth;
        assert!(d >= 32, "ripple carry depth {d} should span the word");
    }

    #[test]
    fn carry_select_adder_is_shallower_than_ripple() {
        let mut fast = GateNetlist::new();
        let a = fast.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = fast.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = fast.add_word(a, b, false);
        fast.output(0, s);

        let mut slow = GateNetlist::new();
        let a = slow.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = slow.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = slow.add_word_ripple(a, b, false);
        slow.output(0, s);

        assert!(
            fast.stats().depth < slow.stats().depth / 2,
            "carry-select depth {} vs ripple {}",
            fast.stats().depth,
            slow.stats().depth
        );
        // Both must agree functionally.
        for (x, y) in [(3u32, 9u32), (u32::MAX, 1), (0x8765_4321, 0x1234_5678)] {
            let inputs =
                |w: InputWord| if matches!(w, InputWord::Load { stream: 0, .. }) { x } else { y };
            let vf = fast.eval(inputs, &[]).word(&fast.outputs()[0].bits);
            let vs = slow.eval(inputs, &[]).word(&slow.outputs()[0].bits);
            assert_eq!(vf, x.wrapping_add(y));
            assert_eq!(vs, x.wrapping_add(y));
        }
    }
}
