//! Session-pool equivalence: shared images and recycled `System`s are
//! pure plumbing.
//!
//! 1. **Recycling determinism** — for every registry workload, a pooled
//!    session (attaching the shared frozen image, recycling a carcass,
//!    rearming repeats in place) reports bit-identically to an unpooled
//!    session that rebuilds everything from scratch.
//! 2. **Copy-on-patch isolation** — two sessions share one program
//!    image; hot-patching one mid-trace changes *its* outcome and only
//!    its outcome: the sibling stays byte-identical to an unshared run.

use std::sync::Arc;

use mb_isa::MbFeatures;
use warp_online::{OnlineConfig, OnlineSession, SessionPool, SessionStatus, TopKPolicy};
use workloads::BuiltWorkload;

fn policy() -> TopKPolicy {
    TopKPolicy { k: 1, min_count: 256 }
}

fn drive(
    mut session: OnlineSession,
) -> Result<warp_online::OnlineReport, warp_online::OnlineError> {
    while session.advance(u64::MAX) == SessionStatus::Runnable {}
    session.into_outcome().expect("session drove to completion")
}

fn run_unpooled(built: &Arc<BuiltWorkload>, config: &OnlineConfig) -> warp_online::OnlineReport {
    drive(OnlineSession::new(Arc::clone(built), config.clone()).with_policy(policy())).unwrap()
}

#[test]
fn pooled_sessions_match_unpooled_on_every_workload() {
    let config = OnlineConfig { repeats: 2, ..OnlineConfig::default() };
    for workload in workloads::all() {
        let built = Arc::new(workload.build(MbFeatures::paper_default()));
        let reference = run_unpooled(&built, &config);

        let pool = Arc::new(SessionPool::new());
        for round in 0..2 {
            let pooled = drive(
                OnlineSession::new(Arc::clone(&built), config.clone())
                    .with_policy(policy())
                    .with_pool(Arc::clone(&pool)),
            )
            .unwrap();
            assert_eq!(
                pooled, reference,
                "{} round {round}: pooled report must be bit-identical",
                workload.name
            );
        }
        let stats = pool.stats();
        assert_eq!(stats.images, 1, "{}: one image per fingerprint", workload.name);
        assert_eq!(stats.image_builds, 1, "{}: the image is built once", workload.name);
        assert!(
            stats.recycled >= 2,
            "{}: both sessions must recycle a carcass (got {})",
            workload.name,
            stats.recycled
        );
    }
}

#[test]
fn seeded_siblings_share_one_image() {
    // Different seeds vary only the data, so they share a fingerprint —
    // and therefore one image and one carcass store.
    let workload = workloads::by_name("crc32").unwrap();
    let config = OnlineConfig::default();
    let pool = Arc::new(SessionPool::new());
    for seed in 0..3u64 {
        let built = Arc::new(workload.build_seeded(MbFeatures::paper_default(), seed));
        let reference = run_unpooled(&built, &config);
        let pooled = drive(
            OnlineSession::new(built, config.clone())
                .with_policy(policy())
                .with_pool(Arc::clone(&pool)),
        )
        .unwrap();
        assert_eq!(pooled, reference, "seed {seed}");
    }
    let stats = pool.stats();
    assert_eq!(stats.images, 1, "seeds must share one image");
    assert_eq!(stats.image_builds, 1);
    assert_eq!(stats.carcasses, 1, "seeds must share one recycled system");
}

#[test]
fn hot_patching_one_pooled_sibling_never_perturbs_the_other() {
    let built = Arc::new(workloads::by_name("brev").unwrap().build(MbFeatures::paper_default()));
    // Slices fine enough that the whole run spans many of them — the
    // patch must land mid-run, not after the program already exited.
    let config = OnlineConfig { slice_cycles: 2_000, ..OnlineConfig::default() };
    let reference = run_unpooled(&built, &config);

    let pool = Arc::new(SessionPool::new());
    let fresh = || {
        OnlineSession::new(Arc::clone(&built), config.clone())
            .with_policy(policy())
            .with_pool(Arc::clone(&pool))
    };
    let mut clean = fresh();
    let mut patched = fresh();

    // Let both siblings run a few slices on the shared image, then
    // hot-patch one mid-run: the kernel's backward branch becomes a
    // fall-through, so the patched session's loop stops iterating and
    // its final memory diverges from the golden model.
    assert_eq!(clean.advance(3), SessionStatus::Runnable);
    assert_eq!(patched.advance(3), SessionStatus::Runnable);
    let nop = mb_isa::encode(&mb_isa::Insn::addik(mb_isa::Reg::R0, mb_isa::Reg::R0, 0));
    patched.patch_imem(built.kernel.tail, &[nop]).unwrap();

    // Interleave to completion, as a server would.
    loop {
        let a = clean.advance(2);
        let b = patched.advance(2);
        if a != SessionStatus::Runnable && b != SessionStatus::Runnable {
            break;
        }
    }
    assert_eq!(patched.status(), SessionStatus::Failed, "the patch must change the outcome");
    let err = patched.into_outcome().unwrap().unwrap_err();
    assert!(
        matches!(err, warp_online::OnlineError::Verify(_)),
        "de-looped kernel must fail verification, got {err:?}"
    );

    let clean = clean.into_outcome().unwrap().unwrap();
    assert_eq!(clean, reference, "the sibling must stay byte-identical to an unshared run");
    assert_eq!(pool.stats().images, 1, "both siblings shared one image");
}
