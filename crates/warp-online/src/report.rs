//! What an online run measured: the warp-event timeline and the
//! throughput/amortization views over it.

use std::fmt;

use warp_core::dpm::DpmReport;
use warp_profiler::ProfilerStats;
use warp_wcla::{ExecModel, WclaStats};

/// One landed warp on the timeline: detection, CAD budget, patch,
/// eviction, and the hardware activity of the installed circuit.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WarpEvent {
    /// Warped loop head (backward-branch target).
    pub head: u32,
    /// Warped loop tail (the backward branch).
    pub tail: u32,
    /// The region's profiler heat when the policy committed.
    pub count_at_detection: u64,
    /// Stable fingerprint of the decompiled kernel (the circuit-cache
    /// key).
    pub fingerprint: u64,
    /// Timeline cycle at which the OCPM started the CAD chain.
    pub detected_cycle: u64,
    /// Lean-processor CAD work charged to the timeline, in MicroBlaze
    /// cycles (on a circuit-cache hit only the reconfiguration —
    /// bitstream write — is charged).
    pub cad_cycles: u64,
    /// Timeline cycle at which the patch landed and execution switched
    /// to hardware. At least `detected_cycle + cad_cycles`; patching is
    /// additionally deferred past slice boundaries where the PC sits
    /// inside the region being rewritten.
    pub patched_cycle: u64,
    /// Instructions retired when the patch landed.
    pub patched_insns: u64,
    /// Whether the circuit came from the shared cache (warm start).
    pub cache_hit: bool,
    /// LUT clusters replayed from the sub-kernel CAD caches instead of
    /// being mapped fresh. Equal to [`total_clusters`](Self::total_clusters)
    /// on a whole-circuit cache hit.
    pub reused_clusters: u64,
    /// Total LUT clusters in the mapped netlist.
    pub total_clusters: u64,
    /// Nets whose first-pass route was computed fresh rather than
    /// restored from the route cache (0 on a whole-circuit cache hit).
    pub rerouted_nets: usize,
    /// Total routed nets in the compiled circuit.
    pub total_nets: usize,
    /// Modeled cycles between detection and the landed patch — the
    /// window in which the background CAD workers overlapped host-side
    /// compilation with continued simulation. Always at least
    /// [`cad_cycles`](Self::cad_cycles).
    pub cad_overlap_cycles: u64,
    /// The region whose circuit this warp evicted, if any.
    pub evicted: Option<(u32, u32)>,
    /// The OCPM's modeled cost breakdown for this kernel.
    pub dpm: DpmReport,
    /// The installed circuit's cycle model — identical to what the
    /// offline pipeline derives for the same kernel.
    pub model: ExecModel,
    /// Hardware activity of this circuit while it held the fabric
    /// (finalized at eviction or end of run).
    pub hw: WclaStats,
}

impl WarpEvent {
    /// Cycles between the OCPM committing and the patch landing.
    #[must_use]
    pub fn warp_latency(&self) -> u64 {
        self.patched_cycle - self.detected_cycle
    }
}

impl fmt::Display for WarpEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "loop {:#06x}..{:#06x}: detected @{}, CAD {} cyc{}, patched @{}",
            self.head,
            self.tail,
            self.detected_cycle,
            self.cad_cycles,
            if self.cache_hit { " (cache hit)" } else { "" },
            self.patched_cycle,
        )?;
        if let Some((h, t)) = self.evicted {
            write!(f, ", evicted {h:#06x}..{t:#06x}")?;
        }
        Ok(())
    }
}

/// Everything measured from one online run.
///
/// `PartialEq` is load-bearing: the determinism tests assert a served
/// session's report equal to a standalone run's, field for field.
#[derive(Clone, PartialEq, Debug)]
pub struct OnlineReport {
    /// Workload name.
    pub name: String,
    /// Application executions folded into the timeline (re-entries of
    /// the same binary; patches persist across them).
    pub repeats: u32,
    /// Scheduler slices executed.
    pub slices: u64,
    /// Total simulated MicroBlaze cycles across all repeats.
    pub cycles: u64,
    /// Total instructions retired in software.
    pub instructions: u64,
    /// The program's exit code (last repeat).
    pub exit_code: u32,
    /// Landed warps, in timeline order.
    pub events: Vec<WarpEvent>,
    /// Profiler hardware counters at end of run (including decays).
    pub profiler: ProfilerStats,
}

impl OnlineReport {
    /// Cycles from power-on to the first landed patch (`None` when the
    /// run never warped).
    #[must_use]
    pub fn time_to_first_warp(&self) -> Option<u64> {
        self.events.first().map(|e| e.patched_cycle)
    }

    /// Cumulative hardware activity across every circuit that held the
    /// fabric.
    #[must_use]
    pub fn hw_total(&self) -> WclaStats {
        let mut total = WclaStats::default();
        for e in &self.events {
            total.invocations += e.hw.invocations;
            total.iterations += e.hw.iterations;
            total.fabric_cycles += e.hw.fabric_cycles;
            total.mb_stall_cycles += e.hw.mb_stall_cycles;
            total.loads += e.hw.loads;
            total.stores += e.hw.stores;
        }
        total
    }

    /// Software instructions per cycle before the first warp landed
    /// (the pure-software phase of the timeline).
    #[must_use]
    pub fn pre_warp_ipc(&self) -> f64 {
        match self.events.first() {
            Some(e) if e.patched_cycle > 0 => e.patched_insns as f64 / e.patched_cycle as f64,
            _ => self.instructions as f64 / self.cycles.max(1) as f64,
        }
    }

    /// Application progress per cycle after the last warp landed,
    /// counting hardware iterations as the instructions they replace.
    ///
    /// Post-warp, kernel iterations retire in the WCLA instead of as
    /// MicroBlaze instructions, so raw software IPC *understates*
    /// progress; this folds each hardware iteration back in at the
    /// software kernel's instruction weight so pre/post throughput
    /// compares like for like.
    #[must_use]
    pub fn post_warp_progress(&self, kernel_insns_per_iter: f64) -> f64 {
        let Some(last) = self.events.last() else {
            return self.pre_warp_ipc();
        };
        let cycles = self.cycles.saturating_sub(last.patched_cycle);
        if cycles == 0 {
            return 0.0;
        }
        let sw_insns = self.instructions.saturating_sub(last.patched_insns) as f64;
        // Only the last event's circuit is active in this window — an
        // earlier circuit's iterations all retired before its eviction,
        // i.e. before the last patch.
        let hw_iters = last.hw.iterations;
        (sw_insns + hw_iters as f64 * kernel_insns_per_iter) / cycles as f64
    }

    /// End-to-end speedup against a software-only execution of the same
    /// repeat sequence (`sw_cycles` = software-only cycles for all
    /// repeats).
    #[must_use]
    pub fn speedup_vs(&self, sw_cycles: u64) -> f64 {
        sw_cycles as f64 / self.cycles.max(1) as f64
    }

    /// The offline stop-the-world amortization view of the same warps:
    /// how many whole-application runs the offline flow would need
    /// before its one-time CAD cost is paid back, given software and
    /// warped per-run seconds. The online runtime pays CAD on a
    /// concurrent lean processor instead, so its break-even is measured
    /// on the timeline ([`time_to_first_warp`](Self::time_to_first_warp))
    /// rather than in runs — this is the A-B number next to it.
    #[must_use]
    pub fn offline_break_even_runs(sw_seconds: f64, warped_seconds: f64, dpm_seconds: f64) -> u64 {
        let gain = sw_seconds - warped_seconds;
        if gain <= 0.0 {
            return u64::MAX;
        }
        (dpm_seconds / gain).ceil().max(1.0) as u64
    }
}

impl fmt::Display for OnlineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cycles, {} slices, {} repeats, {} warp event(s)",
            self.name,
            self.cycles,
            self.slices,
            self.repeats,
            self.events.len()
        )?;
        for e in &self.events {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(patched_cycle: u64, patched_insns: u64, iterations: u64) -> WarpEvent {
        WarpEvent {
            head: 0x100,
            tail: 0x140,
            count_at_detection: 500,
            fingerprint: 0xABCD,
            detected_cycle: patched_cycle / 2,
            cad_cycles: patched_cycle / 2,
            patched_cycle,
            patched_insns,
            cache_hit: false,
            reused_clusters: 0,
            total_clusters: 4,
            rerouted_nets: 2,
            total_nets: 2,
            cad_overlap_cycles: patched_cycle - patched_cycle / 2,
            evicted: None,
            dpm: DpmReport::default(),
            model: ExecModel {
                fabric_clock_hz: 250_000_000,
                mem_ops: 2,
                compute_cycles: 1,
                mac_cycles: 0,
                startup_cycles: 4,
                cycles_per_iteration: 2,
            },
            hw: WclaStats { iterations, ..WclaStats::default() },
        }
    }

    fn report(events: Vec<WarpEvent>) -> OnlineReport {
        OnlineReport {
            name: "test".into(),
            repeats: 1,
            slices: 10,
            cycles: 1000,
            instructions: 800,
            exit_code: 0,
            events,
            profiler: ProfilerStats::default(),
        }
    }

    #[test]
    fn throughput_views_split_at_the_patch() {
        let r = report(vec![event(400, 390, 100)]);
        assert_eq!(r.time_to_first_warp(), Some(400));
        assert!((r.pre_warp_ipc() - 390.0 / 400.0).abs() < 1e-12);
        // Post: (800-390) sw insns + 100 iters * 10 insns over 600 cyc.
        let p = r.post_warp_progress(10.0);
        assert!((p - (410.0 + 1000.0) / 600.0).abs() < 1e-12);
        assert!(p > r.pre_warp_ipc(), "hardware must raise progress per cycle");
    }

    #[test]
    fn post_warp_progress_counts_only_the_active_circuit() {
        // Two warps: the evicted circuit's 1000 iterations all retired
        // before the re-warp and must not inflate the post-warp window.
        let mut evicted = event(200, 180, 1000);
        let second = event(600, 500, 50);
        evicted.evicted = None;
        let r = report(vec![evicted, second]);
        // Post window: (800-500) sw insns + 50 iters * 10 over 400 cyc.
        let p = r.post_warp_progress(10.0);
        assert!((p - (300.0 + 500.0) / 400.0).abs() < 1e-12);
    }

    #[test]
    fn unwarped_report_degrades_gracefully() {
        let r = report(vec![]);
        assert_eq!(r.time_to_first_warp(), None);
        assert!((r.pre_warp_ipc() - 0.8).abs() < 1e-12);
        assert!((r.post_warp_progress(10.0) - 0.8).abs() < 1e-12);
        assert_eq!(r.hw_total(), WclaStats::default());
    }

    #[test]
    fn break_even_runs_matches_closed_form() {
        // gain 0.1 s/run, CAD 0.35 s -> 4 runs.
        assert_eq!(OnlineReport::offline_break_even_runs(1.0, 0.9, 0.35), 4);
        assert_eq!(OnlineReport::offline_break_even_runs(1.0, 0.9, 0.05), 1);
        assert_eq!(OnlineReport::offline_break_even_runs(1.0, 1.1, 0.1), u64::MAX);
    }

    #[test]
    fn display_mentions_events_and_evictions() {
        let mut e = event(400, 390, 10);
        e.evicted = Some((0x80, 0xC0));
        let text = report(vec![e]).to_string();
        assert!(text.contains("warp event"));
        assert!(text.contains("evicted"));
    }
}
