//! The reconfigurable WCLA slot.
//!
//! The offline flow maps a fresh [`WclaDevice`] per run; an online
//! runtime instead owns **one** fabric that is reconfigured in place
//! when a re-warp evicts the previous circuit. The slot is the
//! peripheral mapped at [`WCLA_BASE`](warp_wcla::WCLA_BASE): the
//! orchestrator keeps a handle and swaps the hosted device when a warp
//! event lands, while the bus keeps talking to the same address window.
//! An empty slot (before the first warp) reads as zero and ignores
//! writes — the unconfigured fabric.

use std::sync::{Arc, Mutex};

use mb_sim::{Bram, BusResponse, Peripheral};
use warp_wcla::WclaDevice;

/// Orchestrator-side handle to the fabric slot.
///
/// Shared via `Arc<Mutex<_>>` (not `Rc<RefCell<_>>`) so the session that
/// owns it stays `Send` — a server migrates sessions between worker
/// threads. The lock is uncontended: the port touches it from the bus
/// during a slice, the session reconfigures it between slices, and the
/// slot is never shared across sessions.
#[derive(Clone, Default)]
pub(crate) struct SharedSlot {
    inner: Arc<Mutex<Option<WclaDevice>>>,
}

impl SharedSlot {
    pub(crate) fn new() -> Self {
        SharedSlot::default()
    }

    /// Reconfigures the fabric: the previous circuit (if any) is
    /// evicted and replaced.
    pub(crate) fn install(&self, device: WclaDevice) {
        *self.inner.lock().expect("wcla slot lock") = Some(device);
    }

    /// The bus-facing peripheral for [`System::map_peripheral`].
    ///
    /// [`System::map_peripheral`]: mb_sim::System::map_peripheral
    pub(crate) fn port(&self) -> SlotPort {
        SlotPort { inner: Arc::clone(&self.inner) }
    }
}

/// The peripheral face of the slot (one per mapped system; all share
/// the same hosted device).
pub(crate) struct SlotPort {
    inner: Arc<Mutex<Option<WclaDevice>>>,
}

impl Peripheral for SlotPort {
    fn name(&self) -> &str {
        "wcla-slot"
    }

    fn read(&mut self, offset: u32, dmem: &mut Bram) -> BusResponse {
        match self.inner.lock().expect("wcla slot lock").as_mut() {
            Some(device) => device.read(offset, dmem),
            None => BusResponse::immediate(0),
        }
    }

    fn write(&mut self, offset: u32, value: u32, dmem: &mut Bram) -> u32 {
        match self.inner.lock().expect("wcla slot lock").as_mut() {
            Some(device) => device.write(offset, value, dmem),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slot_is_inert() {
        let slot = SharedSlot::new();
        let mut port = slot.port();
        let mut dmem = Bram::new(256);
        assert_eq!(port.read(0x04, &mut dmem).value, 0);
        assert_eq!(port.read(0x04, &mut dmem).wait, 0);
        assert_eq!(port.write(0x00, 1, &mut dmem), 0);
        assert_eq!(dmem.read_word(0).unwrap(), 0, "writes to an empty slot do nothing");
    }

    #[test]
    fn installed_device_serves_all_ports() {
        use mb_isa::MbFeatures;
        use warp_cdfg::decompile_loop;
        use warp_wcla::{device::regs, WclaCircuit};

        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let (circuit, _) = WclaCircuit::build(kernel).unwrap();
        let (device, stats) = WclaDevice::new(circuit, 85_000_000);

        let slot = SharedSlot::new();
        let mut port_a = slot.port();
        let mut port_b = slot.port();
        slot.install(device);

        let mut dmem = Bram::new(64 * 1024);
        dmem.load_words(0x1000, &[0x8000_0000, 1]).unwrap();
        port_a.write(regs::COUNT, 2, &mut dmem);
        port_a.write(regs::BASE0, 0x1000, &mut dmem);
        port_a.write(regs::BASE0 + 4, 0x2000, &mut dmem);
        // The second port drives the same fabric.
        port_b.write(regs::CTRL, 1, &mut dmem);

        assert_eq!(dmem.read_word(0x2000).unwrap(), 0x0000_0001);
        assert_eq!(stats.lock().unwrap().invocations, 1);
    }
}
