//! When to warp: pluggable decision policies for A-B experiments.

use warp_profiler::{HotRegion, ProfilerStats};

/// What the runtime knows when it asks a policy about a candidate.
#[derive(Clone, Copy, Debug)]
pub struct PolicyCtx {
    /// The currently-warped region (`(head, tail)`), if any.
    pub active: Option<(u32, u32)>,
    /// The active region's *current* heat in the profiler cache (zero
    /// once decay has evicted it). Policies use this for hysteresis: a
    /// challenger should be hotter than the incumbent before paying a
    /// reconfiguration.
    pub active_count: u64,
    /// Warp events committed so far (patches that actually landed).
    pub warps_committed: usize,
    /// Simulated cycles elapsed on the timeline.
    pub timeline_cycles: u64,
    /// Profiler hardware counters at decision time.
    pub profiler: ProfilerStats,
}

/// A warp-decision policy.
///
/// The orchestrator offers candidates from
/// [`Profiler::hot_regions`](warp_profiler::Profiler::hot_regions) in
/// heat order (hottest first), already excluding the active region and
/// regions that previously failed decompilation. Returning `true`
/// commits the runtime to the candidate: the OCPM starts its CAD work
/// and the warp lands when the modeled cycle budget elapses.
///
/// Policies are `Send`: they live inside an
/// [`OnlineSession`](crate::OnlineSession) that a multi-session server
/// migrates between worker threads.
pub trait WarpPolicy: Send {
    /// Whether to start warping `candidate` now.
    fn should_warp(&mut self, candidate: &HotRegion, ctx: &PolicyCtx) -> bool;

    /// Short policy name for reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Warp any region whose heat crosses a fixed threshold — the paper's
/// "most frequent loop" trigger with hysteresis against the incumbent.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdPolicy {
    /// Minimum saturating count before a region is worth hardware.
    pub min_count: u64,
}

impl WarpPolicy for ThresholdPolicy {
    fn should_warp(&mut self, candidate: &HotRegion, ctx: &PolicyCtx) -> bool {
        // Strictly hotter than the incumbent's current (decaying) heat:
        // an evicted kernel's stale counters cannot win the slot back,
        // and two frozen counters cannot thrash the fabric A-B-A.
        candidate.count >= self.min_count && candidate.count > ctx.active_count
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// Threshold with a hard cap on total warp events — at most `k`
/// configurations per run, for controlled experiments ("warp exactly
/// the top kernel", "allow one re-warp").
#[derive(Clone, Copy, Debug)]
pub struct TopKPolicy {
    /// Maximum warp events per run.
    pub k: usize,
    /// Minimum heat, as in [`ThresholdPolicy`].
    pub min_count: u64,
}

impl WarpPolicy for TopKPolicy {
    fn should_warp(&mut self, candidate: &HotRegion, ctx: &PolicyCtx) -> bool {
        ctx.warps_committed < self.k
            && ThresholdPolicy { min_count: self.min_count }.should_warp(candidate, ctx)
    }

    fn name(&self) -> &'static str {
        "top-k"
    }
}

/// Never warp: the software-only arm of an A-B experiment, run through
/// the identical slice scheduler so timelines compare like for like.
#[derive(Clone, Copy, Debug, Default)]
pub struct NeverPolicy;

impl WarpPolicy for NeverPolicy {
    fn should_warp(&mut self, _candidate: &HotRegion, _ctx: &PolicyCtx) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "never"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(active_count: u64, warps: usize) -> PolicyCtx {
        PolicyCtx {
            active: None,
            active_count,
            warps_committed: warps,
            timeline_cycles: 0,
            profiler: ProfilerStats::default(),
        }
    }

    fn region(count: u64) -> HotRegion {
        HotRegion { head: 0x100, tail: 0x140, count }
    }

    #[test]
    fn threshold_requires_min_and_hysteresis() {
        let mut p = ThresholdPolicy { min_count: 100 };
        assert!(!p.should_warp(&region(99), &ctx(0, 0)));
        assert!(p.should_warp(&region(100), &ctx(0, 0)));
        // Not hotter than the incumbent: no reconfiguration.
        assert!(!p.should_warp(&region(100), &ctx(100, 1)));
        assert!(p.should_warp(&region(101), &ctx(100, 1)));
    }

    #[test]
    fn top_k_caps_commitments() {
        let mut p = TopKPolicy { k: 1, min_count: 10 };
        assert!(p.should_warp(&region(50), &ctx(0, 0)));
        assert!(!p.should_warp(&region(50_000), &ctx(0, 1)), "k exhausted");
    }

    #[test]
    fn never_never_warps() {
        let mut p = NeverPolicy;
        assert!(!p.should_warp(&region(u64::MAX), &ctx(0, 0)));
        assert_eq!(p.name(), "never");
    }
}
