//! The online warp runtime: profile, partition, and hot-patch *while
//! the program runs*.
//!
//! Everything the offline flow in `warp-core` does between two complete
//! executions, this crate does **on the simulated timeline of a single
//! execution** — which is what the paper's warp processor actually is:
//!
//! 1. the MicroBlaze executes in bounded cycle slices
//!    ([`mb_sim::System::run_slice`]);
//! 2. an on-chip profiler ([`warp_profiler::Profiler`], sitting
//!    directly on the retirement stream as a
//!    [`mb_sim::TraceSink`]) accumulates backward-branch heat, decaying
//!    periodically so the ranking tracks the *current* phase of the
//!    program;
//! 3. when a region crosses the [`WarpPolicy`]'s bar, the modeled
//!    **OCPM** (on-chip partitioning module — the paper's DPM running
//!    the lean ROCPART tools) runs the existing typed pipeline stages
//!    ([`warp_core::pipeline`]), optionally warm-starting from a shared
//!    [`warp_core::CircuitCache`]; the CAD work is charged to the
//!    simulated timeline as lean-processor cycles, so warp latency is a
//!    first-class simulated quantity;
//! 4. when the CAD budget elapses, the runtime **hot-patches
//!    instruction memory mid-run** (through
//!    [`mb_sim::System::imem_mut`], which the pre-decoded fetch store
//!    observes via `Bram::generation`) and execution continues on the
//!    WCLA — including mid-loop: the invocation stub marshals the
//!    *current* counter, pointers, and accumulators, so the remaining
//!    iterations finish in hardware;
//! 5. if the hot region later *shifts* (a phased workload), the decayed
//!    profiler promotes the new loop, the old circuit is evicted (its
//!    patch reverted), and the runtime re-warps.
//!
//! The entry point is [`Orchestrator`]; the outcome is an
//! [`OnlineReport`] carrying the warp-event timeline (detection cycle,
//! CAD budget, patch cycle, eviction), per-circuit hardware activity,
//! and amortization comparisons against the offline
//! [`DpmReport`](warp_core::dpm::DpmReport) model.
//!
//! # Example
//!
//! ```
//! use mb_isa::MbFeatures;
//! use warp_online::{OnlineConfig, Orchestrator, ThresholdPolicy};
//!
//! let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
//! let config = OnlineConfig::default();
//! let report = Orchestrator::new(&built, config)
//!     .with_policy(ThresholdPolicy { min_count: 256 })
//!     .run()
//!     .unwrap();
//! // brev's kernel is cheap to compile: the warp lands mid-run and the
//! // remaining iterations execute in hardware.
//! assert_eq!(report.events.len(), 1);
//! assert!(report.events[0].patched_cycle < report.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod orchestrator;
mod policy;
mod pool;
mod report;
mod session;
mod slot;

pub use error::OnlineError;
pub use orchestrator::{OnlineConfig, Orchestrator};
pub use policy::{NeverPolicy, PolicyCtx, ThresholdPolicy, TopKPolicy, WarpPolicy};
pub use pool::{ImageStore, PoolStats, SessionPool};
pub use report::{OnlineReport, WarpEvent};
pub use session::{OnlineSession, SessionStatus};
