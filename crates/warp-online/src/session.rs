//! The online runtime as an owned, resumable state machine.
//!
//! [`Orchestrator::run`](crate::Orchestrator::run) is the one-shot
//! driver; an [`OnlineSession`] is the same runtime with the run loop
//! turned inside out. All of the loop-carried state — the simulated
//! [`System`], the profiler, the OCPM's in-flight/pending CAD job, the
//! active patch, the warp-event timeline — lives in the session struct,
//! and [`OnlineSession::advance`] executes a bounded number of
//! scheduler slices before handing control back.
//!
//! That inversion is what makes **warp-as-a-service** possible: a
//! session is `Send` and `'static` (it owns its workload via `Arc` and
//! shares the [`CircuitCache`]/[`CadService`] via `Arc`), so a server
//! can host thousands of them and time-slice runnable sessions across a
//! fixed worker pool, migrating a session between threads at any
//! `advance` boundary. Because `advance` replays exactly the loop body
//! of `Orchestrator::run` — same slice budget, same join/patch/detect
//! ordering at every slice boundary — a served session's
//! [`OnlineReport`] is bit-identical to a standalone run of the same
//! workload, no matter how its slices interleave with other sessions or
//! how many worker threads the server uses. The compile-time
//! `assert_send` at the bottom of this module keeps regressions from
//! ever reaching the server.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

use mb_sim::{ProgramImage, StopReason, System};
use warp_core::dpm::{costs, DpmReport};
use warp_core::pipeline::{self, CompiledWcla};
use warp_core::{CadHandle, CadService, CircuitCache, WarpError};
use warp_profiler::{HotRegion, Profiler};
use warp_wcla::patch::{apply_patch, revert_patch, PatchPlan};
use warp_wcla::CadCaches;
use warp_wcla::{WclaDevice, WclaStats, WCLA_BASE, WCLA_WINDOW};
use workloads::BuiltWorkload;

use crate::error::OnlineError;
use crate::orchestrator::OnlineConfig;
use crate::policy::{PolicyCtx, ThresholdPolicy, WarpPolicy};
use crate::pool::SessionPool;
use crate::report::{OnlineReport, WarpEvent};
use crate::slot::SharedSlot;

/// What [`OnlineSession::advance`] left behind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SessionStatus {
    /// The program has more work; call `advance` again.
    Runnable,
    /// All repeats exited and verified; the [`OnlineReport`] is ready
    /// ([`OnlineSession::into_outcome`]).
    Finished,
    /// The run failed; the [`OnlineError`] is in
    /// [`OnlineSession::into_outcome`].
    Failed,
}

/// A committed warp whose CAD budget is still elapsing on the timeline.
struct PendingWarp {
    region: HotRegion,
    compiled: Arc<CompiledWcla>,
    plan: PatchPlan,
    detected_cycle: u64,
    cad_cycles: u64,
    ready_at: u64,
    cache_hit: bool,
}

/// A committed warp whose CAD chain is still running on a background
/// worker. Decompilation and patch planning already happened
/// synchronously at detection; only compilation is in flight.
struct InFlightWarp {
    region: HotRegion,
    plan: PatchPlan,
    detected_cycle: u64,
    /// First timeline cycle at which the background result may be
    /// consumed: detection plus the decompile floor — a lower bound on
    /// the modeled CAD budget computable *without* compiling. Joining
    /// no earlier than this keeps the timeline independent of how fast
    /// the host workers are.
    join_at: u64,
    handle: CadHandle<Result<CompiledWcla, WarpError>>,
}

/// The OCPM's one-job-at-a-time state machine.
enum CadState {
    /// No warp committed; detection may run.
    Idle,
    /// Compilation running on a background worker.
    InFlight(InFlightWarp),
    /// Compilation finished (or cache hit); the modeled budget is still
    /// elapsing toward `ready_at`.
    Ready(PendingWarp),
}

/// The warp currently holding the fabric.
struct ActiveWarp {
    region: (u32, u32),
    plan: PatchPlan,
    stats: Arc<Mutex<WclaStats>>,
    event_index: usize,
}

/// The online warp runtime for one workload, sliced for cooperative
/// scheduling. See the module docs for how this relates to
/// [`Orchestrator`](crate::Orchestrator).
pub struct OnlineSession {
    built: Arc<BuiltWorkload>,
    config: OnlineConfig,
    policy: Box<dyn WarpPolicy>,
    cache: Option<Arc<CircuitCache>>,
    service: Arc<CadService>,
    cad_caches: Arc<CadCaches>,
    /// Shared-image + recycled-`System` store (see [`SessionPool`]).
    pool: Option<Arc<SessionPool>>,
    /// This session's workload fingerprint, computed once on first use.
    fingerprint: Option<u64>,
    /// The attached shared image (pooled sessions only).
    image: Option<Arc<ProgramImage>>,

    profiler: Profiler,
    slot: SharedSlot,
    /// The live system of the current repeat (`None` between repeats
    /// and after the run completes).
    sys: Option<System>,
    rep: u32,

    cycles: u64,
    instructions: u64,
    slices: u64,
    slices_since_decay: u32,
    exit_code: u32,
    events: Vec<WarpEvent>,
    active: Option<ActiveWarp>,
    cad: CadState,
    blacklist: BTreeSet<(u32, u32)>,

    outcome: Option<Result<OnlineReport, OnlineError>>,
}

impl OnlineSession {
    /// Creates a session with the default [`ThresholdPolicy`], no shared
    /// circuit cache, and a private [`CadService`] sized by
    /// `WARP_CAD_THREADS` — the exact defaults of
    /// [`Orchestrator::new`](crate::Orchestrator::new).
    #[must_use]
    pub fn new(built: Arc<BuiltWorkload>, config: OnlineConfig) -> Self {
        let profiler = Profiler::new(config.options.profiler);
        OnlineSession {
            built,
            config,
            policy: Box::new(ThresholdPolicy { min_count: 2048 }),
            cache: None,
            service: Arc::new(CadService::from_env()),
            cad_caches: Arc::new(CadCaches::new()),
            pool: None,
            fingerprint: None,
            image: None,
            profiler,
            slot: SharedSlot::new(),
            sys: None,
            rep: 0,
            cycles: 0,
            instructions: 0,
            slices: 0,
            slices_since_decay: 0,
            exit_code: 0,
            events: Vec::new(),
            active: None,
            cad: CadState::Idle,
            blacklist: BTreeSet::new(),
            outcome: None,
        }
    }

    /// Replaces the warp policy.
    #[must_use]
    pub fn with_policy(mut self, policy: impl WarpPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Replaces the warp policy with an already-boxed one.
    #[must_use]
    pub fn with_policy_box(mut self, policy: Box<dyn WarpPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Shares a circuit cache: kernels compiled by other sessions (or
    /// previous runs) warm-start this one, paying only reconfiguration
    /// cycles on the timeline; this session's compiles warm everyone
    /// else. The cache's sub-kernel [`CadCaches`] ride along into
    /// background compiles.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<CircuitCache>) -> Self {
        self.cad_caches = cache.cad_caches();
        self.cache = Some(cache);
        self
    }

    /// Shares a CAD worker pool instead of owning one. A server hosting
    /// thousands of sessions passes one pool; results are still consumed
    /// only at deterministic simulated-time boundaries, so the pool (and
    /// its contention) never leaks into the modeled timeline.
    #[must_use]
    pub fn with_service(mut self, service: Arc<CadService>) -> Self {
        self.service = service;
        self
    }

    /// Shares a [`SessionPool`]: this session attaches the pooled
    /// frozen program image (building it on first use) instead of
    /// rebuilding decode/block stores privately, recycles an idle
    /// `System` carcass instead of allocating one, rearms repeats in
    /// place, and parks its `System` back in the pool when it
    /// finishes. Execution is bit-identical to an unpooled session —
    /// the pool only changes where the buffers come from.
    ///
    /// Combined with [`with_cache`](OnlineSession::with_cache) (the
    /// opt-in to cross-session artifact sharing), the pool's
    /// [`ImageStore`](crate::ImageStore) additionally keeps every
    /// compiled warp circuit with its program image: a region evicted
    /// from the bounded cache is re-served as a bitstream rewrite
    /// instead of a recompile. Without `with_cache` the store is never
    /// consulted and tenancy stays invisible.
    #[must_use]
    pub fn with_pool(mut self, pool: Arc<SessionPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Attaches `pool` only if the session has none yet — the hook a
    /// serving worker uses to give every session it schedules its own
    /// per-worker pool without overriding an explicit
    /// [`with_pool`](OnlineSession::with_pool) choice. Safe at any
    /// point: a session that migrates workers keeps its cached image
    /// and simply parks its carcass in the last worker's pool.
    pub fn adopt_pool(&mut self, pool: &Arc<SessionPool>) {
        if self.pool.is_none() {
            self.pool = Some(Arc::clone(pool));
        }
    }

    /// The workload this session runs.
    #[must_use]
    pub fn workload(&self) -> &BuiltWorkload {
        &self.built
    }

    /// Simulated cycles accumulated so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired in software so far.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Scheduler slices executed so far.
    #[must_use]
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Warp events landed so far.
    #[must_use]
    pub fn warp_count(&self) -> usize {
        self.events.len()
    }

    /// Timeline cycle of the first landed patch, if any yet.
    #[must_use]
    pub fn time_to_first_warp(&self) -> Option<u64> {
        self.events.first().map(|e| e.patched_cycle)
    }

    /// Current status without advancing.
    #[must_use]
    pub fn status(&self) -> SessionStatus {
        match &self.outcome {
            None => SessionStatus::Runnable,
            Some(Ok(_)) => SessionStatus::Finished,
            Some(Err(_)) => SessionStatus::Failed,
        }
    }

    /// Consumes the session and returns its outcome: `Some` once
    /// [`advance`](OnlineSession::advance) reported
    /// [`Finished`](SessionStatus::Finished) or
    /// [`Failed`](SessionStatus::Failed), `None` while still runnable.
    #[must_use]
    pub fn into_outcome(self) -> Option<Result<OnlineReport, OnlineError>> {
        self.outcome
    }

    /// Hot-patches the live instruction memory (tenant-driven code
    /// update over the wire protocol). The pre-decoded fetch store and
    /// block/trace stores invalidate through the BRAM write log, so the
    /// next fetch of a patched word sees the new code — exactly the
    /// interface the OCPM itself patches through.
    ///
    /// # Errors
    ///
    /// [`OnlineError::Patch`] if the write falls outside instruction
    /// memory.
    pub fn patch_imem(&mut self, addr: u32, words: &[u32]) -> Result<(), OnlineError> {
        self.ensure_system()?;
        let sys = self.sys.as_mut().expect("ensure_system populated the system");
        sys.imem_mut().load_words(addr, words).map_err(OnlineError::Patch)
    }

    /// Instantiates the current repeat's system if none is live:
    /// load program + data, map the fabric slot, re-apply the standing
    /// patch (a re-entered application starts already warped).
    ///
    /// With a [`SessionPool`], "instantiate" means: attach the shared
    /// program image (building it on this workload's first use) to a
    /// recycled carcass — or to a fresh `System` when the pool has
    /// none — then load this session's data on top.
    fn ensure_system(&mut self) -> Result<(), OnlineError> {
        if self.sys.is_some() {
            return Ok(());
        }
        let mut sys = if let Some(pool) = self.pool.clone() {
            let image = self.image_for(&pool);
            let mut sys = match pool.acquire(self.fingerprint.expect("image_for set the key")) {
                Some(mut sys) => {
                    sys.reset_run_state(image.entry_pc());
                    sys
                }
                None => System::new(self.config.mb.clone().with_features(self.built.features)),
            };
            sys.attach_image(&image);
            for (addr, words) in &self.built.data {
                sys.load_data(*addr, words).map_err(OnlineError::Run)?;
            }
            sys
        } else {
            self.built.instantiate(&self.config.mb)
        };
        sys.map_peripheral(WCLA_BASE, WCLA_WINDOW, Box::new(self.slot.port()));
        if let Some(a) = &self.active {
            apply_patch(sys.imem_mut(), &a.plan).map_err(OnlineError::Patch)?;
        }
        self.sys = Some(sys);
        Ok(())
    }

    /// The shared image for this workload, from the session's cached
    /// handle, the pool, or (first use fleet-wide) a warm capture run.
    fn image_for(&mut self, pool: &SessionPool) -> Arc<ProgramImage> {
        if let Some(image) = &self.image {
            return Arc::clone(image);
        }
        let key = match self.fingerprint {
            Some(k) => k,
            None => {
                let k = self.built.fingerprint(&self.config.mb);
                self.fingerprint = Some(k);
                k
            }
        };
        let built = &self.built;
        let config = &self.config;
        let image = pool.image_or_build(key, || {
            let (image, warm) = capture_warm_image(built, config);
            // The capture run's system becomes the first carcass.
            pool.release(key, warm);
            image
        });
        self.image = Some(Arc::clone(&image));
        image
    }

    /// Rolls the live system into the next repeat **in place**: reset
    /// run state, restore the pristine program (re-attach the shared
    /// image), reload data, re-apply the standing patch. Equivalent to
    /// dropping the system and instantiating a fresh one — the repeat's
    /// timeline is bit-identical — but allocation-free.
    ///
    /// Unpooled sessions have no image to restore from, so they keep
    /// the drop-and-rebuild path.
    fn rearm_repeat(&mut self) -> Result<(), OnlineError> {
        let Some(image) = self.image.clone() else {
            self.sys = None;
            return Ok(());
        };
        let sys = self.sys.as_mut().expect("exited repeat had a live system");
        sys.reset_run_state(image.entry_pc());
        sys.attach_image(&image);
        for (addr, words) in &self.built.data {
            sys.load_data(*addr, words).map_err(OnlineError::Run)?;
        }
        if let Some(a) = &self.active {
            apply_patch(sys.imem_mut(), &a.plan).map_err(OnlineError::Patch)?;
        }
        Ok(())
    }

    /// The pool's fleet-shared circuit store, engaged only when the
    /// session opted into cross-session artifact sharing via
    /// [`with_cache`](OnlineSession::with_cache) — without that opt-in,
    /// tenancy must stay invisible to the modeled timeline.
    fn circuit_store(&self) -> Option<&CircuitCache> {
        if self.cache.is_some() {
            self.pool.as_deref().map(SessionPool::circuits)
        } else {
            None
        }
    }

    /// Parks the finished session's `System` in the pool (or drops it).
    fn retire_system(&mut self) {
        // A background compile the timeline never consumed (the program
        // exited before the join boundary) still produced a host-side
        // artifact: publish it to the image store so sibling sessions
        // of the same binary never re-pay the CAD chain. Host memory
        // only — the modeled on-chip cache is untouched.
        if self.circuit_store().is_some() {
            if let CadState::InFlight(f) = std::mem::replace(&mut self.cad, CadState::Idle) {
                if let Ok(compiled) = f.handle.wait() {
                    let store = self.circuit_store().expect("checked above");
                    store.insert_compiled(&Arc::new(compiled));
                }
            }
        }
        let Some(mut sys) = self.sys.take() else {
            return;
        };
        if let (Some(pool), Some(key)) = (&self.pool, self.fingerprint) {
            // The fabric slot port is session-private: unmap it so it
            // cannot shadow the next session's mapping.
            sys.unmap_peripheral(WCLA_BASE);
            pool.release(key, sys);
        }
    }

    /// Runs up to `max_slices` scheduler slices (each bounded by the
    /// config's `slice_cycles`) and returns the resulting status. A
    /// finished or failed session returns immediately without work —
    /// `advance` is idempotent past the end.
    ///
    /// Each slice performs exactly the boundary work of
    /// [`Orchestrator::run`](crate::Orchestrator::run)'s loop body:
    /// profiler decay on its cadence, joining a background compile at
    /// its deterministic boundary, landing a ready patch, offering
    /// candidates to the policy, and rolling into the next repeat when
    /// the program exits — so any slicing of a run produces the
    /// identical timeline.
    pub fn advance(&mut self, max_slices: u64) -> SessionStatus {
        for _ in 0..max_slices {
            if self.outcome.is_some() {
                break;
            }
            if let Err(e) = self.step_slice() {
                self.outcome = Some(Err(e));
            }
        }
        self.status()
    }

    /// One scheduler slice plus its boundary work. Sets `outcome` when
    /// the final repeat completes.
    fn step_slice(&mut self) -> Result<(), OnlineError> {
        self.ensure_system()?;
        let sys = self.sys.as_mut().expect("ensure_system populated the system");

        let out = sys
            .run_slice(self.config.slice_cycles, &mut self.profiler)
            .map_err(OnlineError::Run)?;
        self.cycles += out.cycles;
        self.instructions += out.instructions;
        self.slices += 1;

        if self.config.decay_interval > 0 {
            self.slices_since_decay += 1;
            if self.slices_since_decay >= self.config.decay_interval {
                self.profiler.decay();
                self.slices_since_decay = 0;
            }
        }

        // Join: the background compile may only be consumed at the
        // first slice boundary at-or-after `join_at`. The host may
        // block here (the worker is slower than the floor) or the
        // result may have been waiting for many slices — the modeled
        // timeline cannot tell the difference.
        if matches!(&self.cad, CadState::InFlight(f) if self.cycles >= f.join_at) {
            let CadState::InFlight(f) = std::mem::replace(&mut self.cad, CadState::Idle) else {
                unreachable!("matched InFlight above")
            };
            match f.handle.wait() {
                Ok(compiled) => {
                    let compiled = Arc::new(compiled);
                    if let Some(c) = &self.cache {
                        c.insert_compiled(&compiled);
                    }
                    if let Some(store) = self.circuit_store() {
                        store.insert_compiled(&compiled);
                    }
                    let cad_cycles = cad_timeline_cycles(
                        &compiled.dpm,
                        false,
                        self.config.mb.clock_hz,
                        self.config.options.dpm_clock_hz,
                    );
                    self.cad = CadState::Ready(PendingWarp {
                        region: f.region,
                        compiled,
                        plan: f.plan,
                        detected_cycle: f.detected_cycle,
                        cad_cycles,
                        ready_at: f.detected_cycle + cad_cycles,
                        cache_hit: false,
                    });
                }
                // Not WCLA-implementable: blacklisted at this
                // deterministic boundary, software continues.
                Err(e) if rejects_region(&e) => {
                    self.blacklist.insert((f.region.head, f.region.tail));
                }
                Err(e) => return Err(OnlineError::Warp(e)),
            }
        }

        // CAD completion: the pending warp's lean-processor budget has
        // elapsed — hot-patch, unless the PC sits in the stub words
        // about to be rewritten (retry next slice; the stub is
        // straight-line and exits quickly).
        let sys = self.sys.as_mut().expect("system is live within a slice");
        let ready = matches!(&self.cad, CadState::Ready(p) if self.cycles >= p.ready_at);
        if ready && stub_is_clear(sys.cpu().pc(), self.active.as_ref()) {
            let CadState::Ready(p) = std::mem::replace(&mut self.cad, CadState::Idle) else {
                unreachable!("matched Ready above")
            };
            let mut evicted = None;
            if let Some(old) = self.active.take() {
                revert_patch(sys.imem_mut(), &old.plan).map_err(OnlineError::Patch)?;
                self.events[old.event_index].hw = *old.stats.lock().expect("wcla stats lock");
                evicted = Some(old.region);
            }
            apply_patch(sys.imem_mut(), &p.plan).map_err(OnlineError::Patch)?;
            let (device, stats) =
                WclaDevice::new(p.compiled.circuit.clone(), self.config.mb.clock_hz);
            self.slot.install(device);
            let event_index = self.events.len();
            let work = p.compiled.work;
            let total_nets = p.compiled.circuit.compiled.route_stats.nets;
            self.events.push(WarpEvent {
                head: p.region.head,
                tail: p.region.tail,
                count_at_detection: p.region.count,
                fingerprint: p.compiled.fingerprint,
                detected_cycle: p.detected_cycle,
                cad_cycles: p.cad_cycles,
                patched_cycle: self.cycles,
                patched_insns: self.instructions,
                cache_hit: p.cache_hit,
                // A whole-circuit hit replayed everything; a (possibly
                // incremental) compile reports what its sub-kernel
                // caches replayed.
                reused_clusters: if p.cache_hit {
                    work.map.clusters
                } else {
                    work.map.clusters_reused
                },
                total_clusters: work.map.clusters,
                rerouted_nets: if p.cache_hit { 0 } else { total_nets - work.fabric.nets_restored },
                total_nets,
                cad_overlap_cycles: self.cycles - p.detected_cycle,
                evicted,
                dpm: p.compiled.dpm,
                model: p.compiled.circuit.model,
                hw: WclaStats::default(),
            });
            self.active = Some(ActiveWarp {
                region: (p.region.head, p.region.tail),
                plan: p.plan,
                stats,
                event_index,
            });
        } else if matches!(self.cad, CadState::Idle) {
            // Detection: offer ranked candidates to the policy.
            let active_key = self.active.as_ref().map(|a| a.region);
            let profiler_stats = self.profiler.stats();
            let ranked = self.profiler.hot_regions();
            let ctx = PolicyCtx {
                active: active_key,
                active_count: active_key
                    .and_then(|(h, t)| ranked.iter().find(|r| (r.head, r.tail) == (h, t)))
                    .map_or(0, |r| r.count),
                warps_committed: self.events.len(),
                timeline_cycles: self.cycles,
                profiler: profiler_stats,
            };
            let blacklist = &self.blacklist;
            let policy = &mut self.policy;
            let candidate = ranked
                .iter()
                .filter(|r| Some((r.head, r.tail)) != active_key)
                .filter(|r| !blacklist.contains(&(r.head, r.tail)))
                .find(|r| policy.should_warp(r, &ctx))
                .copied();
            if let Some(region) = candidate {
                match begin_warp(
                    &self.built,
                    self.cache.as_deref(),
                    self.circuit_store(),
                    &self.service,
                    &self.cad_caches,
                    &self.config,
                    &region,
                    self.cycles,
                ) {
                    Ok(Some(state)) => self.cad = state,
                    // Not decompilable/patchable: leave the region in
                    // software, permanently.
                    Ok(None) => {
                        self.blacklist.insert((region.head, region.tail));
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        // Detection and patching run on *every* slice boundary,
        // including the one where the program exits: the profiler's
        // view persists across re-entries, so heat retired in a run's
        // final slice (a kernel that finishes right before the exit)
        // must still be able to commit a warp — it lands in the next
        // repeat, already patched at load time.
        if let StopReason::Exited(code) = out.stop {
            self.exit_code = code;
            let sys = self.sys.as_ref().expect("exited repeat had a live system");
            self.built.verify(sys.dmem()).map_err(OnlineError::Verify)?;
            self.rep += 1;
            if self.rep >= self.config.repeats.max(1) {
                self.outcome = Some(Ok(self.finalize()));
                self.retire_system();
            } else {
                self.rearm_repeat()?;
            }
            return Ok(());
        }
        if self.cycles >= self.config.max_cycles {
            return Err(OnlineError::BudgetExhausted {
                cycles: self.cycles,
                limit: self.config.max_cycles,
            });
        }
        Ok(())
    }

    /// Builds the final report (last repeat exited and verified).
    fn finalize(&mut self) -> OnlineReport {
        if let Some(a) = &self.active {
            self.events[a.event_index].hw = *a.stats.lock().expect("wcla stats lock");
        }
        OnlineReport {
            name: self.built.name.clone(),
            repeats: self.config.repeats.max(1),
            slices: self.slices,
            cycles: self.cycles,
            instructions: self.instructions,
            exit_code: self.exit_code,
            events: self.events.clone(),
            profiler: self.profiler.stats(),
        }
    }
}

/// Builds a workload's shared image the way the pool expects: load,
/// prewarm, run one full warm pass (the block store learns the OPB
/// split at the exit store), prewarm again (that learn invalidated the
/// exit-sequence block), capture. The warm run's `System` is returned
/// too — it makes a perfectly good first carcass.
fn capture_warm_image(built: &BuiltWorkload, config: &OnlineConfig) -> (ProgramImage, System) {
    let mut warm = built.instantiate(&config.mb);
    warm.prewarm();
    // A budget overrun or run error just means a partially warmed
    // image: siblings lazily build (privately) whatever is missing.
    let _ = warm.run(config.max_cycles);
    warm.prewarm();
    let image = warm.capture_image(built.program.base);
    (image, warm)
}

/// Builds a session from the parts an [`Orchestrator`](crate::Orchestrator)
/// holds.
pub(crate) fn session_from_parts(
    built: Arc<BuiltWorkload>,
    config: OnlineConfig,
    policy: Box<dyn WarpPolicy>,
    cache: Option<Arc<CircuitCache>>,
) -> OnlineSession {
    let mut session = OnlineSession::new(built, config).with_policy_box(policy);
    if let Some(cache) = cache {
        session = session.with_cache(cache);
    }
    session
}

/// Whether the PC is outside the stub words an eviction would rewrite.
/// (Patching the loop head itself is always safe — the current
/// iteration completes on the original body and the *next* head fetch
/// sees the jump; only overwriting straight-line stub code under the PC
/// would corrupt execution.)
fn stub_is_clear(pc: u32, active: Option<&ActiveWarp>) -> bool {
    match active {
        None => true,
        Some(a) => {
            let start = a.plan.stub_base;
            let end = start + 4 * a.plan.stub.len() as u32;
            !(start..end).contains(&pc)
        }
    }
}

/// Whether a CAD failure means "region not WCLA-implementable" — the
/// caller blacklists the region and execution simply continues in
/// software, exactly the partitioner's fallback in the paper.
pub(crate) fn rejects_region(e: &WarpError) -> bool {
    matches!(e, WarpError::Decompile(_) | WarpError::Fabric(_) | WarpError::Patch(_))
}

/// Starts the OCPM on a committed region: decompiles, plans the binary
/// rewrite, probes the circuit cache — all synchronously, so their
/// rejections blacklist at the detection boundary — then either returns
/// the cached circuit as [`CadState::Ready`] or submits compilation to
/// a background worker as [`CadState::InFlight`].
///
/// `Ok(None)` means decompilation or patch planning rejected the
/// region (blacklist it). Fabric rejections surface later, at the
/// in-flight join boundary.
#[allow(clippy::too_many_arguments)]
fn begin_warp(
    built: &BuiltWorkload,
    cache: Option<&CircuitCache>,
    store: Option<&CircuitCache>,
    service: &CadService,
    cad_caches: &Arc<CadCaches>,
    config: &OnlineConfig,
    region: &HotRegion,
    now: u64,
) -> Result<Option<CadState>, OnlineError> {
    let lift = |e: WarpError| -> Result<Option<CadState>, OnlineError> {
        if rejects_region(&e) {
            Ok(None)
        } else {
            Err(OnlineError::Warp(e))
        }
    };

    let decompiled = match pipeline::decompile(built, region) {
        Ok(d) => d,
        Err(e) => return lift(e),
    };
    // The rewrite plan depends only on the kernel and the program
    // image, so it is ready before compilation even starts.
    let plan = match pipeline::plan_patch_kernel(built, &decompiled.kernel) {
        Ok(p) => p.plan,
        Err(e) => return lift(e),
    };

    // Probe the modeled on-chip configuration cache first; on a miss,
    // fall back to the pool's image store (the serving layer's
    // host-side backing copy). Either way the kernel skips the CAD
    // chain and pays only the bitstream write — a store rescue also
    // re-inserts the configuration, making it resident on-chip again.
    let rescue = cache.and_then(|c| c.probe(&decompiled)).or_else(|| {
        let hit = store?.probe(&decompiled)?;
        if let Some(cache) = cache {
            cache.insert_compiled(&hit);
        }
        Some(hit)
    });
    if let Some(hit) = rescue {
        let cad_cycles =
            cad_timeline_cycles(&hit.dpm, true, config.mb.clock_hz, config.options.dpm_clock_hz);
        return Ok(Some(CadState::Ready(PendingWarp {
            region: *region,
            compiled: hit,
            plan,
            detected_cycle: now,
            cad_cycles,
            ready_at: now + cad_cycles,
            cache_hit: true,
        })));
    }

    // The earliest the full budget could possibly elapse is the
    // decompile floor — known right here, before compiling anything —
    // so that is the deterministic join boundary for the background
    // result.
    let floor_dpm = decompiled.kernel.body_insns as u64 * costs::DECOMPILE_PER_INSN;
    let join_at =
        now + to_timeline_cycles(floor_dpm, config.mb.clock_hz, config.options.dpm_clock_hz);
    let caches = Arc::clone(cad_caches);
    let handle =
        service.submit(move || pipeline::compile_circuit_cached(&decompiled, Some(&caches)));
    Ok(Some(CadState::InFlight(InFlightWarp {
        region: *region,
        plan,
        detected_cycle: now,
        join_at,
        handle,
    })))
}

/// Converts modeled OCPM cycles (at its own clock) into MicroBlaze
/// timeline cycles.
fn to_timeline_cycles(dpm_cycles: u64, mb_hz: u64, dpm_hz: u64) -> u64 {
    u64::try_from((u128::from(dpm_cycles) * u128::from(mb_hz)).div_ceil(u128::from(dpm_hz.max(1))))
        .unwrap_or(u64::MAX)
}

/// Converts the OCPM's modeled CAD cycles (at its own clock) into
/// MicroBlaze timeline cycles. A circuit-cache hit skips the whole CAD
/// chain and pays only the reconfiguration — the bitstream write.
pub(crate) fn cad_timeline_cycles(
    dpm: &DpmReport,
    cache_hit: bool,
    mb_hz: u64,
    dpm_hz: u64,
) -> u64 {
    let dpm_cycles = if cache_hit { dpm.bitstream_cycles } else { dpm.total_cycles() };
    to_timeline_cycles(dpm_cycles, mb_hz, dpm_hz)
}

// The whole point of the session split: a session (with its simulated
// system, mapped fabric slot, in-flight CAD handle, and policy) must be
// an owned value the server can move between worker threads. Fail the
// build, not the server, if any component regains thread-pinned state.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<OnlineSession>();
    assert_send::<SessionStatus>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TopKPolicy;
    use mb_isa::MbFeatures;

    #[test]
    fn cad_budget_scales_with_the_ocpm_clock() {
        let dpm = DpmReport {
            decompile_cycles: 500,
            synth_cycles: 500,
            bitstream_cycles: 100,
            ..DpmReport::default()
        };
        // Same clock: 1:1.
        assert_eq!(cad_timeline_cycles(&dpm, false, 85_000_000, 85_000_000), 1100);
        // A 10x faster OCPM charges a tenth of the timeline.
        assert_eq!(cad_timeline_cycles(&dpm, false, 85_000_000, 850_000_000), 110);
        // Warm start pays only the reconfiguration.
        assert_eq!(cad_timeline_cycles(&dpm, true, 85_000_000, 85_000_000), 100);
    }

    #[test]
    fn session_slicing_is_invisible_to_the_timeline() {
        let built =
            Arc::new(workloads::by_name("brev").unwrap().build(MbFeatures::paper_default()));
        let run_with_budgets = |budgets: &[u64]| {
            let mut session = OnlineSession::new(Arc::clone(&built), OnlineConfig::default())
                .with_policy(TopKPolicy { k: 1, min_count: 256 });
            let mut i = 0;
            while session.advance(budgets[i % budgets.len()]) == SessionStatus::Runnable {
                i += 1;
            }
            session.into_outcome().unwrap().unwrap()
        };
        let one_at_a_time = run_with_budgets(&[1]);
        let ragged = run_with_budgets(&[3, 1, 7, 2]);
        let all_at_once = run_with_budgets(&[u64::MAX]);

        for other in [&ragged, &all_at_once] {
            assert_eq!(one_at_a_time.cycles, other.cycles);
            assert_eq!(one_at_a_time.instructions, other.instructions);
            assert_eq!(one_at_a_time.slices, other.slices);
            assert_eq!(one_at_a_time.events, other.events);
            assert_eq!(one_at_a_time.profiler, other.profiler);
        }
        assert_eq!(one_at_a_time.events.len(), 1);
    }

    #[test]
    fn advance_past_the_end_is_idempotent() {
        let built =
            Arc::new(workloads::by_name("brev").unwrap().build(MbFeatures::paper_default()));
        let mut session = OnlineSession::new(built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 1, min_count: 256 });
        while session.advance(4) == SessionStatus::Runnable {}
        let (cycles, slices) = (session.cycles(), session.slices());
        assert_eq!(session.advance(10), SessionStatus::Finished);
        assert_eq!(session.cycles(), cycles);
        assert_eq!(session.slices(), slices);
        assert!(session.warp_count() >= 1);
        assert!(session.time_to_first_warp().unwrap() <= cycles);
    }

    #[test]
    fn sessions_migrate_between_threads_mid_run() {
        // Advance a few slices here, move the session to another thread,
        // finish it there: the report must match a single-thread run.
        let built =
            Arc::new(workloads::by_name("crc32").unwrap().build(MbFeatures::paper_default()));
        let fresh = |built: &Arc<BuiltWorkload>| {
            OnlineSession::new(Arc::clone(built), OnlineConfig::default())
                .with_policy(TopKPolicy { k: 1, min_count: 256 })
        };

        let mut migrated = fresh(&built);
        migrated.advance(5);
        let migrated = std::thread::spawn(move || {
            while migrated.advance(3) == SessionStatus::Runnable {}
            migrated.into_outcome().unwrap().unwrap()
        })
        .join()
        .unwrap();

        let mut local = fresh(&built);
        while local.advance(u64::MAX) == SessionStatus::Runnable {}
        let local = local.into_outcome().unwrap().unwrap();

        assert_eq!(migrated.cycles, local.cycles);
        assert_eq!(migrated.instructions, local.instructions);
        assert_eq!(migrated.events, local.events);
        assert_eq!(migrated.profiler, local.profiler);
    }

    #[test]
    fn patch_imem_reaches_the_live_system() {
        let built =
            Arc::new(workloads::by_name("brev").unwrap().build(MbFeatures::paper_default()));
        let mut session = OnlineSession::new(Arc::clone(&built), OnlineConfig::default());
        // Overwrite a word far past the program image: harmless to
        // execution, visible through the system's imem.
        let addr = built.program.base + 4 * built.program.words.len() as u32 + 0x100;
        session.patch_imem(addr, &[0xDEAD_BEEF]).unwrap();
        let sys = session.sys.as_ref().unwrap();
        assert_eq!(sys.imem().read_word(addr).unwrap(), 0xDEAD_BEEF);

        // Out-of-range writes surface as patch errors.
        let err = session.patch_imem(u32::MAX - 64, &[1]).unwrap_err();
        assert!(matches!(err, OnlineError::Patch(_)));
    }
}
