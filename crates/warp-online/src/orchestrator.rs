//! The event-driven co-simulation runtime.
//!
//! One [`Orchestrator::run`] interleaves three actors on a single
//! simulated timeline:
//!
//! * the **MicroBlaze**, executing the workload in bounded cycle slices;
//! * the **profiler**, fed every retired instruction during the slice
//!   (it is the slice's [`TraceSink`](mb_sim::TraceSink)) and decayed
//!   on a fixed cadence so it tracks the current program phase;
//! * the **OCPM**, which — once the policy commits to a region — runs
//!   the real CAD chain host-side through the typed
//!   [`warp_core::pipeline`] stages on a background
//!   [`CadService`](warp_core::CadService) worker, while the *modeled*
//!   lean-processor cycle cost is charged to the timeline; the patch
//!   lands only when that budget has elapsed in simulated time.
//!
//! # Concurrency without nondeterminism
//!
//! The paper's DPM is a separate processor: CAD runs *while* the
//! application keeps executing. The runtime reproduces that overlap in
//! host wall-clock — compilation is submitted to a worker thread at
//! detection and the MicroBlaze keeps simulating slices — without ever
//! letting host speed or `WARP_CAD_THREADS` leak into the modeled
//! timeline. The trick is that the background result is only *consumed*
//! at a boundary computed from modeled quantities: the first slice
//! boundary at-or-after `detected + decompile_floor` (a lower bound on
//! the CAD budget known at detection). If the worker is still running
//! there, the orchestrator blocks on it; if it finished earlier, the
//! result waited. Either way every downstream decision — blacklisting,
//! `ready_at`, the patch cycle — happens at the same simulated cycle on
//! every host, so [`OnlineReport`]s are byte-identical across thread
//! counts.
//!
//! When a [`CircuitCache`] is attached, its sub-kernel
//! [`CadCaches`](warp_wcla::CadCaches) ride along into the background
//! compile: a re-warp of a shifted-but-similar kernel replays mapped
//! LUT cones, placements, and first-pass net routes, producing a
//! bit-identical circuit while charging only the delta work to the
//! timeline (see [`warp_core::pipeline::compile_circuit_cached`]).
//!
//! Hot-patching happens between slices through
//! [`System::imem_mut`](mb_sim::System::imem_mut); the pre-decoded
//! fetch store invalidates itself via `Bram::generation`, so the next
//! fetch of the loop head sees the jump to the invocation stub. Because
//! the stub marshals the *current* counter, stream pointers, and
//! accumulators, a patch that lands mid-loop is safe: the next pass
//! over the loop head hands the remaining iterations to hardware.
//!
//! # The orchestrator is a wrapper
//!
//! All of the above is implemented by [`OnlineSession`], the resumable
//! state machine a multi-session server schedules in slices.
//! `Orchestrator::run` builds one session and drives it to completion —
//! a served session and a standalone run share every line of the loop
//! body, so their reports are bit-identical *by construction*.

use std::sync::Arc;

use mb_sim::MbConfig;
use warp_core::{CircuitCache, WarpOptions};
use workloads::BuiltWorkload;

use crate::error::OnlineError;
use crate::policy::{ThresholdPolicy, WarpPolicy};
use crate::report::OnlineReport;
use crate::session::{OnlineSession, SessionStatus};

/// Knobs of the online runtime.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Simulated system configuration (features are overridden per
    /// workload by [`BuiltWorkload::instantiate`]).
    pub mb: MbConfig,
    /// The warp flow's options: profiler geometry, power models, and —
    /// crucially here — `dpm_clock_hz`, the clock of the lean OCPM
    /// processor that the CAD cycle budget is converted with.
    pub options: WarpOptions,
    /// Cycle budget per scheduler slice. Smaller slices react faster
    /// (detection and patching happen at slice boundaries) but cost
    /// more host-side scheduling; one slice should cover at least a
    /// few hundred kernel iterations.
    pub slice_cycles: u64,
    /// Profiler decay cadence, in slices (0 disables decay). Decay is
    /// what lets the ranking *forget* a phase that ended or a kernel
    /// that moved to hardware.
    pub decay_interval: u32,
    /// Number of times to run the application end-to-end on one
    /// timeline. Patches persist across repeats — a re-entered program
    /// starts warped, the paper's "transparent optimization amortized
    /// over reuse".
    pub repeats: u32,
    /// Hard timeline budget across all repeats.
    pub max_cycles: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            mb: MbConfig::paper_default(),
            options: WarpOptions::default(),
            slice_cycles: 20_000,
            decay_interval: 16,
            repeats: 1,
            max_cycles: 2_000_000_000,
        }
    }
}

/// The online warp runtime for one workload, driven to completion in
/// one call. See [`OnlineSession`] for the sliced form a server hosts.
pub struct Orchestrator<'w> {
    built: &'w BuiltWorkload,
    config: OnlineConfig,
    policy: Box<dyn WarpPolicy>,
    cache: Option<Arc<CircuitCache>>,
}

impl<'w> Orchestrator<'w> {
    /// Creates a runtime with the default [`ThresholdPolicy`].
    #[must_use]
    pub fn new(built: &'w BuiltWorkload, config: OnlineConfig) -> Self {
        Orchestrator {
            built,
            config,
            policy: Box::new(ThresholdPolicy { min_count: 2048 }),
            cache: None,
        }
    }

    /// Replaces the warp policy.
    #[must_use]
    pub fn with_policy(mut self, policy: impl WarpPolicy + 'static) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Shares a circuit cache: kernels compiled in previous runs (or by
    /// other orchestrators and served sessions) warm-start, paying only
    /// the reconfiguration cycles on the timeline.
    #[must_use]
    pub fn with_cache(mut self, cache: Arc<CircuitCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the workload to completion under the online runtime.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError`] if the simulated program faults, the
    /// final memory diverges from the golden model, a patch cannot be
    /// applied, a CAD phase fails for a reason other than "region not
    /// implementable" (those are skipped and blacklisted), or the
    /// timeline budget runs out.
    pub fn run(self) -> Result<OnlineReport, OnlineError> {
        let Orchestrator { built, config, policy, cache } = self;
        let mut session =
            crate::session::session_from_parts(Arc::new(built.clone()), config, policy, cache);
        while session.advance(u64::MAX) == SessionStatus::Runnable {}
        session.into_outcome().expect("session drove to completion")
    }

    /// Converts the runtime into its sliced, owned form (cloning the
    /// workload), for callers that want to interleave it with others.
    #[must_use]
    pub fn into_session(self) -> OnlineSession {
        let Orchestrator { built, config, policy, cache } = self;
        crate::session::session_from_parts(Arc::new(built.clone()), config, policy, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NeverPolicy, TopKPolicy};
    use crate::session::cad_timeline_cycles;
    use mb_isa::MbFeatures;

    #[test]
    fn never_policy_is_a_pure_software_timeline() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let report = Orchestrator::new(&built, OnlineConfig::default())
            .with_policy(NeverPolicy)
            .run()
            .unwrap();
        assert!(report.events.is_empty());
        assert_eq!(report.exit_code, 0);

        // The sliced never-warp timeline is cycle-identical to one
        // monolithic software run.
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(500_000_000).unwrap();
        assert_eq!(report.cycles, out.cycles);
        assert_eq!(report.instructions, out.instructions);
    }

    #[test]
    fn brev_warps_mid_run_and_finishes_in_hardware() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let report = Orchestrator::new(&built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .run()
            .unwrap();
        assert_eq!(report.events.len(), 1, "brev's cheap CAD must land within one run");
        let e = &report.events[0];
        assert_eq!((e.head, e.tail), (built.kernel.head, built.kernel.tail));
        assert!(e.patched_cycle >= e.detected_cycle + e.cad_cycles);
        assert!(e.patched_cycle < report.cycles, "patch must land before the program ends");
        assert!(e.hw.invocations >= 1, "the remaining iterations must run in hardware");
        assert!(e.hw.iterations > 0);
        assert!(!e.cache_hit);
        assert_eq!(e.evicted, None);
    }

    #[test]
    fn warm_cache_charges_only_reconfiguration() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let cache = Arc::new(CircuitCache::new());
        // Slices finer than the CAD budget, so the patch cycle resolves
        // the cold/warm difference instead of quantizing it away.
        let config = OnlineConfig { slice_cycles: 2_000, ..OnlineConfig::default() };
        let cold = Orchestrator::new(&built, config.clone())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .with_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        let warm = Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .with_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        assert!(!cold.events[0].cache_hit);
        assert!(warm.events[0].cache_hit, "second orchestrator must warm-start");
        assert_eq!(warm.events[0].cad_cycles, {
            let dpm = warm.events[0].dpm;
            cad_timeline_cycles(&dpm, true, 85_000_000, warp_core::DEFAULT_DPM_CLOCK_HZ)
        });
        assert!(
            warm.events[0].cad_cycles < cold.events[0].cad_cycles,
            "warm start must shorten time-to-warp"
        );
        assert!(warm.time_to_first_warp().unwrap() < cold.time_to_first_warp().unwrap());
    }

    /// The megablock trace engine must be invisible to the online
    /// runtime: hot patches land between slices while the dispatcher is
    /// mid-trace on the patched loop, and the imem write log must drop
    /// the dirtied traces so the very next head fetch sees the jump to
    /// the invocation stub. A full warped run with traces on therefore
    /// produces the *same* timeline, events, and profiler view as one
    /// with traces off.
    #[test]
    fn warped_timeline_is_identical_with_and_without_traces() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let run = |mb: MbConfig| {
            Orchestrator::new(&built, OnlineConfig { mb, repeats: 2, ..OnlineConfig::default() })
                .with_policy(TopKPolicy { k: 1, min_count: 256 })
                .run()
                .unwrap()
        };
        let traced = run(MbConfig::paper_default());
        let untraced = run(MbConfig::paper_default().with_traces(false));

        assert_eq!(traced.cycles, untraced.cycles);
        assert_eq!(traced.instructions, untraced.instructions);
        assert_eq!(traced.slices, untraced.slices);
        assert_eq!(traced.exit_code, untraced.exit_code);
        assert_eq!(traced.profiler, untraced.profiler);
        assert_eq!(traced.events.len(), untraced.events.len());
        for (t, u) in traced.events.iter().zip(&untraced.events) {
            assert_eq!((t.head, t.tail), (u.head, u.tail));
            assert_eq!(t.detected_cycle, u.detected_cycle);
            assert_eq!(t.patched_cycle, u.patched_cycle);
            assert_eq!(t.patched_insns, u.patched_insns);
            assert_eq!(t.hw.invocations, u.hw.invocations);
            assert_eq!(t.hw.iterations, u.hw.iterations);
        }
        assert!(traced.events[0].hw.invocations >= 2, "patched kernel must run in hardware");
    }

    #[test]
    fn repeats_accumulate_one_timeline_and_stay_patched() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let config = OnlineConfig { repeats: 3, ..OnlineConfig::default() };
        let report = Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .run()
            .unwrap();
        assert_eq!(report.repeats, 3);
        assert_eq!(report.events.len(), 1, "the standing patch needs no second warp");
        // Repeats 2 and 3 enter the kernel already warped: one
        // invocation from the mid-run patch plus one per warm repeat.
        assert!(report.events[0].hw.invocations >= 3);

        // And the warped repeats are cheaper than software-only ones.
        let sw = Orchestrator::new(&built, OnlineConfig { repeats: 3, ..OnlineConfig::default() })
            .with_policy(NeverPolicy)
            .run()
            .unwrap();
        assert!(report.cycles < sw.cycles, "online {} vs software {}", report.cycles, sw.cycles);
    }

    /// The wrapper contract itself: a session advanced slice-by-slice
    /// (as a server would) reports exactly what `run()` reports.
    #[test]
    fn served_session_matches_orchestrator_run() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let direct = Orchestrator::new(&built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .run()
            .unwrap();

        let mut session = Orchestrator::new(&built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .into_session();
        while session.advance(2) == SessionStatus::Runnable {}
        let served = session.into_outcome().unwrap().unwrap();

        assert_eq!(direct, served);
    }
}
