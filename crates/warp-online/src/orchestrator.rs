//! The event-driven co-simulation runtime.
//!
//! One [`Orchestrator::run`] interleaves three actors on a single
//! simulated timeline:
//!
//! * the **MicroBlaze**, executing the workload in bounded cycle slices;
//! * the **profiler**, fed every retired instruction during the slice
//!   (it is the slice's [`TraceSink`](mb_sim::TraceSink)) and decayed
//!   on a fixed cadence so it tracks the current program phase;
//! * the **OCPM**, which — once the policy commits to a region — runs
//!   the real CAD chain host-side through the typed
//!   [`warp_core::pipeline`] stages on a background
//!   [`CadService`](warp_core::CadService) worker, while the *modeled*
//!   lean-processor cycle cost is charged to the timeline; the patch
//!   lands only when that budget has elapsed in simulated time.
//!
//! # Concurrency without nondeterminism
//!
//! The paper's DPM is a separate processor: CAD runs *while* the
//! application keeps executing. The runtime reproduces that overlap in
//! host wall-clock — compilation is submitted to a worker thread at
//! detection and the MicroBlaze keeps simulating slices — without ever
//! letting host speed or `WARP_CAD_THREADS` leak into the modeled
//! timeline. The trick is that the background result is only *consumed*
//! at a boundary computed from modeled quantities: the first slice
//! boundary at-or-after `detected + decompile_floor` (a lower bound on
//! the CAD budget known at detection). If the worker is still running
//! there, the orchestrator blocks on it; if it finished earlier, the
//! result waited. Either way every downstream decision — blacklisting,
//! `ready_at`, the patch cycle — happens at the same simulated cycle on
//! every host, so [`OnlineReport`]s are byte-identical across thread
//! counts.
//!
//! When a [`CircuitCache`] is attached, its sub-kernel
//! [`CadCaches`](warp_wcla::CadCaches) ride along into the background
//! compile: a re-warp of a shifted-but-similar kernel replays mapped
//! LUT cones, placements, and first-pass net routes, producing a
//! bit-identical circuit while charging only the delta work to the
//! timeline (see [`warp_core::pipeline::compile_circuit_cached`]).
//!
//! Hot-patching happens between slices through
//! [`System::imem_mut`](mb_sim::System::imem_mut); the pre-decoded
//! fetch store invalidates itself via `Bram::generation`, so the next
//! fetch of the loop head sees the jump to the invocation stub. Because
//! the stub marshals the *current* counter, stream pointers, and
//! accumulators, a patch that lands mid-loop is safe: the next pass
//! over the loop head hands the remaining iterations to hardware.

use std::collections::BTreeSet;
use std::sync::Arc;

use mb_sim::{MbConfig, StopReason};
use warp_core::dpm::{costs, DpmReport};
use warp_core::pipeline::{self, CompiledWcla};
use warp_core::{CadHandle, CadService, CircuitCache, WarpError, WarpOptions};
use warp_profiler::{HotRegion, Profiler};
use warp_wcla::patch::{apply_patch, revert_patch, PatchPlan};
use warp_wcla::CadCaches;
use warp_wcla::{WclaDevice, WclaStats, WCLA_BASE, WCLA_WINDOW};
use workloads::BuiltWorkload;

use crate::error::OnlineError;
use crate::policy::{PolicyCtx, ThresholdPolicy, WarpPolicy};
use crate::report::{OnlineReport, WarpEvent};
use crate::slot::SharedSlot;

/// Knobs of the online runtime.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Simulated system configuration (features are overridden per
    /// workload by [`BuiltWorkload::instantiate`]).
    pub mb: MbConfig,
    /// The warp flow's options: profiler geometry, power models, and —
    /// crucially here — `dpm_clock_hz`, the clock of the lean OCPM
    /// processor that the CAD cycle budget is converted with.
    pub options: WarpOptions,
    /// Cycle budget per scheduler slice. Smaller slices react faster
    /// (detection and patching happen at slice boundaries) but cost
    /// more host-side scheduling; one slice should cover at least a
    /// few hundred kernel iterations.
    pub slice_cycles: u64,
    /// Profiler decay cadence, in slices (0 disables decay). Decay is
    /// what lets the ranking *forget* a phase that ended or a kernel
    /// that moved to hardware.
    pub decay_interval: u32,
    /// Number of times to run the application end-to-end on one
    /// timeline. Patches persist across repeats — a re-entered program
    /// starts warped, the paper's "transparent optimization amortized
    /// over reuse".
    pub repeats: u32,
    /// Hard timeline budget across all repeats.
    pub max_cycles: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            mb: MbConfig::paper_default(),
            options: WarpOptions::default(),
            slice_cycles: 20_000,
            decay_interval: 16,
            repeats: 1,
            max_cycles: 2_000_000_000,
        }
    }
}

/// A committed warp whose CAD budget is still elapsing on the timeline.
struct PendingWarp {
    region: HotRegion,
    compiled: Arc<CompiledWcla>,
    plan: PatchPlan,
    detected_cycle: u64,
    cad_cycles: u64,
    ready_at: u64,
    cache_hit: bool,
}

/// A committed warp whose CAD chain is still running on a background
/// worker. Decompilation and patch planning already happened
/// synchronously at detection; only compilation is in flight.
struct InFlightWarp {
    region: HotRegion,
    plan: PatchPlan,
    detected_cycle: u64,
    /// First timeline cycle at which the background result may be
    /// consumed: detection plus the decompile floor — a lower bound on
    /// the modeled CAD budget computable *without* compiling. Joining
    /// no earlier than this keeps the timeline independent of how fast
    /// the host workers are.
    join_at: u64,
    handle: CadHandle<Result<CompiledWcla, WarpError>>,
}

/// The OCPM's one-job-at-a-time state machine.
enum CadState {
    /// No warp committed; detection may run.
    Idle,
    /// Compilation running on a background worker.
    InFlight(InFlightWarp),
    /// Compilation finished (or cache hit); the modeled budget is still
    /// elapsing toward `ready_at`.
    Ready(PendingWarp),
}

/// The warp currently holding the fabric.
struct ActiveWarp {
    region: (u32, u32),
    plan: PatchPlan,
    stats: std::rc::Rc<std::cell::RefCell<WclaStats>>,
    event_index: usize,
}

/// The online warp runtime for one workload.
pub struct Orchestrator<'w> {
    built: &'w BuiltWorkload,
    config: OnlineConfig,
    policy: Box<dyn WarpPolicy + 'w>,
    cache: Option<&'w CircuitCache>,
}

impl<'w> Orchestrator<'w> {
    /// Creates a runtime with the default [`ThresholdPolicy`].
    #[must_use]
    pub fn new(built: &'w BuiltWorkload, config: OnlineConfig) -> Self {
        Orchestrator {
            built,
            config,
            policy: Box::new(ThresholdPolicy { min_count: 2048 }),
            cache: None,
        }
    }

    /// Replaces the warp policy.
    #[must_use]
    pub fn with_policy(mut self, policy: impl WarpPolicy + 'w) -> Self {
        self.policy = Box::new(policy);
        self
    }

    /// Shares a circuit cache: kernels compiled in previous runs (or by
    /// other orchestrators) warm-start, paying only the reconfiguration
    /// cycles on the timeline.
    #[must_use]
    pub fn with_cache(mut self, cache: &'w CircuitCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the workload to completion under the online runtime.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError`] if the simulated program faults, the
    /// final memory diverges from the golden model, a patch cannot be
    /// applied, a CAD phase fails for a reason other than "region not
    /// implementable" (those are skipped and blacklisted), or the
    /// timeline budget runs out.
    pub fn run(self) -> Result<OnlineReport, OnlineError> {
        let Orchestrator { built, config, mut policy, cache } = self;
        let mut profiler = Profiler::new(config.options.profiler);
        let slot = SharedSlot::new();
        let service = CadService::from_env();
        // Background compiles share the attached circuit cache's
        // sub-kernel caches (incremental re-warps); without a cache the
        // orchestrator still gets private ones, so evict + re-warp of a
        // similar kernel within one run is delta-cost too.
        let cad_caches = cache.map_or_else(|| Arc::new(CadCaches::new()), CircuitCache::cad_caches);

        let mut cycles = 0u64;
        let mut instructions = 0u64;
        let mut slices = 0u64;
        let mut slices_since_decay = 0u32;
        let mut exit_code = 0u32;
        let mut events: Vec<WarpEvent> = Vec::new();
        let mut active: Option<ActiveWarp> = None;
        let mut cad = CadState::Idle;
        let mut blacklist: BTreeSet<(u32, u32)> = BTreeSet::new();

        for _rep in 0..config.repeats.max(1) {
            let mut sys = built.instantiate(&config.mb);
            sys.map_peripheral(WCLA_BASE, WCLA_WINDOW, Box::new(slot.port()));
            // A re-entered application starts already warped: the OCPM
            // re-applies the standing patch at load time, no CAD.
            if let Some(a) = &active {
                apply_patch(sys.imem_mut(), &a.plan).map_err(OnlineError::Patch)?;
            }

            loop {
                let out =
                    sys.run_slice(config.slice_cycles, &mut profiler).map_err(OnlineError::Run)?;
                cycles += out.cycles;
                instructions += out.instructions;
                slices += 1;

                if config.decay_interval > 0 {
                    slices_since_decay += 1;
                    if slices_since_decay >= config.decay_interval {
                        profiler.decay();
                        slices_since_decay = 0;
                    }
                }

                // Join: the background compile may only be consumed at
                // the first slice boundary at-or-after `join_at`. The
                // host may block here (the worker is slower than the
                // floor) or the result may have been waiting for many
                // slices — the modeled timeline cannot tell the
                // difference.
                if matches!(&cad, CadState::InFlight(f) if cycles >= f.join_at) {
                    let CadState::InFlight(f) = std::mem::replace(&mut cad, CadState::Idle) else {
                        unreachable!("matched InFlight above")
                    };
                    match f.handle.wait() {
                        Ok(compiled) => {
                            let compiled = Arc::new(compiled);
                            if let Some(c) = cache {
                                c.insert_compiled(&compiled);
                            }
                            let cad_cycles = cad_timeline_cycles(
                                &compiled.dpm,
                                false,
                                config.mb.clock_hz,
                                config.options.dpm_clock_hz,
                            );
                            cad = CadState::Ready(PendingWarp {
                                region: f.region,
                                compiled,
                                plan: f.plan,
                                detected_cycle: f.detected_cycle,
                                cad_cycles,
                                ready_at: f.detected_cycle + cad_cycles,
                                cache_hit: false,
                            });
                        }
                        // Not WCLA-implementable: blacklisted at this
                        // deterministic boundary, software continues.
                        Err(e) if rejects_region(&e) => {
                            blacklist.insert((f.region.head, f.region.tail));
                        }
                        Err(e) => return Err(OnlineError::Warp(e)),
                    }
                }

                // CAD completion: the pending warp's lean-processor
                // budget has elapsed — hot-patch, unless the PC sits in
                // the stub words about to be rewritten (retry next
                // slice; the stub is straight-line and exits quickly).
                let ready = matches!(&cad, CadState::Ready(p) if cycles >= p.ready_at);
                if ready && stub_is_clear(sys.cpu().pc(), active.as_ref()) {
                    let CadState::Ready(p) = std::mem::replace(&mut cad, CadState::Idle) else {
                        unreachable!("matched Ready above")
                    };
                    let mut evicted = None;
                    if let Some(old) = active.take() {
                        revert_patch(sys.imem_mut(), &old.plan).map_err(OnlineError::Patch)?;
                        events[old.event_index].hw = *old.stats.borrow();
                        evicted = Some(old.region);
                    }
                    apply_patch(sys.imem_mut(), &p.plan).map_err(OnlineError::Patch)?;
                    let (device, stats) =
                        WclaDevice::new(p.compiled.circuit.clone(), config.mb.clock_hz);
                    slot.install(device);
                    let event_index = events.len();
                    let work = p.compiled.work;
                    let total_nets = p.compiled.circuit.compiled.route_stats.nets;
                    events.push(WarpEvent {
                        head: p.region.head,
                        tail: p.region.tail,
                        count_at_detection: p.region.count,
                        fingerprint: p.compiled.fingerprint,
                        detected_cycle: p.detected_cycle,
                        cad_cycles: p.cad_cycles,
                        patched_cycle: cycles,
                        patched_insns: instructions,
                        cache_hit: p.cache_hit,
                        // A whole-circuit hit replayed everything; a
                        // (possibly incremental) compile reports what
                        // its sub-kernel caches replayed.
                        reused_clusters: if p.cache_hit {
                            work.map.clusters
                        } else {
                            work.map.clusters_reused
                        },
                        total_clusters: work.map.clusters,
                        rerouted_nets: if p.cache_hit {
                            0
                        } else {
                            total_nets - work.fabric.nets_restored
                        },
                        total_nets,
                        cad_overlap_cycles: cycles - p.detected_cycle,
                        evicted,
                        dpm: p.compiled.dpm,
                        model: p.compiled.circuit.model,
                        hw: WclaStats::default(),
                    });
                    active = Some(ActiveWarp {
                        region: (p.region.head, p.region.tail),
                        plan: p.plan,
                        stats,
                        event_index,
                    });
                } else if matches!(cad, CadState::Idle) {
                    // Detection: offer ranked candidates to the policy.
                    let active_key = active.as_ref().map(|a| a.region);
                    let ranked = profiler.hot_regions();
                    let ctx = PolicyCtx {
                        active: active_key,
                        active_count: active_key
                            .and_then(|(h, t)| ranked.iter().find(|r| (r.head, r.tail) == (h, t)))
                            .map_or(0, |r| r.count),
                        warps_committed: events.len(),
                        timeline_cycles: cycles,
                        profiler: profiler.stats(),
                    };
                    let candidate = ranked
                        .iter()
                        .filter(|r| Some((r.head, r.tail)) != active_key)
                        .filter(|r| !blacklist.contains(&(r.head, r.tail)))
                        .find(|r| policy.should_warp(r, &ctx))
                        .copied();
                    if let Some(region) = candidate {
                        match begin_warp(
                            built,
                            cache,
                            &service,
                            &cad_caches,
                            &config,
                            &region,
                            cycles,
                        ) {
                            Ok(Some(state)) => cad = state,
                            // Not decompilable/patchable: leave the
                            // region in software, permanently.
                            Ok(None) => {
                                blacklist.insert((region.head, region.tail));
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }

                // Detection and patching run on *every* slice boundary,
                // including the one where the program exits: the
                // profiler's view persists across re-entries, so heat
                // retired in a run's final slice (a kernel that finishes
                // right before the exit) must still be able to commit a
                // warp — it lands in the next repeat, already patched at
                // load time.
                if let StopReason::Exited(code) = out.stop {
                    exit_code = code;
                    break;
                }
                if cycles >= config.max_cycles {
                    return Err(OnlineError::BudgetExhausted { cycles, limit: config.max_cycles });
                }
            }

            built.verify(sys.dmem()).map_err(OnlineError::Verify)?;
        }

        if let Some(a) = &active {
            events[a.event_index].hw = *a.stats.borrow();
        }
        Ok(OnlineReport {
            name: built.name.clone(),
            repeats: config.repeats.max(1),
            slices,
            cycles,
            instructions,
            exit_code,
            events,
            profiler: profiler.stats(),
        })
    }
}

/// Whether the PC is outside the stub words an eviction would rewrite.
/// (Patching the loop head itself is always safe — the current
/// iteration completes on the original body and the *next* head fetch
/// sees the jump; only overwriting straight-line stub code under the PC
/// would corrupt execution.)
fn stub_is_clear(pc: u32, active: Option<&ActiveWarp>) -> bool {
    match active {
        None => true,
        Some(a) => {
            let start = a.plan.stub_base;
            let end = start + 4 * a.plan.stub.len() as u32;
            !(start..end).contains(&pc)
        }
    }
}

/// Whether a CAD failure means "region not WCLA-implementable" — the
/// caller blacklists the region and execution simply continues in
/// software, exactly the partitioner's fallback in the paper.
fn rejects_region(e: &WarpError) -> bool {
    matches!(e, WarpError::Decompile(_) | WarpError::Fabric(_) | WarpError::Patch(_))
}

/// Starts the OCPM on a committed region: decompiles, plans the binary
/// rewrite, probes the circuit cache — all synchronously, so their
/// rejections blacklist at the detection boundary — then either returns
/// the cached circuit as [`CadState::Ready`] or submits compilation to
/// a background worker as [`CadState::InFlight`].
///
/// `Ok(None)` means decompilation or patch planning rejected the
/// region (blacklist it). Fabric rejections surface later, at the
/// in-flight join boundary.
fn begin_warp(
    built: &BuiltWorkload,
    cache: Option<&CircuitCache>,
    service: &CadService,
    cad_caches: &Arc<CadCaches>,
    config: &OnlineConfig,
    region: &HotRegion,
    now: u64,
) -> Result<Option<CadState>, OnlineError> {
    let lift = |e: WarpError| -> Result<Option<CadState>, OnlineError> {
        if rejects_region(&e) {
            Ok(None)
        } else {
            Err(OnlineError::Warp(e))
        }
    };

    let decompiled = match pipeline::decompile(built, region) {
        Ok(d) => d,
        Err(e) => return lift(e),
    };
    // The rewrite plan depends only on the kernel and the program
    // image, so it is ready before compilation even starts.
    let plan = match pipeline::plan_patch_kernel(built, &decompiled.kernel) {
        Ok(p) => p.plan,
        Err(e) => return lift(e),
    };

    if let Some(cache) = cache {
        if let Some(hit) = cache.probe(&decompiled) {
            let cad_cycles = cad_timeline_cycles(
                &hit.dpm,
                true,
                config.mb.clock_hz,
                config.options.dpm_clock_hz,
            );
            return Ok(Some(CadState::Ready(PendingWarp {
                region: *region,
                compiled: hit,
                plan,
                detected_cycle: now,
                cad_cycles,
                ready_at: now + cad_cycles,
                cache_hit: true,
            })));
        }
    }

    // The earliest the full budget could possibly elapse is the
    // decompile floor — known right here, before compiling anything —
    // so that is the deterministic join boundary for the background
    // result.
    let floor_dpm = decompiled.kernel.body_insns as u64 * costs::DECOMPILE_PER_INSN;
    let join_at =
        now + to_timeline_cycles(floor_dpm, config.mb.clock_hz, config.options.dpm_clock_hz);
    let caches = Arc::clone(cad_caches);
    let handle =
        service.submit(move || pipeline::compile_circuit_cached(&decompiled, Some(&caches)));
    Ok(Some(CadState::InFlight(InFlightWarp {
        region: *region,
        plan,
        detected_cycle: now,
        join_at,
        handle,
    })))
}

/// Converts modeled OCPM cycles (at its own clock) into MicroBlaze
/// timeline cycles.
fn to_timeline_cycles(dpm_cycles: u64, mb_hz: u64, dpm_hz: u64) -> u64 {
    u64::try_from((u128::from(dpm_cycles) * u128::from(mb_hz)).div_ceil(u128::from(dpm_hz.max(1))))
        .unwrap_or(u64::MAX)
}

/// Converts the OCPM's modeled CAD cycles (at its own clock) into
/// MicroBlaze timeline cycles. A circuit-cache hit skips the whole CAD
/// chain and pays only the reconfiguration — the bitstream write.
fn cad_timeline_cycles(dpm: &DpmReport, cache_hit: bool, mb_hz: u64, dpm_hz: u64) -> u64 {
    let dpm_cycles = if cache_hit { dpm.bitstream_cycles } else { dpm.total_cycles() };
    to_timeline_cycles(dpm_cycles, mb_hz, dpm_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NeverPolicy, TopKPolicy};
    use mb_isa::MbFeatures;

    #[test]
    fn cad_budget_scales_with_the_ocpm_clock() {
        let dpm = DpmReport {
            decompile_cycles: 500,
            synth_cycles: 500,
            bitstream_cycles: 100,
            ..DpmReport::default()
        };
        // Same clock: 1:1.
        assert_eq!(cad_timeline_cycles(&dpm, false, 85_000_000, 85_000_000), 1100);
        // A 10x faster OCPM charges a tenth of the timeline.
        assert_eq!(cad_timeline_cycles(&dpm, false, 85_000_000, 850_000_000), 110);
        // Warm start pays only the reconfiguration.
        assert_eq!(cad_timeline_cycles(&dpm, true, 85_000_000, 85_000_000), 100);
    }

    #[test]
    fn never_policy_is_a_pure_software_timeline() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let report = Orchestrator::new(&built, OnlineConfig::default())
            .with_policy(NeverPolicy)
            .run()
            .unwrap();
        assert!(report.events.is_empty());
        assert_eq!(report.exit_code, 0);

        // The sliced never-warp timeline is cycle-identical to one
        // monolithic software run.
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(500_000_000).unwrap();
        assert_eq!(report.cycles, out.cycles);
        assert_eq!(report.instructions, out.instructions);
    }

    #[test]
    fn brev_warps_mid_run_and_finishes_in_hardware() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let report = Orchestrator::new(&built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .run()
            .unwrap();
        assert_eq!(report.events.len(), 1, "brev's cheap CAD must land within one run");
        let e = &report.events[0];
        assert_eq!((e.head, e.tail), (built.kernel.head, built.kernel.tail));
        assert!(e.patched_cycle >= e.detected_cycle + e.cad_cycles);
        assert!(e.patched_cycle < report.cycles, "patch must land before the program ends");
        assert!(e.hw.invocations >= 1, "the remaining iterations must run in hardware");
        assert!(e.hw.iterations > 0);
        assert!(!e.cache_hit);
        assert_eq!(e.evicted, None);
    }

    #[test]
    fn warm_cache_charges_only_reconfiguration() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let cache = CircuitCache::new();
        // Slices finer than the CAD budget, so the patch cycle resolves
        // the cold/warm difference instead of quantizing it away.
        let config = OnlineConfig { slice_cycles: 2_000, ..OnlineConfig::default() };
        let cold = Orchestrator::new(&built, config.clone())
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .with_cache(&cache)
            .run()
            .unwrap();
        let warm = Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .with_cache(&cache)
            .run()
            .unwrap();
        assert!(!cold.events[0].cache_hit);
        assert!(warm.events[0].cache_hit, "second orchestrator must warm-start");
        assert_eq!(warm.events[0].cad_cycles, {
            let dpm = warm.events[0].dpm;
            cad_timeline_cycles(&dpm, true, 85_000_000, warp_core::DEFAULT_DPM_CLOCK_HZ)
        });
        assert!(
            warm.events[0].cad_cycles < cold.events[0].cad_cycles,
            "warm start must shorten time-to-warp"
        );
        assert!(warm.time_to_first_warp().unwrap() < cold.time_to_first_warp().unwrap());
    }

    /// The megablock trace engine must be invisible to the online
    /// runtime: hot patches land between slices while the dispatcher is
    /// mid-trace on the patched loop, and the imem write log must drop
    /// the dirtied traces so the very next head fetch sees the jump to
    /// the invocation stub. A full warped run with traces on therefore
    /// produces the *same* timeline, events, and profiler view as one
    /// with traces off.
    #[test]
    fn warped_timeline_is_identical_with_and_without_traces() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let run = |mb: MbConfig| {
            Orchestrator::new(&built, OnlineConfig { mb, repeats: 2, ..OnlineConfig::default() })
                .with_policy(TopKPolicy { k: 1, min_count: 256 })
                .run()
                .unwrap()
        };
        let traced = run(MbConfig::paper_default());
        let untraced = run(MbConfig::paper_default().with_traces(false));

        assert_eq!(traced.cycles, untraced.cycles);
        assert_eq!(traced.instructions, untraced.instructions);
        assert_eq!(traced.slices, untraced.slices);
        assert_eq!(traced.exit_code, untraced.exit_code);
        assert_eq!(traced.profiler, untraced.profiler);
        assert_eq!(traced.events.len(), untraced.events.len());
        for (t, u) in traced.events.iter().zip(&untraced.events) {
            assert_eq!((t.head, t.tail), (u.head, u.tail));
            assert_eq!(t.detected_cycle, u.detected_cycle);
            assert_eq!(t.patched_cycle, u.patched_cycle);
            assert_eq!(t.patched_insns, u.patched_insns);
            assert_eq!(t.hw.invocations, u.hw.invocations);
            assert_eq!(t.hw.iterations, u.hw.iterations);
        }
        assert!(traced.events[0].hw.invocations >= 2, "patched kernel must run in hardware");
    }

    #[test]
    fn repeats_accumulate_one_timeline_and_stay_patched() {
        let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
        let config = OnlineConfig { repeats: 3, ..OnlineConfig::default() };
        let report = Orchestrator::new(&built, config)
            .with_policy(TopKPolicy { k: 1, min_count: 256 })
            .run()
            .unwrap();
        assert_eq!(report.repeats, 3);
        assert_eq!(report.events.len(), 1, "the standing patch needs no second warp");
        // Repeats 2 and 3 enter the kernel already warped: one
        // invocation from the mid-run patch plus one per warm repeat.
        assert!(report.events[0].hw.invocations >= 3);

        // And the warped repeats are cheaper than software-only ones.
        let sw = Orchestrator::new(&built, OnlineConfig { repeats: 3, ..OnlineConfig::default() })
            .with_policy(NeverPolicy)
            .run()
            .unwrap();
        assert!(report.cycles < sw.cycles, "online {} vs software {}", report.cycles, sw.cycles);
    }
}
