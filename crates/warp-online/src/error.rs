//! Why an online run failed, with the full cause chain intact.

use std::error::Error;
use std::fmt;

use mb_sim::{MemError, RunError};
use warp_core::WarpError;
use workloads::VerifyError;

/// Why an [`Orchestrator::run`](crate::Orchestrator::run) failed.
///
/// Every wrapping variant exposes its phase-specific error through
/// [`Error::source`], and the wrapped errors do the same
/// ([`WarpError`] in particular forwards to the decompile / fabric /
/// patch error beneath it), so a caller can walk the chain end-to-end
/// instead of string-matching display output.
#[derive(Debug)]
pub enum OnlineError {
    /// The simulated program did something illegal during a slice.
    Run(RunError),
    /// An online CAD phase failed for a reason that is not simply "this
    /// region is not WCLA-implementable" (those regions are skipped and
    /// blacklisted, not fatal).
    Warp(WarpError),
    /// Applying or reverting a binary patch faulted on instruction
    /// memory.
    Patch(MemError),
    /// End-of-run memory did not match the workload's golden model.
    Verify(VerifyError),
    /// The timeline budget elapsed before the program exited.
    BudgetExhausted {
        /// Simulated cycles consumed when the runtime gave up.
        cycles: u64,
        /// The configured budget.
        limit: u64,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Run(e) => write!(f, "online run faulted: {e}"),
            OnlineError::Warp(e) => write!(f, "online warp failed: {e}"),
            OnlineError::Patch(e) => write!(f, "online patch failed: {e}"),
            OnlineError::Verify(e) => write!(f, "online run diverged from the golden model: {e}"),
            OnlineError::BudgetExhausted { cycles, limit } => {
                write!(f, "timeline budget exhausted: {cycles} cycles of {limit}")
            }
        }
    }
}

impl Error for OnlineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OnlineError::Run(e) => Some(e),
            OnlineError::Warp(e) => Some(e),
            OnlineError::Patch(e) => Some(e),
            OnlineError::Verify(e) => Some(e),
            OnlineError::BudgetExhausted { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_chain_walks_end_to_end() {
        let inner = WarpError::Patch(warp_wcla::patch::PatchError::NoScratchRegister);
        let outer = OnlineError::Warp(inner);
        let mid = outer.source().expect("OnlineError exposes the WarpError");
        assert!(mid.to_string().contains("patch"));
        let leaf = mid.source().expect("WarpError exposes the PatchError");
        assert!(leaf.to_string().contains("scratch"));
        assert!(leaf.source().is_none());
    }

    #[test]
    fn budget_has_no_source() {
        let e = OnlineError::BudgetExhausted { cycles: 10, limit: 5 };
        assert!(e.source().is_none());
        assert!(e.to_string().contains("10"));
    }
}
