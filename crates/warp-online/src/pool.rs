//! Shared program images and recycled `System` carcasses.
//!
//! A serving fleet runs the same few binaries thousands of times. Two
//! costs dominate session setup: rebuilding the per-program artifacts
//! (decode slots, block/trace tables) and allocating a fresh
//! [`System`] (two 64 KiB BRAMs plus caches) per session — and again
//! per *repeat*. The pool removes both from the hot path:
//!
//! * **Images** — one frozen [`ProgramImage`] per workload fingerprint
//!   ([`workloads::BuiltWorkload::fingerprint`]), captured from a fully
//!   warmed run and attached read-only by every session
//!   (copy-on-patch, so a warping session never perturbs siblings).
//! * **Circuits** — every warp circuit the CAD chain compiles for a
//!   program is kept alongside its image in an unbounded [`ImageStore`]
//!   cache. The bounded [`CircuitCache`] models the on-chip
//!   configuration store and evicts under pressure; the image store is
//!   host memory, so an evicted configuration is a bitstream rewrite
//!   away, never a recompile. Sessions consult it only when they opted
//!   into cross-session artifact sharing (`with_cache`).
//! * **Carcasses** — finished sessions return their [`System`] instead
//!   of dropping it; the next session with the same fingerprint resets
//!   the run state in place (registers, data memory, caches, stats,
//!   peripherals) and re-attaches the image. No buffer is reallocated.
//!
//! The intended deployment is **one pool per worker thread sharing one
//! [`ImageStore`]**: carcasses then never bounce between cores and the
//! carcass mutex is uncontended, while a binary is imaged once and each
//! hot region compiled once for the whole fleet.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mb_sim::{ProgramImage, System};
use warp_core::CircuitCache;

/// Observable pool effectiveness (for benches and diagnostics).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Distinct program images currently held (in the shared store).
    pub images: usize,
    /// Compiled warp circuits currently held (in the shared store).
    pub circuits: usize,
    /// Idle `System` carcasses currently parked in this pool.
    pub carcasses: usize,
    /// Times an image had to be built (first session per fingerprint).
    pub image_builds: u64,
    /// Acquisitions served by recycling a carcass.
    pub recycled: u64,
    /// Acquisitions that had to build a fresh `System`.
    pub fresh: u64,
}

/// The fleet-shared layer of a [`SessionPool`]: frozen program images
/// and compiled warp circuits, both pure functions of program content,
/// so one store can back any number of per-worker pools.
#[derive(Default)]
pub struct ImageStore {
    images: Mutex<HashMap<u64, Arc<ProgramImage>>>,
    /// Unbounded, fingerprint-keyed: the serving layer's backing copy
    /// of every compiled configuration (the bounded on-chip
    /// `CircuitCache` is the modeled hardware; this is host memory).
    circuits: CircuitCache,
    image_builds: AtomicU64,
}

impl ImageStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ImageStore::default()
    }

    /// The compiled-circuit side of the store.
    #[must_use]
    pub fn circuits(&self) -> &CircuitCache {
        &self.circuits
    }
}

/// A per-worker store of idle [`System`] carcasses plus a (possibly
/// shared) [`ImageStore`], keyed by workload fingerprint. See the
/// module docs.
pub struct SessionPool {
    store: Arc<ImageStore>,
    carcasses: Mutex<HashMap<u64, Vec<System>>>,
    recycled: AtomicU64,
    fresh: AtomicU64,
}

impl Default for SessionPool {
    fn default() -> Self {
        SessionPool::new()
    }
}

impl SessionPool {
    /// Creates an empty pool with its own private [`ImageStore`].
    #[must_use]
    pub fn new() -> Self {
        SessionPool::sharing(&Arc::new(ImageStore::new()))
    }

    /// Creates an empty pool whose images and circuits live in (and are
    /// shared through) `store`. Carcasses remain private to this pool.
    #[must_use]
    pub fn sharing(store: &Arc<ImageStore>) -> Self {
        SessionPool {
            store: Arc::clone(store),
            carcasses: Mutex::new(HashMap::new()),
            recycled: AtomicU64::new(0),
            fresh: AtomicU64::new(0),
        }
    }

    /// The image-and-circuit store backing this pool.
    #[must_use]
    pub fn store(&self) -> &Arc<ImageStore> {
        &self.store
    }

    /// The fleet-shared compiled-circuit store.
    #[must_use]
    pub fn circuits(&self) -> &CircuitCache {
        &self.store.circuits
    }

    /// Returns the image for `key`, building (and publishing) it with
    /// `build` on first use. The build runs outside the pool lock — it
    /// involves a full warm execution of the program — so concurrent
    /// first users may build redundantly; the first insert wins, which
    /// is safe because the image is a pure function of the key.
    pub fn image_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> ProgramImage,
    ) -> Arc<ProgramImage> {
        if let Some(image) = self.store.images.lock().expect("pool images lock").get(&key) {
            return Arc::clone(image);
        }
        self.store.image_builds.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        Arc::clone(self.store.images.lock().expect("pool images lock").entry(key).or_insert(built))
    }

    /// Takes an idle carcass for `key`, if any. The caller owns the
    /// rearm protocol: reset the run state, re-attach the image, load
    /// the session's data, map its peripherals.
    #[must_use]
    pub fn acquire(&self, key: u64) -> Option<System> {
        let taken =
            self.carcasses.lock().expect("pool carcass lock").get_mut(&key).and_then(Vec::pop);
        match taken {
            Some(sys) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                Some(sys)
            }
            None => {
                self.fresh.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Parks a finished session's `System` for reuse under `key`. The
    /// caller must have unmapped session-private peripherals first;
    /// everything else is scrubbed at the next acquire.
    pub fn release(&self, key: u64, sys: System) {
        self.carcasses.lock().expect("pool carcass lock").entry(key).or_default().push(sys);
    }

    /// Current effectiveness counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            images: self.store.images.lock().expect("pool images lock").len(),
            circuits: self.store.circuits.len(),
            carcasses: self
                .carcasses
                .lock()
                .expect("pool carcass lock")
                .values()
                .map(Vec::len)
                .sum(),
            image_builds: self.store.image_builds.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            fresh: self.fresh.load(Ordering::Relaxed),
        }
    }
}

const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<SessionPool>();
    assert_sync::<ImageStore>();
};
