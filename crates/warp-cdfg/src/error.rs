//! Decompilation errors.

use std::error::Error;
use std::fmt;

use mb_isa::Reg;

/// Why a region could not be decompiled into a partitionable kernel.
///
/// These are not bugs: the warp processor's on-chip tools support a
/// specific class of regular loops, and a structured rejection is how
/// the dynamic partitioner decides to leave a region in software.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecompileError {
    /// The region does not end in a conditional backward branch to its
    /// own head.
    NotALoop {
        /// Region head address.
        head: u32,
        /// Region tail address.
        tail: u32,
    },
    /// An instruction inside the body transfers control (the body must
    /// be a single basic block; branch-free idioms replace `if`s).
    ControlFlowInBody {
        /// Address of the offending instruction.
        pc: u32,
    },
    /// An instruction could not be fetched or decoded.
    BadInstruction {
        /// Address of the offending word.
        pc: u32,
    },
    /// The instruction has no hardware mapping (e.g. carry chains,
    /// divides).
    UnsupportedInsn {
        /// Address of the offending instruction.
        pc: u32,
        /// Rendered mnemonic.
        mnemonic: String,
    },
    /// A memory access does not follow the regular base+offset pattern
    /// the data address generator supports.
    IrregularAccess {
        /// Address of the offending instruction.
        pc: u32,
    },
    /// The loop's trip counter could not be identified.
    NoInductionCounter,
    /// More distinct memory streams than the WCLA's address generators.
    TooManyStreams {
        /// Streams found.
        found: usize,
        /// Streams supported.
        supported: usize,
    },
    /// A register is live into the loop in a way the WCLA cannot seed
    /// (e.g. a pointer that is also used as data).
    UnsupportedLiveIn {
        /// The offending register.
        reg: Reg,
    },
}

impl fmt::Display for DecompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompileError::NotALoop { head, tail } => {
                write!(f, "region {head:#x}..{tail:#x} is not a simple counted loop")
            }
            DecompileError::ControlFlowInBody { pc } => {
                write!(f, "control flow inside loop body at {pc:#x}")
            }
            DecompileError::BadInstruction { pc } => {
                write!(f, "undecodable instruction at {pc:#x}")
            }
            DecompileError::UnsupportedInsn { pc, mnemonic } => {
                write!(f, "no hardware mapping for `{mnemonic}` at {pc:#x}")
            }
            DecompileError::IrregularAccess { pc } => {
                write!(f, "irregular memory access pattern at {pc:#x}")
            }
            DecompileError::NoInductionCounter => f.write_str("no induction counter found"),
            DecompileError::TooManyStreams { found, supported } => {
                write!(f, "{found} memory streams exceed the {supported} DADG channels")
            }
            DecompileError::UnsupportedLiveIn { reg } => {
                write!(f, "live-in register {reg} has no WCLA seeding path")
            }
        }
    }
}

impl Error for DecompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DecompileError::TooManyStreams { found: 5, supported: 3 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
        let e = DecompileError::UnsupportedInsn { pc: 0x40, mnemonic: "idiv r1, r2, r3".into() };
        assert!(e.to_string().contains("idiv"));
    }
}
