//! The loop decompiler: binary region → [`LoopKernel`].

use std::collections::{BTreeMap, HashMap};

use mb_isa::{decode, Cond, Insn, MemSize, Program, Reg};

use crate::dfg::{Dfg, NodeId, Op};
use crate::DecompileError;

/// Number of address streams the WCLA's data address generator provides
/// (one per WCLA register Reg0–Reg2).
pub const DADG_STREAMS: usize = 3;

/// One per-iteration memory stream: a pointer register advanced by a
/// constant stride each iteration, with a set of constant byte offsets
/// accessed relative to it.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemStream {
    /// The pointer register seeding the stream's base address.
    pub base: Reg,
    /// Bytes the pointer advances per iteration.
    pub stride: i32,
    /// Offsets loaded each iteration (in body order, deduplicated).
    pub load_offsets: Vec<i32>,
    /// Offsets stored each iteration (in body order).
    pub store_offsets: Vec<i32>,
}

/// One store performed each iteration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StoreOp {
    /// Index into [`LoopKernel::streams`].
    pub stream: usize,
    /// Byte offset from the stream cursor.
    pub offset: i32,
    /// The DFG node whose value is stored.
    pub value: NodeId,
}

/// A loop-carried accumulator: reads its previous value (via
/// [`Op::Acc`]) and is updated to `next` each iteration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AccUpdate {
    /// The accumulator register.
    pub reg: Reg,
    /// The DFG node producing the next value.
    pub next: NodeId,
}

/// A decompiled critical loop, ready for synthesis onto the WCLA.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LoopKernel {
    /// Loop head address (branch target).
    pub head: u32,
    /// Loop tail address (the backward branch).
    pub tail: u32,
    /// The trip-count register (counts down to zero; the loop executes
    /// `initial value` iterations, do-while style).
    pub counter: Reg,
    /// Memory streams for the data address generator.
    pub streams: Vec<MemStream>,
    /// The body's data-flow graph.
    pub dfg: Dfg,
    /// Stores performed each iteration, in body order.
    pub stores: Vec<StoreOp>,
    /// Loop-carried accumulators.
    pub accs: Vec<AccUpdate>,
    /// Loop-invariant scalar inputs.
    pub invariants: Vec<Reg>,
    /// Registers the body overwrites whose values are dead after the
    /// loop (safe scratch space for the hardware-invocation stub).
    pub dead_temps: Vec<Reg>,
    /// Number of instructions in the loop body (including the branch).
    pub body_insns: usize,
}

/// Runtime environment for [`LoopKernel::interpret`]: the register values
/// the hardware is seeded with at invocation.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct KernelEnv {
    /// Initial trip-counter value (iterations to run).
    pub counter: u32,
    /// Initial pointer value per stream base register.
    pub pointers: BTreeMap<Reg, u32>,
    /// Initial accumulator values.
    pub accs: BTreeMap<Reg, u32>,
    /// Loop-invariant scalar values.
    pub invariants: BTreeMap<Reg, u32>,
}

impl LoopKernel {
    /// Reference interpreter: executes the kernel exactly as the WCLA
    /// would, against a caller-provided memory. Mutates the environment
    /// (pointers advance, accumulators update) and returns the number of
    /// iterations executed.
    ///
    /// # Panics
    ///
    /// Panics if `env` lacks a pointer for a stream base or a value for
    /// an accumulator/invariant the kernel uses.
    pub fn interpret(
        &self,
        env: &mut KernelEnv,
        mut load: impl FnMut(u32) -> u32,
        mut store: impl FnMut(u32, u32),
    ) -> u64 {
        let iterations = u64::from(env.counter);
        for _ in 0..iterations {
            let pointers = env.pointers.clone();
            let accs = env.accs.clone();
            let invariants = env.invariants.clone();
            let vals = self.dfg.eval(
                |stream, offset| {
                    let base = pointers[&self.streams[stream].base];
                    load(base.wrapping_add(offset as u32))
                },
                |reg| invariants[&reg],
                |reg| accs[&reg],
            );
            for s in &self.stores {
                let base = pointers[&self.streams[s.stream].base];
                store(base.wrapping_add(s.offset as u32), vals[s.value.0 as usize]);
            }
            for a in &self.accs {
                env.accs.insert(a.reg, vals[a.next.0 as usize]);
            }
            for st in &self.streams {
                let p = env.pointers.get_mut(&st.base).expect("pointer seeded");
                *p = p.wrapping_add(st.stride as u32);
            }
        }
        env.counter = 0;
        iterations
    }

    /// Registers the hardware must be seeded with at invocation (counter,
    /// stream bases, accumulators, invariants) in a stable order.
    #[must_use]
    pub fn live_ins(&self) -> Vec<Reg> {
        let mut v = vec![self.counter];
        v.extend(self.streams.iter().map(|s| s.base));
        v.extend(self.accs.iter().map(|a| a.reg));
        v.extend(self.invariants.iter().copied());
        v
    }

    /// Total memory operations per iteration (DADG cycles).
    #[must_use]
    pub fn mem_ops_per_iter(&self) -> usize {
        self.streams.iter().map(|s| s.load_offsets.len() + s.store_offsets.len()).sum()
    }

    /// Number of multiply nodes per iteration (MAC serialization cost).
    #[must_use]
    pub fn mul_ops_per_iter(&self) -> usize {
        self.dfg.count_where(|o| matches!(o, Op::Mul))
    }

    /// A stable 64-bit content hash of the kernel.
    ///
    /// Covers everything that determines the compiled circuit — the
    /// loop bounds, register roles, stream table, data-flow graph,
    /// stores, and accumulators — hashed with a fixed-parameter FNV-1a
    /// ([`Fnv1a`](crate::fingerprint::Fnv1a)), so the value is
    /// reproducible across runs and platforms. Two kernels with equal
    /// fingerprints compile to identical WCLA circuits, which is what
    /// lets downstream circuit caches skip the CAD chain entirely.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = crate::fingerprint::Fnv1a::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Tracking value for the classification pass.
#[derive(Clone, Copy, Debug)]
struct AVal {
    /// `Some((r, off))` while the value is exactly `initial(r) + off`.
    base: Option<(Reg, i32)>,
    /// Bitmask of registers whose *initial* value feeds this value
    /// through data operations.
    deps: u32,
}

impl AVal {
    fn init(r: Reg) -> Self {
        AVal { base: Some((r, 0)), deps: 1 << r.number() }
    }

    fn expr(deps: u32) -> Self {
        AVal { base: None, deps }
    }
}

fn bit(r: Reg) -> u32 {
    1 << r.number()
}

/// The decoded loop body plus its closing branch.
struct Body {
    /// `(pc, insn, imm_prefix)` triples — Type B immediates already
    /// merged with any preceding `imm` prefix into `imm32`.
    insns: Vec<(u32, Insn, Option<u32>)>,
    counter: Reg,
    body_insns: usize,
}

fn fetch_region(program: &Program, head: u32, tail: u32) -> Result<Body, DecompileError> {
    if tail < head || !(tail - head).is_multiple_of(4) {
        return Err(DecompileError::NotALoop { head, tail });
    }
    // Decode raw instructions.
    let mut raw = Vec::new();
    let mut pc = head;
    while pc <= tail {
        let word = program.word_at(pc).ok_or(DecompileError::BadInstruction { pc })?;
        let insn = decode(word).map_err(|_| DecompileError::BadInstruction { pc })?;
        raw.push((pc, insn));
        pc += 4;
    }
    // The final instruction must be `bnei counter, head` (no delay slot).
    let (branch_pc, branch) = *raw.last().ok_or(DecompileError::NotALoop { head, tail })?;
    let counter = match branch {
        Insn::Bci { cond: Cond::Ne, ra, imm, delay: false }
            if branch_pc.wrapping_add(imm as i32 as u32) == head =>
        {
            ra
        }
        _ => return Err(DecompileError::NotALoop { head, tail }),
    };
    // Merge `imm` prefixes and reject interior control flow.
    let mut insns = Vec::new();
    let mut pending_imm: Option<u16> = None;
    for &(pc, insn) in &raw[..raw.len() - 1] {
        if insn.is_control_flow() {
            return Err(DecompileError::ControlFlowInBody { pc });
        }
        match insn {
            Insn::Imm { imm } => {
                pending_imm = Some(imm as u16);
            }
            _ => {
                let imm32 = pending_imm.take().map(|hi| u32::from(hi) << 16);
                insns.push((pc, insn, imm32));
            }
        }
    }
    let body_insns = raw.len();
    Ok(Body { insns, counter, body_insns })
}

/// Computes the merged 32-bit immediate for a Type B instruction.
fn imm32_of(imm: i16, prefix: Option<u32>) -> u32 {
    match prefix {
        Some(hi) => hi | u32::from(imm as u16),
        None => imm as i32 as u32,
    }
}

/// Classification result: which register plays which role.
struct Roles {
    pointers: BTreeMap<Reg, i32>, // base -> stride
    accs: Vec<Reg>,
    invariants: Vec<Reg>,
}

fn classify(body: &Body) -> Result<Roles, DecompileError> {
    let mut state: HashMap<Reg, AVal> = HashMap::new();
    let mut data_deps: u32 = 0; // initial regs feeding data operations
    let mut mem_bases: BTreeMap<Reg, ()> = BTreeMap::new();

    let get = |state: &mut HashMap<Reg, AVal>, r: Reg| -> AVal {
        if r.is_zero() {
            AVal { base: None, deps: 0 }
        } else {
            *state.entry(r).or_insert_with(|| AVal::init(r))
        }
    };

    for &(pc, insn, prefix) in &body.insns {
        match insn {
            Insn::Addi { rd, ra, imm, use_carry: false, .. } => {
                let a = get(&mut state, ra);
                let imm32 = imm32_of(imm, prefix) as i32;
                let v = match a.base {
                    Some((r, off)) => {
                        AVal { base: Some((r, off.wrapping_add(imm32))), deps: a.deps }
                    }
                    None => AVal::expr(a.deps),
                };
                state.insert(rd, v);
            }
            Insn::Loadi { rd, ra, size: MemSize::Word, .. } => {
                let a = get(&mut state, ra);
                match a.base {
                    Some((r, _)) => {
                        mem_bases.insert(r, ());
                    }
                    None => return Err(DecompileError::IrregularAccess { pc }),
                }
                state.insert(rd, AVal::expr(0));
            }
            Insn::Storei { rd, ra, size: MemSize::Word, .. } => {
                let a = get(&mut state, ra);
                match a.base {
                    Some((r, _)) => {
                        mem_bases.insert(r, ());
                    }
                    None => return Err(DecompileError::IrregularAccess { pc }),
                }
                let v = get(&mut state, rd);
                data_deps |= v.deps;
            }
            Insn::Loadi { .. } | Insn::Storei { .. } | Insn::Load { .. } | Insn::Store { .. } => {
                return Err(DecompileError::IrregularAccess { pc });
            }
            _ => {
                // Generic data operation: destination becomes an
                // expression over the sources' dependencies.
                if let Some(rd) = insn.dest() {
                    let mut deps = 0;
                    for s in insn.sources() {
                        deps |= get(&mut state, s).deps;
                    }
                    data_deps |= deps;
                    state.insert(rd, AVal::expr(deps));
                }
            }
        }
    }

    // Counter: must end as initial - 1 and not feed data.
    let cval = state.get(&body.counter).copied().ok_or(DecompileError::NoInductionCounter)?;
    if cval.base != Some((body.counter, -1)) {
        return Err(DecompileError::NoInductionCounter);
    }
    if data_deps & bit(body.counter) != 0 {
        return Err(DecompileError::UnsupportedLiveIn { reg: body.counter });
    }

    // Pointers: every memory base must end as initial + constant stride
    // and must not feed data operations.
    let mut pointers = BTreeMap::new();
    for &r in mem_bases.keys() {
        if r == body.counter {
            return Err(DecompileError::UnsupportedLiveIn { reg: r });
        }
        let v = state.get(&r).copied().unwrap_or_else(|| AVal::init(r));
        match v.base {
            Some((b, off)) if b == r => {
                pointers.insert(r, off);
            }
            _ => return Err(DecompileError::UnsupportedLiveIn { reg: r }),
        }
        if data_deps & bit(r) != 0 {
            return Err(DecompileError::UnsupportedLiveIn { reg: r });
        }
    }

    // Accumulators: registers whose final value is an expression that
    // depends on their own initial value.
    let mut accs = Vec::new();
    for (&r, v) in &state {
        if r == body.counter || pointers.contains_key(&r) {
            continue;
        }
        if v.base.is_none() && v.deps & bit(r) != 0 {
            accs.push(r);
        }
    }
    accs.sort();

    // Invariants: initial registers feeding data that are not counter,
    // pointer, or accumulator, and are never redefined.
    let mut invariants = Vec::new();
    for r in Reg::all() {
        if data_deps & bit(r) == 0 || r.is_zero() {
            continue;
        }
        if r == body.counter || pointers.contains_key(&r) || accs.contains(&r) {
            continue;
        }
        let unchanged = state.get(&r).is_none_or(|v| v.base == Some((r, 0)));
        if unchanged {
            invariants.push(r);
        } else {
            // A register is both recomputed and read from its initial
            // value without being an accumulator: that is exactly an
            // accumulator pattern, so reaching here means it *was* read
            // before redefinition into a non-self-dependent value — the
            // WCLA can still seed it as an invariant input.
            invariants.push(r);
        }
    }

    Ok(Roles { pointers, accs, invariants })
}

/// Value a register holds during the DFG-building pass.
#[derive(Clone, Copy, Debug)]
enum RegVal {
    /// A pointer or counter: initial(reg) + offset (address arithmetic,
    /// not materialized in the DFG).
    Addr(Reg, i32),
    /// A data value.
    Node(NodeId),
}

struct DfgBuilder {
    dfg: Dfg,
    cse: HashMap<(Op, Vec<NodeId>), NodeId>,
}

impl DfgBuilder {
    fn new() -> Self {
        DfgBuilder { dfg: Dfg::new(), cse: HashMap::new() }
    }

    fn push(&mut self, op: Op, args: Vec<NodeId>) -> NodeId {
        if let Some(&id) = self.cse.get(&(op, args.clone())) {
            return id;
        }
        let id = self.dfg.push(op, args.clone());
        self.cse.insert((op, args), id);
        id
    }
}

/// Decompiles the loop `[head, tail]` of `program` into a
/// hardware-ready kernel.
///
/// `head` is the backward branch's target and `tail` the branch's own
/// address — exactly what the profiler's [`HotRegion`] reports.
///
/// # Errors
///
/// Returns a [`DecompileError`] describing why the region cannot be
/// implemented on the WCLA (the partitioner treats this as "leave the
/// region in software").
///
/// [`HotRegion`]: https://docs.rs/warp-profiler
pub fn decompile_loop(
    program: &Program,
    head: u32,
    tail: u32,
) -> Result<LoopKernel, DecompileError> {
    let body = fetch_region(program, head, tail)?;
    let roles = classify(&body)?;

    // Stream table in first-use order.
    let mut stream_index: BTreeMap<Reg, usize> = BTreeMap::new();
    let mut streams: Vec<MemStream> = Vec::new();
    let mut intern_stream = |r: Reg, streams: &mut Vec<MemStream>| -> usize {
        *stream_index.entry(r).or_insert_with(|| {
            streams.push(MemStream {
                base: r,
                stride: roles.pointers[&r],
                load_offsets: Vec::new(),
                store_offsets: Vec::new(),
            });
            streams.len() - 1
        })
    };

    let mut b = DfgBuilder::new();
    let mut regs: HashMap<Reg, RegVal> = HashMap::new();
    let mut stores: Vec<StoreOp> = Vec::new();

    // Seed roles.
    regs.insert(body.counter, RegVal::Addr(body.counter, 0));
    for &p in roles.pointers.keys() {
        regs.insert(p, RegVal::Addr(p, 0));
    }
    for &a in &roles.accs {
        let id = b.push(Op::Acc { reg: a }, vec![]);
        regs.insert(a, RegVal::Node(id));
    }
    for &i in &roles.invariants {
        let id = b.push(Op::Invariant { reg: i }, vec![]);
        regs.insert(i, RegVal::Node(id));
    }

    // Reading a pointer/counter as data (or an unseeded register) is a
    // classification failure; `pc` is accepted for symmetry with the
    // other error paths even though the error itself names the register.
    let value_of = |regs: &mut HashMap<Reg, RegVal>,
                    b: &mut DfgBuilder,
                    r: Reg,
                    _pc: u32|
     -> Result<NodeId, DecompileError> {
        if r.is_zero() {
            return Ok(b.push(Op::Const(0), vec![]));
        }
        match regs.get(&r) {
            Some(RegVal::Node(id)) => Ok(*id),
            Some(RegVal::Addr(_, _)) | None => Err(DecompileError::UnsupportedLiveIn { reg: r }),
        }
    };

    for &(pc, insn, prefix) in &body.insns {
        match insn {
            Insn::Addi { rd, ra, imm, use_carry: false, .. } => {
                let imm32 = imm32_of(imm, prefix);
                if ra.is_zero() {
                    // `addik rd, r0, imm` is a constant load.
                    let c = b.push(Op::Const(imm32), vec![]);
                    regs.insert(rd, RegVal::Node(c));
                    continue;
                }
                match regs.get(&ra).copied() {
                    // Pointer/counter arithmetic stays out of the DFG.
                    Some(RegVal::Addr(base, off)) => {
                        regs.insert(rd, RegVal::Addr(base, off.wrapping_add(imm32 as i32)));
                    }
                    Some(RegVal::Node(a)) => {
                        let c = b.push(Op::Const(imm32), vec![]);
                        let id = b.push(Op::Add, vec![a, c]);
                        regs.insert(rd, RegVal::Node(id));
                    }
                    // An unseeded register bumped by a constant is a dead
                    // pointer-like temp (classification proved it never
                    // feeds data); track it as address arithmetic.
                    None => {
                        regs.insert(rd, RegVal::Addr(ra, imm32 as i32));
                    }
                }
            }
            Insn::Addi { .. } => {
                return Err(DecompileError::UnsupportedInsn { pc, mnemonic: insn.to_string() });
            }
            Insn::Rsubi { rd, ra, imm, use_carry: false, .. } => {
                let imm32 = imm32_of(imm, prefix);
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = b.push(Op::Const(imm32), vec![]);
                let id = b.push(Op::Sub, vec![c, a]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Add { rd, ra, rb, use_carry: false, .. } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = value_of(&mut regs, &mut b, rb, pc)?;
                let id = b.push(Op::Add, vec![a, c]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Rsub { rd, ra, rb, use_carry: false, .. } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = value_of(&mut regs, &mut b, rb, pc)?;
                let id = b.push(Op::Sub, vec![c, a]); // rb - ra
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Mul { rd, ra, rb } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = value_of(&mut regs, &mut b, rb, pc)?;
                let id = b.push(Op::Mul, vec![a, c]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Muli { rd, ra, imm } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = b.push(Op::Const(imm32_of(imm, prefix)), vec![]);
                let id = b.push(Op::Mul, vec![a, c]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::And { rd, ra, rb }
            | Insn::Or { rd, ra, rb }
            | Insn::Xor { rd, ra, rb }
            | Insn::Andn { rd, ra, rb } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = value_of(&mut regs, &mut b, rb, pc)?;
                let op = match insn {
                    Insn::And { .. } => Op::And,
                    Insn::Or { .. } => Op::Or,
                    Insn::Xor { .. } => Op::Xor,
                    _ => Op::AndNot,
                };
                let id = b.push(op, vec![a, c]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Andi { rd, ra, imm }
            | Insn::Ori { rd, ra, imm }
            | Insn::Xori { rd, ra, imm }
            | Insn::Andni { rd, ra, imm } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = b.push(Op::Const(imm32_of(imm, prefix)), vec![]);
                let op = match insn {
                    Insn::Andi { .. } => Op::And,
                    Insn::Ori { .. } => Op::Or,
                    Insn::Xori { .. } => Op::Xor,
                    _ => Op::AndNot,
                };
                let id = b.push(op, vec![a, c]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Bsi { rd, ra, amount, kind } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let op = match kind {
                    mb_isa::ShiftKind::LogicalLeft => Op::Shl(amount),
                    mb_isa::ShiftKind::LogicalRight => Op::Shr(amount),
                    mb_isa::ShiftKind::ArithmeticRight => Op::Sar(amount),
                };
                let id = b.push(op, vec![a]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Bs { rd, ra, rb, kind } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let c = value_of(&mut regs, &mut b, rb, pc)?;
                let op = match kind {
                    mb_isa::ShiftKind::LogicalLeft => Op::ShlDyn,
                    mb_isa::ShiftKind::LogicalRight => Op::ShrDyn,
                    mb_isa::ShiftKind::ArithmeticRight => Op::SarDyn,
                };
                let id = b.push(op, vec![a, c]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Srl { rd, ra } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let id = b.push(Op::Shr(1), vec![a]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Sra { rd, ra } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let id = b.push(Op::Sar(1), vec![a]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Sext8 { rd, ra } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let id = b.push(Op::Sext8, vec![a]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Sext16 { rd, ra } => {
                let a = value_of(&mut regs, &mut b, ra, pc)?;
                let id = b.push(Op::Sext16, vec![a]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Loadi { rd, ra, imm, size: MemSize::Word } => {
                let Some(RegVal::Addr(base, extra)) = regs.get(&ra).copied() else {
                    return Err(DecompileError::IrregularAccess { pc });
                };
                let offset = extra.wrapping_add(imm32_of(imm, prefix) as i32);
                let s = intern_stream(base, &mut streams);
                if !streams[s].load_offsets.contains(&offset) {
                    streams[s].load_offsets.push(offset);
                }
                let id = b.push(Op::LoadValue { stream: s, offset }, vec![]);
                regs.insert(rd, RegVal::Node(id));
            }
            Insn::Storei { rd, ra, imm, size: MemSize::Word } => {
                let Some(RegVal::Addr(base, extra)) = regs.get(&ra).copied() else {
                    return Err(DecompileError::IrregularAccess { pc });
                };
                let offset = extra.wrapping_add(imm32_of(imm, prefix) as i32);
                let s = intern_stream(base, &mut streams);
                streams[s].store_offsets.push(offset);
                let value = value_of(&mut regs, &mut b, rd, pc)?;
                stores.push(StoreOp { stream: s, offset, value });
            }
            other => {
                return Err(DecompileError::UnsupportedInsn { pc, mnemonic: other.to_string() });
            }
        }
    }

    if streams.len() > DADG_STREAMS {
        return Err(DecompileError::TooManyStreams {
            found: streams.len(),
            supported: DADG_STREAMS,
        });
    }

    // Accumulator next-values.
    let mut accs = Vec::new();
    for &a in &roles.accs {
        match regs.get(&a) {
            Some(RegVal::Node(id)) => accs.push(AccUpdate { reg: a, next: *id }),
            _ => return Err(DecompileError::UnsupportedLiveIn { reg: a }),
        }
    }

    // Dead temps: data registers the body writes that are neither
    // accumulators nor live-ins — free for the patch stub to clobber.
    let mut dead_temps: Vec<Reg> = regs
        .iter()
        .filter(|(r, v)| {
            matches!(v, RegVal::Node(_))
                && !roles.accs.contains(r)
                && !roles.invariants.contains(r)
                && !roles.pointers.contains_key(r)
                && **r != body.counter
        })
        .map(|(r, _)| *r)
        .collect();
    dead_temps.sort();

    Ok(LoopKernel {
        head,
        tail,
        counter: body.counter,
        streams,
        dfg: b.dfg,
        stores,
        accs,
        invariants: roles.invariants,
        dead_temps,
        body_insns: body.body_insns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::Assembler;

    /// A canonical copy loop: out[i] = in[i] ^ 7.
    fn copy_loop() -> Program {
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::Xori { rd: Reg::R9, ra: Reg::R9, imm: 7 });
        a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        a.finish().unwrap()
    }

    fn bounds(p: &Program) -> (u32, u32) {
        (p.symbol("head").unwrap(), p.symbol("tail").unwrap())
    }

    #[test]
    fn copy_loop_decompiles() {
        let p = copy_loop();
        let (h, t) = bounds(&p);
        let k = decompile_loop(&p, h, t).unwrap();
        assert_eq!(k.counter, Reg::R4);
        assert_eq!(k.streams.len(), 2);
        assert_eq!(k.streams[0].base, Reg::R5);
        assert_eq!(k.streams[0].stride, 4);
        assert_eq!(k.streams[0].load_offsets, vec![0]);
        assert_eq!(k.streams[1].store_offsets, vec![0]);
        assert_eq!(k.stores.len(), 1);
        assert!(k.accs.is_empty());
        assert!(k.invariants.is_empty());
        assert_eq!(k.body_insns, 7);
    }

    #[test]
    fn interpreter_runs_copy_loop() {
        let p = copy_loop();
        let (h, t) = bounds(&p);
        let k = decompile_loop(&p, h, t).unwrap();
        let mem_in: Vec<u32> = (0..8).map(|i| i * 11).collect();
        let mut mem_out = vec![0u32; 8];
        let mut env = KernelEnv { counter: 8, ..KernelEnv::default() };
        env.pointers.insert(Reg::R5, 0x100);
        env.pointers.insert(Reg::R6, 0x200);
        let iters = k.interpret(
            &mut env,
            |addr| mem_in[((addr - 0x100) / 4) as usize],
            |addr, v| mem_out[((addr - 0x200) / 4) as usize] = v,
        );
        assert_eq!(iters, 8);
        assert_eq!(mem_out, mem_in.iter().map(|v| v ^ 7).collect::<Vec<_>>());
        assert_eq!(env.pointers[&Reg::R5], 0x100 + 32);
    }

    #[test]
    fn accumulator_loop_decompiles() {
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::Xor { rd: Reg::R22, ra: Reg::R22, rb: Reg::R9 });
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        let k = decompile_loop(&p, h, t).unwrap();
        assert_eq!(k.accs.len(), 1);
        assert_eq!(k.accs[0].reg, Reg::R22);
        assert!(k.stores.is_empty());

        let mut env = KernelEnv { counter: 4, ..KernelEnv::default() };
        env.pointers.insert(Reg::R5, 0);
        env.accs.insert(Reg::R22, 0xFF);
        let data = [1u32, 2, 4, 8];
        k.interpret(&mut env, |addr| data[(addr / 4) as usize], |_, _| panic!("no stores"));
        assert_eq!(env.accs[&Reg::R22], 0xFF ^ 1 ^ 2 ^ 4 ^ 8);
    }

    #[test]
    fn invariant_input_detected() {
        // out[i] = in[i] & r20  (r20 set outside the loop).
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::And { rd: Reg::R9, ra: Reg::R9, rb: Reg::R20 });
        a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        let k = decompile_loop(&p, h, t).unwrap();
        assert_eq!(k.invariants, vec![Reg::R20]);
    }

    #[test]
    fn rejects_non_loop_region() {
        let mut a = Assembler::new(0);
        a.nop();
        a.nop();
        let p = a.finish().unwrap();
        assert!(matches!(decompile_loop(&p, 0, 4), Err(DecompileError::NotALoop { .. })));
    }

    #[test]
    fn rejects_control_flow_in_body() {
        let mut a = Assembler::new(0);
        a.label("head");
        a.beqi(Reg::R9, "skip");
        a.nop();
        a.label("skip");
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        assert!(matches!(decompile_loop(&p, h, t), Err(DecompileError::ControlFlowInBody { .. })));
    }

    #[test]
    fn rejects_register_indexed_memory() {
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::Load { size: MemSize::Word, rd: Reg::R9, ra: Reg::R5, rb: Reg::R7 });
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        assert!(matches!(decompile_loop(&p, h, t), Err(DecompileError::IrregularAccess { .. })));
    }

    #[test]
    fn rejects_divide() {
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::Idiv { rd: Reg::R9, ra: Reg::R9, rb: Reg::R10, unsigned: false });
        a.push(Insn::swi(Reg::R9, Reg::R5, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        assert!(matches!(decompile_loop(&p, h, t), Err(DecompileError::UnsupportedInsn { .. })));
    }

    #[test]
    fn rejects_too_many_streams() {
        let mut a = Assembler::new(0);
        a.label("head");
        for (i, r) in [Reg::R5, Reg::R6, Reg::R7, Reg::R8].iter().enumerate() {
            a.push(Insn::lwi(Reg::new(9 + i as u8), *r, 0));
        }
        for r in [Reg::R5, Reg::R6, Reg::R7, Reg::R8] {
            a.push(Insn::addik(r, r, 4));
        }
        a.push(Insn::addk(Reg::R20, Reg::R9, Reg::R10));
        a.push(Insn::addk(Reg::R20, Reg::R20, Reg::R11));
        a.push(Insn::addk(Reg::R20, Reg::R20, Reg::R12));
        a.push(Insn::swi(Reg::R20, Reg::R5, 0)); // adds no new stream
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        assert!(matches!(
            decompile_loop(&p, h, t),
            Err(DecompileError::TooManyStreams { found: 4, supported: 3 })
        ));
    }

    #[test]
    fn rejects_pointer_used_as_data() {
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::addk(Reg::R9, Reg::R9, Reg::R5)); // pointer as data
        a.push(Insn::swi(Reg::R9, Reg::R5, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        assert!(matches!(decompile_loop(&p, h, t), Err(DecompileError::UnsupportedLiveIn { .. })));
    }

    #[test]
    fn imm_prefix_merges_into_constants() {
        let mut a = Assembler::new(0);
        a.label("head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::Imm { imm: 0x0F0F });
        a.push(Insn::Andi { rd: Reg::R9, ra: Reg::R9, imm: 0x0F0Fu16 as i16 });
        a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("tail");
        a.bnei(Reg::R4, "head");
        let p = a.finish().unwrap();
        let (h, t) = bounds(&p);
        let k = decompile_loop(&p, h, t).unwrap();
        let has_const = k.dfg.nodes().iter().any(|n| matches!(n.op, Op::Const(0x0F0F_0F0F)));
        assert!(has_const, "32-bit constant must be reassembled from imm prefix");
    }

    #[test]
    fn fingerprint_is_deterministic_and_content_sensitive() {
        let p = copy_loop();
        let (h, t) = bounds(&p);
        let a = decompile_loop(&p, h, t).unwrap();
        let b = decompile_loop(&p, h, t).unwrap();
        // Two independent decompilations of the same region agree.
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.streams[0].stride = 8;
        assert_ne!(a.fingerprint(), c.fingerprint(), "stride must be part of the content hash");
        let mut d = a.clone();
        d.head ^= 4;
        assert_ne!(a.fingerprint(), d.fingerprint(), "loop bounds must be part of the hash");
    }

    #[test]
    fn live_ins_are_ordered_and_complete() {
        let p = copy_loop();
        let (h, t) = bounds(&p);
        let k = decompile_loop(&p, h, t).unwrap();
        assert_eq!(k.live_ins(), vec![Reg::R4, Reg::R5, Reg::R6]);
        assert_eq!(k.mem_ops_per_iter(), 2);
        assert_eq!(k.mul_ops_per_iter(), 0);
    }
}
