//! Binary-level control-flow analysis: basic blocks, dominators, and
//! natural loops.
//!
//! Binary-level partitioning (Stitt & Vahid, ICCAD'02) recovers program
//! structure directly from the instruction stream. This module provides
//! that recovery for whole programs; the warp flow itself uses it to
//! validate that a profiled hot region really is a natural loop before
//! attempting decompilation.

use std::collections::{BTreeMap, BTreeSet};

use mb_isa::{Insn, Program};

/// A basic block: a maximal straight-line instruction sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u32,
    /// Address one past the last instruction.
    pub end: u32,
    /// Successor block start addresses.
    pub successors: Vec<u32>,
}

impl BasicBlock {
    /// Whether the block contains the address.
    #[must_use]
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// A natural loop discovered from a back edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaturalLoop {
    /// The loop header block's start address.
    pub header: u32,
    /// The back edge's source block start address.
    pub latch: u32,
    /// Start addresses of all blocks in the loop body (including the
    /// header).
    pub blocks: BTreeSet<u32>,
}

/// A whole-program control-flow graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ControlFlowGraph {
    blocks: BTreeMap<u32, BasicBlock>,
    entry: u32,
}

/// Branch targets of an instruction at `pc` (static targets only;
/// register-indirect branches contribute none).
fn static_targets(pc: u32, insn: &Insn) -> (Vec<u32>, bool) {
    // Returns (targets, falls_through).
    match *insn {
        Insn::Bri { imm, absolute, .. } => {
            let t = if absolute { imm as i32 as u32 } else { pc.wrapping_add(imm as i32 as u32) };
            (vec![t], false)
        }
        Insn::Bci { imm, .. } => (vec![pc.wrapping_add(imm as i32 as u32)], true),
        Insn::Br { .. } | Insn::Rtsd { .. } => (vec![], false), // indirect
        Insn::Bc { .. } => (vec![], true),                      // indirect target, may fall through
        _ => (vec![], true),
    }
}

impl ControlFlowGraph {
    /// Builds the CFG of a program.
    ///
    /// Delay slots are treated as part of their branch's block (the
    /// branch takes effect after the following instruction).
    #[must_use]
    pub fn from_program(program: &Program) -> Self {
        let insns: BTreeMap<u32, Insn> = program.iter_insns().collect();

        // Leaders: entry, branch targets, instructions after branches
        // (accounting for delay slots).
        let mut leaders: BTreeSet<u32> = BTreeSet::new();
        leaders.insert(program.base);
        for (&pc, insn) in &insns {
            if !insn.is_control_flow() {
                continue;
            }
            let (targets, falls) = static_targets(pc, insn);
            for t in targets {
                leaders.insert(t);
            }
            let after = if insn.has_delay_slot() { pc + 8 } else { pc + 4 };
            if falls || insn.has_delay_slot() {
                // The instruction after the branch (and slot) starts a block.
            }
            if after < program.end() {
                leaders.insert(after);
            }
        }

        // Carve blocks.
        let leader_list: Vec<u32> = leaders.iter().copied().collect();
        let mut blocks = BTreeMap::new();
        for (i, &start) in leader_list.iter().enumerate() {
            let next_leader = leader_list.get(i + 1).copied().unwrap_or(program.end());
            // Find the terminating branch within [start, next_leader).
            let mut end = next_leader;
            let mut successors = Vec::new();
            let mut pc = start;
            let mut terminated = false;
            while pc < next_leader {
                let Some(insn) = insns.get(&pc) else {
                    pc += 4;
                    continue;
                };
                if insn.is_control_flow() {
                    let slot = if insn.has_delay_slot() { 4 } else { 0 };
                    end = pc + 4 + slot;
                    let (targets, falls) = static_targets(pc, insn);
                    successors.extend(targets);
                    if falls && end < program.end() {
                        successors.push(end);
                    }
                    terminated = true;
                    break;
                }
                pc += 4;
            }
            if !terminated {
                end = next_leader;
                if end < program.end() {
                    successors.push(end);
                }
            }
            blocks.insert(start, BasicBlock { start, end, successors });
        }

        ControlFlowGraph { blocks, entry: program.base }
    }

    /// The entry block address.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// All blocks keyed by start address.
    #[must_use]
    pub fn blocks(&self) -> &BTreeMap<u32, BasicBlock> {
        &self.blocks
    }

    /// The block containing an address.
    #[must_use]
    pub fn block_of(&self, addr: u32) -> Option<&BasicBlock> {
        self.blocks.range(..=addr).next_back().map(|(_, b)| b).filter(|b| b.contains(addr))
    }

    /// Immediate-dominator-free dominator sets (iterative data-flow).
    ///
    /// Returns, for each reachable block start, the set of block starts
    /// dominating it (including itself).
    #[must_use]
    pub fn dominators(&self) -> BTreeMap<u32, BTreeSet<u32>> {
        let all: BTreeSet<u32> = self.blocks.keys().copied().collect();
        let mut dom: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        // Predecessor map.
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&s, b) in &self.blocks {
            for &t in &b.successors {
                preds.entry(t).or_default().push(s);
            }
        }
        for &s in &all {
            if s == self.entry {
                dom.insert(s, BTreeSet::from([s]));
            } else {
                dom.insert(s, all.clone());
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for &s in &all {
                if s == self.entry {
                    continue;
                }
                let Some(ps) = preds.get(&s) else { continue };
                let mut new: Option<BTreeSet<u32>> = None;
                for p in ps {
                    if let Some(pd) = dom.get(p) {
                        new = Some(match new {
                            None => pd.clone(),
                            Some(acc) => acc.intersection(pd).copied().collect(),
                        });
                    }
                }
                let mut new = new.unwrap_or_default();
                new.insert(s);
                if dom[&s] != new {
                    dom.insert(s, new);
                    changed = true;
                }
            }
        }
        dom
    }

    /// Finds natural loops: back edges `latch → header` where the header
    /// dominates the latch, with their bodies.
    #[must_use]
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let dom = self.dominators();
        let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&s, b) in &self.blocks {
            for &t in &b.successors {
                preds.entry(t).or_default().push(s);
            }
        }
        let mut loops = Vec::new();
        for (&latch, b) in &self.blocks {
            for &header in &b.successors {
                let dominated = dom.get(&latch).is_some_and(|d| d.contains(&header));
                if !dominated {
                    continue;
                }
                // Collect the loop body: header plus everything that can
                // reach the latch without passing through the header.
                let mut body = BTreeSet::from([header, latch]);
                let mut stack = vec![latch];
                while let Some(n) = stack.pop() {
                    if n == header {
                        continue;
                    }
                    for &p in preds.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                        if body.insert(p) {
                            stack.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop { header, latch, blocks: body });
            }
        }
        loops.sort_by_key(|l| (l.header, l.latch));
        loops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Assembler, Reg};

    fn loop_program() -> Program {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, 10); // block A
        a.label("loop"); // block B
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "loop");
        a.nop(); // block C
        a.finish().unwrap()
    }

    #[test]
    fn blocks_split_at_loop_boundaries() {
        let p = loop_program();
        let cfg = ControlFlowGraph::from_program(&p);
        let starts: Vec<u32> = cfg.blocks().keys().copied().collect();
        assert_eq!(starts, vec![0x0, 0x4, 0xC]);
        let loop_block = &cfg.blocks()[&0x4];
        assert!(loop_block.successors.contains(&0x4), "back edge");
        assert!(loop_block.successors.contains(&0xC), "exit edge");
    }

    #[test]
    fn dominators_flow_through_entry() {
        let p = loop_program();
        let cfg = ControlFlowGraph::from_program(&p);
        let dom = cfg.dominators();
        assert!(dom[&0xC].contains(&0x0));
        assert!(dom[&0xC].contains(&0x4));
        assert!(dom[&0x4].contains(&0x0));
        assert!(!dom[&0x0].contains(&0x4));
    }

    #[test]
    fn natural_loop_found() {
        let p = loop_program();
        let cfg = ControlFlowGraph::from_program(&p);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 0x4);
        assert_eq!(loops[0].latch, 0x4);
    }

    #[test]
    fn nested_loops_both_found() {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, 5);
        a.label("outer");
        a.li(Reg::R4, 5);
        a.label("inner");
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.bnei(Reg::R4, "inner");
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "outer");
        a.nop();
        let p = a.finish().unwrap();
        let cfg = ControlFlowGraph::from_program(&p);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2);
        let inner = loops.iter().find(|l| l.header == p.symbol("inner").unwrap()).unwrap();
        let outer = loops.iter().find(|l| l.header == p.symbol("outer").unwrap()).unwrap();
        assert!(outer.blocks.is_superset(&inner.blocks), "inner loop nests in outer");
    }

    #[test]
    fn block_of_locates_addresses() {
        let p = loop_program();
        let cfg = ControlFlowGraph::from_program(&p);
        assert_eq!(cfg.block_of(0x8).unwrap().start, 0x4);
        assert!(cfg.block_of(0x100).is_none());
    }
}
