//! Word-level data-flow graph IR.

use std::fmt;

use mb_isa::Reg;

/// Index of a node within a [`Dfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A data-flow operation.
///
/// All operations are 32-bit with wrapping semantics; shift amounts are
/// taken modulo 32 (matching both the MicroBlaze shifter and the
/// synthesized hardware).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// The value loaded this iteration from `stream` at `offset` bytes
    /// from the stream's moving base.
    LoadValue {
        /// Index into the kernel's stream table.
        stream: usize,
        /// Byte offset from the stream cursor.
        offset: i32,
    },
    /// A loop-invariant scalar input (register unchanged by the body).
    Invariant {
        /// The register carrying the invariant.
        reg: Reg,
    },
    /// The previous iteration's value of a loop-carried accumulator.
    Acc {
        /// The accumulator's register.
        reg: Reg,
    },
    /// A compile-time constant.
    Const(u32),
    /// Addition (args: a, b).
    Add,
    /// Subtraction (args: a, b) computing `a - b`.
    Sub,
    /// Low 32 bits of the product (args: a, b) — maps onto the MAC.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// `a & !b`.
    AndNot,
    /// Logical shift left by a constant (pure wiring in hardware).
    Shl(u8),
    /// Logical shift right by a constant.
    Shr(u8),
    /// Arithmetic shift right by a constant.
    Sar(u8),
    /// Dynamic logical shift left (args: value, amount).
    ShlDyn,
    /// Dynamic logical shift right.
    ShrDyn,
    /// Dynamic arithmetic shift right.
    SarDyn,
    /// Sign-extend the low byte.
    Sext8,
    /// Sign-extend the low half-word.
    Sext16,
}

impl Op {
    /// Number of value arguments the operation takes.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            Op::LoadValue { .. } | Op::Invariant { .. } | Op::Acc { .. } | Op::Const(_) => 0,
            Op::Shl(_) | Op::Shr(_) | Op::Sar(_) | Op::Sext8 | Op::Sext16 => 1,
            _ => 2,
        }
    }

    /// Whether this is a leaf (input) operation.
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self, Op::LoadValue { .. } | Op::Invariant { .. } | Op::Acc { .. })
    }
}

/// One node: an operation and its arguments.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Node {
    /// The operation.
    pub op: Op,
    /// Argument node ids (length = `op.arity()`).
    pub args: Vec<NodeId>,
}

/// A word-level data-flow graph in topological order (arguments always
/// precede their users).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Dfg {
    nodes: Vec<Node>,
}

impl Dfg {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Adds a node, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the argument count does not match the operation's arity
    /// or if an argument id is out of range (graph must stay topological).
    pub fn push(&mut self, op: Op, args: Vec<NodeId>) -> NodeId {
        assert_eq!(args.len(), op.arity(), "arity mismatch for {op:?}");
        for a in &args {
            assert!((a.0 as usize) < self.nodes.len(), "argument {a} out of range");
        }
        self.nodes.push(Node { op, args });
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// Convenience: adds a constant node.
    pub fn constant(&mut self, value: u32) -> NodeId {
        self.push(Op::Const(value), vec![])
    }

    /// The node for an id.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// All nodes in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Counts nodes of a class (for synthesis-cost reporting).
    #[must_use]
    pub fn count_where(&self, mut pred: impl FnMut(&Op) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.op)).count()
    }

    /// Evaluates the whole graph given resolvers for the three input
    /// kinds, returning every node's value.
    ///
    /// This is the reference semantics used to cross-check the
    /// synthesized netlist and the WCLA execution.
    pub fn eval(
        &self,
        load: impl FnMut(usize, i32) -> u32,
        invariant: impl FnMut(Reg) -> u32,
        acc: impl FnMut(Reg) -> u32,
    ) -> Vec<u32> {
        let mut vals = Vec::with_capacity(self.nodes.len());
        self.eval_into(&mut vals, load, invariant, acc);
        vals
    }

    /// [`eval`](Dfg::eval) into a caller-owned buffer (cleared, then
    /// refilled in topological order), reusing its allocation. This is
    /// the per-iteration hot path of the WCLA executor, where a fresh
    /// `Vec` every iteration would dominate the evaluation itself.
    pub fn eval_into(
        &self,
        vals: &mut Vec<u32>,
        mut load: impl FnMut(usize, i32) -> u32,
        mut invariant: impl FnMut(Reg) -> u32,
        mut acc: impl FnMut(Reg) -> u32,
    ) {
        vals.clear();
        vals.reserve(self.nodes.len());
        for n in &self.nodes {
            let a = |i: usize| -> u32 { vals[n.args[i].0 as usize] };
            let v = match n.op {
                Op::LoadValue { stream, offset } => load(stream, offset),
                Op::Invariant { reg } => invariant(reg),
                Op::Acc { reg } => acc(reg),
                Op::Const(c) => c,
                Op::Add => a(0).wrapping_add(a(1)),
                Op::Sub => a(0).wrapping_sub(a(1)),
                Op::Mul => a(0).wrapping_mul(a(1)),
                Op::And => a(0) & a(1),
                Op::Or => a(0) | a(1),
                Op::Xor => a(0) ^ a(1),
                Op::AndNot => a(0) & !a(1),
                Op::Shl(k) => a(0) << (k & 31),
                Op::Shr(k) => a(0) >> (k & 31),
                Op::Sar(k) => ((a(0) as i32) >> (k & 31)) as u32,
                Op::ShlDyn => a(0) << (a(1) & 31),
                Op::ShrDyn => a(0) >> (a(1) & 31),
                Op::SarDyn => ((a(0) as i32) >> (a(1) & 31)) as u32,
                Op::Sext8 => a(0) as u8 as i8 as i32 as u32,
                Op::Sext16 => a(0) as u16 as i16 as i32 as u32,
            };
            vals.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval_simple_expression() {
        // out = (load0 + 5) ^ (load0 >> 2)
        let mut g = Dfg::new();
        let x = g.push(Op::LoadValue { stream: 0, offset: 0 }, vec![]);
        let five = g.constant(5);
        let sum = g.push(Op::Add, vec![x, five]);
        let sh = g.push(Op::Shr(2), vec![x]);
        let out = g.push(Op::Xor, vec![sum, sh]);
        let vals = g.eval(|_, _| 100, |_| 0, |_| 0);
        assert_eq!(vals[out.0 as usize], (100u32 + 5) ^ (100 >> 2));
    }

    #[test]
    fn eval_covers_all_ops() {
        let mut g = Dfg::new();
        let a = g.constant(0x8000_0010);
        let b = g.constant(3);
        let ops = [
            (Op::Add, 0x8000_0013u32),
            (Op::Sub, 0x8000_000D),
            (Op::Mul, 0x8000_0030),
            (Op::And, 0),
            (Op::Or, 0x8000_0013),
            (Op::Xor, 0x8000_0013),
            (Op::AndNot, 0x8000_0010),
            (Op::ShlDyn, 0x0000_0080),
            (Op::ShrDyn, 0x1000_0002),
            (Op::SarDyn, 0xF000_0002),
        ];
        let mut ids = Vec::new();
        for (op, _) in &ops {
            ids.push(g.push(*op, vec![a, b]));
        }
        let s1 = g.push(Op::Shl(4), vec![a]);
        let s2 = g.push(Op::Shr(4), vec![a]);
        let s3 = g.push(Op::Sar(4), vec![a]);
        let e8 = g.push(Op::Sext8, vec![a]);
        let e16 = g.push(Op::Sext16, vec![a]);
        let vals = g.eval(|_, _| 0, |_| 0, |_| 0);
        for ((_, want), id) in ops.iter().zip(&ids) {
            assert_eq!(vals[id.0 as usize], *want);
        }
        assert_eq!(vals[s1.0 as usize], 0x0000_0100);
        assert_eq!(vals[s2.0 as usize], 0x0800_0001);
        assert_eq!(vals[s3.0 as usize], 0xF800_0001);
        assert_eq!(vals[e8.0 as usize], 0x10);
        assert_eq!(vals[e16.0 as usize], 0x10);
    }

    #[test]
    fn inputs_route_through_resolvers() {
        let mut g = Dfg::new();
        let l = g.push(Op::LoadValue { stream: 1, offset: 8 }, vec![]);
        let i = g.push(Op::Invariant { reg: Reg::R20 }, vec![]);
        let c = g.push(Op::Acc { reg: Reg::R22 }, vec![]);
        let vals = g.eval(
            |s, o| (s as u32) * 1000 + o as u32,
            |r| u32::from(r.number()) * 10,
            |r| u32::from(r.number()),
        );
        assert_eq!(vals[l.0 as usize], 1008);
        assert_eq!(vals[i.0 as usize], 200);
        assert_eq!(vals[c.0 as usize], 22);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut g = Dfg::new();
        let a = g.constant(1);
        let _ = g.push(Op::Add, vec![a]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn topological_order_enforced() {
        let mut g = Dfg::new();
        let _ = g.push(Op::Add, vec![NodeId(5), NodeId(6)]);
    }

    #[test]
    fn count_where_classifies() {
        let mut g = Dfg::new();
        let a = g.constant(1);
        let b = g.constant(2);
        g.push(Op::Mul, vec![a, b]);
        g.push(Op::Add, vec![a, b]);
        assert_eq!(g.count_where(|o| matches!(o, Op::Mul)), 1);
        assert_eq!(g.count_where(Op::is_input), 0);
    }
}
