//! Stable content hashing for decompiled kernels.
//!
//! The warp flow caches compiled circuits keyed by the *content* of the
//! decompiled kernel (see `warp-core`'s `CircuitCache`), so the key must
//! be reproducible: the same kernel must hash to the same value in every
//! process, on every run, on every platform. `std::hash::DefaultHasher`
//! guarantees none of that, so this module provides [`Fnv1a`], a
//! fixed-parameter 64-bit FNV-1a [`Hasher`] with all integer writes
//! canonicalized to little-endian (and `usize`/`isize` widened to 64
//! bits so 32- and 64-bit hosts agree).

use std::hash::Hasher;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a hasher with platform-independent integer encoding.
///
/// Deliberately *not* DoS-resistant — it is a content-address, not a
/// `HashMap` seed.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates a hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET_BASIS)
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_i64(i as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn known_vectors() {
        // FNV-1a reference values.
        let mut h = Fnv1a::new();
        h.write(b"");
        assert_eq!(h.finish(), FNV_OFFSET_BASIS);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn usize_hashes_like_u64() {
        let mut a = Fnv1a::new();
        42usize.hash(&mut a);
        let mut b = Fnv1a::new();
        42u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }
}
