//! Binary decompilation to control/data-flow graphs.
//!
//! The dynamic partitioning module "decompiles the critical region into a
//! control-dataflow graph" (paper Section 3, citing Stitt/Lysecky/Vahid
//! DAC'03). This crate is that stage of the ROCPART tool chain:
//!
//! * [`cfg`](mod@cfg) — generic binary-level control-flow analysis: basic blocks,
//!   dominators, and natural-loop detection (the decompilation techniques
//!   of binary-level partitioning recover loop structure directly from
//!   the instruction stream);
//! * [`Dfg`] — a word-level data-flow graph IR whose operations map onto
//!   the warp configurable logic architecture (logic to LUTs, multiplies
//!   to the MAC, memory accesses to DADG streams);
//! * [`decompile_loop`] — the loop decompiler: symbolic execution of a
//!   single-basic-block loop body that recovers induction pointers and
//!   their strides (DADG address streams), the trip counter (loop control
//!   hardware), loop-carried accumulators, loop-invariant inputs, and the
//!   pure data-flow of the body.
//!
//! The decompiler accepts exactly the class of loops the paper's WCLA
//! supports — "critical loops that … follow regular access patterns" —
//! and reports a structured [`DecompileError`] otherwise, which is how
//! the warp processor decides a region is not partitionable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
mod decompile;
mod dfg;
mod error;
pub mod fingerprint;

pub use decompile::{
    decompile_loop, AccUpdate, KernelEnv, LoopKernel, MemStream, StoreOp, DADG_STREAMS,
};
pub use dfg::{Dfg, Node, NodeId, Op};
pub use error::DecompileError;
