//! The decompiler must accept every workload kernel and its reference
//! interpreter must reproduce the simulator's memory effects exactly.

use mb_isa::MbFeatures;
use mb_sim::MbConfig;
use warp_cdfg::{decompile_loop, KernelEnv};

/// Runs a workload on the simulator up to the first kernel entry, then
/// interprets the decompiled kernel against a copy of data memory and
/// compares with letting the simulator run the loop in software.
#[test]
fn kernel_interpreter_matches_software_execution() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail)
            .unwrap_or_else(|e| panic!("{}: decompile failed: {e}", workload.name));

        // Execute in software, stopping exactly at the loop head.
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let mut guard = 0u64;
        while sys.cpu().pc() != built.kernel.head {
            sys.step(&mut mb_sim::NullSink).unwrap();
            guard += 1;
            assert!(guard < 10_000_000, "{}: never reached kernel head", workload.name);
        }

        // Snapshot the pre-loop state for the interpreter.
        let mut env = KernelEnv { counter: sys.cpu().reg(kernel.counter), ..KernelEnv::default() };
        for s in &kernel.streams {
            env.pointers.insert(s.base, sys.cpu().reg(s.base));
        }
        for a in &kernel.accs {
            env.accs.insert(a.reg, sys.cpu().reg(a.reg));
        }
        for &r in &kernel.invariants {
            env.invariants.insert(r, sys.cpu().reg(r));
        }
        let mut shadow = sys.dmem().clone();

        // Let the simulator run the whole loop in software.
        let after = built.kernel.after();
        let mut guard = 0u64;
        while sys.cpu().pc() != after {
            sys.step(&mut mb_sim::NullSink).unwrap();
            guard += 1;
            assert!(guard < 50_000_000, "{}: loop never exited", workload.name);
        }

        // Interpret the kernel against the shadow memory.
        let mut stores: Vec<(u32, u32)> = Vec::new();
        let shadow_ro = shadow.clone();
        let iters = kernel.interpret(
            &mut env,
            |addr| shadow_ro.read_word(addr).unwrap(),
            |addr, v| stores.push((addr, v)),
        );
        assert!(iters > 0, "{}: kernel must iterate", workload.name);
        for (addr, v) in stores {
            shadow.write_word(addr, v).unwrap();
        }

        // Memory must match bit for bit.
        assert_eq!(
            shadow.words(),
            sys.dmem().words(),
            "{}: interpreter and simulator disagree on memory",
            workload.name
        );
        // Accumulator live-outs must match the CPU registers.
        for a in &kernel.accs {
            assert_eq!(
                env.accs[&a.reg],
                sys.cpu().reg(a.reg),
                "{}: accumulator {} mismatch",
                workload.name,
                a.reg
            );
        }
    }
}

#[test]
fn workload_kernels_fit_wcla_constraints() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        assert!(kernel.streams.len() <= 3, "{}: too many streams", workload.name);
        assert!(!kernel.dfg.is_empty(), "{}: empty dataflow", workload.name);
        // Every kernel either stores results or carries an accumulator.
        assert!(
            !kernel.stores.is_empty() || !kernel.accs.is_empty(),
            "{}: kernel has no observable effect",
            workload.name
        );
    }
}

#[test]
fn kernel_is_a_natural_loop_in_the_cfg() {
    use warp_cdfg::cfg::ControlFlowGraph;
    for workload in workloads::paper_suite() {
        let built = workload.build(MbFeatures::paper_default());
        let cfg = ControlFlowGraph::from_program(&built.program);
        let loops = cfg.natural_loops();
        assert!(
            loops.iter().any(|l| l.header == built.kernel.head),
            "{}: kernel head {:#x} is not a natural-loop header",
            workload.name,
            built.kernel.head
        );
    }
}
