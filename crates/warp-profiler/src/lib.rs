//! Non-intrusive on-chip profiler model: frequent loop detection.
//!
//! The warp processor's profiler (based on Gordon-Ross & Vahid, CASES
//! 2003, cited as \[10] by the paper) watches the instruction addresses on
//! the local instruction memory bus. "Whenever a backward branch occurs,
//! the profiler updates a small cache that stores the branch
//! frequencies." The most frequent backward branch closes the
//! application's critical loop — the region the dynamic partitioning
//! module moves to hardware.
//!
//! This crate models that hardware: a small fully-associative cache of
//! branch entries with saturating counters, coldest-entry replacement,
//! and counter aging by halving on saturation. It consumes the
//! instruction [`Trace`] the simulator produces, exactly
//! as the paper's experimental setup replayed traces captured with the
//! Xilinx debug engine.
//!
//! # Example
//!
//! ```
//! use warp_profiler::{Profiler, ProfilerConfig};
//!
//! let mut p = Profiler::new(ProfilerConfig::default());
//! // A loop at 0x100..0x120 iterating 50 times.
//! for _ in 0..50 {
//!     p.observe_branch(0x120, 0x100);
//! }
//! let hot = p.best().expect("one hot loop");
//! assert_eq!(hot.head, 0x100);
//! assert_eq!(hot.tail, 0x120);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use mb_sim::{BlockRetire, Trace, TraceEvent, TraceSink};

/// Geometry of the profiler's branch-frequency cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProfilerConfig {
    /// Number of cache entries (the CASES'03 design uses a small cache;
    /// 16 entries suffice for embedded workloads).
    pub entries: usize,
    /// Saturating counter width in bits.
    pub counter_bits: u32,
}

impl ProfilerConfig {
    /// The configuration modeled in the paper's warp processor.
    #[must_use]
    pub fn paper_default() -> Self {
        ProfilerConfig { entries: 16, counter_bits: 16 }
    }

    fn max_count(&self) -> u64 {
        (1u64 << self.counter_bits) - 1
    }
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A candidate critical region: one backward branch and its loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HotRegion {
    /// Loop head: the backward branch's target address.
    pub head: u32,
    /// Loop tail: the backward branch's own address.
    pub tail: u32,
    /// Saturating execution count observed.
    pub count: u64,
}

impl fmt::Display for HotRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop {:#06x}..{:#06x} (count {})", self.head, self.tail, self.count)
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tail: u32,
    head: u32,
    count: u64,
}

/// Hardware-cost statistics for the profiler cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProfilerStats {
    /// Backward-branch events observed.
    pub events: u64,
    /// Events that hit an existing cache entry.
    pub hits: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Counter-aging passes (halving on saturation).
    pub agings: u64,
    /// Explicit decay passes requested by the runtime.
    pub decays: u64,
    /// Entries whose counter decayed/aged to zero and were dropped.
    pub decay_evictions: u64,
    /// Retired instructions seen on the bus (the address-stream traffic
    /// the hardware monitor filters branches out of). Stepping bumps
    /// this once per instruction; a fused superblock bumps it once per
    /// block, weighted by the block's length.
    pub instructions: u64,
}

/// The frequent-loop-detection cache.
#[derive(Clone, Debug)]
pub struct Profiler {
    config: ProfilerConfig,
    entries: Vec<Entry>,
    stats: ProfilerStats,
    /// [`hot_regions`](Profiler::hot_regions) result, rebuilt in place
    /// on the first query after a mutating observation. A reused
    /// buffer, not a per-query allocation: an online session queries
    /// the ranking every scheduling slice for the program's lifetime.
    ranked: Vec<HotRegion>,
    /// Whether an observation has invalidated `ranked`.
    ranked_dirty: bool,
}

impl Profiler {
    /// Creates an empty profiler.
    #[must_use]
    pub fn new(config: ProfilerConfig) -> Self {
        Profiler {
            config,
            entries: Vec::with_capacity(config.entries),
            stats: ProfilerStats::default(),
            ranked: Vec::with_capacity(config.entries),
            ranked_dirty: false,
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> ProfilerConfig {
        self.config
    }

    /// Accumulated hardware-cost statistics.
    #[must_use]
    pub fn stats(&self) -> ProfilerStats {
        self.stats
    }

    /// Records one taken backward branch: `branch_pc` → `target`.
    ///
    /// Forward branches are ignored (the hardware only watches for
    /// branches whose target precedes them).
    pub fn observe_branch(&mut self, branch_pc: u32, target: u32) {
        if target > branch_pc {
            return;
        }
        self.ranked_dirty = true;
        self.stats.events += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.tail == branch_pc) {
            self.stats.hits += 1;
            e.head = target;
            e.count += 1;
            if e.count >= self.config.max_count() {
                self.age();
            }
            return;
        }
        if self.entries.len() >= self.config.entries {
            // Evict the coldest entry — the hardware's replacement choice.
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.count)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            self.entries.swap_remove(victim);
            self.stats.evictions += 1;
        }
        self.entries.push(Entry { tail: branch_pc, head: target, count: 1 });
    }

    /// Halves every counter and drops entries whose counter reaches
    /// zero. An entry dropped here is *evicted*: it can reappear only
    /// through a fresh [`observe_branch`](Profiler::observe_branch),
    /// never by further halving — stale heat cannot resurrect a region.
    fn halve_all(&mut self) {
        let before = self.entries.len();
        self.entries.retain_mut(|e| {
            e.count /= 2;
            e.count > 0
        });
        self.stats.decay_evictions += (before - self.entries.len()) as u64;
    }

    /// Halves every counter (aging on saturation keeps relative order
    /// while preventing overflow).
    fn age(&mut self) {
        self.stats.agings += 1;
        self.halve_all();
    }

    /// Ages every counter by one halving step, on the runtime's clock
    /// rather than on saturation.
    ///
    /// An online partitioning runtime calls this periodically so the
    /// cache tracks the *current* phase of the program: heat from a
    /// loop that stopped executing (it finished, or it was moved to
    /// hardware and its branches no longer retire) halves away until
    /// the entry is evicted, letting the next phase's loops rise to the
    /// top of [`hot_regions`](Profiler::hot_regions). Entries that
    /// decay to zero are dropped and never resurface without fresh
    /// observations.
    pub fn decay(&mut self) {
        self.ranked_dirty = true;
        self.stats.decays += 1;
        self.halve_all();
    }

    /// Feeds one trace event to the profiler.
    pub fn observe(&mut self, event: &TraceEvent) {
        self.stats.instructions += 1;
        if event.taken == Some(true) {
            if let Some(target) = event.target {
                self.observe_branch(event.pc, target);
            }
        }
    }

    /// Feeds an entire trace.
    pub fn observe_trace(&mut self, trace: &Trace) {
        for e in trace {
            self.observe(e);
        }
    }

    /// All candidate regions, hottest first.
    ///
    /// The ranking is rebuilt in a reused buffer on the first call
    /// after an observation; repeated queries return the same slice
    /// without re-sorting, and steady-state queries never allocate
    /// (the buffer is pre-sized to the cache geometry and the entry
    /// count is bounded by it).
    #[must_use]
    pub fn hot_regions(&mut self) -> &[HotRegion] {
        if self.ranked_dirty {
            self.ranked.clear();
            self.ranked.extend(self.entries.iter().map(|e| HotRegion {
                head: e.head,
                tail: e.tail,
                count: e.count,
            }));
            // Unstable sort: no scratch allocation, and the comparator
            // is a total order (tails are unique per entry) so the
            // result is deterministic anyway.
            self.ranked.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.tail.cmp(&b.tail)));
            self.ranked_dirty = false;
        }
        &self.ranked
    }

    /// The single most frequent loop, if any branch was observed.
    #[must_use]
    pub fn best(&mut self) -> Option<HotRegion> {
        self.hot_regions().first().copied()
    }

    /// Clears all entries and statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.stats = ProfilerStats::default();
        self.ranked.clear();
        self.ranked_dirty = false;
    }
}

/// A profiler can sit directly on the simulator's retirement stream,
/// exactly as the paper's hardware profiler watches the instruction bus
/// — no recorded trace needed in between.
impl TraceSink for Profiler {
    /// The profiler only reads branch outcomes, and branches never fuse
    /// into superblocks — so it needs no per-instruction events for
    /// block retirements and the engine skips synthesizing them.
    const WANTS_EVENTS: bool = false;

    fn record(&mut self, event: &TraceEvent) {
        self.observe(event);
    }

    /// Batched block retirement: a straight-line block carries no
    /// branches, so the frequency cache is untouched and the whole
    /// update is one counter bump weighted by the block's length.
    #[inline]
    fn retire_block(&mut self, block: &BlockRetire<'_>) {
        self.stats.instructions += u64::from(block.instructions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_loops_by_frequency() {
        let mut p = Profiler::new(ProfilerConfig::default());
        for _ in 0..100 {
            p.observe_branch(0x200, 0x180);
        }
        for _ in 0..40 {
            p.observe_branch(0x300, 0x2C0);
        }
        let hot = p.hot_regions();
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].tail, 0x200);
        assert_eq!(hot[0].count, 100);
        assert_eq!(hot[1].tail, 0x300);
    }

    #[test]
    fn ignores_forward_branches() {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.observe_branch(0x100, 0x200);
        assert!(p.best().is_none());
        assert_eq!(p.stats().events, 0);
    }

    #[test]
    fn self_branch_counts_as_backward() {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.observe_branch(0x100, 0x100);
        assert_eq!(p.best().unwrap().head, 0x100);
    }

    #[test]
    fn eviction_removes_coldest() {
        let mut p = Profiler::new(ProfilerConfig { entries: 2, counter_bits: 16 });
        for _ in 0..10 {
            p.observe_branch(0x100, 0x80);
        }
        for _ in 0..5 {
            p.observe_branch(0x200, 0x180);
        }
        // Third distinct branch evicts the 5-count entry.
        p.observe_branch(0x300, 0x280);
        let hot = p.hot_regions();
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].tail, 0x100);
        assert_eq!(hot[1].tail, 0x300);
        assert_eq!(p.stats().evictions, 1);
    }

    #[test]
    fn counters_age_on_saturation() {
        let cfg = ProfilerConfig { entries: 4, counter_bits: 4 }; // max 15
        let mut p = Profiler::new(cfg);
        for _ in 0..14 {
            p.observe_branch(0x100, 0x80);
        }
        for _ in 0..3 {
            p.observe_branch(0x200, 0x180);
        }
        // Saturate the hot entry: aging halves everything.
        p.observe_branch(0x100, 0x80);
        assert!(p.stats().agings >= 1);
        let hot = p.hot_regions();
        assert_eq!(hot[0].tail, 0x100, "relative order preserved after aging");
        assert!(hot[0].count < 15);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.observe_branch(0x100, 0x80);
        p.reset();
        assert!(p.best().is_none());
        assert_eq!(p.stats(), ProfilerStats::default());
    }

    #[test]
    fn ranking_cache_refreshes_after_observations() {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.observe_branch(0x100, 0x80);
        assert_eq!(p.hot_regions()[0].count, 1);
        // A new observation after a query must invalidate the cached
        // ranking.
        p.observe_branch(0x100, 0x80);
        p.observe_branch(0x200, 0x180);
        let hot = p.hot_regions();
        assert_eq!(hot[0].count, 2);
        assert_eq!(hot.len(), 2);
        // Between mutations, repeated queries hit the cached slice.
        assert_eq!(p.hot_regions().as_ptr(), p.hot_regions().as_ptr());
    }

    #[test]
    fn forward_branch_does_not_invalidate_ranking() {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.observe_branch(0x100, 0x80);
        let before = p.hot_regions().as_ptr();
        p.observe_branch(0x100, 0x200); // forward: ignored
        assert_eq!(p.hot_regions().as_ptr(), before);
    }

    #[test]
    fn decay_halves_heat_and_evicts_cold_entries() {
        let mut p = Profiler::new(ProfilerConfig::default());
        for _ in 0..8 {
            p.observe_branch(0x100, 0x80);
        }
        p.observe_branch(0x200, 0x180); // count 1
        p.decay(); // 4 / evicted
        let hot = p.hot_regions();
        assert_eq!(hot.len(), 1, "count-1 entry decays to zero and is dropped");
        assert_eq!(hot[0].tail, 0x100);
        assert_eq!(hot[0].count, 4);
        assert_eq!(p.stats().decays, 1);
        assert_eq!(p.stats().decay_evictions, 1);

        // Three more decays clear the cache entirely...
        p.decay();
        p.decay();
        p.decay();
        assert!(p.best().is_none(), "heat must not survive repeated decay");
        // ...and further decay does not resurrect anything.
        p.decay();
        assert!(p.hot_regions().is_empty());
    }

    #[test]
    fn decay_invalidates_cached_ranking() {
        let mut p = Profiler::new(ProfilerConfig::default());
        for _ in 0..4 {
            p.observe_branch(0x100, 0x80);
        }
        assert_eq!(p.hot_regions()[0].count, 4);
        p.decay();
        assert_eq!(p.hot_regions()[0].count, 2, "ranking must refresh after decay");
    }

    #[test]
    fn display_formats_region() {
        let r = HotRegion { head: 0x80, tail: 0x100, count: 42 };
        assert_eq!(r.to_string(), "loop 0x0080..0x0100 (count 42)");
    }
}
