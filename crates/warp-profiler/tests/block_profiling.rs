//! Block-engine profiling equivalence.
//!
//! The online runtime's warp decisions key on the profiler's hot-region
//! fingerprint, so the superblock engine must be invisible to it: a
//! [`Profiler`] sitting on the retirement stream sees branches only
//! through [`System::step`] (blocks are straight-line by construction)
//! and block retirements only through the batched
//! [`TraceSink::retire_block`] hook. These tests pin that the resulting
//! fingerprint — regions, order, counts, and the instruction tally — is
//! identical to per-instruction profiling, on every workload and under
//! arbitrary slice boundaries.
//!
//! [`System::step`]: mb_sim::System::step
//! [`TraceSink::retire_block`]: mb_sim::TraceSink::retire_block

use mb_isa::MbFeatures;
use mb_sim::{MbConfig, Outcome, System};
use proptest::prelude::*;
use warp_profiler::{HotRegion, Profiler, ProfilerConfig};

const MAX_CYCLES: u64 = 500_000_000;

fn profile_run(sys: &mut System) -> (Outcome, Profiler) {
    let mut p = Profiler::new(ProfilerConfig::paper_default());
    let outcome = sys.run_with_sink(MAX_CYCLES, &mut p).expect("workload runs");
    assert!(outcome.exited());
    (outcome, p)
}

#[test]
fn block_profiling_fingerprints_match_per_instruction_on_all_workloads() {
    let blocks_on = MbConfig::paper_default();
    let blocks_off = blocks_on.clone().with_blocks(false);
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());

        let (out_b, mut prof_b) = profile_run(&mut built.instantiate(&blocks_on));
        let (out_s, mut prof_s) = profile_run(&mut built.instantiate(&blocks_off));

        assert_eq!(out_b, out_s, "{}: outcome must be engine-independent", workload.name);
        assert_eq!(
            prof_b.hot_regions(),
            prof_s.hot_regions(),
            "{}: hot-region fingerprint must be identical",
            workload.name
        );
        assert_eq!(
            prof_b.stats(),
            prof_s.stats(),
            "{}: profiler statistics (incl. batched instruction tally) must match",
            workload.name
        );
        assert_eq!(
            prof_b.stats().instructions,
            out_b.instructions,
            "{}: the profiler must have seen every retired instruction",
            workload.name
        );
    }
}

proptest! {
    /// Slicing the run at arbitrary cycle budgets — so block retirement
    /// is interrupted at arbitrary points and the engine keeps switching
    /// between whole-block and stepped-tail dispatch — never perturbs
    /// the fingerprint. Uses the small scaled phased workload (three
    /// distinct kernels, so the fingerprint has several live regions)
    /// to keep 256 deterministic cases fast.
    #[test]
    fn sliced_block_profiling_matches_unsliced(seed in any::<u64>()) {
        let built = workloads::phased::build_scaled(MbFeatures::paper_default(), 3, 2, 2);
        let (_, mut reference) = profile_run(&mut built.instantiate(
            &MbConfig::paper_default().with_blocks(false),
        ));

        let mut sys = built.instantiate(&MbConfig::paper_default());
        let mut p = Profiler::new(ProfilerConfig::paper_default());
        let mut state = seed | 1;
        let mut spent = 0u64;
        loop {
            // SplitMix-ish slice budgets in [1, 4096]: small enough to
            // land inside blocks constantly.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let slice = 1 + (state >> 33) % 4096;
            let out = sys.run_slice(slice, &mut p).expect("slice runs");
            spent += out.cycles;
            prop_assert!(spent <= MAX_CYCLES, "runaway sliced run (seed {:#x})", seed);
            if out.exited() {
                break;
            }
        }
        let sliced: Vec<HotRegion> = p.hot_regions().to_vec();
        prop_assert_eq!(
            sliced,
            reference.hot_regions().to_vec(),
            "sliced fingerprint diverged (seed {:#x})",
            seed
        );
        prop_assert_eq!(p.stats(), reference.stats(), "stats diverged (seed {:#x})", seed);
    }
}
