//! Fingerprint-stability properties of the profiler cache.
//!
//! The online runtime leans on two behaviors that must hold for *any*
//! branch stream, not just the curated workloads:
//!
//! 1. **Replay determinism** — the ranking is a pure function of the
//!    observation sequence: re-profiling the identical stream after
//!    [`Profiler::reset`] yields an identical [`Profiler::hot_regions`]
//!    answer (the "fingerprint" the runtime keys its warp decisions on).
//! 2. **No resurrection** — once [`Profiler::decay`] (or aging) evicts
//!    a region, no amount of further decay brings it back; only fresh
//!    observations of that branch can.

use mb_isa::{Cond, Insn, OpClass, Reg};
use mb_sim::{BlockRetire, TraceEvent, TraceSink};
use proptest::prelude::*;
use warp_profiler::{HotRegion, Profiler, ProfilerConfig};

/// The guard event the megablock trace tier emits when a chained loop
/// iteration retires: a taken branch at `tail` back to `head`.
fn guard_event(tail: u32, head: u32) -> TraceEvent {
    TraceEvent {
        pc: tail,
        insn: Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: 0, delay: false },
        cycles: 2,
        taken: Some(true),
        target: Some(head),
        ea: None,
    }
}

/// Deterministic branch-event stream derived from one seed: a mix of a
/// few loop tails (some backward, some forward so they are ignored),
/// interleaved in SplitMix order.
fn branch_stream(seed: u64, len: usize) -> Vec<(u32, u32)> {
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let r = next();
            // Up to 24 distinct tails in a 16-entry cache: evictions
            // happen, which is exactly the interesting regime.
            let tail = 0x100 + 4 * (r as u32 % 24) * 16;
            let span = 4 * ((r >> 8) as u32 % 40);
            if r & 0x10000 == 0 {
                (tail, tail - span.min(tail)) // backward (target <= tail)
            } else {
                (tail, tail + 4 + span) // forward: must be ignored
            }
        })
        .collect()
}

fn replay(config: ProfilerConfig, stream: &[(u32, u32)]) -> Profiler {
    let mut p = Profiler::new(config);
    for &(tail, head) in stream {
        p.observe_branch(tail, head);
    }
    p
}

proptest! {
    /// Re-profiling the same stream after `reset()` reproduces the
    /// exact ranking — same regions, same order, same counts.
    #[test]
    fn reprofiling_after_reset_is_identical(seed in any::<u64>()) {
        let stream = branch_stream(seed, 600);
        let mut p = replay(ProfilerConfig::default(), &stream);
        let first: Vec<HotRegion> = p.hot_regions().to_vec();
        let first_stats = p.stats();

        p.reset();
        prop_assert!(p.best().is_none());
        for &(tail, head) in &stream {
            p.observe_branch(tail, head);
        }
        prop_assert_eq!(p.hot_regions(), first.as_slice(), "seed {:#x}", seed);
        prop_assert_eq!(p.stats(), first_stats, "stats must replay too (seed {:#x})", seed);
    }

    /// Replay determinism holds for small caches too, where eviction
    /// and aging churn constantly.
    #[test]
    fn reprofiling_is_identical_under_heavy_eviction(seed in any::<u64>()) {
        let config = ProfilerConfig { entries: 4, counter_bits: 6 };
        let stream = branch_stream(seed, 400);
        let mut p = replay(config, &stream);
        let first: Vec<HotRegion> = p.hot_regions().to_vec();
        p.reset();
        for &(tail, head) in &stream {
            p.observe_branch(tail, head);
        }
        prop_assert_eq!(p.hot_regions(), first.as_slice(), "seed {:#x}", seed);
    }

    /// Decay only ever shrinks the tracked set, and a region evicted by
    /// decay never reappears however much further decay is applied.
    #[test]
    fn decayed_heat_never_resurrects_an_evicted_region(seed in any::<u64>()) {
        let stream = branch_stream(seed, 300);
        let mut p = replay(ProfilerConfig::default(), &stream);

        let mut alive: Vec<u32> = p.hot_regions().iter().map(|r| r.tail).collect();
        // Decay to exhaustion: the counters are <= 16 bits, so 17
        // halvings empty any cache.
        for round in 0..17 {
            p.decay();
            let now: Vec<u32> = p.hot_regions().iter().map(|r| r.tail).collect();
            for tail in &now {
                prop_assert!(
                    alive.contains(tail),
                    "decay round {} resurrected tail {:#x} (seed {:#x})",
                    round, tail, seed
                );
            }
            for r in p.hot_regions() {
                prop_assert!(r.count > 0, "zero-count entries must be evicted, not listed");
            }
            alive = now;
        }
        prop_assert!(p.hot_regions().is_empty(), "17 halvings must clear 16-bit counters");

        // A fresh observation *is* allowed to bring a region back.
        if let Some(&(tail, head)) = stream.iter().find(|(t, h)| h <= t) {
            p.observe_branch(tail, head);
            prop_assert_eq!(p.best().unwrap().tail, tail);
        }
    }

    /// The same no-resurrection law for **trace heads**: heat delivered
    /// through the megablock tier's batched sink path — one
    /// `retire_block` per loop body plus one guard branch event per
    /// iteration — decays and evicts identically, and an evicted trace
    /// head only returns on a fresh guard retirement, never from decay
    /// alone.
    #[test]
    fn decayed_trace_heads_never_resurrect(seed in any::<u64>()) {
        let zero_classes = [0u32; OpClass::ALL.len()];
        let stream = branch_stream(seed, 300);
        let mut p = Profiler::new(ProfilerConfig::default());
        for &(tail, head) in &stream {
            // A chained iteration: body batch, then the guard event
            // (forward "guards" in the stream must be ignored, exactly
            // like forward branches on the per-event path).
            p.retire_block(&BlockRetire {
                head,
                instructions: 3,
                cycles: 4,
                class_insns: &zero_classes,
                insn_cycles: &[1, 1, 2],
                events: &[],
            });
            p.record(&guard_event(tail, head));
        }

        let mut alive: Vec<u32> = p.hot_regions().iter().map(|r| r.tail).collect();
        for round in 0..17 {
            p.decay();
            let now: Vec<u32> = p.hot_regions().iter().map(|r| r.tail).collect();
            for tail in &now {
                prop_assert!(
                    alive.contains(tail),
                    "decay round {} resurrected trace head tail {:#x} (seed {:#x})",
                    round, tail, seed
                );
            }
            for r in p.hot_regions() {
                prop_assert!(r.count > 0, "zero-count trace heads must be evicted, not listed");
            }
            alive = now;
        }
        prop_assert!(p.hot_regions().is_empty(), "17 halvings must clear 16-bit counters");

        // A fresh guard retirement *is* allowed to bring it back.
        if let Some(&(tail, head)) = stream.iter().find(|(t, h)| h <= t) {
            p.record(&guard_event(tail, head));
            prop_assert_eq!(p.best().unwrap().tail, tail);
        }
    }
}
