//! The profiler must identify each benchmark's annotated kernel as the
//! hottest loop from a real execution trace.

use mb_isa::MbFeatures;
use mb_sim::MbConfig;
use warp_profiler::{Profiler, ProfilerConfig};

#[test]
fn profiler_finds_annotated_kernel_in_every_workload() {
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (outcome, trace) = sys.run_traced(200_000_000).unwrap();
        assert!(outcome.exited(), "{} must exit", workload.name);

        let mut profiler = Profiler::new(ProfilerConfig::paper_default());
        profiler.observe_trace(&trace);
        let best = profiler.best().expect("some loop observed");
        assert_eq!(
            (best.head, best.tail),
            (built.kernel.head, built.kernel.tail),
            "{}: profiler found {best} but kernel is {:?}",
            workload.name,
            built.kernel,
        );
    }
}

#[test]
fn live_sink_profiling_matches_trace_replay() {
    // A profiler sitting on the retirement stream as a TraceSink must
    // end up in exactly the state of one that replayed the recorded
    // trace afterwards — events arrive in the same order.
    let built = workloads::by_name("g3fax").unwrap().build(MbFeatures::paper_default());

    let mut live = Profiler::new(ProfilerConfig::paper_default());
    let mut sys = built.instantiate(&MbConfig::paper_default());
    let outcome = sys.run_with_sink(200_000_000, &mut live).unwrap();
    assert!(outcome.exited());

    let mut sys = built.instantiate(&MbConfig::paper_default());
    let (_, trace) = sys.run_traced(200_000_000).unwrap();
    let mut replayed = Profiler::new(ProfilerConfig::paper_default());
    replayed.observe_trace(&trace);

    assert_eq!(live.hot_regions(), replayed.hot_regions());
    assert_eq!(live.stats(), replayed.stats());
}

#[test]
fn tiny_cache_still_finds_dominant_kernel() {
    // Even a 4-entry cache keeps the hottest loop resident.
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let mut sys = built.instantiate(&MbConfig::paper_default());
    let (_, trace) = sys.run_traced(200_000_000).unwrap();
    let mut profiler = Profiler::new(ProfilerConfig { entries: 4, counter_bits: 12 });
    profiler.observe_trace(&trace);
    let best = profiler.best().unwrap();
    assert_eq!(best.head, built.kernel.head);
}
