//! Power and energy models for the warp-processing study.
//!
//! Three power domains, matching the paper's experimental setup:
//!
//! * **MicroBlaze system on Spartan3** — the paper used Xilinx XPower to
//!   obtain dynamic and static power. We model an equivalent split:
//!   active dynamic power, idle dynamic power (clock tree and BRAM
//!   standby while the processor stalls on the blocking WCLA read), and
//!   FPGA static power.
//! * **WCLA on UMC 0.18 µm** — the paper synthesized the WCLA with
//!   Synopsys Design Compiler on UMC 0.18 µm. We model circuit power
//!   from utilization: per-LUT and per-FF switching power at the fabric
//!   clock plus fixed MAC/DADG contributions.
//! * **ARM hard cores** — total core power constants.
//!
//! Absolute numbers are calibrated constants (the paper's Figure 7 is
//! normalized, so only ratios matter); every constant is documented
//! here, and the figure-shape assertions live in the workspace tests.
//!
//! The energy combination is the paper's Figure 5, verbatim:
//!
//! ```text
//! E_total  = E_MB + E_static + E_HW
//! E_MB     = P_idleMB × t_idle + P_activeMB × t_active
//! E_HW     = P_HW × t_HWactive
//! E_static = P_static × t_total
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use warp_synth::MapStats;

/// MicroBlaze system power on Spartan3 (XPower-style split), in watts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MbPower {
    /// Dynamic power while executing instructions.
    pub active_w: f64,
    /// Dynamic power while stalled waiting on the WCLA (clock tree,
    /// BRAM standby).
    pub idle_w: f64,
    /// FPGA static (leakage) power, burned for the whole run.
    pub static_w: f64,
}

impl MbPower {
    /// Calibrated Spartan3 @ 85 MHz values: 185 mW active dynamic,
    /// 62 mW idle dynamic (the clock tree, BRAM standby, and the stalled
    /// pipeline keep toggling during the blocking OPB read), 90 mW
    /// static — a 275 mW busy total, in the range XPower reports for a
    /// MicroBlaze system of this era.
    #[must_use]
    pub fn spartan3_85mhz() -> Self {
        MbPower { active_w: 0.185, idle_w: 0.062, static_w: 0.090 }
    }
}

impl Default for MbPower {
    fn default() -> Self {
        Self::spartan3_85mhz()
    }
}

/// WCLA power model (UMC 0.18 µm synthesis scale).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WclaPowerModel {
    /// Switching power per active LUT at full fabric clock (W).
    pub per_lut_w: f64,
    /// Switching power per flip-flop (W).
    pub per_ff_w: f64,
    /// MAC unit power while a kernel uses it (W).
    pub mac_w: f64,
    /// DADG + LCH + register power (W).
    pub dadg_w: f64,
}

impl WclaPowerModel {
    /// Calibrated UMC 0.18 µm values: 30 µW/LUT and 9 µW/FF at 250 MHz,
    /// 22 mW for the MAC, 18 mW for DADG/LCH/registers (the address
    /// generators run every cycle).
    #[must_use]
    pub fn umc180() -> Self {
        WclaPowerModel { per_lut_w: 30e-6, per_ff_w: 9e-6, mac_w: 0.022, dadg_w: 0.018 }
    }

    /// Power of a compiled circuit running at `clock_hz`.
    #[must_use]
    pub fn circuit_power_w(&self, stats: &MapStats, clock_hz: u64) -> f64 {
        let scale = clock_hz as f64 / 250e6;
        let mac = if stats.macs > 0 { self.mac_w } else { 0.0 };
        (stats.luts as f64 * self.per_lut_w + stats.ffs as f64 * self.per_ff_w) * scale
            + mac * scale
            + self.dadg_w * scale
    }
}

impl Default for WclaPowerModel {
    fn default() -> Self {
        Self::umc180()
    }
}

/// Total power of an ARM hard core (W), calibrated so the paper's
/// relative energy ordering holds: the low-end cores sip power, the
/// high-frequency cores pay for their clock rate disproportionately
/// (deeper pipelines, bigger caches, higher voltage).
///
/// # Panics
///
/// Panics on an unknown core name.
#[must_use]
pub fn arm_power_w(name: &str) -> f64 {
    match name {
        "ARM7" => 0.085,
        "ARM9" => 0.230,
        "ARM10" => 0.650,
        "ARM11" => 1.200,
        other => panic!("unknown ARM core {other}"),
    }
}

/// Energy broken down per the paper's Figure 5 (joules).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Processor dynamic energy (active + idle terms).
    pub e_mb: f64,
    /// Static (leakage) energy over the whole run.
    pub e_static: f64,
    /// Warp hardware energy.
    pub e_hw: f64,
}

impl EnergyBreakdown {
    /// `E_total = E_MB + E_static + E_HW`.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.e_mb + self.e_static + self.e_hw
    }
}

/// Evaluates the Figure 5 equations.
///
/// `t_active` — seconds the MicroBlaze executes instructions;
/// `t_idle` — seconds it stalls while hardware runs;
/// `t_hw_active` — seconds the WCLA executes (≤ `t_idle` in the
/// single-processor system); `p_hw_w` — WCLA circuit power.
#[must_use]
pub fn figure5_energy(
    mb: &MbPower,
    p_hw_w: f64,
    t_active: f64,
    t_idle: f64,
    t_hw_active: f64,
) -> EnergyBreakdown {
    let t_total = t_active + t_idle;
    EnergyBreakdown {
        e_mb: mb.idle_w * t_idle + mb.active_w * t_active,
        e_static: mb.static_w * t_total,
        e_hw: p_hw_w * t_hw_active,
    }
}

/// Energy of a software-only MicroBlaze run.
#[must_use]
pub fn mb_only_energy(mb: &MbPower, t_active: f64) -> EnergyBreakdown {
    figure5_energy(mb, 0.0, t_active, 0.0, 0.0)
}

/// Energy of an ARM run (flat total power).
#[must_use]
pub fn arm_energy(name: &str, seconds: f64) -> f64 {
    arm_power_w(name) * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_terms_add_up() {
        let mb = MbPower::spartan3_85mhz();
        let e = figure5_energy(&mb, 0.050, 0.6, 0.4, 0.4);
        let expect_mb = 0.062 * 0.4 + 0.185 * 0.6;
        let expect_static = 0.090 * 1.0;
        let expect_hw = 0.050 * 0.4;
        assert!((e.e_mb - expect_mb).abs() < 1e-12);
        assert!((e.e_static - expect_static).abs() < 1e-12);
        assert!((e.e_hw - expect_hw).abs() < 1e-12);
        assert!((e.total() - (expect_mb + expect_static + expect_hw)).abs() < 1e-12);
    }

    #[test]
    fn warp_saves_energy_when_hardware_is_fast_and_lean() {
        let mb = MbPower::spartan3_85mhz();
        // 10 ms software-only.
        let sw = mb_only_energy(&mb, 0.010);
        // Warped: 2 ms software + 1 ms hardware (5x faster kernel).
        let warped = figure5_energy(&mb, 0.040, 0.002, 0.001, 0.001);
        assert!(warped.total() < sw.total() / 2.0, "{} vs {}", warped.total(), sw.total());
    }

    #[test]
    fn wcla_power_scales_with_size_and_clock() {
        let model = WclaPowerModel::umc180();
        let small = MapStats { luts: 10, ffs: 0, macs: 0, ..Default::default() };
        let big = MapStats { luts: 3000, ffs: 64, macs: 14, ..Default::default() };
        let p_small = model.circuit_power_w(&small, 250_000_000);
        let p_big = model.circuit_power_w(&big, 250_000_000);
        assert!(p_big > p_small);
        assert!(p_big < 0.160, "WCLA stays well under the processor: {p_big}");
        let p_big_slow = model.circuit_power_w(&big, 125_000_000);
        assert!((p_big_slow - p_big / 2.0).abs() < 1e-9);
    }

    #[test]
    fn mb_is_the_energy_hog_of_the_lineup() {
        // The paper: the plain MicroBlaze has the highest energy; ARM7
        // the lowest of the hard cores. Check with a fixed workload:
        // 1 unit of MB time, ARM speedups ~1.2/2.9/4.1/6.8.
        let mb = MbPower::spartan3_85mhz();
        let t_mb = 1.0;
        let e_mb = mb_only_energy(&mb, t_mb).total();
        let e7 = arm_energy("ARM7", t_mb / 1.2);
        let e9 = arm_energy("ARM9", t_mb / 2.9);
        let e10 = arm_energy("ARM10", t_mb / 4.1);
        let e11 = arm_energy("ARM11", t_mb / 6.8);
        assert!(e_mb > e11 && e_mb > e10 && e_mb > e9 && e_mb > e7);
        assert!(e7 < e9 && e9 < e10 && e10 < e11, "{e7} {e9} {e10} {e11}");
        // MicroBlaze ~48% more energy than ARM11 (paper in-text).
        let ratio = e_mb / e11;
        assert!((1.2..1.9).contains(&ratio), "MB/ARM11 energy ratio {ratio:.2}");
    }

    #[test]
    #[should_panic(expected = "unknown ARM core")]
    fn unknown_core_panics() {
        let _ = arm_power_w("ARM12");
    }
}
