//! The paper's Figure 5 energy equations, checked as *shapes*: energy
//! is monotone in cycle counts, and warping a kernel reduces energy for
//! a synthetic report whose speedup outruns the WCLA's power draw.

use warp_power::{figure5_energy, mb_only_energy, MbPower, WclaPowerModel};
use warp_synth::MapStats;

const MB_CLOCK_HZ: f64 = 85e6;

fn seconds(cycles: u64) -> f64 {
    cycles as f64 / MB_CLOCK_HZ
}

#[test]
fn software_energy_is_monotone_in_cycles() {
    let mb = MbPower::spartan3_85mhz();
    let mut last = -1.0;
    for cycles in [0u64, 1_000, 50_000, 1_000_000, 100_000_000] {
        let e = mb_only_energy(&mb, seconds(cycles)).total();
        assert!(e > last, "energy must grow with cycles: {cycles} -> {e}");
        last = e;
    }
}

#[test]
fn every_figure5_term_is_monotone_in_its_time() {
    let mb = MbPower::spartan3_85mhz();
    let p_hw = 0.045;
    let base = figure5_energy(&mb, p_hw, 0.010, 0.002, 0.002);

    let more_active = figure5_energy(&mb, p_hw, 0.020, 0.002, 0.002);
    assert!(more_active.e_mb > base.e_mb);
    assert!(more_active.e_static > base.e_static, "static burns over total time");
    assert!((more_active.e_hw - base.e_hw).abs() < 1e-15, "hw term unaffected");

    let more_idle = figure5_energy(&mb, p_hw, 0.010, 0.004, 0.002);
    assert!(more_idle.e_mb > base.e_mb, "idle time still draws idle power");
    assert!(more_idle.e_static > base.e_static);

    let more_hw = figure5_energy(&mb, p_hw, 0.010, 0.002, 0.004);
    assert!(more_hw.e_hw > base.e_hw);
    assert!((more_hw.e_mb - base.e_mb).abs() < 1e-15);
}

#[test]
fn warped_energy_reduction_is_positive_for_a_synthetic_report() {
    // Synthetic per-workload report in the shape warp-core produces:
    // total software cycles, the kernel's share, and its hardware speedup.
    struct SyntheticReport {
        sw_cycles: u64,
        kernel_cycles: u64,
        hw_speedup: f64,
        circuit: MapStats,
    }

    let report = SyntheticReport {
        sw_cycles: 10_000_000,
        kernel_cycles: 8_000_000, // 80% of time in the kernel (paper's 90-10 rule)
        hw_speedup: 10.0,
        circuit: MapStats { luts: 1200, ffs: 96, macs: 2, ..Default::default() },
    };

    let mb = MbPower::spartan3_85mhz();
    let wcla = WclaPowerModel::umc180();
    let p_hw = wcla.circuit_power_w(&report.circuit, 250_000_000);

    let e_sw = mb_only_energy(&mb, seconds(report.sw_cycles)).total();

    let t_active = seconds(report.sw_cycles - report.kernel_cycles);
    let t_hw = seconds(report.kernel_cycles) / report.hw_speedup;
    let e_warped = figure5_energy(&mb, p_hw, t_active, t_hw, t_hw).total();

    let reduction = 1.0 - e_warped / e_sw;
    assert!(reduction > 0.0, "warping must save energy: sw {e_sw:.6} J vs warped {e_warped:.6} J");
    // With an 80% kernel at 10x the time saving is 72%, and the energy
    // saving exceeds it (the stalled processor draws only idle power
    // while the WCLA runs) but can never reach 100%.
    assert!(reduction > 0.3, "reduction {reduction:.2} suspiciously small");
    assert!(reduction < 1.0, "reduction {reduction:.2} implies negative warped energy");
}

#[test]
fn wcla_power_is_monotone_in_circuit_size() {
    let wcla = WclaPowerModel::umc180();
    let mut last = -1.0;
    for luts in [0u64, 10, 100, 1000, 5000] {
        let stats = MapStats { luts, ffs: luts / 8, ..Default::default() };
        let p = wcla.circuit_power_w(&stats, 250_000_000);
        assert!(p > last, "power must grow with circuit size: {luts} LUTs -> {p}");
        last = p;
    }
}
