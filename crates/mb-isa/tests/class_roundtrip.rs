//! Assemble → encode → decode round-trips for representative
//! instructions of every [`OpClass`].
//!
//! The property tests in `encode.rs` cover random canonical
//! instructions; this suite pins down one curated representative set,
//! checks it covers *every* class in `class.rs`, and exercises the full
//! assembler path (labels, program layout) rather than bare `encode`.

use mb_isa::{decode, encode, Assembler, Cond, Insn, MemSize, OpClass, Reg, ShiftKind};

/// Representative instructions, at least one per [`OpClass`].
fn representatives() -> Vec<Insn> {
    vec![
        // Alu: three-register, immediate, carry variants, single-bit shifts.
        Insn::addk(Reg::R3, Reg::R4, Reg::R5),
        Insn::add(Reg::R3, Reg::R4, Reg::R5),
        Insn::addik(Reg::R6, Reg::R7, -42),
        Insn::rsubk(Reg::R8, Reg::R9, Reg::R10),
        Insn::cmp(Reg::R11, Reg::R12, Reg::R13),
        Insn::cmpu(Reg::R11, Reg::R12, Reg::R13),
        Insn::Or { rd: Reg::R14, ra: Reg::R15, rb: Reg::R16 },
        Insn::And { rd: Reg::R14, ra: Reg::R15, rb: Reg::R16 },
        Insn::Xor { rd: Reg::R14, ra: Reg::R15, rb: Reg::R16 },
        Insn::Andi { rd: Reg::R17, ra: Reg::R18, imm: 0x00FF },
        Insn::Sra { rd: Reg::R19, ra: Reg::R20 },
        Insn::Sext8 { rd: Reg::R21, ra: Reg::R22 },
        // BarrelShift.
        Insn::bslli(Reg::R1, Reg::R2, 7),
        Insn::bsrli(Reg::R1, Reg::R2, 1),
        Insn::bsrai(Reg::R1, Reg::R2, 31),
        Insn::Bs { rd: Reg::R1, ra: Reg::R2, rb: Reg::R3, kind: ShiftKind::LogicalLeft },
        // Mul.
        Insn::mul(Reg::R23, Reg::R24, Reg::R25),
        Insn::Muli { rd: Reg::R23, ra: Reg::R24, imm: 1000 },
        // Div.
        Insn::Idiv { rd: Reg::R26, ra: Reg::R27, rb: Reg::R28, unsigned: true },
        Insn::Idiv { rd: Reg::R26, ra: Reg::R27, rb: Reg::R28, unsigned: false },
        // Load.
        Insn::lwi(Reg::R29, Reg::R30, 64),
        Insn::lbui(Reg::R29, Reg::R30, -4),
        Insn::Load { size: MemSize::Half, rd: Reg::R1, ra: Reg::R2, rb: Reg::R3 },
        // Store.
        Insn::swi(Reg::R4, Reg::R5, 128),
        Insn::sbi(Reg::R4, Reg::R5, 3),
        Insn::Store { size: MemSize::Word, rd: Reg::R6, ra: Reg::R7, rb: Reg::R8 },
        // Branch.
        Insn::ret(),
        Insn::Br { rd: Reg::R0, rb: Reg::R9, link: false, absolute: false, delay: false },
        Insn::Bri { rd: Reg::R15, imm: -8, link: true, absolute: false, delay: true },
        Insn::Bc { cond: Cond::Eq, ra: Reg::R10, rb: Reg::R11, delay: false },
        Insn::Bci { cond: Cond::Ne, ra: Reg::R10, imm: 12, delay: true },
        // ImmPrefix.
        Insn::Imm { imm: 0x1234 },
    ]
}

#[test]
fn representatives_cover_every_class() {
    let covered: Vec<OpClass> = representatives().iter().map(Insn::class).collect();
    for class in OpClass::ALL {
        assert!(covered.contains(&class), "no representative instruction for class {class}");
    }
}

#[test]
fn encode_decode_round_trips_every_representative() {
    for insn in representatives() {
        let word = encode(&insn);
        let back = decode(word).unwrap_or_else(|e| panic!("{insn:?} decode failed: {e:?}"));
        assert_eq!(insn, back, "word {word:#010x}");
    }
}

#[test]
fn assembled_program_decodes_back_to_the_source() {
    let source = representatives();
    let base = 0x100;
    let mut asm = Assembler::new(base);
    asm.extend(source.iter().cloned());
    let program = asm.finish().expect("representative set assembles");

    let decoded: Vec<(u32, Insn)> = program.iter_insns().collect();
    assert_eq!(decoded.len(), source.len());
    for (i, (insn, (addr, back))) in source.iter().zip(&decoded).enumerate() {
        assert_eq!(*addr, base + 4 * i as u32, "addresses are sequential words");
        assert_eq!(insn, back, "instruction {i} at {addr:#x}");
    }
}

#[test]
fn class_histogram_of_representatives_is_stable() {
    // Exercises OpClass::index as the histogram key, the way the timing
    // and power models use it.
    let mut histogram = [0usize; OpClass::ALL.len()];
    for insn in representatives() {
        histogram[insn.class().index()] += 1;
    }
    assert!(histogram.iter().all(|&n| n > 0), "every class bin non-empty: {histogram:?}");
    let total: usize = histogram.iter().sum();
    assert_eq!(total, representatives().len());
}
