//! 32-bit instruction word encoding and decoding.
//!
//! The layout follows the MicroBlaze format: a 6-bit opcode in the top
//! bits, then three 5-bit register fields (`rd`, `ra`, `rb`) for Type A
//! instructions or a 16-bit immediate for Type B instructions:
//!
//! ```text
//!  31    26 25  21 20  16 15   11 10         0
//! +--------+------+------+-------+------------+
//! | opcode |  rd  |  ra  |  rb   |  sub (11)  |   Type A
//! +--------+------+------+-------+------------+
//! | opcode |  rd  |  ra  |      imm16         |   Type B
//! +--------+------+------+--------------------+
//! ```
//!
//! [`encode`] is canonicalizing: fields that the format does not represent
//! (for example the link register of a non-linking branch) are encoded as
//! zero, so `decode(encode(i))` equals `i` for canonical instructions.

use std::error::Error;
use std::fmt;

use crate::insn::{Cond, Insn, MemSize, ShiftKind};
use crate::Reg;

// 6-bit primary opcodes (MicroBlaze numbering).
const OP_ADD: u32 = 0x00; // ..0x07 with R/C/K bits
const OP_ADDI: u32 = 0x08; // ..0x0F
const OP_MUL: u32 = 0x10;
const OP_BS: u32 = 0x11;
const OP_IDIV: u32 = 0x12;
const OP_MULI: u32 = 0x18;
const OP_BSI: u32 = 0x19;
const OP_OR: u32 = 0x20;
const OP_AND: u32 = 0x21;
const OP_XOR: u32 = 0x22;
const OP_ANDN: u32 = 0x23;
const OP_SHIFT: u32 = 0x24; // sra/src/srl/sext8/sext16 via imm16 subcode
const OP_BR: u32 = 0x26;
const OP_BC: u32 = 0x27;
const OP_ORI: u32 = 0x28;
const OP_ANDI: u32 = 0x29;
const OP_XORI: u32 = 0x2A;
const OP_ANDNI: u32 = 0x2B;
const OP_IMM: u32 = 0x2C;
const OP_RTSD: u32 = 0x2D;
const OP_BRI: u32 = 0x2E;
const OP_BCI: u32 = 0x2F;
const OP_LBU: u32 = 0x30;
const OP_LHU: u32 = 0x31;
const OP_LW: u32 = 0x32;
const OP_SB: u32 = 0x34;
const OP_SH: u32 = 0x35;
const OP_SW: u32 = 0x36;
const OP_LBUI: u32 = 0x38;
const OP_LHUI: u32 = 0x39;
const OP_LWI: u32 = 0x3A;
const OP_SBI: u32 = 0x3C;
const OP_SHI: u32 = 0x3D;
const OP_SWI: u32 = 0x3E;

// Subcodes within the OP_SHIFT group (held in the imm16 field).
const SUB_SRA: u32 = 0x0001;
const SUB_SRC: u32 = 0x0021;
const SUB_SRL: u32 = 0x0041;
const SUB_SEXT8: u32 = 0x0060;
const SUB_SEXT16: u32 = 0x0061;

// Compare subcodes within the RSUBK opcode (Type A `sub` field).
const SUB_CMP: u32 = 0x001;
const SUB_CMPU: u32 = 0x003;

// Branch flag bits (in the `ra` field for unconditional branches, in the
// `rd` field for conditional branches).
const FLAG_D: u32 = 0x10;
const FLAG_A: u32 = 0x08;
const FLAG_L: u32 = 0x04;

/// Error returned by [`decode`] for words that are not valid instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The 6-bit primary opcode is not assigned.
    UnknownOpcode {
        /// The offending word.
        word: u32,
        /// The extracted primary opcode.
        opcode: u32,
    },
    /// The primary opcode is valid but a subcode field is not.
    UnknownSubcode {
        /// The offending word.
        word: u32,
        /// The extracted subcode.
        subcode: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { word, opcode } => {
                write!(f, "unknown opcode {opcode:#04x} in word {word:#010x}")
            }
            DecodeError::UnknownSubcode { word, subcode } => {
                write!(f, "unknown subcode {subcode:#05x} in word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

fn pack_a(op: u32, rd: Reg, ra: Reg, rb: Reg, sub: u32) -> u32 {
    debug_assert!(sub < (1 << 11));
    op << 26 | u32::from(rd) << 21 | u32::from(ra) << 16 | u32::from(rb) << 11 | sub
}

fn pack_b(op: u32, rd: Reg, ra: Reg, imm: i16) -> u32 {
    op << 26 | u32::from(rd) << 21 | u32::from(ra) << 16 | u32::from(imm as u16)
}

fn shift_kind_bits(kind: ShiftKind) -> u32 {
    match kind {
        ShiftKind::LogicalRight => 0,
        ShiftKind::ArithmeticRight => 1 << 9,
        ShiftKind::LogicalLeft => 1 << 10,
    }
}

fn shift_kind_from_bits(bits: u32) -> Option<ShiftKind> {
    match bits & (0b11 << 9) {
        0 => Some(ShiftKind::LogicalRight),
        x if x == 1 << 9 => Some(ShiftKind::ArithmeticRight),
        x if x == 1 << 10 => Some(ShiftKind::LogicalLeft),
        _ => None,
    }
}

fn branch_flags(link: bool, absolute: bool, delay: bool) -> u32 {
    (if delay { FLAG_D } else { 0 })
        | (if absolute { FLAG_A } else { 0 })
        | (if link { FLAG_L } else { 0 })
}

/// Encodes an instruction into its 32-bit word.
///
/// Encoding is canonicalizing: the link register of non-linking branches
/// and the shift amount above 5 bits are masked away.
#[must_use]
pub fn encode(insn: &Insn) -> u32 {
    match *insn {
        Insn::Add { rd, ra, rb, keep_carry, use_carry } => {
            let op = OP_ADD | (u32::from(keep_carry) << 2) | (u32::from(use_carry) << 1);
            pack_a(op, rd, ra, rb, 0)
        }
        Insn::Rsub { rd, ra, rb, keep_carry, use_carry } => {
            let op = OP_ADD | 1 | (u32::from(keep_carry) << 2) | (u32::from(use_carry) << 1);
            pack_a(op, rd, ra, rb, 0)
        }
        Insn::Addi { rd, ra, imm, keep_carry, use_carry } => {
            let op = OP_ADDI | (u32::from(keep_carry) << 2) | (u32::from(use_carry) << 1);
            pack_b(op, rd, ra, imm)
        }
        Insn::Rsubi { rd, ra, imm, keep_carry, use_carry } => {
            let op = OP_ADDI | 1 | (u32::from(keep_carry) << 2) | (u32::from(use_carry) << 1);
            pack_b(op, rd, ra, imm)
        }
        Insn::Cmp { rd, ra, rb, unsigned } => {
            pack_a(OP_ADD | 0x05, rd, ra, rb, if unsigned { SUB_CMPU } else { SUB_CMP })
        }
        Insn::Mul { rd, ra, rb } => pack_a(OP_MUL, rd, ra, rb, 0),
        Insn::Muli { rd, ra, imm } => pack_b(OP_MULI, rd, ra, imm),
        Insn::Idiv { rd, ra, rb, unsigned } => {
            pack_a(OP_IDIV, rd, ra, rb, u32::from(unsigned) << 1)
        }
        Insn::Bs { rd, ra, rb, kind } => pack_a(OP_BS, rd, ra, rb, shift_kind_bits(kind)),
        Insn::Bsi { rd, ra, amount, kind } => {
            let imm = shift_kind_bits(kind) | u32::from(amount & 31);
            pack_b(OP_BSI, rd, ra, imm as i16)
        }
        Insn::Or { rd, ra, rb } => pack_a(OP_OR, rd, ra, rb, 0),
        Insn::And { rd, ra, rb } => pack_a(OP_AND, rd, ra, rb, 0),
        Insn::Xor { rd, ra, rb } => pack_a(OP_XOR, rd, ra, rb, 0),
        Insn::Andn { rd, ra, rb } => pack_a(OP_ANDN, rd, ra, rb, 0),
        Insn::Ori { rd, ra, imm } => pack_b(OP_ORI, rd, ra, imm),
        Insn::Andi { rd, ra, imm } => pack_b(OP_ANDI, rd, ra, imm),
        Insn::Xori { rd, ra, imm } => pack_b(OP_XORI, rd, ra, imm),
        Insn::Andni { rd, ra, imm } => pack_b(OP_ANDNI, rd, ra, imm),
        Insn::Sra { rd, ra } => pack_b(OP_SHIFT, rd, ra, SUB_SRA as i16),
        Insn::Src { rd, ra } => pack_b(OP_SHIFT, rd, ra, SUB_SRC as i16),
        Insn::Srl { rd, ra } => pack_b(OP_SHIFT, rd, ra, SUB_SRL as i16),
        Insn::Sext8 { rd, ra } => pack_b(OP_SHIFT, rd, ra, SUB_SEXT8 as i16),
        Insn::Sext16 { rd, ra } => pack_b(OP_SHIFT, rd, ra, SUB_SEXT16 as i16),
        Insn::Br { rd, rb, link, absolute, delay } => {
            let flags = branch_flags(link, absolute, delay);
            let rd = if link { rd } else { Reg::R0 };
            pack_a(OP_BR, rd, Reg::new(flags as u8), rb, 0)
        }
        Insn::Bri { rd, imm, link, absolute, delay } => {
            let flags = branch_flags(link, absolute, delay);
            let rd = if link { rd } else { Reg::R0 };
            pack_b(OP_BRI, rd, Reg::new(flags as u8), imm)
        }
        Insn::Bc { cond, ra, rb, delay } => {
            let rd = (if delay { FLAG_D } else { 0 }) | cond.code();
            pack_a(OP_BC, Reg::new(rd as u8), ra, rb, 0)
        }
        Insn::Bci { cond, ra, imm, delay } => {
            let rd = (if delay { FLAG_D } else { 0 }) | cond.code();
            pack_b(OP_BCI, Reg::new(rd as u8), ra, imm)
        }
        Insn::Rtsd { ra, imm } => pack_b(OP_RTSD, Reg::new(0x10), ra, imm),
        Insn::Load { size, rd, ra, rb } => {
            let op = match size {
                MemSize::Byte => OP_LBU,
                MemSize::Half => OP_LHU,
                MemSize::Word => OP_LW,
            };
            pack_a(op, rd, ra, rb, 0)
        }
        Insn::Loadi { size, rd, ra, imm } => {
            let op = match size {
                MemSize::Byte => OP_LBUI,
                MemSize::Half => OP_LHUI,
                MemSize::Word => OP_LWI,
            };
            pack_b(op, rd, ra, imm)
        }
        Insn::Store { size, rd, ra, rb } => {
            let op = match size {
                MemSize::Byte => OP_SB,
                MemSize::Half => OP_SH,
                MemSize::Word => OP_SW,
            };
            pack_a(op, rd, ra, rb, 0)
        }
        Insn::Storei { size, rd, ra, imm } => {
            let op = match size {
                MemSize::Byte => OP_SBI,
                MemSize::Half => OP_SHI,
                MemSize::Word => OP_SWI,
            };
            pack_b(op, rd, ra, imm)
        }
        Insn::Imm { imm } => pack_b(OP_IMM, Reg::R0, Reg::R0, imm),
    }
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or a subcode field is unassigned.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let op = word >> 26;
    let rd = Reg::new(((word >> 21) & 31) as u8);
    let ra = Reg::new(((word >> 16) & 31) as u8);
    let rb = Reg::new(((word >> 11) & 31) as u8);
    let sub = word & 0x7FF;
    let imm = (word & 0xFFFF) as u16 as i16;

    let unknown_sub = |subcode: u32| DecodeError::UnknownSubcode { word, subcode };

    Ok(match op {
        // add/rsub family with R (bit0), C (bit1), K (bit2) flags; the
        // RSUBK encoding doubles as cmp/cmpu via its subcode field.
        0x00..=0x07 => {
            let keep_carry = op & 0x4 != 0;
            let use_carry = op & 0x2 != 0;
            let rsub = op & 0x1 != 0;
            if rsub && keep_carry && !use_carry && sub != 0 {
                match sub {
                    SUB_CMP => Insn::Cmp { rd, ra, rb, unsigned: false },
                    SUB_CMPU => Insn::Cmp { rd, ra, rb, unsigned: true },
                    s => return Err(unknown_sub(s)),
                }
            } else if rsub {
                Insn::Rsub { rd, ra, rb, keep_carry, use_carry }
            } else {
                Insn::Add { rd, ra, rb, keep_carry, use_carry }
            }
        }
        0x08..=0x0F => {
            let keep_carry = op & 0x4 != 0;
            let use_carry = op & 0x2 != 0;
            if op & 0x1 != 0 {
                Insn::Rsubi { rd, ra, imm, keep_carry, use_carry }
            } else {
                Insn::Addi { rd, ra, imm, keep_carry, use_carry }
            }
        }
        OP_MUL => Insn::Mul { rd, ra, rb },
        OP_MULI => Insn::Muli { rd, ra, imm },
        OP_BS => {
            let kind = shift_kind_from_bits(sub).ok_or(unknown_sub(sub))?;
            Insn::Bs { rd, ra, rb, kind }
        }
        OP_BSI => {
            let bits = u32::from(imm as u16);
            let kind = shift_kind_from_bits(bits).ok_or(unknown_sub(bits))?;
            Insn::Bsi { rd, ra, amount: (bits & 31) as u8, kind }
        }
        OP_IDIV => Insn::Idiv { rd, ra, rb, unsigned: sub & 0x2 != 0 },
        OP_OR => Insn::Or { rd, ra, rb },
        OP_AND => Insn::And { rd, ra, rb },
        OP_XOR => Insn::Xor { rd, ra, rb },
        OP_ANDN => Insn::Andn { rd, ra, rb },
        OP_ORI => Insn::Ori { rd, ra, imm },
        OP_ANDI => Insn::Andi { rd, ra, imm },
        OP_XORI => Insn::Xori { rd, ra, imm },
        OP_ANDNI => Insn::Andni { rd, ra, imm },
        OP_SHIFT => match u32::from(imm as u16) {
            SUB_SRA => Insn::Sra { rd, ra },
            SUB_SRC => Insn::Src { rd, ra },
            SUB_SRL => Insn::Srl { rd, ra },
            SUB_SEXT8 => Insn::Sext8 { rd, ra },
            SUB_SEXT16 => Insn::Sext16 { rd, ra },
            s => return Err(unknown_sub(s)),
        },
        OP_BR => {
            let flags = u32::from(ra);
            let link = flags & FLAG_L != 0;
            Insn::Br {
                rd: if link { rd } else { Reg::R0 },
                rb,
                link,
                absolute: flags & FLAG_A != 0,
                delay: flags & FLAG_D != 0,
            }
        }
        OP_BRI => {
            let flags = u32::from(ra);
            let link = flags & FLAG_L != 0;
            Insn::Bri {
                rd: if link { rd } else { Reg::R0 },
                imm,
                link,
                absolute: flags & FLAG_A != 0,
                delay: flags & FLAG_D != 0,
            }
        }
        OP_BC => {
            let bits = u32::from(rd);
            let cond = Cond::from_code(bits & 0x7).ok_or(unknown_sub(bits))?;
            Insn::Bc { cond, ra, rb, delay: bits & FLAG_D != 0 }
        }
        OP_BCI => {
            let bits = u32::from(rd);
            let cond = Cond::from_code(bits & 0x7).ok_or(unknown_sub(bits))?;
            Insn::Bci { cond, ra, imm, delay: bits & FLAG_D != 0 }
        }
        OP_RTSD => Insn::Rtsd { ra, imm },
        OP_IMM => Insn::Imm { imm },
        OP_LBU => Insn::Load { size: MemSize::Byte, rd, ra, rb },
        OP_LHU => Insn::Load { size: MemSize::Half, rd, ra, rb },
        OP_LW => Insn::Load { size: MemSize::Word, rd, ra, rb },
        OP_SB => Insn::Store { size: MemSize::Byte, rd, ra, rb },
        OP_SH => Insn::Store { size: MemSize::Half, rd, ra, rb },
        OP_SW => Insn::Store { size: MemSize::Word, rd, ra, rb },
        OP_LBUI => Insn::Loadi { size: MemSize::Byte, rd, ra, imm },
        OP_LHUI => Insn::Loadi { size: MemSize::Half, rd, ra, imm },
        OP_LWI => Insn::Loadi { size: MemSize::Word, rd, ra, imm },
        OP_SBI => Insn::Storei { size: MemSize::Byte, rd, ra, imm },
        OP_SHI => Insn::Storei { size: MemSize::Half, rd, ra, imm },
        OP_SWI => Insn::Storei { size: MemSize::Word, rd, ra, imm },
        opcode => return Err(DecodeError::UnknownOpcode { word, opcode }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    fn cond_strategy() -> impl Strategy<Value = Cond> {
        prop::sample::select(Cond::ALL.to_vec())
    }

    fn size_strategy() -> impl Strategy<Value = MemSize> {
        prop::sample::select(vec![MemSize::Byte, MemSize::Half, MemSize::Word])
    }

    fn kind_strategy() -> impl Strategy<Value = ShiftKind> {
        prop::sample::select(vec![
            ShiftKind::LogicalRight,
            ShiftKind::ArithmeticRight,
            ShiftKind::LogicalLeft,
        ])
    }

    /// Strategy producing canonical instructions (the forms [`encode`]
    /// represents exactly).
    fn insn_strategy() -> impl Strategy<Value = Insn> {
        let r = reg_strategy;
        prop_oneof![
            (r(), r(), r(), any::<bool>(), any::<bool>()).prop_map(|(rd, ra, rb, k, c)| {
                Insn::Add { rd, ra, rb, keep_carry: k, use_carry: c }
            }),
            (r(), r(), r(), any::<bool>(), any::<bool>()).prop_map(|(rd, ra, rb, k, c)| {
                Insn::Rsub { rd, ra, rb, keep_carry: k, use_carry: c }
            }),
            (r(), r(), any::<i16>(), any::<bool>(), any::<bool>()).prop_map(
                |(rd, ra, imm, k, c)| Insn::Addi { rd, ra, imm, keep_carry: k, use_carry: c }
            ),
            (r(), r(), any::<i16>(), any::<bool>(), any::<bool>()).prop_map(
                |(rd, ra, imm, k, c)| Insn::Rsubi { rd, ra, imm, keep_carry: k, use_carry: c }
            ),
            (r(), r(), r(), any::<bool>()).prop_map(|(rd, ra, rb, u)| Insn::Cmp {
                rd,
                ra,
                rb,
                unsigned: u
            }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Insn::Mul { rd, ra, rb }),
            (r(), r(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::Muli { rd, ra, imm }),
            (r(), r(), r(), any::<bool>()).prop_map(|(rd, ra, rb, u)| Insn::Idiv {
                rd,
                ra,
                rb,
                unsigned: u
            }),
            (r(), r(), r(), kind_strategy()).prop_map(|(rd, ra, rb, kind)| Insn::Bs {
                rd,
                ra,
                rb,
                kind
            }),
            (r(), r(), 0u8..32, kind_strategy()).prop_map(|(rd, ra, amount, kind)| Insn::Bsi {
                rd,
                ra,
                amount,
                kind
            }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Insn::Or { rd, ra, rb }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Insn::And { rd, ra, rb }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Insn::Xor { rd, ra, rb }),
            (r(), r(), r()).prop_map(|(rd, ra, rb)| Insn::Andn { rd, ra, rb }),
            (r(), r(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::Ori { rd, ra, imm }),
            (r(), r(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::Andi { rd, ra, imm }),
            (r(), r(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::Xori { rd, ra, imm }),
            (r(), r(), any::<i16>()).prop_map(|(rd, ra, imm)| Insn::Andni { rd, ra, imm }),
            (r(), r()).prop_map(|(rd, ra)| Insn::Sra { rd, ra }),
            (r(), r()).prop_map(|(rd, ra)| Insn::Src { rd, ra }),
            (r(), r()).prop_map(|(rd, ra)| Insn::Srl { rd, ra }),
            (r(), r()).prop_map(|(rd, ra)| Insn::Sext8 { rd, ra }),
            (r(), r()).prop_map(|(rd, ra)| Insn::Sext16 { rd, ra }),
            (r(), r(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
                |(rd, rb, link, absolute, delay)| Insn::Br {
                    rd: if link { rd } else { Reg::R0 },
                    rb,
                    link,
                    absolute,
                    delay
                }
            ),
            (r(), any::<i16>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
                |(rd, imm, link, absolute, delay)| Insn::Bri {
                    rd: if link { rd } else { Reg::R0 },
                    imm,
                    link,
                    absolute,
                    delay
                }
            ),
            (cond_strategy(), r(), r(), any::<bool>()).prop_map(|(cond, ra, rb, delay)| Insn::Bc {
                cond,
                ra,
                rb,
                delay
            }),
            (cond_strategy(), r(), any::<i16>(), any::<bool>())
                .prop_map(|(cond, ra, imm, delay)| Insn::Bci { cond, ra, imm, delay }),
            (r(), any::<i16>()).prop_map(|(ra, imm)| Insn::Rtsd { ra, imm }),
            (size_strategy(), r(), r(), r()).prop_map(|(size, rd, ra, rb)| Insn::Load {
                size,
                rd,
                ra,
                rb
            }),
            (size_strategy(), r(), r(), any::<i16>()).prop_map(|(size, rd, ra, imm)| Insn::Loadi {
                size,
                rd,
                ra,
                imm
            }),
            (size_strategy(), r(), r(), r()).prop_map(|(size, rd, ra, rb)| Insn::Store {
                size,
                rd,
                ra,
                rb
            }),
            (size_strategy(), r(), r(), any::<i16>())
                .prop_map(|(size, rd, ra, imm)| Insn::Storei { size, rd, ra, imm }),
            any::<i16>().prop_map(|imm| Insn::Imm { imm }),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(insn in insn_strategy()) {
            let word = encode(&insn);
            let back = decode(word).expect("canonical instruction decodes");
            prop_assert_eq!(insn, back);
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = decode(word);
        }

        #[test]
        fn decoded_words_reencode_identically(word in any::<u32>()) {
            if let Ok(insn) = decode(word) {
                // Decoding is not injective (don't-care fields), but the
                // canonical re-encoding must decode to the same instruction.
                let canon = encode(&insn);
                prop_assert_eq!(decode(canon).unwrap(), insn);
            }
        }
    }

    #[test]
    fn specific_encodings() {
        // addk r3, r4, r5 -> opcode 0x04.
        let w = encode(&Insn::addk(Reg::R3, Reg::R4, Reg::R5));
        assert_eq!(w >> 26, 0x04);
        assert_eq!((w >> 21) & 31, 3);
        assert_eq!((w >> 16) & 31, 4);
        assert_eq!((w >> 11) & 31, 5);

        // imm prefix uses opcode 0x2C.
        assert_eq!(encode(&Insn::Imm { imm: -1 }) >> 26, 0x2C);

        // rtsd r15, 8 fixes rd = 0b10000.
        let r = encode(&Insn::ret());
        assert_eq!(r >> 26, 0x2D);
        assert_eq!((r >> 21) & 31, 0x10);
    }

    #[test]
    fn unknown_opcode_reports_error() {
        // Opcode 0x3F is unassigned.
        let word = 0x3F << 26;
        assert_eq!(decode(word), Err(DecodeError::UnknownOpcode { word, opcode: 0x3F }));
    }

    #[test]
    fn unknown_shift_subcode_reports_error() {
        let word = (OP_SHIFT << 26) | 0x7; // not an assigned subcode
        assert!(matches!(decode(word), Err(DecodeError::UnknownSubcode { .. })));
    }

    #[test]
    fn nop_round_trips() {
        assert_eq!(decode(encode(&Insn::nop())).unwrap(), Insn::nop());
    }
}
