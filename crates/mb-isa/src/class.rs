//! Instruction classification used by timing and power models.

use std::fmt;

use crate::Insn;

/// Coarse instruction class.
///
/// The simulator's pipeline model and the power estimator both key off
/// this classification rather than individual opcodes, mirroring how the
/// paper reports per-class latencies (1-cycle ALU, 3-cycle multiply,
/// 2-cycle loads, 1–3-cycle branches).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Single-cycle integer/logic operations, including single-bit shifts.
    Alu,
    /// Barrel-shifter operations (optional unit).
    BarrelShift,
    /// Hardware multiply (optional unit).
    Mul,
    /// Hardware divide (optional unit).
    Div,
    /// Memory loads.
    Load,
    /// Memory stores.
    Store,
    /// Branches, jumps, and returns.
    Branch,
    /// The `imm` prefix.
    ImmPrefix,
}

impl OpClass {
    /// All classes, in a stable order (useful for histogram reports).
    pub const ALL: [OpClass; 8] = [
        OpClass::Alu,
        OpClass::BarrelShift,
        OpClass::Mul,
        OpClass::Div,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::ImmPrefix,
    ];

    /// A stable index for this class, `0..OpClass::ALL.len()`.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            OpClass::Alu => 0,
            OpClass::BarrelShift => 1,
            OpClass::Mul => 2,
            OpClass::Div => 3,
            OpClass::Load => 4,
            OpClass::Store => 5,
            OpClass::Branch => 6,
            OpClass::ImmPrefix => 7,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::Alu => "alu",
            OpClass::BarrelShift => "barrel-shift",
            OpClass::Mul => "mul",
            OpClass::Div => "div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::ImmPrefix => "imm",
        };
        f.write_str(s)
    }
}

impl Insn {
    /// The coarse class of this instruction.
    #[must_use]
    pub fn class(&self) -> OpClass {
        match self {
            Insn::Mul { .. } | Insn::Muli { .. } => OpClass::Mul,
            Insn::Idiv { .. } => OpClass::Div,
            Insn::Bs { .. } | Insn::Bsi { .. } => OpClass::BarrelShift,
            Insn::Load { .. } | Insn::Loadi { .. } => OpClass::Load,
            Insn::Store { .. } | Insn::Storei { .. } => OpClass::Store,
            Insn::Br { .. }
            | Insn::Bri { .. }
            | Insn::Bc { .. }
            | Insn::Bci { .. }
            | Insn::Rtsd { .. } => OpClass::Branch,
            Insn::Imm { .. } => OpClass::ImmPrefix,
            _ => OpClass::Alu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemSize, Reg};

    #[test]
    fn classes_cover_representatives() {
        assert_eq!(Insn::addk(Reg::R1, Reg::R2, Reg::R3).class(), OpClass::Alu);
        assert_eq!(Insn::Sra { rd: Reg::R1, ra: Reg::R2 }.class(), OpClass::Alu);
        assert_eq!(Insn::mul(Reg::R1, Reg::R2, Reg::R3).class(), OpClass::Mul);
        assert_eq!(Insn::bslli(Reg::R1, Reg::R2, 3).class(), OpClass::BarrelShift);
        assert_eq!(
            Insn::Idiv { rd: Reg::R1, ra: Reg::R2, rb: Reg::R3, unsigned: false }.class(),
            OpClass::Div
        );
        assert_eq!(Insn::lwi(Reg::R1, Reg::R2, 0).class(), OpClass::Load);
        assert_eq!(
            Insn::Store { size: MemSize::Half, rd: Reg::R1, ra: Reg::R2, rb: Reg::R3 }.class(),
            OpClass::Store
        );
        assert_eq!(Insn::ret().class(), OpClass::Branch);
        assert_eq!(Insn::Imm { imm: 0 }.class(), OpClass::ImmPrefix);
    }

    #[test]
    fn index_is_consistent_with_all() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
