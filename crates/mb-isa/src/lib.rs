//! MicroBlaze-style 32-bit ISA model for the Warp-MB reproduction.
//!
//! This crate models the instruction set of the Xilinx MicroBlaze soft
//! processor core as described in the DATE 2005 warp-processing paper
//! (Lysecky & Vahid): a 32-bit RISC with 32 general-purpose registers,
//! Type A (register-register) and Type B (register-immediate) instruction
//! formats, an `imm`-prefix mechanism for 32-bit immediates, optional
//! barrel-shift / multiply / divide units, and PC-relative branches with
//! optional delay slots.
//!
//! The crate provides:
//!
//! * [`Reg`] — general-purpose register names,
//! * [`Insn`] — the instruction set as a typed enum,
//! * [`encode`]/[`decode`] — the 32-bit word encoding (round-trip checked
//!   by property tests),
//! * [`Assembler`] — a two-pass assembler with labels and pseudo-ops,
//! * [`codegen`] — configuration-aware emission helpers that expand shifts
//!   and multiplies into software sequences when the corresponding hardware
//!   unit is absent (the Section 2 study of the paper),
//! * [`Program`] — an assembled binary image plus symbol table.
//!
//! # Example
//!
//! ```
//! use mb_isa::{Assembler, Insn, Reg};
//!
//! let mut a = Assembler::new(0);
//! a.label("loop");
//! a.push(Insn::addik(Reg::R3, Reg::R3, -1));
//! a.bnei(Reg::R3, "loop");
//! let program = a.finish().expect("assembles");
//! assert_eq!(program.words.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod class;
pub mod codegen;
mod encode;
mod features;
mod insn;
mod program;
mod reg;

pub use asm::{AsmError, Assembler};
pub use class::OpClass;
pub use encode::{decode, encode, DecodeError};
pub use features::MbFeatures;
pub use insn::{Cond, Insn, MemSize, ShiftKind};
pub use program::Program;
pub use reg::Reg;

/// Size in bytes of one encoded instruction word.
pub const INSN_BYTES: u32 = 4;
