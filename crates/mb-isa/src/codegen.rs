//! Configuration-aware code generation helpers.
//!
//! The paper's Section 2 studies how the MicroBlaze's configurable options
//! change performance: without the hardware barrel shifter an `n`-bit left
//! shift is emitted as `n` successive add instructions (each doubling the
//! value), and without the hardware multiplier every multiplication calls
//! a software routine. This module reproduces that compiler behaviour so
//! the same benchmark source builds into different binaries per
//! [`MbFeatures`] configuration.

use crate::insn::{Cond, Insn, ShiftKind};
use crate::{AsmError, Assembler, MbFeatures, Program, Reg};

/// Registers clobbered by the software multiply/shift runtime routines.
///
/// Callers of [`CodeGen::mul`] and the dynamic-shift helpers must not keep
/// live values in these registers (they follow the MicroBlaze ABI scratch
/// registers plus the argument/return registers).
pub const RUNTIME_CLOBBERS: [Reg; 6] = [Reg::R3, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R15];

#[derive(Clone, Copy, Default, Debug)]
struct RuntimeNeeds {
    mulsi3: bool,
    lshl: bool,
    lshr: bool,
}

/// A code generator wrapping an [`Assembler`] with feature-dependent
/// expansion of shifts and multiplies.
///
/// # Example
///
/// ```
/// use mb_isa::codegen::CodeGen;
/// use mb_isa::{MbFeatures, Reg};
///
/// // With a barrel shifter this is one instruction; without, four adds.
/// let mut with_bs = CodeGen::new(0, MbFeatures::paper_default());
/// with_bs.shl_const(Reg::R3, Reg::R4, 4);
/// assert_eq!(with_bs.asm_ref().len(), 1);
///
/// let mut without = CodeGen::new(0, MbFeatures::minimal());
/// without.shl_const(Reg::R3, Reg::R4, 4);
/// assert_eq!(without.asm_ref().len(), 4);
/// ```
#[derive(Debug)]
pub struct CodeGen {
    asm: Assembler,
    features: MbFeatures,
    counter: u32,
    needs: RuntimeNeeds,
}

impl CodeGen {
    /// Creates a code generator targeting the given feature configuration.
    #[must_use]
    pub fn new(base: u32, features: MbFeatures) -> Self {
        CodeGen { asm: Assembler::new(base), features, counter: 0, needs: RuntimeNeeds::default() }
    }

    /// The feature configuration being targeted.
    #[must_use]
    pub fn features(&self) -> MbFeatures {
        self.features
    }

    /// Mutable access to the underlying assembler for plain instructions,
    /// labels, and branches.
    pub fn asm_mut(&mut self) -> &mut Assembler {
        &mut self.asm
    }

    /// Shared access to the underlying assembler.
    #[must_use]
    pub fn asm_ref(&self) -> &Assembler {
        &self.asm
    }

    fn fresh_label(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("__cg_{tag}_{}", self.counter)
    }

    /// Emits `rd = ra << amount` for a constant amount.
    ///
    /// With the barrel shifter this is a single `bslli`; without it the
    /// shift is `amount` successive doubling adds, exactly as the paper
    /// describes for a core lacking the shifter.
    pub fn shl_const(&mut self, rd: Reg, ra: Reg, amount: u8) {
        let amount = amount & 31;
        if amount == 0 {
            self.asm.push(Insn::addk(rd, ra, Reg::R0));
            return;
        }
        if self.features.barrel_shifter {
            self.asm.push(Insn::bslli(rd, ra, amount));
        } else {
            self.asm.push(Insn::addk(rd, ra, ra));
            for _ in 1..amount {
                self.asm.push(Insn::addk(rd, rd, rd));
            }
        }
    }

    /// Emits `rd = ra >> amount` (logical) for a constant amount.
    ///
    /// Without the barrel shifter this is `amount` single-bit `srl`
    /// instructions.
    pub fn shr_const(&mut self, rd: Reg, ra: Reg, amount: u8) {
        let amount = amount & 31;
        if amount == 0 {
            self.asm.push(Insn::addk(rd, ra, Reg::R0));
            return;
        }
        if self.features.barrel_shifter {
            self.asm.push(Insn::bsrli(rd, ra, amount));
        } else {
            self.asm.push(Insn::Srl { rd, ra });
            for _ in 1..amount {
                self.asm.push(Insn::Srl { rd, ra: rd });
            }
        }
    }

    /// Emits `rd = ra >> amount` (arithmetic) for a constant amount.
    pub fn sar_const(&mut self, rd: Reg, ra: Reg, amount: u8) {
        let amount = amount & 31;
        if amount == 0 {
            self.asm.push(Insn::addk(rd, ra, Reg::R0));
            return;
        }
        if self.features.barrel_shifter {
            self.asm.push(Insn::bsrai(rd, ra, amount));
        } else {
            self.asm.push(Insn::Sra { rd, ra });
            for _ in 1..amount {
                self.asm.push(Insn::Sra { rd, ra: rd });
            }
        }
    }

    /// Emits `rd = ra << rb` for a dynamic amount.
    ///
    /// Without the barrel shifter this calls the `__lshl` runtime routine
    /// (clobbering [`RUNTIME_CLOBBERS`]).
    pub fn shl_dyn(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        if self.features.barrel_shifter {
            self.asm.push(Insn::Bs { rd, ra, rb, kind: ShiftKind::LogicalLeft });
        } else {
            self.needs.lshl = true;
            self.call_runtime2(rd, ra, rb, "__lshl");
        }
    }

    /// Emits `rd = ra >> rb` (logical) for a dynamic amount.
    pub fn shr_dyn(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        if self.features.barrel_shifter {
            self.asm.push(Insn::Bs { rd, ra, rb, kind: ShiftKind::LogicalRight });
        } else {
            self.needs.lshr = true;
            self.call_runtime2(rd, ra, rb, "__lshr");
        }
    }

    /// Emits `rd = ra * rb`.
    ///
    /// With the multiplier this is a 3-cycle `mul`; without it the
    /// `__mulsi3` shift-add routine is called (clobbering
    /// [`RUNTIME_CLOBBERS`]), just as the compiler would for a core
    /// configured without the multiplier.
    pub fn mul(&mut self, rd: Reg, ra: Reg, rb: Reg) {
        if self.features.multiplier {
            self.asm.push(Insn::mul(rd, ra, rb));
        } else {
            self.needs.mulsi3 = true;
            self.call_runtime2(rd, ra, rb, "__mulsi3");
        }
    }

    /// Emits `rd = ra * constant`.
    ///
    /// With the multiplier this is a 3-cycle `muli`; without it the
    /// constant is materialized and `__mulsi3` is called (clobbering
    /// [`RUNTIME_CLOBBERS`]).
    pub fn mul_const(&mut self, rd: Reg, ra: Reg, constant: i16) {
        if self.features.multiplier {
            self.asm.push(Insn::Muli { rd, ra, imm: constant });
        } else {
            self.needs.mulsi3 = true;
            if ra != Reg::R5 {
                self.asm.push(Insn::addk(Reg::R5, ra, Reg::R0));
            }
            self.asm.push(Insn::addik(Reg::R6, Reg::R0, constant));
            self.asm.call("__mulsi3");
            if rd != Reg::R3 {
                self.asm.push(Insn::addk(rd, Reg::R3, Reg::R0));
            }
        }
    }

    /// Marshals (ra, rb) into (r5, r6), calls `routine`, moves r3 to rd.
    fn call_runtime2(&mut self, rd: Reg, ra: Reg, rb: Reg, routine: &str) {
        if ra != Reg::R5 {
            self.asm.push(Insn::addk(Reg::R5, ra, Reg::R0));
        }
        if rb != Reg::R6 {
            self.asm.push(Insn::addk(Reg::R6, rb, Reg::R0));
        }
        self.asm.call(routine.to_string());
        if rd != Reg::R3 {
            self.asm.push(Insn::addk(rd, Reg::R3, Reg::R0));
        }
    }

    /// Emits the `__mulsi3` routine: shift-add multiply with a zero fast
    /// path and early exit once the remaining multiplier bits are zero.
    fn emit_mulsi3(&mut self) {
        let done = self.fresh_label("mul_done");
        let looptop = self.fresh_label("mul_loop");
        let skip = self.fresh_label("mul_skip");
        let a = &mut self.asm;
        a.label("__mulsi3");
        a.push(Insn::addk(Reg::R3, Reg::R0, Reg::R0)); // acc = 0
        a.beqi(Reg::R6, done.clone()); // 0 * x fast path
        a.push(Insn::addk(Reg::R7, Reg::R5, Reg::R0)); // a
        a.push(Insn::addk(Reg::R8, Reg::R6, Reg::R0)); // b
        a.label(looptop.clone());
        a.push(Insn::Andi { rd: Reg::R9, ra: Reg::R8, imm: 1 });
        a.beqi(Reg::R9, skip.clone());
        a.push(Insn::addk(Reg::R3, Reg::R3, Reg::R7));
        a.label(skip);
        a.push(Insn::addk(Reg::R7, Reg::R7, Reg::R7)); // a <<= 1
        a.push(Insn::Srl { rd: Reg::R8, ra: Reg::R8 }); // b >>= 1
        a.bnei(Reg::R8, looptop);
        a.label(done);
        a.ret();
    }

    /// Emits a single-bit-at-a-time dynamic shift routine.
    fn emit_dyn_shift(&mut self, name: &str, left: bool) {
        let done = self.fresh_label("sh_done");
        let looptop = self.fresh_label("sh_loop");
        let a = &mut self.asm;
        a.label(name.to_string());
        a.push(Insn::addk(Reg::R3, Reg::R5, Reg::R0)); // value
        a.push(Insn::Andi { rd: Reg::R8, ra: Reg::R6, imm: 31 }); // count
        a.beqi(Reg::R8, done.clone());
        a.label(looptop.clone());
        if left {
            a.push(Insn::addk(Reg::R3, Reg::R3, Reg::R3));
        } else {
            a.push(Insn::Srl { rd: Reg::R3, ra: Reg::R3 });
        }
        a.push(Insn::addik(Reg::R8, Reg::R8, -1));
        a.bnei(Reg::R8, looptop);
        a.label(done);
        a.ret();
    }

    /// Emits any required runtime routines and assembles the program.
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`] from the underlying assembler.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if self.needs.mulsi3 {
            self.emit_mulsi3();
        }
        if self.needs.lshl {
            self.emit_dyn_shift("__lshl", true);
        }
        if self.needs.lshr {
            self.emit_dyn_shift("__lshr", false);
        }
        self.asm.finish()
    }
}

/// Emits `cmp`+branch: branch to `label` if `ra < rb` (signed).
///
/// This is the standard MicroBlaze compare-and-branch idiom; `scratch`
/// receives the comparison result.
pub fn branch_if_lt(asm: &mut Assembler, scratch: Reg, ra: Reg, rb: Reg, label: impl Into<String>) {
    // cmp scratch, rb, ra computes ra - rb with sign = (ra < rb).
    asm.push(Insn::cmp(scratch, rb, ra));
    asm.bci(Cond::Lt, scratch, label);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shl_const_uses_barrel_when_available() {
        let mut cg = CodeGen::new(0, MbFeatures::paper_default());
        cg.shl_const(Reg::R3, Reg::R4, 7);
        let p = cg.finish().unwrap();
        assert_eq!(p.words.len(), 1);
        assert_eq!(crate::decode(p.words[0]).unwrap(), Insn::bslli(Reg::R3, Reg::R4, 7));
    }

    #[test]
    fn shl_const_expands_to_adds_without_barrel() {
        let mut cg = CodeGen::new(0, MbFeatures::minimal());
        cg.shl_const(Reg::R3, Reg::R4, 7);
        let p = cg.finish().unwrap();
        assert_eq!(p.words.len(), 7); // n successive doubling adds
        assert_eq!(crate::decode(p.words[0]).unwrap(), Insn::addk(Reg::R3, Reg::R4, Reg::R4));
        assert_eq!(crate::decode(p.words[1]).unwrap(), Insn::addk(Reg::R3, Reg::R3, Reg::R3));
    }

    #[test]
    fn shift_by_zero_is_a_move() {
        let mut cg = CodeGen::new(0, MbFeatures::minimal());
        cg.shr_const(Reg::R3, Reg::R4, 0);
        let p = cg.finish().unwrap();
        assert_eq!(p.words.len(), 1);
        assert_eq!(crate::decode(p.words[0]).unwrap(), Insn::addk(Reg::R3, Reg::R4, Reg::R0));
    }

    #[test]
    fn mul_emits_hw_instruction_or_call() {
        let mut hw = CodeGen::new(0, MbFeatures::paper_default());
        hw.mul(Reg::R10, Reg::R11, Reg::R12);
        assert_eq!(hw.finish().unwrap().words.len(), 1);

        let mut sw = CodeGen::new(0, MbFeatures::minimal());
        sw.mul(Reg::R10, Reg::R11, Reg::R12);
        let p = sw.finish().unwrap();
        // marshal (2) + call (2) + move (1) + routine body.
        assert!(p.words.len() > 10, "expected runtime routine, got {} words", p.words.len());
        assert!(p.symbol("__mulsi3").is_some());
    }

    #[test]
    fn runtime_emitted_once_for_many_calls() {
        let mut sw = CodeGen::new(0, MbFeatures::minimal());
        sw.mul(Reg::R10, Reg::R11, Reg::R12);
        sw.mul(Reg::R20, Reg::R21, Reg::R22);
        let p = sw.finish().unwrap();
        let mulsi3_count = p.symbols.keys().filter(|k| k.as_str() == "__mulsi3").count();
        assert_eq!(mulsi3_count, 1);
    }

    #[test]
    fn dynamic_shifts_route_through_runtime_without_barrel() {
        let mut sw = CodeGen::new(0, MbFeatures::minimal());
        sw.shl_dyn(Reg::R3, Reg::R4, Reg::R5);
        sw.shr_dyn(Reg::R9, Reg::R4, Reg::R5);
        let p = sw.finish().unwrap();
        assert!(p.symbol("__lshl").is_some());
        assert!(p.symbol("__lshr").is_some());

        let mut hw = CodeGen::new(0, MbFeatures::paper_default());
        hw.shl_dyn(Reg::R3, Reg::R4, Reg::R5);
        assert_eq!(hw.finish().unwrap().words.len(), 1);
    }

    #[test]
    fn sar_const_without_barrel_uses_sra_chain() {
        let mut cg = CodeGen::new(0, MbFeatures::minimal());
        cg.sar_const(Reg::R3, Reg::R4, 3);
        let p = cg.finish().unwrap();
        assert_eq!(p.words.len(), 3);
        assert_eq!(crate::decode(p.words[0]).unwrap(), Insn::Sra { rd: Reg::R3, ra: Reg::R4 });
    }
}
