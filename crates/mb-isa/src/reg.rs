//! General-purpose register names.

use std::fmt;

/// One of the 32 general-purpose registers, `r0`–`r31`.
///
/// `r0` always reads as zero and ignores writes, matching the MicroBlaze
/// convention. The remaining registers follow the MicroBlaze ABI roles in
/// the [`workloads`] crate (r1 stack pointer, r3/r4 return values, r5–r10
/// arguments, r15 return address) but nothing in this crate enforces those
/// roles.
///
/// [`workloads`]: https://docs.rs/workloads
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

macro_rules! reg_consts {
    ($($name:ident = $num:expr),* $(,)?) => {
        $(
            #[doc = concat!("Register `r", stringify!($num), "`.")]
            pub const $name: Reg = Reg($num);
        )*
    };
}

impl Reg {
    reg_consts! {
        R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
        R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14,
        R15 = 15, R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20,
        R21 = 21, R22 = 22, R23 = 23, R24 = 24, R25 = 25, R26 = 26,
        R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
    }

    /// Creates a register from its number.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    #[must_use]
    pub fn new(n: u8) -> Self {
        assert!(n < 32, "register number {n} out of range 0..32");
        Reg(n)
    }

    /// Creates a register from its number, returning `None` if `n > 31`.
    #[must_use]
    pub fn try_new(n: u8) -> Option<Self> {
        (n < 32).then_some(Reg(n))
    }

    /// The register number, `0..=31`.
    #[must_use]
    pub fn number(self) -> u8 {
        self.0
    }

    /// The register number as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is `r0`, the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> Self {
        r.0
    }
}

impl From<Reg> for u32 {
    fn from(r: Reg) -> Self {
        u32::from(r.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_round_trips() {
        for n in 0..32 {
            assert_eq!(Reg::new(n).number(), n);
        }
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert_eq!(Reg::try_new(32), None);
        assert_eq!(Reg::try_new(31), Some(Reg::R31));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(40);
    }

    #[test]
    fn display_uses_r_prefix() {
        assert_eq!(Reg::R17.to_string(), "r17");
        assert_eq!(Reg::R0.to_string(), "r0");
    }

    #[test]
    fn zero_register_identified() {
        assert!(Reg::R0.is_zero());
        assert!(!Reg::R1.is_zero());
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        assert_eq!(regs[0], Reg::R0);
        assert_eq!(regs[31], Reg::R31);
    }
}
