//! The instruction set as a typed enum, plus convenience constructors.

use std::fmt;

use crate::Reg;

/// Branch condition for `beq*`/`bne*`/… instructions.
///
/// MicroBlaze conditional branches test a single register against zero; the
/// comparison itself is done earlier by `cmp`/`cmpu` (which leave the sign
/// of the comparison in the destination register).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Branch if the register equals zero (`beq`).
    Eq,
    /// Branch if the register is non-zero (`bne`).
    Ne,
    /// Branch if the register is negative (`blt`).
    Lt,
    /// Branch if the register is negative or zero (`ble`).
    Le,
    /// Branch if the register is positive (`bgt`).
    Gt,
    /// Branch if the register is positive or zero (`bge`).
    Ge,
}

impl Cond {
    /// The 3-bit condition code used in the instruction encoding.
    #[must_use]
    pub fn code(self) -> u32 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
        }
    }

    /// Decodes a 3-bit condition code.
    #[must_use]
    pub fn from_code(code: u32) -> Option<Self> {
        Some(match code {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            _ => return None,
        })
    }

    /// Evaluates the condition against a register value.
    #[must_use]
    pub fn eval(self, value: u32) -> bool {
        let v = value as i32;
        match self {
            Cond::Eq => v == 0,
            Cond::Ne => v != 0,
            Cond::Lt => v < 0,
            Cond::Le => v <= 0,
            Cond::Gt => v > 0,
            Cond::Ge => v >= 0,
        }
    }

    /// The mnemonic suffix (`eq`, `ne`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        }
    }

    /// All six conditions.
    pub const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge];
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Access width of a load or store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSize {
    /// 8-bit access (`lbu`/`sb`), zero-extended on load.
    Byte,
    /// 16-bit access (`lhu`/`sh`), zero-extended on load.
    Half,
    /// 32-bit access (`lw`/`sw`).
    Word,
}

impl MemSize {
    /// The access width in bytes.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemSize::Byte => 1,
            MemSize::Half => 2,
            MemSize::Word => 4,
        }
    }
}

/// Direction/kind of a barrel-shift instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShiftKind {
    /// `bsrl` — logical shift right.
    LogicalRight,
    /// `bsra` — arithmetic shift right.
    ArithmeticRight,
    /// `bsll` — logical shift left.
    LogicalLeft,
}

impl ShiftKind {
    /// Applies the shift to `value` by `amount & 31` bits.
    #[must_use]
    pub fn apply(self, value: u32, amount: u32) -> u32 {
        let sh = amount & 31;
        match self {
            ShiftKind::LogicalRight => value >> sh,
            ShiftKind::ArithmeticRight => ((value as i32) >> sh) as u32,
            ShiftKind::LogicalLeft => value << sh,
        }
    }

    fn mnemonic_tail(self) -> &'static str {
        match self {
            ShiftKind::LogicalRight => "rl",
            ShiftKind::ArithmeticRight => "ra",
            ShiftKind::LogicalLeft => "ll",
        }
    }
}

/// One MicroBlaze-style instruction.
///
/// Type A instructions take two source registers; Type B instructions take
/// a source register and a 16-bit immediate that is sign-extended unless
/// preceded by an [`Insn::Imm`] prefix, which supplies the upper 16 bits.
///
/// The `keep_carry` flag on add/subtract corresponds to the MicroBlaze `K`
/// bit (do **not** update the carry flag); `use_carry` corresponds to the
/// `C` bit (add the carry flag into the sum).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // field meanings documented on the enum
pub enum Insn {
    /// `add`/`addc`/`addk`/`addkc` — rd = ra + rb (+ carry).
    Add { rd: Reg, ra: Reg, rb: Reg, keep_carry: bool, use_carry: bool },
    /// `rsub`/… — rd = rb - ra (reverse subtract).
    Rsub { rd: Reg, ra: Reg, rb: Reg, keep_carry: bool, use_carry: bool },
    /// `addi`/… — rd = ra + imm.
    Addi { rd: Reg, ra: Reg, imm: i16, keep_carry: bool, use_carry: bool },
    /// `rsubi`/… — rd = imm - ra.
    Rsubi { rd: Reg, ra: Reg, imm: i16, keep_carry: bool, use_carry: bool },
    /// `cmp`/`cmpu` — rd = rb - ra with the sign bit forced to the
    /// (signed or unsigned) comparison outcome `rb < ra`.
    Cmp { rd: Reg, ra: Reg, rb: Reg, unsigned: bool },
    /// `mul` — rd = low 32 bits of ra × rb (requires the multiplier unit).
    Mul { rd: Reg, ra: Reg, rb: Reg },
    /// `muli` — rd = low 32 bits of ra × imm.
    Muli { rd: Reg, ra: Reg, imm: i16 },
    /// `idiv`/`idivu` — rd = rb ÷ ra (requires the divider unit).
    Idiv { rd: Reg, ra: Reg, rb: Reg, unsigned: bool },
    /// `bsrl`/`bsra`/`bsll` — dynamic barrel shift by rb (requires the
    /// barrel shifter unit).
    Bs { rd: Reg, ra: Reg, rb: Reg, kind: ShiftKind },
    /// `bsrli`/`bsrai`/`bslli` — barrel shift by a 5-bit constant.
    Bsi { rd: Reg, ra: Reg, amount: u8, kind: ShiftKind },
    /// `or` — rd = ra | rb.
    Or { rd: Reg, ra: Reg, rb: Reg },
    /// `and` — rd = ra & rb.
    And { rd: Reg, ra: Reg, rb: Reg },
    /// `xor` — rd = ra ^ rb.
    Xor { rd: Reg, ra: Reg, rb: Reg },
    /// `andn` — rd = ra & !rb.
    Andn { rd: Reg, ra: Reg, rb: Reg },
    /// `ori` — rd = ra | imm.
    Ori { rd: Reg, ra: Reg, imm: i16 },
    /// `andi` — rd = ra & imm.
    Andi { rd: Reg, ra: Reg, imm: i16 },
    /// `xori` — rd = ra ^ imm.
    Xori { rd: Reg, ra: Reg, imm: i16 },
    /// `andni` — rd = ra & !imm.
    Andni { rd: Reg, ra: Reg, imm: i16 },
    /// `sra` — rd = ra >> 1 arithmetic; carry receives the shifted-out bit.
    Sra { rd: Reg, ra: Reg },
    /// `src` — rd = ra >> 1 with the old carry shifted into the MSB.
    Src { rd: Reg, ra: Reg },
    /// `srl` — rd = ra >> 1 logical; carry receives the shifted-out bit.
    Srl { rd: Reg, ra: Reg },
    /// `sext8` — rd = sign-extend low byte of ra.
    Sext8 { rd: Reg, ra: Reg },
    /// `sext16` — rd = sign-extend low half of ra.
    Sext16 { rd: Reg, ra: Reg },
    /// `br`/`bra`/`brd`/`brld`/… — unconditional branch to rb
    /// (PC-relative unless `absolute`), optionally linking PC into rd.
    Br { rd: Reg, rb: Reg, link: bool, absolute: bool, delay: bool },
    /// `bri`/`brai`/`brid`/`brlid`/… — unconditional branch to an
    /// immediate target.
    Bri { rd: Reg, imm: i16, link: bool, absolute: bool, delay: bool },
    /// `beq`/`bne`/… — conditional branch on `ra` to PC + rb.
    Bc { cond: Cond, ra: Reg, rb: Reg, delay: bool },
    /// `beqi`/`bnei`/… — conditional branch on `ra` to PC + imm.
    Bci { cond: Cond, ra: Reg, imm: i16, delay: bool },
    /// `rtsd` — return: PC = ra + imm, with a mandatory delay slot.
    Rtsd { ra: Reg, imm: i16 },
    /// `lbu`/`lhu`/`lw` — rd = mem[ra + rb].
    Load { size: MemSize, rd: Reg, ra: Reg, rb: Reg },
    /// `lbui`/`lhui`/`lwi` — rd = mem[ra + imm].
    Loadi { size: MemSize, rd: Reg, ra: Reg, imm: i16 },
    /// `sb`/`sh`/`sw` — mem[ra + rb] = rd.
    Store { size: MemSize, rd: Reg, ra: Reg, rb: Reg },
    /// `sbi`/`shi`/`swi` — mem[ra + imm] = rd.
    Storei { size: MemSize, rd: Reg, ra: Reg, imm: i16 },
    /// `imm` — supplies the upper 16 bits for the next Type B immediate.
    Imm { imm: i16 },
}

impl Insn {
    /// `addk rd, ra, rb` — add without touching the carry flag.
    #[must_use]
    pub fn addk(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn::Add { rd, ra, rb, keep_carry: true, use_carry: false }
    }

    /// `add rd, ra, rb` — add, updating the carry flag.
    #[must_use]
    pub fn add(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn::Add { rd, ra, rb, keep_carry: false, use_carry: false }
    }

    /// `addik rd, ra, imm` — add immediate without touching carry.
    #[must_use]
    pub fn addik(rd: Reg, ra: Reg, imm: i16) -> Self {
        Insn::Addi { rd, ra, imm, keep_carry: true, use_carry: false }
    }

    /// `rsubk rd, ra, rb` — rd = rb - ra without touching carry.
    #[must_use]
    pub fn rsubk(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn::Rsub { rd, ra, rb, keep_carry: true, use_carry: false }
    }

    /// `cmp rd, ra, rb` — signed compare (rd sign = rb < ra).
    #[must_use]
    pub fn cmp(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn::Cmp { rd, ra, rb, unsigned: false }
    }

    /// `cmpu rd, ra, rb` — unsigned compare.
    #[must_use]
    pub fn cmpu(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn::Cmp { rd, ra, rb, unsigned: true }
    }

    /// `mul rd, ra, rb`.
    #[must_use]
    pub fn mul(rd: Reg, ra: Reg, rb: Reg) -> Self {
        Insn::Mul { rd, ra, rb }
    }

    /// `bslli rd, ra, amount` — constant logical shift left.
    #[must_use]
    pub fn bslli(rd: Reg, ra: Reg, amount: u8) -> Self {
        Insn::Bsi { rd, ra, amount, kind: ShiftKind::LogicalLeft }
    }

    /// `bsrli rd, ra, amount` — constant logical shift right.
    #[must_use]
    pub fn bsrli(rd: Reg, ra: Reg, amount: u8) -> Self {
        Insn::Bsi { rd, ra, amount, kind: ShiftKind::LogicalRight }
    }

    /// `bsrai rd, ra, amount` — constant arithmetic shift right.
    #[must_use]
    pub fn bsrai(rd: Reg, ra: Reg, amount: u8) -> Self {
        Insn::Bsi { rd, ra, amount, kind: ShiftKind::ArithmeticRight }
    }

    /// `lwi rd, ra, imm` — load word at ra + imm.
    #[must_use]
    pub fn lwi(rd: Reg, ra: Reg, imm: i16) -> Self {
        Insn::Loadi { size: MemSize::Word, rd, ra, imm }
    }

    /// `swi rd, ra, imm` — store word at ra + imm.
    #[must_use]
    pub fn swi(rd: Reg, ra: Reg, imm: i16) -> Self {
        Insn::Storei { size: MemSize::Word, rd, ra, imm }
    }

    /// `lbui rd, ra, imm` — load byte (zero-extended) at ra + imm.
    #[must_use]
    pub fn lbui(rd: Reg, ra: Reg, imm: i16) -> Self {
        Insn::Loadi { size: MemSize::Byte, rd, ra, imm }
    }

    /// `sbi rd, ra, imm` — store byte at ra + imm.
    #[must_use]
    pub fn sbi(rd: Reg, ra: Reg, imm: i16) -> Self {
        Insn::Storei { size: MemSize::Byte, rd, ra, imm }
    }

    /// `nop` — encoded as `or r0, r0, r0`.
    #[must_use]
    pub fn nop() -> Self {
        Insn::Or { rd: Reg::R0, ra: Reg::R0, rb: Reg::R0 }
    }

    /// `rtsd r15, 8` — the conventional subroutine return.
    #[must_use]
    pub fn ret() -> Self {
        Insn::Rtsd { ra: Reg::R15, imm: 8 }
    }

    /// Whether this instruction is any kind of branch, jump, or return.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Insn::Br { .. }
                | Insn::Bri { .. }
                | Insn::Bc { .. }
                | Insn::Bci { .. }
                | Insn::Rtsd { .. }
        )
    }

    /// Whether this instruction executes the following instruction in a
    /// delay slot when taken.
    #[must_use]
    pub fn has_delay_slot(&self) -> bool {
        match self {
            Insn::Br { delay, .. } | Insn::Bri { delay, .. } => *delay,
            Insn::Bc { delay, .. } | Insn::Bci { delay, .. } => *delay,
            Insn::Rtsd { .. } => true,
            _ => false,
        }
    }

    /// The destination register written by this instruction, if any.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Insn::Add { rd, .. }
            | Insn::Rsub { rd, .. }
            | Insn::Addi { rd, .. }
            | Insn::Rsubi { rd, .. }
            | Insn::Cmp { rd, .. }
            | Insn::Mul { rd, .. }
            | Insn::Muli { rd, .. }
            | Insn::Idiv { rd, .. }
            | Insn::Bs { rd, .. }
            | Insn::Bsi { rd, .. }
            | Insn::Or { rd, .. }
            | Insn::And { rd, .. }
            | Insn::Xor { rd, .. }
            | Insn::Andn { rd, .. }
            | Insn::Ori { rd, .. }
            | Insn::Andi { rd, .. }
            | Insn::Xori { rd, .. }
            | Insn::Andni { rd, .. }
            | Insn::Sra { rd, .. }
            | Insn::Src { rd, .. }
            | Insn::Srl { rd, .. }
            | Insn::Sext8 { rd, .. }
            | Insn::Sext16 { rd, .. }
            | Insn::Load { rd, .. }
            | Insn::Loadi { rd, .. } => Some(rd),
            Insn::Br { rd, link, .. } | Insn::Bri { rd, link, .. } => link.then_some(rd),
            _ => None,
        }
    }

    /// The source registers read by this instruction (up to three;
    /// `r0` sources are included).
    #[must_use]
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Insn::Add { ra, rb, .. }
            | Insn::Rsub { ra, rb, .. }
            | Insn::Cmp { ra, rb, .. }
            | Insn::Mul { ra, rb, .. }
            | Insn::Idiv { ra, rb, .. }
            | Insn::Bs { ra, rb, .. }
            | Insn::Or { ra, rb, .. }
            | Insn::And { ra, rb, .. }
            | Insn::Xor { ra, rb, .. }
            | Insn::Andn { ra, rb, .. }
            | Insn::Load { ra, rb, .. } => vec![ra, rb],
            Insn::Addi { ra, .. }
            | Insn::Rsubi { ra, .. }
            | Insn::Muli { ra, .. }
            | Insn::Bsi { ra, .. }
            | Insn::Ori { ra, .. }
            | Insn::Andi { ra, .. }
            | Insn::Xori { ra, .. }
            | Insn::Andni { ra, .. }
            | Insn::Sra { ra, .. }
            | Insn::Src { ra, .. }
            | Insn::Srl { ra, .. }
            | Insn::Sext8 { ra, .. }
            | Insn::Sext16 { ra, .. }
            | Insn::Loadi { ra, .. }
            | Insn::Rtsd { ra, .. } => vec![ra],
            Insn::Store { rd, ra, rb, .. } => vec![rd, ra, rb],
            Insn::Storei { rd, ra, .. } => vec![rd, ra],
            Insn::Br { rb, .. } => vec![rb],
            Insn::Bc { ra, rb, .. } => vec![ra, rb],
            Insn::Bci { ra, .. } => vec![ra],
            Insn::Bri { .. } | Insn::Imm { .. } => vec![],
        }
    }
}

fn carry_suffix(keep_carry: bool, use_carry: bool) -> &'static str {
    match (keep_carry, use_carry) {
        (false, false) => "",
        (false, true) => "c",
        (true, false) => "k",
        (true, true) => "kc",
    }
}

fn size_letter(size: MemSize) -> &'static str {
    match size {
        MemSize::Byte => "b",
        MemSize::Half => "h",
        MemSize::Word => "w",
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Insn::Add { rd, ra, rb, keep_carry, use_carry } => {
                write!(f, "add{} {rd}, {ra}, {rb}", carry_suffix(keep_carry, use_carry))
            }
            Insn::Rsub { rd, ra, rb, keep_carry, use_carry } => {
                write!(f, "rsub{} {rd}, {ra}, {rb}", carry_suffix(keep_carry, use_carry))
            }
            Insn::Addi { rd, ra, imm, keep_carry, use_carry } => {
                write!(f, "addi{} {rd}, {ra}, {imm}", carry_suffix(keep_carry, use_carry))
            }
            Insn::Rsubi { rd, ra, imm, keep_carry, use_carry } => {
                write!(f, "rsubi{} {rd}, {ra}, {imm}", carry_suffix(keep_carry, use_carry))
            }
            Insn::Cmp { rd, ra, rb, unsigned } => {
                write!(f, "cmp{} {rd}, {ra}, {rb}", if unsigned { "u" } else { "" })
            }
            Insn::Mul { rd, ra, rb } => write!(f, "mul {rd}, {ra}, {rb}"),
            Insn::Muli { rd, ra, imm } => write!(f, "muli {rd}, {ra}, {imm}"),
            Insn::Idiv { rd, ra, rb, unsigned } => {
                write!(f, "idiv{} {rd}, {ra}, {rb}", if unsigned { "u" } else { "" })
            }
            Insn::Bs { rd, ra, rb, kind } => {
                write!(f, "bs{} {rd}, {ra}, {rb}", kind.mnemonic_tail())
            }
            Insn::Bsi { rd, ra, amount, kind } => {
                write!(f, "bs{}i {rd}, {ra}, {amount}", kind.mnemonic_tail())
            }
            Insn::Or { rd, ra, rb } => write!(f, "or {rd}, {ra}, {rb}"),
            Insn::And { rd, ra, rb } => write!(f, "and {rd}, {ra}, {rb}"),
            Insn::Xor { rd, ra, rb } => write!(f, "xor {rd}, {ra}, {rb}"),
            Insn::Andn { rd, ra, rb } => write!(f, "andn {rd}, {ra}, {rb}"),
            Insn::Ori { rd, ra, imm } => write!(f, "ori {rd}, {ra}, {imm}"),
            Insn::Andi { rd, ra, imm } => write!(f, "andi {rd}, {ra}, {imm}"),
            Insn::Xori { rd, ra, imm } => write!(f, "xori {rd}, {ra}, {imm}"),
            Insn::Andni { rd, ra, imm } => write!(f, "andni {rd}, {ra}, {imm}"),
            Insn::Sra { rd, ra } => write!(f, "sra {rd}, {ra}"),
            Insn::Src { rd, ra } => write!(f, "src {rd}, {ra}"),
            Insn::Srl { rd, ra } => write!(f, "srl {rd}, {ra}"),
            Insn::Sext8 { rd, ra } => write!(f, "sext8 {rd}, {ra}"),
            Insn::Sext16 { rd, ra } => write!(f, "sext16 {rd}, {ra}"),
            Insn::Br { rd, rb, link, absolute, delay } => {
                let a = if absolute { "a" } else { "" };
                let l = if link { "l" } else { "" };
                let d = if delay { "d" } else { "" };
                if link {
                    write!(f, "br{a}{l}{d} {rd}, {rb}")
                } else {
                    write!(f, "br{a}{d} {rb}")
                }
            }
            Insn::Bri { rd, imm, link, absolute, delay } => {
                let a = if absolute { "a" } else { "" };
                let l = if link { "l" } else { "" };
                let d = if delay { "d" } else { "" };
                if link {
                    write!(f, "br{a}{l}{d}i {rd}, {imm}")
                } else {
                    write!(f, "br{a}{d}i {imm}")
                }
            }
            Insn::Bc { cond, ra, rb, delay } => {
                write!(f, "b{cond}{} {ra}, {rb}", if delay { "d" } else { "" })
            }
            Insn::Bci { cond, ra, imm, delay } => {
                write!(f, "b{cond}{}i {ra}, {imm}", if delay { "d" } else { "" })
            }
            Insn::Rtsd { ra, imm } => write!(f, "rtsd {ra}, {imm}"),
            Insn::Load { size, rd, ra, rb } => {
                write!(f, "l{}u {rd}, {ra}, {rb}", size_letter(size))
            }
            Insn::Loadi { size, rd, ra, imm } => {
                write!(f, "l{}ui {rd}, {ra}, {imm}", size_letter(size))
            }
            Insn::Store { size, rd, ra, rb } => {
                write!(f, "s{} {rd}, {ra}, {rb}", size_letter(size))
            }
            Insn::Storei { size, rd, ra, imm } => {
                write!(f, "s{}i {rd}, {ra}, {imm}", size_letter(size))
            }
            Insn::Imm { imm } => write!(f, "imm {imm}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_eval_matches_sign_tests() {
        assert!(Cond::Eq.eval(0));
        assert!(!Cond::Eq.eval(5));
        assert!(Cond::Ne.eval(5));
        assert!(Cond::Lt.eval(0x8000_0000));
        assert!(!Cond::Lt.eval(1));
        assert!(Cond::Le.eval(0));
        assert!(Cond::Gt.eval(7));
        assert!(!Cond::Gt.eval(0));
        assert!(Cond::Ge.eval(0));
        assert!(!Cond::Ge.eval(u32::MAX));
    }

    #[test]
    fn cond_codes_round_trip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(7), None);
    }

    #[test]
    fn shift_kind_apply() {
        assert_eq!(ShiftKind::LogicalLeft.apply(1, 4), 16);
        assert_eq!(ShiftKind::LogicalRight.apply(0x8000_0000, 31), 1);
        assert_eq!(ShiftKind::ArithmeticRight.apply(0x8000_0000, 31), u32::MAX);
    }

    #[test]
    fn dest_and_sources() {
        let i = Insn::addk(Reg::R3, Reg::R4, Reg::R5);
        assert_eq!(i.dest(), Some(Reg::R3));
        assert_eq!(i.sources(), vec![Reg::R4, Reg::R5]);

        let s = Insn::swi(Reg::R6, Reg::R7, 4);
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), vec![Reg::R6, Reg::R7]);

        let b = Insn::Bri { rd: Reg::R15, imm: 8, link: true, absolute: false, delay: true };
        assert_eq!(b.dest(), Some(Reg::R15));
    }

    #[test]
    fn control_flow_and_delay_slots() {
        assert!(Insn::ret().is_control_flow());
        assert!(Insn::ret().has_delay_slot());
        assert!(!Insn::nop().is_control_flow());
        let b = Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -8, delay: false };
        assert!(b.is_control_flow());
        assert!(!b.has_delay_slot());
    }

    #[test]
    fn display_mnemonics() {
        assert_eq!(Insn::addk(Reg::R3, Reg::R4, Reg::R5).to_string(), "addk r3, r4, r5");
        assert_eq!(Insn::bslli(Reg::R3, Reg::R4, 7).to_string(), "bslli r3, r4, 7");
        assert_eq!(Insn::nop().to_string(), "or r0, r0, r0");
        assert_eq!(Insn::ret().to_string(), "rtsd r15, 8");
        let b = Insn::Bci { cond: Cond::Ne, ra: Reg::R3, imm: -8, delay: false };
        assert_eq!(b.to_string(), "bnei r3, -8");
    }
}
