//! A two-pass assembler with labels and pseudo-ops.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

use crate::insn::{Cond, Insn};
use crate::{Program, Reg, INSN_BYTES};

/// Error produced while assembling a [`Program`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A label or `equ` name was defined twice.
    DuplicateSymbol(String),
    /// A branch or `la` referenced an undefined symbol.
    UndefinedSymbol(String),
    /// A PC-relative branch target does not fit in the 16-bit offset.
    BranchOutOfRange {
        /// The referenced label.
        label: String,
        /// The required byte offset.
        offset: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            AsmError::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range (offset {offset})")
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Clone, Debug)]
enum Item {
    /// A fully-resolved instruction.
    Fixed(Insn),
    /// PC-relative unconditional branch to a label (`bri`-family).
    BranchTo { label: String, link: Option<Reg>, delay: bool },
    /// PC-relative conditional branch to a label (`bci`-family).
    CondBranchTo { cond: Cond, ra: Reg, label: String, delay: bool },
    /// Load a 32-bit symbol address: expands to `imm` + `addik` (2 words).
    LoadAddr { rd: Reg, label: String },
    /// A raw data word embedded in the instruction stream.
    Raw(u32),
}

impl Item {
    fn words(&self) -> u32 {
        match self {
            Item::LoadAddr { .. } => 2,
            _ => 1,
        }
    }
}

/// A two-pass assembler producing a [`Program`].
///
/// Instructions are pushed in order; labels may be referenced before they
/// are defined. Pseudo-ops:
///
/// * [`li`](Assembler::li) — load a 32-bit constant (1 or 2 words),
/// * [`la`](Assembler::la) — load a symbol address (always 2 words),
/// * [`call`](Assembler::call) — `brlid r15, label` plus delay-slot `nop`,
/// * [`ret`](Assembler::ret) — `rtsd r15, 8` plus delay-slot `nop`,
/// * [`equ`](Assembler::equ) — define a named constant (e.g. a data
///   address) that participates in the symbol table.
///
/// # Example
///
/// ```
/// use mb_isa::{Assembler, Cond, Insn, Reg};
///
/// let mut a = Assembler::new(0);
/// a.equ("buf", 0x200).unwrap();
/// a.li(Reg::R5, 0x12345678);
/// a.la(Reg::R6, "buf");
/// a.label("spin");
/// a.push(Insn::addik(Reg::R5, Reg::R5, -1));
/// a.bnei(Reg::R5, "spin");
/// let p = a.finish().unwrap();
/// assert_eq!(p.symbol("spin"), Some(4 * 4)); // li=2 words, la=2 words
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    base: u32,
    items: Vec<Item>,
    /// label → index into `items` of the next instruction.
    labels: Vec<(String, usize)>,
    equs: HashMap<String, u32>,
}

impl Assembler {
    /// Creates an assembler whose first instruction lives at `base`.
    #[must_use]
    pub fn new(base: u32) -> Self {
        Assembler { base, ..Assembler::default() }
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.labels.push((name.into(), self.items.len()));
        self
    }

    /// Defines a named constant (typically a data-memory address).
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::DuplicateSymbol`] if the name already exists.
    pub fn equ(&mut self, name: impl Into<String>, value: u32) -> Result<&mut Self, AsmError> {
        let name = name.into();
        if self.equs.insert(name.clone(), value).is_some() {
            return Err(AsmError::DuplicateSymbol(name));
        }
        Ok(self)
    }

    /// Appends a concrete instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.items.push(Item::Fixed(insn));
        self
    }

    /// Appends several concrete instructions.
    pub fn extend(&mut self, insns: impl IntoIterator<Item = Insn>) -> &mut Self {
        for i in insns {
            self.push(i);
        }
        self
    }

    /// Appends a raw data word (e.g. a jump table entry).
    pub fn raw(&mut self, word: u32) -> &mut Self {
        self.items.push(Item::Raw(word));
        self
    }

    /// Appends a `nop` (`or r0, r0, r0`).
    pub fn nop(&mut self) -> &mut Self {
        self.push(Insn::nop())
    }

    /// `bri label` — PC-relative unconditional branch.
    pub fn bri(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::BranchTo { label: label.into(), link: None, delay: false });
        self
    }

    /// `brid label` — unconditional branch with delay slot.
    pub fn brid(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::BranchTo { label: label.into(), link: None, delay: true });
        self
    }

    /// `brlid rd, label` — branch and link with delay slot.
    pub fn brlid(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::BranchTo { label: label.into(), link: Some(rd), delay: true });
        self
    }

    /// Subroutine call: `brlid r15, label` followed by a delay-slot `nop`.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.brlid(Reg::R15, label);
        self.nop()
    }

    /// Subroutine return: `rtsd r15, 8` followed by a delay-slot `nop`.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Insn::ret());
        self.nop()
    }

    /// Conditional branch `b<cond>i ra, label`.
    pub fn bci(&mut self, cond: Cond, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::CondBranchTo { cond, ra, label: label.into(), delay: false });
        self
    }

    /// Conditional branch with delay slot, `b<cond>id ra, label`.
    pub fn bcid(&mut self, cond: Cond, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::CondBranchTo { cond, ra, label: label.into(), delay: true });
        self
    }

    /// `beqi ra, label`.
    pub fn beqi(&mut self, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.bci(Cond::Eq, ra, label)
    }

    /// `bnei ra, label`.
    pub fn bnei(&mut self, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.bci(Cond::Ne, ra, label)
    }

    /// `blti ra, label`.
    pub fn blti(&mut self, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.bci(Cond::Lt, ra, label)
    }

    /// `blei ra, label`.
    pub fn blei(&mut self, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.bci(Cond::Le, ra, label)
    }

    /// `bgti ra, label`.
    pub fn bgti(&mut self, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.bci(Cond::Gt, ra, label)
    }

    /// `bgei ra, label`.
    pub fn bgei(&mut self, ra: Reg, label: impl Into<String>) -> &mut Self {
        self.bci(Cond::Ge, ra, label)
    }

    /// Loads a 32-bit constant into `rd` (1 word if it fits in a signed
    /// 16-bit immediate, otherwise `imm` + `addik`).
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        if let Ok(small) = i16::try_from(value) {
            self.push(Insn::addik(rd, Reg::R0, small))
        } else {
            self.push(Insn::Imm { imm: (value >> 16) as i16 });
            self.push(Insn::addik(rd, Reg::R0, value as i16))
        }
    }

    /// Loads the 32-bit address of a symbol into `rd` (always 2 words so
    /// that forward references keep addresses stable).
    pub fn la(&mut self, rd: Reg, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::LoadAddr { rd, label: label.into() });
        self
    }

    /// Number of instruction words emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.iter().map(|i| i.words() as usize).sum()
    }

    /// Whether no instructions have been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The byte address of the next instruction to be emitted.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.base + self.len() as u32 * INSN_BYTES
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for duplicate/undefined symbols or branch
    /// offsets that do not fit in 16 bits.
    pub fn finish(self) -> Result<Program, AsmError> {
        // Pass 1: item index → byte address.
        let mut item_addr = Vec::with_capacity(self.items.len());
        let mut addr = self.base;
        for item in &self.items {
            item_addr.push(addr);
            addr += item.words() * INSN_BYTES;
        }
        let end_addr = addr;

        let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
        for (name, value) in &self.equs {
            symbols.insert(name.clone(), *value);
        }
        for (name, idx) in &self.labels {
            let a = if *idx == self.items.len() { end_addr } else { item_addr[*idx] };
            if symbols.insert(name.clone(), a).is_some() {
                return Err(AsmError::DuplicateSymbol(name.clone()));
            }
        }

        let lookup = |label: &str| -> Result<u32, AsmError> {
            symbols.get(label).copied().ok_or_else(|| AsmError::UndefinedSymbol(label.to_string()))
        };
        let rel_offset = |label: &str, from: u32| -> Result<i16, AsmError> {
            let target = lookup(label)?;
            let offset = i64::from(target) - i64::from(from);
            i16::try_from(offset)
                .map_err(|_| AsmError::BranchOutOfRange { label: label.to_string(), offset })
        };

        // Pass 2: emit words.
        let mut words = Vec::with_capacity(self.len());
        for (item, &at) in self.items.iter().zip(&item_addr) {
            match item {
                Item::Fixed(insn) => words.push(crate::encode(insn)),
                Item::Raw(w) => words.push(*w),
                Item::BranchTo { label, link, delay } => {
                    let imm = rel_offset(label, at)?;
                    let insn = Insn::Bri {
                        rd: link.unwrap_or(Reg::R0),
                        imm,
                        link: link.is_some(),
                        absolute: false,
                        delay: *delay,
                    };
                    words.push(crate::encode(&insn));
                }
                Item::CondBranchTo { cond, ra, label, delay } => {
                    let imm = rel_offset(label, at)?;
                    let insn = Insn::Bci { cond: *cond, ra: *ra, imm, delay: *delay };
                    words.push(crate::encode(&insn));
                }
                Item::LoadAddr { rd, label } => {
                    let value = lookup(label)?;
                    words.push(crate::encode(&Insn::Imm { imm: (value >> 16) as i16 }));
                    words.push(crate::encode(&Insn::addik(*rd, Reg::R0, value as i16)));
                }
            }
        }

        Ok(Program { base: self.base, words, symbols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new(0x40);
        a.label("top");
        a.push(Insn::addik(Reg::R3, Reg::R3, 1));
        a.bnei(Reg::R3, "bottom"); // forward: +8 from 0x44
        a.bri("top"); // backward: -8 from 0x48
        a.label("bottom");
        a.nop();
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("top"), Some(0x40));
        assert_eq!(p.symbol("bottom"), Some(0x4C));
        match decode(p.words[1]).unwrap() {
            Insn::Bci { imm, cond: Cond::Ne, .. } => assert_eq!(imm, 8),
            other => panic!("unexpected {other:?}"),
        }
        match decode(p.words[2]).unwrap() {
            Insn::Bri { imm, .. } => assert_eq!(imm, -8),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn li_picks_short_or_long_form() {
        let mut a = Assembler::new(0);
        a.li(Reg::R5, 100); // 1 word
        a.li(Reg::R6, 0x0012_3456); // 2 words
        let p = a.finish().unwrap();
        assert_eq!(p.words.len(), 3);
        assert_eq!(decode(p.words[0]).unwrap(), Insn::addik(Reg::R5, Reg::R0, 100));
        assert_eq!(decode(p.words[1]).unwrap(), Insn::Imm { imm: 0x0012 });
        assert_eq!(decode(p.words[2]).unwrap(), Insn::addik(Reg::R6, Reg::R0, 0x3456));
    }

    #[test]
    fn la_resolves_equ_and_forward_labels() {
        let mut a = Assembler::new(0);
        a.equ("data", 0xBEEF_0000).unwrap();
        a.la(Reg::R5, "data");
        a.la(Reg::R6, "fwd");
        a.label("fwd");
        a.nop();
        let p = a.finish().unwrap();
        assert_eq!(p.words.len(), 5);
        assert_eq!(decode(p.words[0]).unwrap(), Insn::Imm { imm: 0xBEEFu16 as i16 });
        assert_eq!(p.symbol("fwd"), Some(16));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        a.nop();
        assert_eq!(a.finish().unwrap_err(), AsmError::DuplicateSymbol("x".into()));

        let mut b = Assembler::new(0);
        b.equ("y", 1).unwrap();
        assert_eq!(b.equ("y", 2).unwrap_err(), AsmError::DuplicateSymbol("y".into()));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let mut a = Assembler::new(0);
        a.bri("nowhere");
        assert_eq!(a.finish().unwrap_err(), AsmError::UndefinedSymbol("nowhere".into()));
    }

    #[test]
    fn label_at_end_points_past_last_word() {
        let mut a = Assembler::new(0);
        a.nop();
        a.label("end");
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("end"), Some(4));
    }

    #[test]
    fn call_and_ret_shapes() {
        let mut a = Assembler::new(0);
        a.call("f");
        a.label("f");
        a.ret();
        let p = a.finish().unwrap();
        // call = brlid + nop; ret = rtsd + nop.
        assert_eq!(p.words.len(), 4);
        match decode(p.words[0]).unwrap() {
            Insn::Bri { rd, link: true, delay: true, imm, .. } => {
                assert_eq!(rd, Reg::R15);
                assert_eq!(imm, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(decode(p.words[2]).unwrap(), Insn::ret());
    }

    #[test]
    fn here_tracks_pseudo_op_expansion() {
        let mut a = Assembler::new(0x10);
        assert_eq!(a.here(), 0x10);
        a.li(Reg::R3, 0x7FFF_0000);
        assert_eq!(a.here(), 0x18); // two words
    }
}
