//! User-configurable processor options.

use std::fmt;

use crate::{Insn, OpClass};

/// The configurable functional units of the soft processor core.
///
/// The DATE 2005 paper (Section 2) stresses that a designer can tailor the
/// MicroBlaze by including or excluding a hardware barrel shifter
/// (`bs`/`bsi`), multiplier (`mul`), and divider (`idiv`). Excluding a unit
/// saves configurable logic but forces the compiler — here, the
/// [`codegen`](crate::codegen) helpers — to emit software sequences
/// instead, slowing the benchmarks down (2.1× for `brev` without barrel
/// shifter and multiplier, 1.3× for `matmul` without multiplier).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MbFeatures {
    /// Hardware barrel shifter: enables `bsrl`, `bsra`, `bsll` and their
    /// immediate forms.
    pub barrel_shifter: bool,
    /// Hardware multiplier: enables `mul` and `muli`.
    pub multiplier: bool,
    /// Hardware divider: enables `idiv` and `idivu`.
    pub divider: bool,
}

impl MbFeatures {
    /// The configuration used in the paper's experiments: barrel shifter
    /// and multiplier included ("as the applications we considered
    /// required both operations"), divider excluded.
    #[must_use]
    pub fn paper_default() -> Self {
        MbFeatures { barrel_shifter: true, multiplier: true, divider: false }
    }

    /// A minimal core with no optional units.
    #[must_use]
    pub fn minimal() -> Self {
        MbFeatures { barrel_shifter: false, multiplier: false, divider: false }
    }

    /// A core with every optional unit.
    #[must_use]
    pub fn full() -> Self {
        MbFeatures { barrel_shifter: true, multiplier: true, divider: true }
    }

    /// Returns a copy with the barrel shifter enabled or disabled.
    #[must_use]
    pub fn with_barrel_shifter(mut self, enabled: bool) -> Self {
        self.barrel_shifter = enabled;
        self
    }

    /// Returns a copy with the multiplier enabled or disabled.
    #[must_use]
    pub fn with_multiplier(mut self, enabled: bool) -> Self {
        self.multiplier = enabled;
        self
    }

    /// Returns a copy with the divider enabled or disabled.
    #[must_use]
    pub fn with_divider(mut self, enabled: bool) -> Self {
        self.divider = enabled;
        self
    }

    /// Whether this configuration can execute the given instruction.
    #[must_use]
    pub fn supports(&self, insn: &Insn) -> bool {
        match insn.class() {
            OpClass::BarrelShift => self.barrel_shifter,
            OpClass::Mul => self.multiplier,
            OpClass::Div => self.divider,
            _ => true,
        }
    }
}

impl Default for MbFeatures {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for MbFeatures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.barrel_shifter {
            parts.push("bs");
        }
        if self.multiplier {
            parts.push("mul");
        }
        if self.divider {
            parts.push("div");
        }
        if parts.is_empty() {
            f.write_str("minimal")
        } else {
            f.write_str(&parts.join("+"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn paper_default_has_bs_and_mul() {
        let f = MbFeatures::paper_default();
        assert!(f.barrel_shifter && f.multiplier && !f.divider);
        assert_eq!(f, MbFeatures::default());
    }

    #[test]
    fn supports_tracks_units() {
        let f = MbFeatures::minimal();
        assert!(!f.supports(&Insn::mul(Reg::R3, Reg::R4, Reg::R5)));
        assert!(!f.supports(&Insn::bslli(Reg::R3, Reg::R4, 2)));
        assert!(f.supports(&Insn::addk(Reg::R3, Reg::R4, Reg::R5)));
        assert!(MbFeatures::full().supports(&Insn::mul(Reg::R3, Reg::R4, Reg::R5)));
    }

    #[test]
    fn builder_style_updates() {
        let f = MbFeatures::minimal().with_multiplier(true);
        assert!(f.multiplier && !f.barrel_shifter);
    }

    #[test]
    fn display_lists_units() {
        assert_eq!(MbFeatures::paper_default().to_string(), "bs+mul");
        assert_eq!(MbFeatures::minimal().to_string(), "minimal");
        assert_eq!(MbFeatures::full().to_string(), "bs+mul+div");
    }
}
