//! Assembled program images.

use std::collections::BTreeMap;
use std::fmt;

use crate::{decode, Insn, INSN_BYTES};

/// An assembled binary: instruction words plus a symbol table.
///
/// This is a passive data structure: the instruction BRAM contents exactly
/// as the loader would place them, with `base` giving the address of
/// `words[0]`. Symbols map label names to byte addresses and include both
/// code labels and `equ` data-address constants.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Byte address of the first instruction word.
    pub base: u32,
    /// Encoded instruction words in address order.
    pub words: Vec<u32>,
    /// Label/constant name → byte address.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from raw encoded words.
    #[must_use]
    pub fn from_words(base: u32, words: Vec<u32>) -> Self {
        Program { base, words, symbols: BTreeMap::new() }
    }

    /// The byte address one past the last instruction.
    #[must_use]
    pub fn end(&self) -> u32 {
        self.base + self.words.len() as u32 * INSN_BYTES
    }

    /// Looks up a symbol's byte address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// The encoded word at a byte address, if it lies inside the program.
    #[must_use]
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if addr < self.base || addr >= self.end() || !addr.is_multiple_of(INSN_BYTES) {
            return None;
        }
        Some(self.words[((addr - self.base) / INSN_BYTES) as usize])
    }

    /// Decodes the instruction at a byte address.
    #[must_use]
    pub fn insn_at(&self, addr: u32) -> Option<Insn> {
        self.word_at(addr).and_then(|w| decode(w).ok())
    }

    /// Iterates over `(byte address, decoded instruction)` pairs, skipping
    /// words that fail to decode (e.g. data embedded in the text section).
    pub fn iter_insns(&self) -> impl Iterator<Item = (u32, Insn)> + '_ {
        self.words.iter().enumerate().filter_map(move |(i, &w)| {
            decode(w).ok().map(|insn| (self.base + i as u32 * INSN_BYTES, insn))
        })
    }

    /// A disassembly listing (one instruction per line, with addresses and
    /// label annotations) for debugging.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.entry(addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, &w) in self.words.iter().enumerate() {
            let addr = self.base + i as u32 * INSN_BYTES;
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    out.push_str(n);
                    out.push_str(":\n");
                }
            }
            match decode(w) {
                Ok(insn) => out.push_str(&format!("  {addr:#06x}: {insn}\n")),
                Err(_) => out.push_str(&format!("  {addr:#06x}: .word {w:#010x}\n")),
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "program: {} words at {:#x}, {} symbols",
            self.words.len(),
            self.base,
            self.symbols.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, Insn, Reg};

    fn sample() -> Program {
        let mut p = Program::from_words(
            0x100,
            vec![
                encode(&Insn::addik(Reg::R3, Reg::R0, 5)),
                encode(&Insn::addik(Reg::R3, Reg::R3, -1)),
                encode(&Insn::Bci { cond: crate::Cond::Ne, ra: Reg::R3, imm: -4, delay: false }),
            ],
        );
        p.symbols.insert("start".into(), 0x100);
        p.symbols.insert("loop".into(), 0x104);
        p
    }

    #[test]
    fn addressing() {
        let p = sample();
        assert_eq!(p.end(), 0x10C);
        assert_eq!(p.symbol("loop"), Some(0x104));
        assert_eq!(p.symbol("missing"), None);
        assert!(p.word_at(0x0FF).is_none());
        assert!(p.word_at(0x10C).is_none());
        assert!(p.word_at(0x102).is_none()); // unaligned
        assert_eq!(p.insn_at(0x100), Some(Insn::addik(Reg::R3, Reg::R0, 5)));
    }

    #[test]
    fn iteration_and_disassembly() {
        let p = sample();
        let insns: Vec<_> = p.iter_insns().collect();
        assert_eq!(insns.len(), 3);
        assert_eq!(insns[0].0, 0x100);
        let dis = p.disassemble();
        assert!(dis.contains("loop:"));
        assert!(dis.contains("bnei r3, -4"));
    }
}
