//! End-to-end backend check: every workload kernel must place, route,
//! and configure; the bitstream-level fabric simulation must match the
//! LUT netlist bit for bit on random vectors.

use mb_isa::MbFeatures;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warp_cdfg::decompile_loop;
use warp_fabric::{compile, FabricConfig, FabricSim};
use warp_synth::bits::InputWord;
use warp_synth::map::map_netlist;
use warp_synth::synthesize;

#[test]
fn compiled_bitstreams_match_netlists_for_all_workloads() {
    let mut rng = StdRng::seed_from_u64(0xFAB_2005);
    for workload in workloads::all() {
        let built = workload.build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let report = synthesize(&kernel);
        let mapped = map_netlist(&report.netlist);
        let base = FabricConfig::sized_for(mapped.lut_count(), mapped.ffs().len());
        let compiled = compile(&mapped, &base)
            .unwrap_or_else(|e| panic!("{}: fabric compile failed: {e}", workload.name));
        let sim = FabricSim::new(&compiled.bitstream);

        println!(
            "{:>8}: {}x{} fabric, {} tracks, {} LUTs, routed in {} iters, crit {:.1} ns ({:.0} MHz)",
            workload.name,
            compiled.config.rows,
            compiled.config.cols,
            compiled.route_stats.tracks,
            mapped.lut_count(),
            compiled.route_stats.iterations,
            compiled.timing.critical_path_ns,
            compiled.timing.fmax_hz / 1e6,
        );

        for _trial in 0..10 {
            let mut loads = std::collections::HashMap::new();
            for (si, s) in kernel.streams.iter().enumerate() {
                for &off in &s.load_offsets {
                    loads.insert((si, off), rng.gen::<u32>());
                }
            }
            let inv: u32 = rng.gen();
            let acc0: u32 = rng.gen();
            let mut ff_state = Vec::new();
            for f in mapped.ffs() {
                ff_state.push(acc0 >> f.bit & 1 == 1);
            }
            let input_fn = |w: InputWord| -> u32 {
                match w {
                    InputWord::Load { stream, offset } => loads[&(stream, offset)],
                    InputWord::Invariant(_) => inv,
                    InputWord::MacOut(_) => unreachable!(),
                }
            };
            let lut_res = mapped.eval(input_fn, &ff_state);
            let fab_res = sim.eval(input_fn, &ff_state);

            // Outputs.
            for (o, (store, fab_v)) in mapped.outputs().iter().zip(&fab_res.outputs) {
                assert_eq!(o.store as u32, *store);
                assert_eq!(
                    lut_res.word(&o.bits),
                    *fab_v,
                    "{}: bitstream sim diverges on store {store}",
                    workload.name
                );
            }
            // FF next states.
            for (k, f) in mapped.ffs().iter().enumerate() {
                assert_eq!(
                    lut_res.value(f.d),
                    fab_res.ff_next[k],
                    "{}: FF {k} next-state mismatch",
                    workload.name
                );
            }
        }
    }
}

#[test]
fn bitstream_is_compact_and_self_describing() {
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
    let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
    let mapped = map_netlist(&synthesize(&kernel).netlist);
    let base = FabricConfig::sized_for(mapped.lut_count(), mapped.ffs().len());
    let compiled = compile(&mapped, &base).unwrap();
    let decoded = compiled.bitstream.decode();
    assert_eq!(decoded.rows, compiled.config.rows);
    assert_eq!(decoded.cols, compiled.config.cols);
    assert_eq!(decoded.slots.len(), compiled.config.lut_slots());
    assert!(compiled.bitstream.len_bytes() > 0);
    // Decode must be stable (decode of re-decode identical).
    assert_eq!(decoded, compiled.bitstream.decode());
}
