//! Levelized placement with greedy swap refinement.
//!
//! The on-chip placer is deliberately lean: LUTs are striped across the
//! columns by logic level (so data flows left to right), rows follow the
//! fan-in centroid, and a bounded greedy swap pass shortens the longest
//! nets. Flip-flops co-locate with the slot of the LUT driving their D
//! input where possible.
//!
//! The placer is a pure function of the netlist's *placement view* —
//! LUT-to-LUT connectivity, flip-flop D drivers, and grid geometry (the
//! swap pass is seeded deterministically) — so a [`PlaceCache`] can
//! memoize whole placements by content hash and restore them
//! bit-identically when a structurally identical netlist re-warps.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use warp_cdfg::fingerprint::Fnv1a;
use warp_synth::map::LutNode;
use warp_synth::LutNetlist;

use crate::arch::{FabricConfig, SlotId};
use crate::CompileError;

/// Where every netlist node landed.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    /// LUT node index → slot (only `LutNode::Lut` entries are placed).
    pub lut_slot: HashMap<u32, SlotId>,
    /// FF index → slot.
    pub ff_slot: HashMap<usize, SlotId>,
}

impl Placement {
    /// The slot of a LUT node.
    ///
    /// # Panics
    ///
    /// Panics if the node was not placed (not a LUT).
    #[must_use]
    pub fn slot_of_lut(&self, node: u32) -> SlotId {
        self.lut_slot[&node]
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.lut_slot.len() + self.ff_slot.len()
    }
}

/// Half-perimeter wirelength of all LUT-to-LUT nets under a placement
/// (the placer's cost function).
fn wirelength(
    netlist: &LutNetlist,
    config: &FabricConfig,
    pos: &HashMap<u32, (usize, usize)>,
) -> u64 {
    let mut total = 0u64;
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let LutNode::Lut { inputs, .. } = node {
            let Some(&(r0, c0)) = pos.get(&(i as u32)) else { continue };
            for &inp in inputs {
                if let Some(&(r1, c1)) = pos.get(&inp) {
                    total += r0.abs_diff(r1) as u64 + c0.abs_diff(c1) as u64;
                }
            }
        }
    }
    let _ = config;
    total
}

/// Everything the placer reads, canonicalized: LUT nodes renamed to
/// their rank in node order, inputs restricted to LUT-to-LUT edges
/// (non-LUT fan-ins are level-0 and invisible to the cost function),
/// flip-flops by their D-driver rank, plus the grid geometry.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct PlaceView {
    rows: usize,
    cols: usize,
    luts: Vec<Vec<u32>>,
    ffs: Vec<Option<u32>>,
}

fn placement_view(netlist: &LutNetlist, config: &FabricConfig) -> PlaceView {
    let mut rank: HashMap<u32, u32> = HashMap::new();
    for (i, node) in netlist.nodes().iter().enumerate() {
        if matches!(node, LutNode::Lut { .. }) {
            let r = rank.len() as u32;
            rank.insert(i as u32, r);
        }
    }
    let luts = netlist
        .nodes()
        .iter()
        .filter_map(|node| match node {
            LutNode::Lut { inputs, .. } => {
                Some(inputs.iter().filter_map(|r| rank.get(r).copied()).collect())
            }
            _ => None,
        })
        .collect();
    let ffs = netlist.ffs().iter().map(|ff| rank.get(&ff.d).copied()).collect();
    PlaceView { rows: config.rows, cols: config.cols, luts, ffs }
}

/// A memoized whole placement: slots by LUT rank and FF index.
#[derive(Clone, Debug)]
struct CachedPlacement {
    view: PlaceView,
    lut_slots: Vec<SlotId>,
    ff_slots: Vec<SlotId>,
}

/// Memoized placements, shared across compiles.
///
/// Purely an accelerator: [`place_cached`] restores the exact placement
/// [`place`] would compute (the placer is deterministic), so only the
/// reported [`PlaceWork`] changes. Entries are verified structurally on
/// hit; a hash collision degrades to a miss.
#[derive(Debug, Default)]
pub struct PlaceCache {
    slots: Mutex<HashMap<u64, CachedPlacement>>,
}

impl PlaceCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized placements.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("place cache lock").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: u64, view: &PlaceView) -> Option<CachedPlacement> {
        let slots = self.slots.lock().expect("place cache lock");
        slots.get(&key).filter(|c| &c.view == view).cloned()
    }

    fn insert(&self, key: u64, cached: CachedPlacement) {
        self.slots.lock().expect("place cache lock").entry(key).or_insert(cached);
    }
}

/// Placement work actually performed (vs. restored from a
/// [`PlaceCache`]), for the on-chip CAD cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct PlaceWork {
    /// Greedy swap attempts the placer ran.
    pub attempts: u64,
    /// Whether the whole placement was restored from the cache.
    pub restored: bool,
}

/// Places a mapped netlist, restoring the whole placement from `cache`
/// when a structurally identical netlist was placed before (and
/// memoizing fresh placements).
///
/// Bit-identical to [`place`] either way — only [`PlaceWork`] changes.
///
/// # Errors
///
/// Returns [`CompileError::FabricFull`] when the netlist needs more
/// slots than the fabric provides.
pub fn place_cached(
    netlist: &LutNetlist,
    config: &FabricConfig,
    cache: Option<&PlaceCache>,
) -> Result<(Placement, PlaceWork), CompileError> {
    let lut_ids: Vec<u32> = netlist
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n, LutNode::Lut { .. }))
        .map(|(i, _)| i as u32)
        .collect();
    let needed = lut_ids.len().max(netlist.ffs().len());
    if needed > config.lut_slots() {
        return Err(CompileError::FabricFull { needed, available: config.lut_slots() });
    }

    let view = placement_view(netlist, config);
    let key = {
        let mut h = Fnv1a::new();
        view.hash(&mut h);
        h.finish()
    };
    if let Some(hit) = cache.and_then(|c| c.lookup(key, &view)) {
        let mut placement = Placement::default();
        for (rank, &id) in lut_ids.iter().enumerate() {
            placement.lut_slot.insert(id, hit.lut_slots[rank]);
        }
        for (k, &s) in hit.ff_slots.iter().enumerate() {
            placement.ff_slot.insert(k, s);
        }
        return Ok((placement, PlaceWork { attempts: 0, restored: true }));
    }

    let placement = place(netlist, config)?;
    let attempts = if lut_ids.len() >= 2 { (lut_ids.len() * 24).min(120_000) as u64 } else { 0 };
    if let Some(c) = cache {
        let lut_slots = lut_ids.iter().map(|id| placement.lut_slot[id]).collect();
        let ff_slots = (0..netlist.ffs().len()).map(|k| placement.ff_slot[&k]).collect();
        c.insert(key, CachedPlacement { view, lut_slots, ff_slots });
    }
    Ok((placement, PlaceWork { attempts, restored: false }))
}

/// Places a mapped netlist.
///
/// # Errors
///
/// Returns [`CompileError::FabricFull`] when the netlist needs more
/// slots than the fabric provides.
pub fn place(netlist: &LutNetlist, config: &FabricConfig) -> Result<Placement, CompileError> {
    let lut_ids: Vec<u32> = netlist
        .nodes()
        .iter()
        .enumerate()
        .filter(|(_, n)| matches!(n, LutNode::Lut { .. }))
        .map(|(i, _)| i as u32)
        .collect();
    // Each slot provides one LUT and one independent flip-flop.
    let needed = lut_ids.len().max(netlist.ffs().len());
    if needed > config.lut_slots() {
        return Err(CompileError::FabricFull { needed, available: config.lut_slots() });
    }

    // Logic levels (inputs/FFs are level 0).
    let mut level: Vec<usize> = vec![0; netlist.nodes().len()];
    let mut max_level = 1usize;
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let LutNode::Lut { inputs, .. } = node {
            level[i] = inputs.iter().map(|&r| level[r as usize]).max().unwrap_or(0) + 1;
            max_level = max_level.max(level[i]);
        }
    }

    // Initial striping: column band by level, row near the fan-in
    // centroid (keeps structured datapaths' bit slices together).
    let mut clb_of: HashMap<u32, (usize, usize)> = HashMap::new();
    let mut occupancy: HashMap<(usize, usize), usize> = HashMap::new();
    let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); max_level + 1];
    for &id in &lut_ids {
        by_level[level[id as usize]].push(id);
    }
    let mut cursor = 0usize; // linear CLB cursor as fallback
    let clbs = config.rows * config.cols;
    for (lvl, ids) in by_level.iter().enumerate() {
        for (ord, &id) in ids.iter().enumerate() {
            // Preferred column for this level.
            let pref_col = (lvl * config.cols) / (max_level + 1);
            // Preferred row: centroid of already-placed fan-ins, or an
            // even spread within the level band.
            let fanin_rows: Vec<usize> = match &netlist.nodes()[id as usize] {
                LutNode::Lut { inputs, .. } => {
                    inputs.iter().filter_map(|r| clb_of.get(r).map(|&(row, _)| row)).collect()
                }
                _ => Vec::new(),
            };
            let pref_row = if fanin_rows.is_empty() {
                (ord * config.rows) / ids.len().max(1)
            } else {
                fanin_rows.iter().sum::<usize>() / fanin_rows.len()
            };
            // Scan outward from the preferred CLB.
            let mut placed = false;
            'scan: for d in 0..(config.rows + config.cols) {
                for dr in 0..=d {
                    let dc = d - dr;
                    for (row, col) in [
                        (pref_row.saturating_sub(dr), pref_col.saturating_sub(dc)),
                        (pref_row.saturating_sub(dr), (pref_col + dc).min(config.cols - 1)),
                        ((pref_row + dr).min(config.rows - 1), pref_col.saturating_sub(dc)),
                        (
                            (pref_row + dr).min(config.rows - 1),
                            (pref_col + dc).min(config.cols - 1),
                        ),
                    ] {
                        let e = occupancy.entry((row, col)).or_insert(0);
                        if *e < 2 {
                            *e += 1;
                            clb_of.insert(id, (row, col));
                            placed = true;
                            break 'scan;
                        }
                    }
                }
            }
            if !placed {
                // Fallback linear scan (should not happen given the
                // capacity check above).
                while occupancy
                    .get(&(cursor / config.cols, cursor % config.cols))
                    .copied()
                    .unwrap_or(0)
                    >= 2
                {
                    cursor = (cursor + 1) % clbs;
                }
                let key = (cursor / config.cols, cursor % config.cols);
                *occupancy.entry(key).or_insert(0) += 1;
                clb_of.insert(id, key);
            }
        }
    }

    // Greedy refinement: random pairwise swaps that reduce wirelength,
    // evaluated incrementally over the two touched nodes' edges.
    let mut adjacency: HashMap<u32, Vec<u32>> = HashMap::new();
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let LutNode::Lut { inputs, .. } = node {
            for &inp in inputs {
                if clb_of.contains_key(&inp) && clb_of.contains_key(&(i as u32)) {
                    adjacency.entry(i as u32).or_default().push(inp);
                    adjacency.entry(inp).or_default().push(i as u32);
                }
            }
        }
    }
    let local_cost = |id: u32, clb_of: &HashMap<u32, (usize, usize)>| -> u64 {
        let Some(&(r0, c0)) = clb_of.get(&id) else { return 0 };
        adjacency.get(&id).map_or(0, |ns| {
            ns.iter()
                .filter_map(|n| clb_of.get(n))
                .map(|&(r1, c1)| r0.abs_diff(r1) as u64 + c0.abs_diff(c1) as u64)
                .sum()
        })
    };
    let mut rng_state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };
    if lut_ids.len() >= 2 {
        let attempts = (lut_ids.len() * 24).min(120_000);
        for _ in 0..attempts {
            let a = lut_ids[(next() as usize) % lut_ids.len()];
            let b = lut_ids[(next() as usize) % lut_ids.len()];
            if a == b {
                continue;
            }
            let pa = clb_of[&a];
            let pb = clb_of[&b];
            let before = local_cost(a, &clb_of) + local_cost(b, &clb_of);
            clb_of.insert(a, pb);
            clb_of.insert(b, pa);
            let after = local_cost(a, &clb_of) + local_cost(b, &clb_of);
            if after > before {
                clb_of.insert(a, pa);
                clb_of.insert(b, pb);
            }
        }
    }
    debug_assert!(wirelength(netlist, config, &clb_of) < u64::MAX);

    // Assign slot indices within CLBs.
    let mut slot_use: HashMap<(usize, usize), usize> = HashMap::new();
    let mut placement = Placement::default();
    for &id in &lut_ids {
        let (r, c) = clb_of[&id];
        let s = slot_use.entry((r, c)).or_insert(0);
        placement.lut_slot.insert(id, SlotId::new(config, r, c, *s));
        *s += 1;
    }

    // FFs use the slots' independent flip-flop resources. Prefer the
    // exact slot of the LUT driving D — the D input then feeds the FF
    // internally with no routed net.
    let mut ff_used: std::collections::HashSet<SlotId> = std::collections::HashSet::new();
    for (k, ff) in netlist.ffs().iter().enumerate() {
        let mut assigned = None;
        if let Some(&driver_slot) = placement.lut_slot.get(&ff.d) {
            if ff_used.insert(driver_slot) {
                assigned = Some(driver_slot);
            }
        }
        if assigned.is_none() {
            'outer: for r in 0..config.rows {
                for c in 0..config.cols {
                    for s in 0..2 {
                        let id = SlotId::new(config, r, c, s);
                        if ff_used.insert(id) {
                            assigned = Some(id);
                            break 'outer;
                        }
                    }
                }
            }
        }
        placement.ff_slot.insert(k, assigned.expect("capacity checked"));
    }

    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_synth::bits::{GateNetlist, InputWord};
    use warp_synth::map::map_netlist;

    fn small_netlist() -> LutNetlist {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = n.add_word(a, b, false);
        n.output(0, s);
        map_netlist(&n)
    }

    #[test]
    fn placement_assigns_unique_slots() {
        let nl = small_netlist();
        let cfg = FabricConfig::sized_for(nl.lut_count(), 0);
        let p = place(&nl, &cfg).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &s in p.lut_slot.values() {
            assert!(seen.insert(s), "slot {s:?} double-booked");
        }
        assert_eq!(p.lut_slot.len(), nl.lut_count());
    }

    #[test]
    fn fabric_too_small_is_reported() {
        let nl = small_netlist();
        let cfg = FabricConfig { rows: 2, cols: 2, tracks: 8, delays: Default::default() };
        match place(&nl, &cfg) {
            Err(CompileError::FabricFull { needed, available }) => {
                assert!(needed > available);
            }
            other => panic!("expected FabricFull, got {other:?}"),
        }
    }

    #[test]
    fn ffs_get_slots_too() {
        let mut n = GateNetlist::new();
        let (ff, q) = n.ff(mb_isa::Reg::R22, 0);
        let a = n.input(InputWord::Load { stream: 0, offset: 0 }, 0);
        let d = n.xor(q, a);
        n.set_ff_d(ff, d);
        let nl = map_netlist(&n);
        let cfg = FabricConfig::sized_for(nl.lut_count(), nl.ffs().len());
        let p = place(&nl, &cfg).unwrap();
        assert_eq!(p.ff_slot.len(), 1);
    }

    #[test]
    fn cached_placement_restores_bit_identically() {
        let nl = small_netlist();
        let cfg = FabricConfig::sized_for(nl.lut_count(), 0);
        let fresh = place(&nl, &cfg).unwrap();

        let cache = PlaceCache::new();
        let (first, w1) = place_cached(&nl, &cfg, Some(&cache)).unwrap();
        assert!(!w1.restored);
        assert!(w1.attempts > 0, "the adder has enough LUTs for a swap pass");
        assert_eq!(first.lut_slot, fresh.lut_slot);
        assert_eq!(first.ff_slot, fresh.ff_slot);

        let (second, w2) = place_cached(&nl, &cfg, Some(&cache)).unwrap();
        assert!(w2.restored, "an identical view must restore");
        assert_eq!(w2.attempts, 0);
        assert_eq!(second.lut_slot, fresh.lut_slot);
        assert_eq!(second.ff_slot, fresh.ff_slot);
    }

    #[test]
    fn levels_flow_left_to_right() {
        let nl = small_netlist();
        let cfg = FabricConfig { rows: 12, cols: 24, tracks: 8, delays: Default::default() };
        let p = place(&nl, &cfg).unwrap();
        // The adder's deepest LUT should not sit left of the shallowest.
        let mut level = vec![0usize; nl.nodes().len()];
        let mut max_l = 0;
        for (i, node) in nl.nodes().iter().enumerate() {
            if let LutNode::Lut { inputs, .. } = node {
                level[i] = inputs.iter().map(|&r| level[r as usize]).max().unwrap_or(0) + 1;
                max_l = max_l.max(level[i]);
            }
        }
        // On average the deepest logic should sit no further left than
        // the shallowest (data flows left to right).
        let avg_col = |want: usize| -> f64 {
            let cols: Vec<usize> = p
                .lut_slot
                .iter()
                .filter(|(id, _)| level[**id as usize] == want)
                .map(|(_, s)| s.pos(&cfg).1)
                .collect();
            cols.iter().sum::<usize>() as f64 / cols.len().max(1) as f64
        };
        assert!(
            avg_col(max_l) + 1.0 >= avg_col(1),
            "deep logic (avg col {:.1}) should not sit left of shallow logic (avg col {:.1})",
            avg_col(max_l),
            avg_col(1)
        );
    }
}
