//! The Riverside On-Chip Router: negotiated-congestion routing.
//!
//! ROCR (DAC'04, "Dynamic FPGA Routing for Just-in-Time FPGA
//! Compilation") follows the PathFinder recipe — route every net by
//! cheapest path, let nets temporarily share wires, then raise the cost
//! of congested wires and rip-up/re-route until no wire is shared — but
//! with the small, regular cost structures an on-chip tool can afford.
//! This implementation uses A*-directed searches over the wire graph
//! with integer milli-unit costs and epoch-stamped visited arrays (no
//! per-iteration clearing), which is both fast and memory-lean.
//!
//! Iteration 0 is congestion-blind: the presence multiplier starts at
//! zero, so every net's first route is a pure function of the fabric
//! geometry, its driver slot, and its ordered sink list. That purity is
//! what makes the per-net [`RouteCache`] sound — a restored first-pass
//! path is bit-identical to the one the router would have computed, and
//! the negotiation iterations that resolve any sharing proceed
//! identically whether the paths were computed or restored.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use warp_cdfg::fingerprint::Fnv1a;
use warp_synth::map::LutNode;
use warp_synth::LutNetlist;

use crate::arch::{FabricConfig, SlotId, WireId, Wires};
use crate::place::Placement;

/// Milli-unit base cost of one wire segment.
const BASE_COST: u64 = 1000;
/// Maximum rip-up/re-route iterations before widening channels.
const MAX_ITERS: usize = 24;

/// One routed sink: the pin it reaches and the wire path driving it.
#[derive(Clone, Debug)]
pub struct RoutedSink {
    /// The slot whose pin this path feeds.
    pub slot: SlotId,
    /// Which pin: `0..3` = LUT inputs, `3` = FF D.
    pub pin: u8,
    /// Wire sequence from the net's tree (or the driver) to the sink;
    /// `path[0]` is driven by the driver slot or by an earlier tree
    /// wire, each subsequent wire by its predecessor.
    pub path: Vec<WireId>,
}

/// A routed net: a driver and its sink paths.
#[derive(Clone, Debug)]
pub struct RoutedNet {
    /// Netlist node index of the driver (LUT or FF-Q node).
    pub driver_node: u32,
    /// The driver's slot.
    pub driver_slot: SlotId,
    /// Routed sinks.
    pub sinks: Vec<RoutedSink>,
}

/// Router result statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct RouteStats {
    /// Rip-up/re-route iterations used.
    pub iterations: usize,
    /// Total wire segments in use.
    pub wirelength: u64,
    /// Channel width routed at.
    pub tracks: usize,
    /// Number of routed nets.
    pub nets: usize,
}

/// The complete routing.
#[derive(Clone, Debug)]
pub struct Routing {
    /// All routed nets.
    pub nets: Vec<RoutedNet>,
    /// Statistics.
    pub stats: RouteStats,
}

/// Routing failure: congestion never resolved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// Wires still shared after the iteration limit.
    Congested {
        /// Number of overused wires.
        overused: usize,
    },
}

/// A net awaiting routing.
struct PendingNet {
    driver_node: u32,
    driver_slot: SlotId,
    sinks: Vec<(SlotId, u8)>,
}

/// The full identity of a first-pass net route: everything the
/// congestion-blind iteration-0 search depends on. The driver node
/// index is deliberately excluded — it names the net but does not
/// influence its path.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct NetKey {
    rows: usize,
    cols: usize,
    tracks: usize,
    driver_slot: SlotId,
    sinks: Vec<(SlotId, u8)>,
}

impl NetKey {
    fn of(config: &FabricConfig, net: &PendingNet) -> Self {
        NetKey {
            rows: config.rows,
            cols: config.cols,
            tracks: config.tracks,
            driver_slot: net.driver_slot,
            sinks: net.sinks.clone(),
        }
    }

    fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// A memoized iteration-0 route: the sink paths the congestion-blind
/// first pass produces for this key. The key is stored in full so a
/// hash collision verifies as a miss rather than corrupting a route.
#[derive(Clone, Debug)]
struct CachedNetRoute {
    key: NetKey,
    sinks: Vec<RoutedSink>,
}

/// Cross-compile cache of first-pass net routes.
///
/// Keys cover the fabric geometry, the driver slot, and the ordered
/// sink list, so a re-warped kernel whose placement survives intact
/// restores its wire paths instead of re-running the A* searches. The
/// restored paths are bit-identical to freshly computed ones (see the
/// module docs), so routing results never depend on cache state — only
/// the modeled routing work does.
#[derive(Debug, Default)]
pub struct RouteCache {
    nets: Mutex<HashMap<u64, CachedNetRoute>>,
}

impl RouteCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized net routes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nets.lock().expect("route cache poisoned").len()
    }

    /// True when nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: &NetKey) -> Option<Vec<RoutedSink>> {
        let nets = self.nets.lock().expect("route cache poisoned");
        let cached = nets.get(&key.fingerprint())?;
        (cached.key == *key).then(|| cached.sinks.clone())
    }

    fn insert(&self, key: NetKey, sinks: Vec<RoutedSink>) {
        let mut nets = self.nets.lock().expect("route cache poisoned");
        nets.entry(key.fingerprint()).or_insert(CachedNetRoute { key, sinks });
    }
}

/// Modeled work the router actually performed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RouteWork {
    /// Wire segments traversed by freshly computed paths, summed over
    /// every iteration. Restored first-pass routes charge nothing.
    pub routed_wires: u64,
    /// Nets whose first-pass route was restored from the cache.
    pub nets_restored: usize,
}

/// Collects the nets that must use general routing: LUT/FF-Q sources to
/// LUT-input/FF-D sinks. Input-bus and output-bus connections are
/// dedicated wiring and need no channel resources.
fn collect_nets(netlist: &LutNetlist, placement: &Placement) -> Vec<PendingNet> {
    let slot_of_driver = |node: u32| -> Option<SlotId> {
        match netlist.nodes()[node as usize] {
            LutNode::Lut { .. } => Some(placement.slot_of_lut(node)),
            LutNode::FfQ(k) => Some(placement.ff_slot[&k]),
            _ => None,
        }
    };
    let mut sinks_by_driver: HashMap<u32, Vec<(SlotId, u8)>> = HashMap::new();
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let LutNode::Lut { inputs, .. } = node {
            let slot = placement.slot_of_lut(i as u32);
            for (pin, &inp) in inputs.iter().enumerate() {
                if slot_of_driver(inp).is_some() {
                    sinks_by_driver.entry(inp).or_default().push((slot, pin as u8));
                }
            }
        }
    }
    for (k, ff) in netlist.ffs().iter().enumerate() {
        if let Some(driver_slot) = slot_of_driver(ff.d) {
            let slot = placement.ff_slot[&k];
            let internal_feed = matches!(netlist.nodes()[ff.d as usize], LutNode::Lut { .. })
                && driver_slot == slot;
            if !internal_feed {
                sinks_by_driver.entry(ff.d).or_default().push((slot, 3));
            }
        }
    }
    let mut nets: Vec<PendingNet> = sinks_by_driver
        .into_iter()
        .map(|(driver_node, sinks)| PendingNet {
            driver_node,
            driver_slot: slot_of_driver(driver_node).expect("driver placed"),
            sinks,
        })
        .collect();
    // Deterministic order, larger nets first (hardest to route).
    nets.sort_by_key(|n| (Reverse(n.sinks.len()), n.driver_node));
    nets
}

/// Routes a placed netlist.
///
/// # Errors
///
/// Returns [`RouteError::Congested`] if wires are still shared after
/// `MAX_ITERS` (24) iterations (the caller widens the channels and retries).
pub fn route(
    netlist: &LutNetlist,
    placement: &Placement,
    config: &FabricConfig,
) -> Result<Routing, RouteError> {
    route_cached(netlist, placement, config, None).map(|(routing, _)| routing)
}

/// Routes a placed netlist, restoring first-pass net routes from
/// `cache` when possible and reporting the work actually performed.
///
/// The routing result is bit-identical with or without a cache; only
/// [`RouteWork`] differs.
///
/// # Errors
///
/// Returns [`RouteError::Congested`] if wires are still shared after
/// `MAX_ITERS` (24) iterations (the caller widens the channels and retries).
pub fn route_cached(
    netlist: &LutNetlist,
    placement: &Placement,
    config: &FabricConfig,
    cache: Option<&RouteCache>,
) -> Result<(Routing, RouteWork), RouteError> {
    let wires = Wires::new(config);
    let n_wires = wires.count();
    let pending = collect_nets(netlist, placement);
    let mut work = RouteWork::default();

    let mut history: Vec<u64> = vec![0; n_wires];
    let mut occupancy: Vec<u16> = vec![0; n_wires];
    // Iteration 0 is congestion-blind (see the module docs); the
    // presence multiplier only turns on once sharing is observed.
    let mut pres_mult: u64 = 0;

    // Epoch-stamped A* state.
    let mut gscore: Vec<u64> = vec![0; n_wires];
    let mut prev: Vec<u32> = vec![u32::MAX; n_wires];
    let mut stamp: Vec<u32> = vec![0; n_wires];
    let mut goal_stamp: Vec<u32> = vec![0; n_wires];
    let mut tree_stamp: Vec<u32> = vec![0; n_wires];
    let mut epoch: u32 = 0;
    let mut goal_epoch: u32 = 0;
    let mut tree_epoch: u32 = 0;

    let mut scratch = Vec::new();
    let mut routes: Vec<Option<RoutedNet>> = (0..pending.len()).map(|_| None).collect();

    for iter in 0..MAX_ITERS {
        // Selective rip-up: after the first iteration only nets that
        // touch congested wires are re-routed (the lean variant of
        // PathFinder's negotiation — far less work per iteration).
        let to_route: Vec<usize> = if iter == 0 {
            (0..pending.len()).collect()
        } else {
            (0..pending.len())
                .filter(|&i| {
                    routes[i].as_ref().is_none_or(|r| {
                        r.sinks.iter().any(|s| s.path.iter().any(|w| occupancy[w.0 as usize] > 1))
                    })
                })
                .collect()
        };

        for &net_idx in &to_route {
            // Rip up the previous route of this net.
            if let Some(old) = routes[net_idx].take() {
                let mut seen = std::collections::HashSet::new();
                for sink in &old.sinks {
                    for &w in &sink.path {
                        if seen.insert(w) {
                            occupancy[w.0 as usize] = occupancy[w.0 as usize].saturating_sub(1);
                        }
                    }
                }
            }
            let net = &pending[net_idx];
            if iter == 0 {
                if let Some(sinks) = cache.and_then(|c| c.lookup(&NetKey::of(config, net))) {
                    let mut seen = std::collections::HashSet::new();
                    for sink in &sinks {
                        for &w in &sink.path {
                            if seen.insert(w) {
                                occupancy[w.0 as usize] += 1;
                            }
                        }
                    }
                    routes[net_idx] = Some(RoutedNet {
                        driver_node: net.driver_node,
                        driver_slot: net.driver_slot,
                        sinks,
                    });
                    work.nets_restored += 1;
                    continue;
                }
            }
            let (dr, dc, _) = net.driver_slot.pos(config);
            let mut routed = RoutedNet {
                driver_node: net.driver_node,
                driver_slot: net.driver_slot,
                sinks: Vec::with_capacity(net.sinks.len()),
            };
            // Tree wires of this net (cost-free re-entry points).
            tree_epoch += 1;
            let mut tree_wires: Vec<WireId> = Vec::new();

            // Route sinks farthest-first.
            let mut order: Vec<usize> = (0..net.sinks.len()).collect();
            order.sort_by_key(|&i| {
                let (sr, sc, _) = net.sinks[i].0.pos(config);
                Reverse(sr.abs_diff(dr) + sc.abs_diff(dc))
            });

            for &si in &order {
                let (sink_slot, pin) = net.sinks[si];
                let (sr, sc, _) = sink_slot.pos(config);

                // Mark goal wires.
                goal_epoch += 1;
                wires.clb_wires(sr, sc, &mut scratch);
                for &w in &scratch {
                    goal_stamp[w.0 as usize] = goal_epoch;
                }

                // Wire cost under present congestion + history.
                let cost_of = |w: WireId, occupancy: &[u16], history: &[u64]| -> u64 {
                    let o = occupancy[w.0 as usize] as u64;
                    BASE_COST + history[w.0 as usize] + o * pres_mult
                };

                epoch += 1;
                let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
                let h = |w: WireId| -> u64 {
                    let (mr, mc) = wires.midpoint(w);
                    let d = (mr - sr as f32).abs() + (mc - sc as f32).abs();
                    (d as u64).saturating_sub(1) * BASE_COST
                };

                // Seeds: the net's existing tree (free) plus the driver's
                // adjacent wires (paid).
                if tree_wires.is_empty() {
                    wires.clb_wires(dr, dc, &mut scratch);
                    for &w in &scratch {
                        let g = cost_of(w, &occupancy, &history);
                        if stamp[w.0 as usize] != epoch || gscore[w.0 as usize] > g {
                            stamp[w.0 as usize] = epoch;
                            gscore[w.0 as usize] = g;
                            prev[w.0 as usize] = u32::MAX;
                            heap.push(Reverse((g + h(w), w.0)));
                        }
                    }
                } else {
                    for &w in &tree_wires {
                        stamp[w.0 as usize] = epoch;
                        gscore[w.0 as usize] = 0;
                        prev[w.0 as usize] = u32::MAX;
                        heap.push(Reverse((h(w), w.0)));
                    }
                }

                let mut found: Option<WireId> = None;
                while let Some(Reverse((f, widx))) = heap.pop() {
                    let w = WireId(widx);
                    let g = gscore[widx as usize];
                    if stamp[widx as usize] == epoch && f > g + h(w) {
                        continue; // stale entry
                    }
                    if goal_stamp[widx as usize] == goal_epoch {
                        found = Some(w);
                        break;
                    }
                    wires.neighbors(w, &mut scratch);
                    for &nw in &scratch {
                        let ng = g + cost_of(nw, &occupancy, &history);
                        if stamp[nw.0 as usize] != epoch || gscore[nw.0 as usize] > ng {
                            stamp[nw.0 as usize] = epoch;
                            gscore[nw.0 as usize] = ng;
                            prev[nw.0 as usize] = widx;
                            heap.push(Reverse((ng + h(nw), nw.0)));
                        }
                    }
                }

                let Some(goal) = found else {
                    // Completely blocked: should not happen with full
                    // connection boxes, but treat as total congestion.
                    return Err(RouteError::Congested { overused: usize::MAX });
                };

                // Recover the path (goal back to a seed).
                let mut path = vec![goal];
                let mut cur = goal;
                while prev[cur.0 as usize] != u32::MAX {
                    cur = WireId(prev[cur.0 as usize]);
                    path.push(cur);
                }
                path.reverse();
                work.routed_wires += path.len() as u64;
                // Add new wires to tree and occupancy (skip wires already
                // in this net's tree).
                for &w in &path {
                    if tree_stamp[w.0 as usize] != tree_epoch {
                        tree_stamp[w.0 as usize] = tree_epoch;
                        tree_wires.push(w);
                        occupancy[w.0 as usize] += 1;
                    }
                }
                routed.sinks.push(RoutedSink { slot: sink_slot, pin, path });
            }
            if iter == 0 {
                if let Some(c) = cache {
                    c.insert(NetKey::of(config, net), routed.sinks.clone());
                }
            }
            routes[net_idx] = Some(routed);
        }

        // Congestion check.
        let overused = occupancy.iter().filter(|&&o| o > 1).count();
        if overused == 0 {
            let wirelength = occupancy.iter().map(|&o| u64::from(o)).sum();
            let nets: Vec<RoutedNet> = routes.into_iter().flatten().collect();
            return Ok((
                Routing {
                    nets,
                    stats: RouteStats {
                        iterations: iter + 1,
                        wirelength,
                        tracks: config.tracks,
                        nets: pending.len(),
                    },
                },
                work,
            ));
        }
        for (w, &o) in occupancy.iter().enumerate() {
            if o > 1 {
                history[w] += u64::from(o - 1) * 400;
            }
        }
        pres_mult = if pres_mult == 0 { 500 } else { (pres_mult as f64 * 1.7) as u64 };
    }

    let overused = occupancy.iter().filter(|&&o| o > 1).count();
    Err(RouteError::Congested { overused })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use warp_synth::bits::{GateNetlist, InputWord};
    use warp_synth::map::map_netlist;

    fn adder_netlist() -> LutNetlist {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = n.add_word(a, b, false);
        n.output(0, s);
        map_netlist(&n)
    }

    #[test]
    fn adder_routes_cleanly() {
        let nl = adder_netlist();
        let mut cfg = FabricConfig::sized_for(nl.lut_count(), 0);
        cfg.tracks = 16;
        let p = place(&nl, &cfg).unwrap();
        let r = route(&nl, &p, &cfg).expect("adder must route");
        assert!(r.stats.iterations <= MAX_ITERS);
        assert!(r.stats.wirelength > 0);
        // Every LUT-to-LUT edge must have a routed sink somewhere.
        let expected_sinks: usize = nl
            .nodes()
            .iter()
            .map(|n| match n {
                LutNode::Lut { inputs, .. } => inputs
                    .iter()
                    .filter(|&&i| matches!(nl.nodes()[i as usize], LutNode::Lut { .. }))
                    .count(),
                _ => 0,
            })
            .sum();
        let routed_sinks: usize = r.nets.iter().map(|n| n.sinks.len()).sum();
        assert_eq!(routed_sinks, expected_sinks);
    }

    #[test]
    fn paths_are_connected_and_exclusive() {
        let nl = adder_netlist();
        let mut cfg = FabricConfig::sized_for(nl.lut_count(), 0);
        cfg.tracks = 16;
        let p = place(&nl, &cfg).unwrap();
        let r = route(&nl, &p, &cfg).unwrap();
        let wires = Wires::new(&cfg);
        let mut owner: HashMap<WireId, u32> = HashMap::new();
        let mut scratch = Vec::new();
        for net in &r.nets {
            let mut tree: Vec<WireId> = Vec::new();
            for sink in &net.sinks {
                // Path wires: consecutive wires must be graph neighbors.
                for pair in sink.path.windows(2) {
                    wires.neighbors(pair[0], &mut scratch);
                    assert!(scratch.contains(&pair[1]), "disconnected path");
                }
                // First wire must touch the driver CLB or the net's tree.
                let (dr, dc, _) = net.driver_slot.pos(&cfg);
                wires.clb_wires(dr, dc, &mut scratch);
                let first = sink.path[0];
                assert!(
                    scratch.contains(&first) || tree.contains(&first),
                    "path must start at driver or tree"
                );
                // Last wire must touch the sink CLB.
                let (sr, sc, _) = sink.slot.pos(&cfg);
                wires.clb_wires(sr, sc, &mut scratch);
                assert!(scratch.contains(sink.path.last().unwrap()), "path must reach sink");
                // Exclusivity.
                for &w in &sink.path {
                    if let Some(&o) = owner.get(&w) {
                        assert_eq!(o, net.driver_node, "wire {w:?} shared between nets");
                    }
                    owner.insert(w, net.driver_node);
                    if !tree.contains(&w) {
                        tree.push(w);
                    }
                }
            }
        }
    }

    fn ff_netlist() -> LutNetlist {
        // An accumulator: FFs feed back into an adder, so FF-Q nets and
        // LUT-to-FF-D nets exercise general routing.
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let (ffs, qs): (Vec<_>, Vec<_>) = (0..32).map(|bit| n.ff(mb_isa::Reg::R22, bit)).unzip();
        let acc = core::array::from_fn(|i| qs[i]);
        let s = n.add_word(a, acc, false);
        for (ff, d) in ffs.into_iter().zip(s) {
            n.set_ff_d(ff, d);
        }
        n.output(0, s);
        map_netlist(&n)
    }

    #[test]
    fn cached_routing_is_bit_identical_and_charges_only_fresh_paths() {
        let nl = ff_netlist();
        let mut cfg = FabricConfig::sized_for(nl.lut_count(), nl.ffs().len());
        cfg.tracks = 16;
        let p = place(&nl, &cfg).unwrap();
        let fresh = route(&nl, &p, &cfg).expect("accumulator must route");
        assert!(fresh.stats.nets > 0);

        let cache = RouteCache::new();
        let (first, w1) = route_cached(&nl, &p, &cfg, Some(&cache)).unwrap();
        assert_eq!(w1.nets_restored, 0);
        assert!(w1.routed_wires > 0);
        assert!(!cache.is_empty());

        let (second, w2) = route_cached(&nl, &p, &cfg, Some(&cache)).unwrap();
        assert_eq!(w2.nets_restored, first.stats.nets, "every first-pass route must restore");
        assert!(w2.routed_wires < w1.routed_wires, "restored first passes must not be re-charged");

        for r in [&first, &second] {
            assert_eq!(r.stats, fresh.stats);
            assert_eq!(r.nets.len(), fresh.nets.len());
            for (a, b) in r.nets.iter().zip(&fresh.nets) {
                assert_eq!(a.driver_node, b.driver_node);
                assert_eq!(a.driver_slot, b.driver_slot);
                assert_eq!(a.sinks.len(), b.sinks.len());
                for (sa, sb) in a.sinks.iter().zip(&b.sinks) {
                    assert_eq!((sa.slot, sa.pin), (sb.slot, sb.pin));
                    assert_eq!(sa.path, sb.path);
                }
            }
        }
    }

    #[test]
    fn tight_fabric_reports_congestion() {
        // Many nets, one track: must congest.
        let nl = adder_netlist();
        let cfg = FabricConfig { rows: 12, cols: 12, tracks: 1, delays: Default::default() };
        let p = place(&nl, &cfg).unwrap();
        match route(&nl, &p, &cfg) {
            Err(RouteError::Congested { .. }) => {}
            Ok(r) => {
                // If it managed to route at width 1, that is also fine —
                // but exclusivity must then hold.
                assert!(r.stats.wirelength > 0);
            }
        }
    }
}
