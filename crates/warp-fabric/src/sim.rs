//! Functional simulation from the decoded bitstream.
//!
//! [`FabricSim`] reconstructs the circuit *only* from configuration
//! bits: wire drivers, LUT pin taps, bus tables, and output taps. It
//! never sees the netlist, so a bug anywhere in placement, routing, or
//! bitstream packing shows up as a functional mismatch in the
//! equivalence tests.

use warp_synth::bits::InputWord;

use crate::bitstream::{Bitstream, DecodedConfig, PinSource, SlotOut, WireDriver};

/// Evaluation node indices: wires, then slot LUT outputs, then MACs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Node {
    Wire(usize),
    SlotLut(usize),
    Mac(usize),
}

/// A configured fabric ready to evaluate.
#[derive(Clone, Debug)]
pub struct FabricSim {
    config: DecodedConfig,
    /// Evaluation order (topological over wires, LUTs, MACs).
    order: Vec<Node>,
}

/// One evaluation's results.
#[derive(Clone, Debug)]
pub struct FabricEval {
    /// Output word values, in output-table order (store index, value).
    pub outputs: Vec<(u32, u32)>,
    /// Next flip-flop states, in FF-table order.
    pub ff_next: Vec<bool>,
    /// Resolved MAC products, in schedule order.
    pub mac_values: Vec<u32>,
}

impl FabricSim {
    /// Decodes a bitstream and computes the evaluation schedule.
    ///
    /// # Panics
    ///
    /// Panics if the configuration contains a combinational loop (the
    /// CAD flow never produces one).
    #[must_use]
    pub fn new(bitstream: &Bitstream) -> Self {
        let config = bitstream.decode();
        let n_wires = config.wire_driver.len();
        let n_slots = config.slots.len();
        let n_macs = config.macs.len();
        let total = n_wires + n_slots + n_macs;

        // Dependency edges for the topological sort.
        let index_of = |n: Node| -> usize {
            match n {
                Node::Wire(w) => w,
                Node::SlotLut(s) => n_wires + s,
                Node::Mac(k) => n_wires + n_slots + k,
            }
        };
        let node_of = |i: usize| -> Node {
            if i < n_wires {
                Node::Wire(i)
            } else if i < n_wires + n_slots {
                Node::SlotLut(i - n_wires)
            } else {
                Node::Mac(i - n_wires - n_slots)
            }
        };
        let deps_of = |n: Node, out: &mut Vec<usize>| {
            out.clear();
            let push_src = |s: PinSource, out: &mut Vec<usize>| match s {
                PinSource::Wire(w) => out.push(index_of(Node::Wire(w.0 as usize))),
                PinSource::Bus(b) => {
                    if let crate::bitstream::BusSignal { word: InputWord::MacOut(k), .. } =
                        config.bus[b as usize]
                    {
                        out.push(index_of(Node::Mac(k)));
                    }
                }
                PinSource::Slot(slot, SlotOut::Lut) => {
                    out.push(index_of(Node::SlotLut(slot.0 as usize)));
                }
                // FF outputs are state: no combinational dependency.
                PinSource::Slot(_, SlotOut::Ff) | PinSource::Const(_) | PinSource::None => {}
            };
            match n {
                Node::Wire(w) => match config.wire_driver[w] {
                    WireDriver::None => {}
                    WireDriver::Slot(s, SlotOut::Lut) => {
                        out.push(index_of(Node::SlotLut(s.0 as usize)))
                    }
                    WireDriver::Slot(_, SlotOut::Ff) => {}
                    WireDriver::Wire(src) => out.push(index_of(Node::Wire(src.0 as usize))),
                },
                Node::SlotLut(s) => {
                    if let Some((pins, _)) = &config.slots[s].lut {
                        for &p in pins {
                            push_src(p, out);
                        }
                    }
                }
                Node::Mac(k) => {
                    let m = &config.macs[k];
                    for &p in m.a.iter().chain(m.b.iter()).chain(m.addend.iter()) {
                        push_src(p, out);
                    }
                }
            }
        };

        // Iterative DFS topological sort.
        let mut state = vec![0u8; total]; // 0 = new, 1 = open, 2 = done
        let mut order = Vec::with_capacity(total);
        let mut deps = Vec::new();
        for start in 0..total {
            if state[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((i, expanded)) = stack.pop() {
                if expanded {
                    state[i] = 2;
                    order.push(node_of(i));
                    continue;
                }
                if state[i] == 2 {
                    continue;
                }
                assert!(state[i] != 1, "combinational loop in configuration");
                state[i] = 1;
                stack.push((i, true));
                deps_of(node_of(i), &mut deps);
                for &d in &deps {
                    if state[d] == 0 {
                        stack.push((d, false));
                    } else {
                        assert!(state[d] != 1 || d == i, "combinational loop in configuration");
                    }
                }
            }
        }

        FabricSim { config, order }
    }

    /// The decoded configuration.
    #[must_use]
    pub fn config(&self) -> &DecodedConfig {
        &self.config
    }

    /// Evaluates one iteration: resolves the input bus via `inputs`,
    /// reads flip-flop state from `ff_state` (FF-table order), and
    /// returns outputs, next FF states, and MAC products.
    pub fn eval(&self, mut inputs: impl FnMut(InputWord) -> u32, ff_state: &[bool]) -> FabricEval {
        let n_wires = self.config.wire_driver.len();
        let n_slots = self.config.slots.len();
        let mut wire_val = vec![false; n_wires];
        let mut lut_val = vec![false; n_slots];
        let mut mac_val = vec![0u32; self.config.macs.len()];

        // FF state lookup by slot.
        let mut ff_by_slot = vec![None; n_slots];
        for (k, f) in self.config.ffs.iter().enumerate() {
            ff_by_slot[f.slot.0 as usize] = Some(k);
        }
        let ff_q = |slot: usize| -> bool {
            ff_by_slot[slot].is_some_and(|k| ff_state.get(k).copied().unwrap_or(false))
        };

        let mut bus_cache: Vec<Option<u32>> = vec![None; self.config.bus.len()];

        macro_rules! src_val {
            ($s:expr, $wire_val:expr, $lut_val:expr, $mac_val:expr, $bus_cache:expr) => {
                match $s {
                    PinSource::None => false,
                    PinSource::Const(v) => v,
                    PinSource::Wire(w) => $wire_val[w.0 as usize],
                    PinSource::Slot(slot, SlotOut::Lut) => $lut_val[slot.0 as usize],
                    PinSource::Slot(slot, SlotOut::Ff) => ff_q(slot.0 as usize),
                    PinSource::Bus(b) => {
                        let sig = self.config.bus[b as usize];
                        let word = match sig.word {
                            InputWord::MacOut(k) => $mac_val[k],
                            other => *$bus_cache[b as usize].get_or_insert_with(|| inputs(other)),
                        };
                        word >> sig.bit & 1 == 1
                    }
                }
            };
        }

        for &node in &self.order {
            match node {
                Node::Wire(w) => {
                    wire_val[w] = match self.config.wire_driver[w] {
                        WireDriver::None => false,
                        WireDriver::Slot(s, SlotOut::Lut) => lut_val[s.0 as usize],
                        WireDriver::Slot(s, SlotOut::Ff) => ff_q(s.0 as usize),
                        WireDriver::Wire(src) => wire_val[src.0 as usize],
                    };
                }
                Node::SlotLut(s) => {
                    if let Some((pins, truth)) = &self.config.slots[s].lut {
                        let mut idx = 0u8;
                        for (p, &pin) in pins.iter().enumerate() {
                            if src_val!(pin, wire_val, lut_val, mac_val, bus_cache) {
                                idx |= 1 << p;
                            }
                        }
                        lut_val[s] = truth >> idx & 1 == 1;
                    }
                }
                Node::Mac(k) => {
                    let take = |bits: &[PinSource; 32],
                                wire_val: &Vec<bool>,
                                lut_val: &Vec<bool>,
                                mac_val: &Vec<u32>,
                                bus_cache: &mut Vec<Option<u32>>,
                                inputs: &mut dyn FnMut(InputWord) -> u32|
                     -> u32 {
                        let mut v = 0u32;
                        for (i, &s) in bits.iter().enumerate() {
                            let b = match s {
                                PinSource::None => false,
                                PinSource::Const(c) => c,
                                PinSource::Wire(w) => wire_val[w.0 as usize],
                                PinSource::Slot(slot, SlotOut::Lut) => lut_val[slot.0 as usize],
                                PinSource::Slot(slot, SlotOut::Ff) => ff_q(slot.0 as usize),
                                PinSource::Bus(bi) => {
                                    let sig = self.config.bus[bi as usize];
                                    let word = match sig.word {
                                        InputWord::MacOut(j) => mac_val[j],
                                        other => *bus_cache[bi as usize]
                                            .get_or_insert_with(|| inputs(other)),
                                    };
                                    word >> sig.bit & 1 == 1
                                }
                            };
                            v |= u32::from(b) << i;
                        }
                        v
                    };
                    let a = take(
                        &self.config.macs[k].a,
                        &wire_val,
                        &lut_val,
                        &mac_val,
                        &mut bus_cache,
                        &mut inputs,
                    );
                    let b = take(
                        &self.config.macs[k].b,
                        &wire_val,
                        &lut_val,
                        &mac_val,
                        &mut bus_cache,
                        &mut inputs,
                    );
                    let addend = take(
                        &self.config.macs[k].addend,
                        &wire_val,
                        &lut_val,
                        &mac_val,
                        &mut bus_cache,
                        &mut inputs,
                    );
                    mac_val[k] = self.config.macs[k].mode.apply(a.wrapping_mul(b), addend);
                }
            }
        }

        // Outputs and FF next states.
        let outputs = self
            .config
            .outputs
            .iter()
            .map(|o| {
                let mut v = 0u32;
                for (i, &s) in o.bits.iter().enumerate() {
                    if src_val!(s, wire_val, lut_val, mac_val, bus_cache) {
                        v |= 1 << i;
                    }
                }
                (o.store, v)
            })
            .collect();
        let ff_next = self
            .config
            .ffs
            .iter()
            .map(|f| {
                let d = self.config.slots[f.slot.0 as usize]
                    .ff_d
                    .expect("configured FF has a D source");
                src_val!(d, wire_val, lut_val, mac_val, bus_cache)
            })
            .collect();

        FabricEval { outputs, ff_next, mac_values: mac_val }
    }
}
