//! Configuration bitstream generation and decoding.
//!
//! The dynamic partitioning module "configures the configurable logic"
//! by writing a bitstream. Here the bitstream is a flat `u32` word
//! stream with a documented layout (header, slot configurations, wire
//! drivers, input-bus table, MAC taps, output taps, flip-flop table).
//! [`FabricSim`](crate::sim::FabricSim) evaluates circuits **from the
//! decoded bitstream only** — never from the netlist — so generation
//! and decoding are covered by end-to-end equivalence tests.

use std::collections::HashMap;

use mb_isa::Reg;
use warp_synth::bits::InputWord;
use warp_synth::map::LutNode;
use warp_synth::LutNetlist;

use crate::arch::{FabricConfig, SlotId, WireId};
use crate::place::Placement;
use crate::route::Routing;

/// Which of a slot's two outputs a connection taps.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SlotOut {
    /// The LUT's combinational output.
    Lut,
    /// The flip-flop's registered output.
    Ff,
}

/// Source selection for a pin, bus tap, or output tap.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum PinSource {
    /// Unconnected (reads 0).
    None,
    /// Tapped from an adjacent routing wire.
    Wire(WireId),
    /// Tapped from the dedicated input bus.
    Bus(u32),
    /// Tied to a constant.
    Const(bool),
    /// Direct tap of a slot output (dedicated output bus / internal
    /// LUT→FF feed).
    Slot(SlotId, SlotOut),
}

/// Who drives a routing wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum WireDriver {
    /// Undriven.
    None,
    /// Driven by a slot output through its connection box.
    Slot(SlotId, SlotOut),
    /// Driven by a neighboring wire through a switch box.
    Wire(WireId),
}

/// One input-bus signal: a bit of a word-level input.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct BusSignal {
    /// The word this bit belongs to.
    pub word: InputWord,
    /// Bit position.
    pub bit: u8,
}

/// Configuration of one slot.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SlotConfig {
    /// LUT truth table and pin sources, when the LUT is used.
    pub lut: Option<([PinSource; 3], u8)>,
    /// FF D source, when the flip-flop is used.
    pub ff_d: Option<PinSource>,
}

/// One MAC operation's operand taps.
#[derive(Clone, PartialEq, Debug)]
pub struct MacConfig {
    /// Multiplicand bit sources.
    pub a: [PinSource; 32],
    /// Multiplier bit sources.
    pub b: [PinSource; 32],
    /// Accumulate-port bit sources.
    pub addend: [PinSource; 32],
    /// Accumulate function.
    pub mode: warp_synth::bits::MacMode,
}

/// One output word's taps.
#[derive(Clone, PartialEq, Debug)]
pub struct OutputConfig {
    /// Index into the kernel's store list.
    pub store: u32,
    /// Bit sources.
    pub bits: [PinSource; 32],
}

/// A flip-flop's bookkeeping entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct FfEntry {
    /// The slot hosting the flip-flop.
    pub slot: SlotId,
    /// Accumulator register the bit belongs to.
    pub reg: Reg,
    /// Bit position within the register.
    pub bit: u8,
}

/// The decoded configuration (what the hardware's configuration memory
/// holds).
#[derive(Clone, PartialEq, Debug)]
pub struct DecodedConfig {
    /// CLB rows.
    pub rows: usize,
    /// CLB columns.
    pub cols: usize,
    /// Channel tracks.
    pub tracks: usize,
    /// Per-slot configuration.
    pub slots: Vec<SlotConfig>,
    /// Per-wire driver selection.
    pub wire_driver: Vec<WireDriver>,
    /// Input-bus signal table.
    pub bus: Vec<BusSignal>,
    /// MAC operand taps, in schedule order.
    pub macs: Vec<MacConfig>,
    /// Output word taps.
    pub outputs: Vec<OutputConfig>,
    /// Flip-flop table, in netlist FF order.
    pub ffs: Vec<FfEntry>,
}

/// A packed configuration bitstream.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub struct Bitstream {
    words: Vec<u32>,
}

impl Bitstream {
    /// The raw configuration words.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Size in bytes.
    #[must_use]
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Decodes the bitstream back into structured configuration.
    ///
    /// # Panics
    ///
    /// Panics if the stream is truncated or malformed (bitstreams are
    /// produced by [`generate`] in the same process; corruption is a
    /// program error).
    #[must_use]
    pub fn decode(&self) -> DecodedConfig {
        let mut cur = Cursor { words: &self.words, pos: 0 };
        let rows = cur.take() as usize;
        let cols = cur.take() as usize;
        let tracks = cur.take() as usize;
        let n_slots = cur.take() as usize;
        let n_wires = cur.take() as usize;

        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let flags = cur.take();
            let mut sc = SlotConfig::default();
            if flags & 1 != 0 {
                let truth = cur.take() as u8;
                let pins = [decode_src(&mut cur), decode_src(&mut cur), decode_src(&mut cur)];
                sc.lut = Some((pins, truth));
            }
            if flags & 2 != 0 {
                sc.ff_d = Some(decode_src(&mut cur));
            }
            slots.push(sc);
        }

        let mut wire_driver = Vec::with_capacity(n_wires);
        for _ in 0..n_wires {
            let w = cur.take();
            wire_driver.push(match w & 0x3 {
                0 => WireDriver::None,
                1 => WireDriver::Slot(
                    SlotId(w >> 3),
                    if w & 0x4 != 0 { SlotOut::Ff } else { SlotOut::Lut },
                ),
                2 => WireDriver::Wire(WireId(w >> 3)),
                _ => unreachable!("invalid wire driver tag"),
            });
        }

        let n_bus = cur.take() as usize;
        let mut bus = Vec::with_capacity(n_bus);
        for _ in 0..n_bus {
            let tag = cur.take();
            let bit = (tag >> 24) as u8;
            let word = match tag & 0x3 {
                0 => InputWord::Load {
                    stream: ((tag >> 2) & 0x3) as usize,
                    offset: cur.take() as i32,
                },
                1 => InputWord::Invariant(Reg::new(((tag >> 2) & 31) as u8)),
                _ => InputWord::MacOut(((tag >> 2) & 0xFFFF) as usize),
            };
            bus.push(BusSignal { word, bit });
        }

        let n_macs = cur.take() as usize;
        let mut macs = Vec::with_capacity(n_macs);
        for _ in 0..n_macs {
            let mode = match cur.take() {
                0 => warp_synth::bits::MacMode::MulAdd,
                1 => warp_synth::bits::MacMode::AddendMinusProd,
                _ => warp_synth::bits::MacMode::ProdMinusAddend,
            };
            let a = core::array::from_fn(|_| decode_src(&mut cur));
            let b = core::array::from_fn(|_| decode_src(&mut cur));
            let addend = core::array::from_fn(|_| decode_src(&mut cur));
            macs.push(MacConfig { a, b, addend, mode });
        }

        let n_outputs = cur.take() as usize;
        let mut outputs = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let store = cur.take();
            let bits = core::array::from_fn(|_| decode_src(&mut cur));
            outputs.push(OutputConfig { store, bits });
        }

        let n_ffs = cur.take() as usize;
        let mut ffs = Vec::with_capacity(n_ffs);
        for _ in 0..n_ffs {
            let slot = SlotId(cur.take());
            let meta = cur.take();
            ffs.push(FfEntry {
                slot,
                reg: Reg::new((meta & 31) as u8),
                bit: ((meta >> 5) & 31) as u8,
            });
        }

        DecodedConfig { rows, cols, tracks, slots, wire_driver, bus, macs, outputs, ffs }
    }
}

struct Cursor<'a> {
    words: &'a [u32],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self) -> u32 {
        let w = self.words[self.pos];
        self.pos += 1;
        w
    }
}

fn encode_src(out: &mut Vec<u32>, s: PinSource) {
    match s {
        PinSource::None => out.push(0),
        PinSource::Wire(w) => out.push(1 | (w.0 << 3)),
        PinSource::Bus(b) => out.push(2 | (b << 3)),
        PinSource::Const(v) => out.push(3 | (u32::from(v) << 3)),
        PinSource::Slot(s, SlotOut::Lut) => out.push(4 | (s.0 << 3)),
        PinSource::Slot(s, SlotOut::Ff) => out.push(5 | (s.0 << 3)),
    }
}

fn decode_src(cur: &mut Cursor<'_>) -> PinSource {
    let w = cur.take();
    match w & 0x7 {
        0 => PinSource::None,
        1 => PinSource::Wire(WireId(w >> 3)),
        2 => PinSource::Bus(w >> 3),
        3 => PinSource::Const(w >> 3 & 1 == 1),
        4 => PinSource::Slot(SlotId(w >> 3), SlotOut::Lut),
        5 => PinSource::Slot(SlotId(w >> 3), SlotOut::Ff),
        other => unreachable!("invalid pin source tag {other}"),
    }
}

fn encode_bus_word(out: &mut Vec<u32>, sig: BusSignal) {
    let bit = u32::from(sig.bit) << 24;
    match sig.word {
        InputWord::Load { stream, offset } => {
            out.push(bit | ((stream as u32) << 2));
            out.push(offset as u32);
        }
        InputWord::Invariant(r) => out.push(bit | 1 | (u32::from(r.number()) << 2)),
        InputWord::MacOut(k) => out.push(bit | 2 | ((k as u32) << 2)),
    }
}

/// Generates the configuration bitstream for a placed-and-routed
/// netlist.
#[must_use]
pub fn generate(
    netlist: &LutNetlist,
    placement: &Placement,
    routing: &Routing,
    config: &FabricConfig,
) -> Bitstream {
    let n_slots = config.lut_slots();
    let n_wires = config.wire_count();

    // Input-bus table: every Input/Const-free (word, bit) the netlist
    // references gets a bus index.
    let mut bus: Vec<BusSignal> = Vec::new();
    let mut bus_index: HashMap<(InputWord, u8), u32> = HashMap::new();
    for node in netlist.nodes() {
        if let LutNode::Input { word, bit } = node {
            bus_index.entry((*word, *bit)).or_insert_with(|| {
                bus.push(BusSignal { word: *word, bit: *bit });
                (bus.len() - 1) as u32
            });
        }
    }

    // Per-(slot, pin) routed wire taps.
    let mut pin_wire: HashMap<(SlotId, u8), WireId> = HashMap::new();
    let mut wire_driver = vec![WireDriver::None; n_wires];
    for net in &routing.nets {
        let driver_out = match netlist.nodes()[net.driver_node as usize] {
            LutNode::Lut { .. } => SlotOut::Lut,
            LutNode::FfQ(_) => SlotOut::Ff,
            _ => unreachable!("only slot outputs are routed"),
        };
        let mut driven: Vec<WireId> = Vec::new();
        for sink in &net.sinks {
            for (i, &w) in sink.path.iter().enumerate() {
                if driven.contains(&w) {
                    continue;
                }
                let d = if i == 0 {
                    WireDriver::Slot(net.driver_slot, driver_out)
                } else {
                    WireDriver::Wire(sink.path[i - 1])
                };
                wire_driver[w.0 as usize] = d;
                driven.push(w);
            }
            pin_wire.insert((sink.slot, sink.pin), *sink.path.last().expect("non-empty path"));
        }
    }

    // Resolve a netlist node reference into a pin source.
    let source_of = |node: u32, sink: Option<(SlotId, u8)>| -> PinSource {
        match &netlist.nodes()[node as usize] {
            LutNode::Const(v) => PinSource::Const(*v),
            LutNode::Input { word, bit } => PinSource::Bus(bus_index[&(*word, *bit)]),
            LutNode::Lut { .. } | LutNode::FfQ(_) => {
                if let Some(key) = sink {
                    if let Some(&w) = pin_wire.get(&key) {
                        return PinSource::Wire(w);
                    }
                }
                // Dedicated tap (output bus, MAC operand, or internal
                // LUT→FF feed).
                match &netlist.nodes()[node as usize] {
                    LutNode::Lut { .. } => {
                        PinSource::Slot(placement.slot_of_lut(node), SlotOut::Lut)
                    }
                    LutNode::FfQ(k) => PinSource::Slot(placement.ff_slot[k], SlotOut::Ff),
                    _ => unreachable!(),
                }
            }
        }
    };

    // Slot configurations.
    let mut slots = vec![SlotConfig::default(); n_slots];
    for (i, node) in netlist.nodes().iter().enumerate() {
        if let LutNode::Lut { inputs, truth } = node {
            let slot = placement.slot_of_lut(i as u32);
            let mut pins = [PinSource::None; 3];
            for (p, &inp) in inputs.iter().enumerate() {
                pins[p] = source_of(inp, Some((slot, p as u8)));
            }
            slots[slot.0 as usize].lut = Some((pins, *truth));
        }
    }
    let mut ffs = Vec::with_capacity(netlist.ffs().len());
    for (k, ff) in netlist.ffs().iter().enumerate() {
        let slot = placement.ff_slot[&k];
        slots[slot.0 as usize].ff_d = Some(source_of(ff.d, Some((slot, 3))));
        ffs.push(FfEntry { slot, reg: ff.reg, bit: ff.bit });
    }

    // MAC and output taps (dedicated buses: direct slot taps).
    let macs: Vec<MacConfig> = netlist
        .macs()
        .iter()
        .map(|m| MacConfig {
            a: m.a.map(|r| source_of(r, None)),
            b: m.b.map(|r| source_of(r, None)),
            addend: m.addend.map(|r| source_of(r, None)),
            mode: m.mode,
        })
        .collect();
    let outputs: Vec<OutputConfig> = netlist
        .outputs()
        .iter()
        .map(|o| OutputConfig { store: o.store as u32, bits: o.bits.map(|r| source_of(r, None)) })
        .collect();

    // Pack.
    let mut words = vec![
        config.rows as u32,
        config.cols as u32,
        config.tracks as u32,
        n_slots as u32,
        n_wires as u32,
    ];
    for sc in &slots {
        let flags = u32::from(sc.lut.is_some()) | (u32::from(sc.ff_d.is_some()) << 1);
        words.push(flags);
        if let Some((pins, truth)) = &sc.lut {
            words.push(u32::from(*truth));
            for &p in pins {
                encode_src(&mut words, p);
            }
        }
        if let Some(d) = sc.ff_d {
            encode_src(&mut words, d);
        }
    }
    for d in &wire_driver {
        words.push(match *d {
            WireDriver::None => 0,
            WireDriver::Slot(s, o) => 1 | (u32::from(o == SlotOut::Ff) << 2) | (s.0 << 3),
            WireDriver::Wire(w) => 2 | (w.0 << 3),
        });
    }
    words.push(bus.len() as u32);
    for &sig in &bus {
        encode_bus_word(&mut words, sig);
    }
    words.push(macs.len() as u32);
    for m in &macs {
        words.push(match m.mode {
            warp_synth::bits::MacMode::MulAdd => 0,
            warp_synth::bits::MacMode::AddendMinusProd => 1,
            warp_synth::bits::MacMode::ProdMinusAddend => 2,
        });
        for &p in m.a.iter().chain(m.b.iter()).chain(m.addend.iter()) {
            encode_src(&mut words, p);
        }
    }
    words.push(outputs.len() as u32);
    for o in &outputs {
        words.push(o.store);
        for &p in &o.bits {
            encode_src(&mut words, p);
        }
    }
    words.push(ffs.len() as u32);
    for f in &ffs {
        words.push(f.slot.0);
        words.push(u32::from(f.reg.number()) | (u32::from(f.bit) << 5));
    }

    Bitstream { words }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_source_encoding_round_trips() {
        let sources = [
            PinSource::None,
            PinSource::Wire(WireId(1234)),
            PinSource::Bus(77),
            PinSource::Const(true),
            PinSource::Const(false),
            PinSource::Slot(SlotId(99), SlotOut::Lut),
            PinSource::Slot(SlotId(99), SlotOut::Ff),
        ];
        let mut words = Vec::new();
        for &s in &sources {
            encode_src(&mut words, s);
        }
        let mut cur = Cursor { words: &words, pos: 0 };
        for &s in &sources {
            assert_eq!(decode_src(&mut cur), s);
        }
    }

    #[test]
    fn bus_signal_encoding_round_trips() {
        let sigs = [
            BusSignal { word: InputWord::Load { stream: 2, offset: -8 }, bit: 31 },
            BusSignal { word: InputWord::Invariant(Reg::R20), bit: 0 },
            BusSignal { word: InputWord::MacOut(13), bit: 15 },
        ];
        let mut words = Vec::new();
        for &s in &sigs {
            encode_bus_word(&mut words, s);
        }
        let mut cur = Cursor { words: &words, pos: 0 };
        for &want in &sigs {
            let tag = cur.take();
            let bit = (tag >> 24) as u8;
            let word = match tag & 0x3 {
                0 => InputWord::Load {
                    stream: ((tag >> 2) & 0x3) as usize,
                    offset: cur.take() as i32,
                },
                1 => InputWord::Invariant(Reg::new(((tag >> 2) & 31) as u8)),
                _ => InputWord::MacOut(((tag >> 2) & 0xFFFF) as usize),
            };
            assert_eq!(BusSignal { word, bit }, want);
        }
    }
}
