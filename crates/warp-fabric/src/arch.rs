//! Fabric architecture: CLB grid, routing channels, and resource ids.
//!
//! The fabric is island-style: a `rows × cols` array of CLBs, each with
//! two 3-input LUT slots (each slot also provides a flip-flop). Between
//! CLB rows/columns run horizontal/vertical routing channels of `tracks`
//! wires, segmented per grid cell and joined by disjoint switch boxes
//! (track *t* connects only to track *t*). Connection boxes are full:
//! a CLB pin can tap any track of its four adjacent channel segments.
//!
//! Word-level inputs (WCLA register bits, MAC outputs) arrive on a
//! dedicated input bus tappable from every CLB — the "three input
//! registers feed the configurable logic fabric" arrangement of paper
//! Figure 3 — so only LUT-to-LUT and flip-flop nets use the general
//! routing channels. Outputs leave on a dedicated output bus the same
//! way.

/// Interconnect and logic delays in nanoseconds (UMC 0.18 µm scale, the
/// process the paper synthesized the WCLA for).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Delays {
    /// LUT evaluation delay.
    pub lut_ns: f64,
    /// One channel wire segment.
    pub wire_ns: f64,
    /// One switch-box or connection-box hop.
    pub switch_ns: f64,
    /// Dedicated input-bus tap.
    pub bus_tap_ns: f64,
    /// Flip-flop clock-to-Q plus setup allowance.
    pub ff_ns: f64,
}

impl Default for Delays {
    fn default() -> Self {
        Delays { lut_ns: 0.9, wire_ns: 0.5, switch_ns: 0.3, bus_tap_ns: 0.6, ff_ns: 0.8 }
    }
}

/// Fabric geometry and timing.
#[derive(Clone, PartialEq, Debug)]
pub struct FabricConfig {
    /// CLB rows.
    pub rows: usize,
    /// CLB columns.
    pub cols: usize,
    /// Tracks per routing channel.
    pub tracks: usize,
    /// Delay model.
    pub delays: Delays,
}

impl FabricConfig {
    /// The baseline fabric used by the experiments: 16×16 CLBs (512
    /// LUTs), 8 tracks per channel.
    #[must_use]
    pub fn paper_default() -> Self {
        FabricConfig { rows: 16, cols: 16, tracks: 8, delays: Delays::default() }
    }

    /// Sizes a fabric to fit a netlist with ~25% slack, keeping the
    /// aspect ratio square and at least the default channel width.
    #[must_use]
    pub fn sized_for(luts: usize, ffs: usize) -> Self {
        let slots = (luts + ffs).max(8);
        let clbs = slots.div_ceil(2);
        let with_slack = clbs + clbs.div_ceil(4);
        let side = (with_slack as f64).sqrt().ceil() as usize;
        FabricConfig { rows: side.max(4), cols: side.max(4), tracks: 8, delays: Delays::default() }
    }

    /// Total LUT slots (two per CLB).
    #[must_use]
    pub fn lut_slots(&self) -> usize {
        self.rows * self.cols * 2
    }

    /// Number of wire-segment nodes in the routing graph.
    #[must_use]
    pub fn wire_count(&self) -> usize {
        (self.rows + 1) * self.cols * self.tracks + (self.cols + 1) * self.rows * self.tracks
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A LUT/FF slot: `(clb_row * cols + clb_col) * 2 + slot`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlotId(pub u32);

impl SlotId {
    /// Builds a slot id from coordinates.
    #[must_use]
    pub fn new(config: &FabricConfig, row: usize, col: usize, slot: usize) -> Self {
        debug_assert!(row < config.rows && col < config.cols && slot < 2);
        SlotId(((row * config.cols + col) * 2 + slot) as u32)
    }

    /// The slot's `(row, col, slot)` coordinates.
    #[must_use]
    pub fn pos(self, config: &FabricConfig) -> (usize, usize, usize) {
        let v = self.0 as usize;
        let clb = v / 2;
        (clb / config.cols, clb % config.cols, v % 2)
    }
}

/// A wire-segment node in the routing graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WireId(pub u32);

/// Routing-resource graph helpers (all index math, no allocation).
#[derive(Clone, Debug)]
pub struct Wires<'a> {
    config: &'a FabricConfig,
    h_base: usize,
    v_base: usize,
}

impl<'a> Wires<'a> {
    /// Creates the helper for a fabric.
    #[must_use]
    pub fn new(config: &'a FabricConfig) -> Self {
        let h_count = (config.rows + 1) * config.cols * config.tracks;
        Wires { config, h_base: 0, v_base: h_count }
    }

    /// Total wire nodes.
    #[must_use]
    pub fn count(&self) -> usize {
        self.config.wire_count()
    }

    /// Horizontal segment in channel `ch` (0..=rows) at column `col`,
    /// track `t`.
    #[must_use]
    pub fn h(&self, ch: usize, col: usize, t: usize) -> WireId {
        debug_assert!(ch <= self.config.rows && col < self.config.cols && t < self.config.tracks);
        WireId((self.h_base + (ch * self.config.cols + col) * self.config.tracks + t) as u32)
    }

    /// Vertical segment in channel `ch` (0..=cols) at row `row`, track
    /// `t`.
    #[must_use]
    pub fn v(&self, ch: usize, row: usize, t: usize) -> WireId {
        debug_assert!(ch <= self.config.cols && row < self.config.rows && t < self.config.tracks);
        WireId((self.v_base + (ch * self.config.rows + row) * self.config.tracks + t) as u32)
    }

    /// Decodes a wire id into its kind and coordinates:
    /// `(is_horizontal, channel, position, track)`.
    #[must_use]
    pub fn decode(&self, w: WireId) -> (bool, usize, usize, usize) {
        let idx = w.0 as usize;
        if idx < self.v_base {
            let t = idx % self.config.tracks;
            let rest = idx / self.config.tracks;
            (true, rest / self.config.cols, rest % self.config.cols, t)
        } else {
            let idx = idx - self.v_base;
            let t = idx % self.config.tracks;
            let rest = idx / self.config.tracks;
            (false, rest / self.config.rows, rest % self.config.rows, t)
        }
    }

    /// The grid-cell midpoint of a wire (for A* distance estimates),
    /// in (row, col) half-units.
    #[must_use]
    pub fn midpoint(&self, w: WireId) -> (f32, f32) {
        let (horiz, ch, pos, _) = self.decode(w);
        if horiz {
            (ch as f32 - 0.5, pos as f32)
        } else {
            (pos as f32, ch as f32 - 0.5)
        }
    }

    /// Same-track neighbors through the disjoint switch boxes.
    pub fn neighbors(&self, w: WireId, out: &mut Vec<WireId>) {
        out.clear();
        let (horiz, ch, pos, t) = self.decode(w);
        let (rows, cols) = (self.config.rows, self.config.cols);
        if horiz {
            // h(ch, pos): switch boxes at (ch, pos) and (ch, pos+1).
            for sb in [pos, pos + 1] {
                // Horizontal continuation through the box.
                if sb == pos && pos > 0 {
                    out.push(self.h(ch, pos - 1, t));
                }
                if sb == pos + 1 && pos + 1 < cols {
                    out.push(self.h(ch, pos + 1, t));
                }
                // Vertical wires incident to box (ch, sb): v(sb, ch-1) and
                // v(sb, ch).
                if ch > 0 {
                    out.push(self.v(sb, ch - 1, t));
                }
                if ch < rows {
                    out.push(self.v(sb, ch, t));
                }
            }
        } else {
            // v(ch, pos): switch boxes at (pos, ch) and (pos+1, ch).
            for sb in [pos, pos + 1] {
                if sb == pos && pos > 0 {
                    out.push(self.v(ch, pos - 1, t));
                }
                if sb == pos + 1 && pos + 1 < rows {
                    out.push(self.v(ch, pos + 1, t));
                }
                // Horizontal wires incident to box (sb, ch): h(sb, ch-1)
                // and h(sb, ch).
                if ch > 0 {
                    out.push(self.h(sb, ch - 1, t));
                }
                if ch < cols {
                    out.push(self.h(sb, ch, t));
                }
            }
        }
    }

    /// Wires adjacent to a CLB (full connection boxes on all four
    /// sides): these are reachable from the CLB's output and can feed
    /// its input pins.
    pub fn clb_wires(&self, row: usize, col: usize, out: &mut Vec<WireId>) {
        out.clear();
        for t in 0..self.config.tracks {
            out.push(self.h(row, col, t)); // channel above
            out.push(self.h(row + 1, col, t)); // channel below
            out.push(self.v(col, row, t)); // channel left
            out.push(self.v(col + 1, row, t)); // channel right
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> FabricConfig {
        FabricConfig { rows: 4, cols: 5, tracks: 2, delays: Delays::default() }
    }

    #[test]
    fn slot_ids_round_trip() {
        let c = cfg();
        for row in 0..c.rows {
            for col in 0..c.cols {
                for s in 0..2 {
                    let id = SlotId::new(&c, row, col, s);
                    assert_eq!(id.pos(&c), (row, col, s));
                }
            }
        }
        assert_eq!(c.lut_slots(), 40);
    }

    #[test]
    fn wire_ids_round_trip() {
        let c = cfg();
        let w = Wires::new(&c);
        let mut seen = std::collections::HashSet::new();
        for ch in 0..=c.rows {
            for col in 0..c.cols {
                for t in 0..c.tracks {
                    let id = w.h(ch, col, t);
                    assert_eq!(w.decode(id), (true, ch, col, t));
                    assert!(seen.insert(id));
                }
            }
        }
        for ch in 0..=c.cols {
            for row in 0..c.rows {
                for t in 0..c.tracks {
                    let id = w.v(ch, row, t);
                    assert_eq!(w.decode(id), (false, ch, row, t));
                    assert!(seen.insert(id));
                }
            }
        }
        assert_eq!(seen.len(), w.count());
    }

    #[test]
    fn neighbors_are_symmetric_and_same_track() {
        let c = cfg();
        let w = Wires::new(&c);
        let mut out = Vec::new();
        let mut back = Vec::new();
        for idx in 0..w.count() as u32 {
            let id = WireId(idx);
            let (_, _, _, t) = w.decode(id);
            w.neighbors(id, &mut out);
            let neighbors = out.clone();
            for &n in &neighbors {
                let (_, _, _, nt) = w.decode(n);
                assert_eq!(nt, t, "disjoint switch boxes keep tracks");
                w.neighbors(n, &mut back);
                assert!(back.contains(&id), "{id:?} -> {n:?} must be symmetric");
            }
        }
    }

    #[test]
    fn clb_wires_touch_four_channels() {
        let c = cfg();
        let w = Wires::new(&c);
        let mut out = Vec::new();
        w.clb_wires(1, 2, &mut out);
        assert_eq!(out.len(), 4 * c.tracks);
        let mut kinds = std::collections::HashSet::new();
        for &id in &out {
            let (h, ch, pos, _) = w.decode(id);
            kinds.insert((h, ch, pos));
        }
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn sized_for_fits_with_slack() {
        let c = FabricConfig::sized_for(100, 32);
        assert!(c.lut_slots() >= 132);
        let tiny = FabricConfig::sized_for(0, 0);
        assert!(tiny.rows >= 4);
    }

    #[test]
    fn connectivity_spans_fabric() {
        // BFS from one corner wire must reach every wire (connected
        // routing graph).
        let c = cfg();
        let w = Wires::new(&c);
        let mut seen = vec![false; w.count()];
        let start = w.h(0, 0, 0);
        let mut stack = vec![start];
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.0 as usize], true) {
                continue;
            }
            w.neighbors(n, &mut out);
            stack.extend(out.iter().copied());
        }
        // Track 0 wires must all be reachable (tracks are disjoint).
        for idx in 0..w.count() as u32 {
            let id = WireId(idx);
            let (_, _, _, t) = w.decode(id);
            if t == 0 {
                assert!(seen[idx as usize], "{:?} unreachable", w.decode(id));
            }
        }
    }
}
