//! Routed timing analysis.
//!
//! Computes each net's routed delay (wire segments and switch hops plus
//! connection taps) and the design's critical combinational path, which
//! sets the clock the WCLA runs the circuit at. MAC timing is handled
//! by the WCLA executor (the MAC is a hard block with its own latency);
//! paths through MAC outputs therefore terminate at the MAC boundary
//! here.

use std::collections::HashMap;

use warp_synth::map::LutNode;
use warp_synth::LutNetlist;

use crate::arch::FabricConfig;
use crate::place::Placement;
use crate::route::Routing;

/// Timing results for a compiled circuit.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimingReport {
    /// Longest register/input-to-register/output combinational path.
    pub critical_path_ns: f64,
    /// Maximum clock implied by the critical path.
    pub fmax_hz: f64,
    /// Longest routed net delay.
    pub max_net_ns: f64,
    /// Average routed net delay.
    pub avg_net_ns: f64,
}

/// Analyzes a placed-and-routed design.
#[must_use]
pub fn analyze(
    netlist: &LutNetlist,
    placement: &Placement,
    routing: &Routing,
    config: &FabricConfig,
) -> TimingReport {
    let d = &config.delays;
    let _ = placement;

    // Routed delay per (sink slot, pin): wire count * wire + hops * switch.
    let mut sink_delay: HashMap<(u32, u8), f64> = HashMap::new();
    let mut net_delays: Vec<f64> = Vec::new();
    for net in &routing.nets {
        for sink in &net.sinks {
            let wires = sink.path.len() as f64;
            let delay = wires * d.wire_ns + (wires + 1.0) * d.switch_ns;
            sink_delay.insert((sink.slot.0, sink.pin), delay);
            net_delays.push(delay);
        }
    }

    // Arrival times over the netlist in topological order.
    let mut arrival = vec![0.0f64; netlist.nodes().len()];
    let mut critical = 0.0f64;
    for (i, node) in netlist.nodes().iter().enumerate() {
        arrival[i] = match node {
            // Inputs arrive over the dedicated bus; FF state is clocked.
            LutNode::Const(_) => 0.0,
            LutNode::Input { .. } => d.bus_tap_ns,
            LutNode::FfQ(_) => d.ff_ns,
            LutNode::Lut { inputs, .. } => {
                let slot = placement.slot_of_lut(i as u32);
                let mut worst: f64 = 0.0;
                for (p, &inp) in inputs.iter().enumerate() {
                    let net = sink_delay.get(&(slot.0, p as u8)).copied().unwrap_or(d.bus_tap_ns);
                    worst = worst.max(arrival[inp as usize] + net);
                }
                worst + d.lut_ns
            }
        };
        critical = critical.max(arrival[i]);
    }

    // FF D setup paths.
    for (k, ff) in netlist.ffs().iter().enumerate() {
        let slot = placement.ff_slot[&k];
        let net = sink_delay.get(&(slot.0, 3)).copied().unwrap_or(0.0);
        critical = critical.max(arrival[ff.d as usize] + net + d.ff_ns);
    }
    // Output and MAC taps ride the dedicated bus.
    for o in netlist.outputs() {
        for &b in &o.bits {
            critical = critical.max(arrival[b as usize] + d.bus_tap_ns);
        }
    }
    for m in netlist.macs() {
        for &b in m.a.iter().chain(m.b.iter()).chain(m.addend.iter()) {
            critical = critical.max(arrival[b as usize] + d.bus_tap_ns);
        }
    }

    let critical = critical.max(d.lut_ns); // empty designs still clock
    let (max_net, sum_net) =
        net_delays.iter().fold((0.0f64, 0.0f64), |(m, s), &x| (m.max(x), s + x));
    TimingReport {
        critical_path_ns: critical,
        fmax_hz: 1e9 / critical,
        max_net_ns: max_net,
        avg_net_ns: if net_delays.is_empty() { 0.0 } else { sum_net / net_delays.len() as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place::place;
    use crate::route::route;
    use warp_synth::bits::{GateNetlist, InputWord};
    use warp_synth::map::map_netlist;

    #[test]
    fn deeper_logic_has_longer_critical_path() {
        let shallow = {
            let mut n = GateNetlist::new();
            let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
            let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
            let x = n.xor_word(a, b);
            n.output(0, x);
            map_netlist(&n)
        };
        let deep = {
            let mut n = GateNetlist::new();
            let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
            let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
            let s = n.add_word(a, b, false); // carry chain
            n.output(0, s);
            map_netlist(&n)
        };
        let report = |nl: &warp_synth::LutNetlist| {
            let mut cfg = FabricConfig::sized_for(nl.lut_count().max(8), 0);
            cfg.tracks = 16;
            let p = place(nl, &cfg).unwrap();
            let r = route(nl, &p, &cfg).unwrap();
            analyze(nl, &p, &r, &cfg)
        };
        let ts = report(&shallow);
        let td = report(&deep);
        assert!(
            td.critical_path_ns > ts.critical_path_ns,
            "adder ({:.1} ns) must be slower than xor ({:.1} ns)",
            td.critical_path_ns,
            ts.critical_path_ns
        );
        assert!(ts.fmax_hz > td.fmax_hz);
        assert!(td.max_net_ns >= td.avg_net_ns);
    }

    #[test]
    fn pure_wiring_clocks_at_lut_floor() {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let sh = n.shl_word(a, 3);
        n.output(0, sh);
        let nl = map_netlist(&n);
        let cfg = FabricConfig::paper_default();
        let p = place(&nl, &cfg).unwrap();
        let r = route(&nl, &p, &cfg).unwrap();
        let t = analyze(&nl, &p, &r, &cfg);
        assert!(t.critical_path_ns <= 2.0, "wire-only design is fast, got {}", t.critical_path_ns);
    }
}
