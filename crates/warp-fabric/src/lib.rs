//! The warp processor's simple configurable logic fabric, with on-chip
//! place & route.
//!
//! The paper's warp processor does not target the FPGA's native fabric —
//! "developing computer aided design tools for existing FPGAs capable of
//! executing on-chip using very limited memory resources is a difficult
//! task". Instead it uses a *simple configurable logic fabric* designed
//! together with "a set of lean synthesis, technology mapping, placement,
//! and routing algorithms" (DATE'04 / DAC'04, refs \[15]\[16]). This crate
//! implements that fabric and those back-end tools:
//!
//! * [`FabricConfig`] — an island-style array of CLBs (two 3-input LUTs
//!   with optional flip-flops per CLB), horizontal/vertical routing
//!   channels with a configurable track count, full connection boxes and
//!   disjoint switch boxes, and input ports along the left edge fed by
//!   the WCLA registers;
//! * [`place`] — levelized placement with greedy swap refinement;
//! * [`route`] — the Riverside On-Chip Router: a PathFinder-style
//!   negotiated-congestion router with A*-directed searches, trimmed to
//!   the memory budget of an on-chip tool;
//! * [`bitstream`] — configuration bit generation and decoding;
//! * [`sim`] — functional simulation *from the decoded bitstream* (not
//!   from the netlist), so a configuration bug cannot hide;
//! * [`timing`] — routed critical-path extraction, which sets the
//!   hardware clock the WCLA executor uses.
//!
//! The top-level entry point is [`compile`], which runs
//! place → route → bitstream → timing and retries with wider channels if
//! routing fails (the channel-width sweep of the DAC'04 evaluation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod bitstream;
pub mod place;
pub mod route;
pub mod sim;
pub mod timing;

use std::error::Error;
use std::fmt;

use warp_synth::LutNetlist;

pub use arch::FabricConfig;
pub use bitstream::Bitstream;
pub use place::{PlaceCache, Placement};
pub use route::{RouteCache, RouteStats};
pub use sim::FabricSim;
pub use timing::TimingReport;

/// Memoization caches for the fabric back-end stages.
///
/// Compiling with caches never changes the result — every cached
/// artifact is the memoized output of a pure function of the netlist
/// structure and fabric geometry, verified structurally on lookup — it
/// only changes how much work [`compile_cached`] reports having done.
#[derive(Debug, Default)]
pub struct FabricCaches {
    /// Memoized placements keyed by netlist structure.
    pub place: PlaceCache,
    /// Memoized first-pass net routes keyed by geometry and pins.
    pub route: RouteCache,
}

impl FabricCaches {
    /// Creates empty caches.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Modeled work the fabric back end actually performed, summed over
/// channel-width retries.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FabricWork {
    /// Placement refinement attempts executed (0 when restored).
    pub place_attempts: u64,
    /// Whether the successful attempt restored its placement.
    pub place_restored: bool,
    /// Wire segments traversed by freshly computed route paths.
    pub routed_wires: u64,
    /// Nets whose first-pass route was restored on the successful
    /// attempt.
    pub nets_restored: usize,
}

/// Why a netlist could not be compiled onto the fabric.
#[derive(Clone, PartialEq, Debug)]
pub enum CompileError {
    /// More LUTs/FFs than the fabric has slots.
    FabricFull {
        /// LUT slots required.
        needed: usize,
        /// LUT slots available.
        available: usize,
    },
    /// Routing failed even at the maximum channel width.
    Unroutable {
        /// Channel width at which routing gave up.
        tracks: usize,
        /// Nets that remained congested.
        overused: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::FabricFull { needed, available } => {
                write!(f, "design needs {needed} LUT slots, fabric has {available}")
            }
            CompileError::Unroutable { tracks, overused } => {
                write!(f, "{overused} nets unroutable at channel width {tracks}")
            }
        }
    }
}

impl Error for CompileError {}

/// A fully compiled kernel circuit: configuration plus reports.
#[derive(Clone, Debug)]
pub struct CompiledCircuit {
    /// The fabric configuration used (after any channel-width retries).
    pub config: FabricConfig,
    /// Where each netlist node landed.
    pub placement: Placement,
    /// The configuration bitstream.
    pub bitstream: Bitstream,
    /// Routing statistics (iterations, wirelength, channel width).
    pub route_stats: RouteStats,
    /// Routed timing: critical path and achievable clock.
    pub timing: TimingReport,
}

/// Places, routes, and configures a mapped netlist onto the fabric,
/// widening the routing channels (up to 4 doublings) if congestion
/// cannot be resolved.
///
/// # Errors
///
/// Returns [`CompileError`] if the netlist exceeds the fabric capacity
/// or remains unroutable at the maximum channel width.
pub fn compile(netlist: &LutNetlist, base: &FabricConfig) -> Result<CompiledCircuit, CompileError> {
    compile_cached(netlist, base, None).map(|(circuit, _)| circuit)
}

/// [`compile`] with memoization: restores placements and first-pass net
/// routes from `caches` when the structure matches, and reports the
/// work actually performed. The compiled circuit is bit-identical with
/// or without caches.
///
/// # Errors
///
/// Returns [`CompileError`] if the netlist exceeds the fabric capacity
/// or remains unroutable at the maximum channel width.
pub fn compile_cached(
    netlist: &LutNetlist,
    base: &FabricConfig,
    caches: Option<&FabricCaches>,
) -> Result<(CompiledCircuit, FabricWork), CompileError> {
    let mut config = base.clone();
    let mut last_overused = 0;
    let mut work = FabricWork::default();
    for _attempt in 0..5 {
        let (placement, place_work) =
            place::place_cached(netlist, &config, caches.map(|c| &c.place))?;
        work.place_attempts += place_work.attempts;
        work.place_restored = place_work.restored;
        match route::route_cached(netlist, &placement, &config, caches.map(|c| &c.route)) {
            Ok((routing, route_work)) => {
                work.routed_wires += route_work.routed_wires;
                work.nets_restored = route_work.nets_restored;
                let bitstream = bitstream::generate(netlist, &placement, &routing, &config);
                let timing = timing::analyze(netlist, &placement, &routing, &config);
                return Ok((
                    CompiledCircuit {
                        config,
                        placement,
                        bitstream,
                        route_stats: routing.stats,
                        timing,
                    },
                    work,
                ));
            }
            Err(route::RouteError::Congested { overused }) => {
                last_overused = overused;
                config.tracks *= 2;
            }
        }
    }
    Err(CompileError::Unroutable { tracks: config.tracks, overused: last_overused })
}
