//! The concurrent CAD service: background compilation workers.
//!
//! The paper's DPM is a *separate* processor — CAD runs while the main
//! MicroBlaze keeps executing the application. This module gives the
//! reproduction the same shape in host wall-clock: a [`CadService`]
//! owns a small pool of worker threads, a submitted job (typically
//! [`compile_circuit_cached`](crate::pipeline::compile_circuit_cached))
//! runs on a worker while the caller keeps simulating, and the caller
//! picks the result up through a poll-able [`CadHandle`].
//!
//! Concurrency here is strictly a host-side overlap: nothing about the
//! *modeled* timeline may depend on how fast the workers are or how
//! many there are. Callers must consume results only at deterministic
//! simulated-time boundaries (see `warp-online`'s orchestrator), which
//! is what keeps reports byte-identical across `WARP_CAD_THREADS`
//! settings.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable selecting the worker-pool size (default 1;
/// clamped to `1..=16`). The modeled timeline is identical for every
/// setting — the knob only trades host threads for wall-clock overlap.
pub const CAD_THREADS_ENV: &str = "WARP_CAD_THREADS";

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// State of one submitted job, shared between the worker and the
/// [`CadHandle`].
struct HandleState<T> {
    slot: Mutex<Slot<T>>,
    done: Condvar,
}

enum Slot<T> {
    Pending,
    Done(T),
    /// The job panicked on the worker; surfaced as a panic in
    /// [`CadHandle::wait`] rather than a silent hang.
    Poisoned,
}

/// A poll-able ticket for a job submitted to a [`CadService`].
pub struct CadHandle<T> {
    state: Arc<HandleState<T>>,
}

impl<T> CadHandle<T> {
    /// Takes the result if the job has finished, without blocking.
    ///
    /// # Panics
    ///
    /// Panics if the job itself panicked on its worker.
    pub fn poll(&self) -> Option<T> {
        let mut slot = self.state.slot.lock().expect("cad handle poisoned");
        match std::mem::replace(&mut *slot, Slot::Pending) {
            Slot::Pending => None,
            Slot::Done(value) => Some(value),
            Slot::Poisoned => panic!("CAD job panicked on its worker thread"),
        }
    }

    /// Blocks until the job finishes and takes its result.
    ///
    /// # Panics
    ///
    /// Panics if the job itself panicked on its worker.
    pub fn wait(self) -> T {
        let mut slot = self.state.slot.lock().expect("cad handle poisoned");
        loop {
            match std::mem::replace(&mut *slot, Slot::Pending) {
                Slot::Pending => {
                    slot = self.state.done.wait(slot).expect("cad handle poisoned");
                }
                Slot::Done(value) => return value,
                Slot::Poisoned => panic!("CAD job panicked on its worker thread"),
            }
        }
    }
}

/// A small pool of background CAD workers.
///
/// Dropping the service stops the workers after their current job; jobs
/// still queued are discarded (their handles never resolve), so keep
/// the service alive as long as any handle is outstanding.
pub struct CadService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl CadService {
    /// Creates a service with `threads` workers (clamped to `1..=16`).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let shared =
            Arc::new(Shared { queue: Mutex::new(Queue::default()), available: Condvar::new() });
        let workers = (0..threads.clamp(1, 16))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cad-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn CAD worker")
            })
            .collect();
        CadService { shared, workers }
    }

    /// Creates a service sized by [`CAD_THREADS_ENV`] (default 1).
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var(CAD_THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1);
        Self::new(threads)
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues `job` for execution on a worker and returns its handle.
    pub fn submit<T, F>(&self, job: F) -> CadHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let state = Arc::new(HandleState { slot: Mutex::new(Slot::Pending), done: Condvar::new() });
        let worker_state = Arc::clone(&state);
        let wrapped: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            let mut slot = worker_state.slot.lock().expect("cad handle poisoned");
            *slot = match result {
                Ok(value) => Slot::Done(value),
                Err(_) => Slot::Poisoned,
            };
            worker_state.done.notify_all();
        });
        let mut queue = self.shared.queue.lock().expect("cad queue poisoned");
        queue.jobs.push_back(wrapped);
        drop(queue);
        self.shared.available.notify_one();
        CadHandle { state }
    }
}

impl Drop for CadService {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("cad queue poisoned");
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("cad queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).expect("cad queue poisoned");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_resolve_through_poll_and_wait() {
        let service = CadService::new(2);
        assert_eq!(service.threads(), 2);
        let h = service.submit(|| 6 * 7);
        assert_eq!(h.wait(), 42);

        let handles: Vec<_> = (0..8u64).map(|i| service.submit(move || i * i)).collect();
        let squares: Vec<u64> = handles.into_iter().map(CadHandle::wait).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn poll_is_non_blocking_and_eventually_ready() {
        let service = CadService::new(1);
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let h = service.submit(move || {
            rx.recv().ok();
            "done"
        });
        assert!(h.poll().is_none(), "job blocked on the channel cannot be ready");
        tx.send(()).unwrap();
        assert_eq!(h.wait(), "done");
    }

    #[test]
    fn thread_count_is_clamped_and_env_defaults_to_one() {
        assert_eq!(CadService::new(0).threads(), 1);
        assert_eq!(CadService::new(64).threads(), 16);
    }
}
