//! The staged warp pipeline: every paper phase as a typed function.
//!
//! The paper's warp flow is a chain of distinct on-chip CAD phases —
//! profile, decompile, synthesize/map/place/route, patch, execute. This
//! module makes that chain explicit: each phase is a free function from
//! one typed artifact to the next, so anything between phases can be
//! inspected, cached, reused, or parallelized:
//!
//! | stage | artifact produced |
//! |---|---|
//! | [`trace_software`] | [`TracedRun`] — software-only outcome + trace |
//! | [`profile_trace`] | [`HotRegion`] — the profiler's chosen loop |
//! | [`decompile`] | [`DecompiledKernel`] — kernel + stable fingerprint |
//! | [`compile_circuit`] | [`CompiledWcla`] — circuit, synth report, DPM cost |
//! | [`plan_patch`] | [`PatchedBinary`] — the binary rewrite plan |
//! | [`execute_and_measure`] | [`WarpMeasurement`] — the [`WarpReport`] |
//!
//! [`run_staged`] drives the whole chain, timing each stage into a
//! [`PipelineStats`] and optionally consulting a
//! [`CircuitCache`] so that a second warp of
//! an identical kernel performs zero synthesis/place/route work.
//! [`warp_run`](crate::warp_run) is the trivial composition with no
//! cache — it returns exactly what the monolithic implementation did.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use mb_sim::{MbConfig, Outcome, StopReason, Trace};
use warp_cdfg::LoopKernel;
use warp_profiler::Profiler;
use warp_synth::SynthReport;
use warp_wcla::device::WCLA_WINDOW;
use warp_wcla::patch::{apply_patch, stub_base_for, PatchError, PatchPlan};
use warp_wcla::{CadCaches, CadWork, WclaCircuit, WclaDevice, WCLA_BASE};
use workloads::BuiltWorkload;

use crate::cache::CircuitCache;
use crate::dpm::{self, DpmReport};
use crate::system::{WarpError, WarpReport};
use crate::WarpOptions;

pub use warp_profiler::HotRegion;

/// Phase 1 artifact: the software-only traced execution.
#[derive(Clone, Debug)]
pub struct TracedRun {
    /// How the software-only run ended.
    pub outcome: Outcome,
    /// The full instruction trace (feeds the profiler and the ARM
    /// baseline simulations).
    pub trace: Trace,
    /// Software-only seconds at the MicroBlaze clock.
    pub sw_seconds: f64,
}

impl TracedRun {
    /// O(1) per-PC aggregate view of the trace — the interface for
    /// stages that attribute cycles/instructions to code regions and
    /// never need the raw event vector.
    #[must_use]
    pub fn aggregates(&self) -> &mb_sim::PcAggregates {
        self.trace.aggregates()
    }

    /// Cycles the software-only run spent in the half-open PC range
    /// `[start, end)`.
    #[must_use]
    pub fn cycles_in_range(&self, start: u32, end: u32) -> u64 {
        self.trace.cycles_in_range(start, end)
    }
}

/// Phase 3 artifact: the decompiled kernel plus its identity.
#[derive(Clone, Debug)]
pub struct DecompiledKernel {
    /// The hardware-ready kernel.
    pub kernel: LoopKernel,
    /// Stable content hash of the kernel — the circuit-cache key.
    pub fingerprint: u64,
    /// Whether the profiler's chosen region matched the benchmark
    /// annotation.
    pub profiler_agrees: bool,
}

/// Phase 4 artifact: the kernel compiled end-to-end for the WCLA.
///
/// Everything in here is a pure function of the decompiled kernel —
/// nothing depends on the surrounding program or on [`WarpOptions`] —
/// which is what makes it safe to share through the
/// [`CircuitCache`].
#[derive(Clone, Debug)]
pub struct CompiledWcla {
    /// The compiled circuit (netlist, placed/routed fabric, cycle model).
    pub circuit: WclaCircuit,
    /// Synthesis cost reporting.
    pub synth: SynthReport,
    /// The DPM's modeled CAD cost for this compile. Unlike the circuit,
    /// this is *not* a pure function of the kernel — an incremental
    /// compile that reused cached sub-kernel artifacts reports a smaller
    /// cost than a from-scratch one for the same bit-identical circuit.
    pub dpm: DpmReport,
    /// What the CAD chain actually did (cones mapped vs. replayed,
    /// placement attempts, wires routed vs. restored).
    pub work: CadWork,
    /// Fingerprint of the kernel this was compiled from.
    pub fingerprint: u64,
}

/// Phase 5 artifact: the binary rewrite that invokes the hardware.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatchedBinary {
    /// The prepared patch (stub plus head replacement).
    pub plan: PatchPlan,
}

/// The final artifact: the measured warp plus where the wall-clock went.
#[derive(Clone, Debug)]
pub struct WarpMeasurement {
    /// Everything measured from the warped execution.
    pub report: WarpReport,
    /// Per-stage pipeline timing (filled by [`run_staged`]; zeroed when
    /// the stages are composed by hand).
    pub stats: PipelineStats,
}

/// Wall-clock nanoseconds spent in each pipeline stage of one warp.
///
/// `cad_ns` covers the whole synthesis → map → place → route →
/// bitstream chain ([`compile_circuit`]); on a circuit-cache hit it is
/// exactly zero and [`cache_hit`](PipelineStats::cache_hit) is set —
/// that pair is the observable proof that a hit performs no CAD work.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PipelineStats {
    /// Software-only traced execution.
    pub trace_ns: u128,
    /// Profiler replay and hot-region selection.
    pub profile_ns: u128,
    /// Decompilation (including fingerprinting).
    pub decompile_ns: u128,
    /// Synthesis, mapping, place & route, bitstream, DPM estimate.
    pub cad_ns: u128,
    /// Patch planning.
    pub patch_ns: u128,
    /// Warped execution, verification, and accounting.
    pub execute_ns: u128,
    /// Whether the compiled circuit came from a [`CircuitCache`].
    pub cache_hit: bool,
}

impl PipelineStats {
    /// Total nanoseconds across all stages.
    #[must_use]
    pub fn total_ns(&self) -> u128 {
        self.trace_ns
            + self.profile_ns
            + self.decompile_ns
            + self.cad_ns
            + self.patch_ns
            + self.execute_ns
    }

    /// Sums stage timings across many runs (for suite-level reporting).
    /// The aggregate `cache_hit` is set only if *every* run hit.
    #[must_use]
    pub fn accumulate(runs: &[PipelineStats]) -> PipelineStats {
        let mut total = PipelineStats { cache_hit: !runs.is_empty(), ..PipelineStats::default() };
        for s in runs {
            total.trace_ns += s.trace_ns;
            total.profile_ns += s.profile_ns;
            total.decompile_ns += s.decompile_ns;
            total.cad_ns += s.cad_ns;
            total.patch_ns += s.patch_ns;
            total.execute_ns += s.execute_ns;
            total.cache_hit &= s.cache_hit;
        }
        total
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = |ns: u128| ns as f64 / 1e6;
        write!(
            f,
            "trace {:.1} ms | profile {:.1} ms | decompile {:.1} ms | \
             cad {:.1} ms{} | patch {:.1} ms | execute {:.1} ms",
            ms(self.trace_ns),
            ms(self.profile_ns),
            ms(self.decompile_ns),
            ms(self.cad_ns),
            if self.cache_hit { " (cache hit)" } else { "" },
            ms(self.patch_ns),
            ms(self.execute_ns),
        )
    }
}

/// Phase 1: software-only traced execution, verified against the golden
/// model.
///
/// # Errors
///
/// [`WarpError::Software`] if the run faults, exhausts the cycle
/// budget, or produces wrong results.
pub fn trace_software(
    built: &BuiltWorkload,
    options: &WarpOptions,
) -> Result<TracedRun, WarpError> {
    let mb_config = MbConfig::paper_default();
    let mut sys = built.instantiate(&mb_config);
    let (outcome, trace) = sys
        .run_traced(options.cycle_budget.max_cycles)
        .map_err(|e| WarpError::Software(e.to_string()))?;
    if outcome.stop == StopReason::CycleLimit {
        return Err(WarpError::Software("cycle budget exhausted".into()));
    }
    built.verify(sys.dmem()).map_err(|e| WarpError::Software(e.to_string()))?;
    let sw_seconds = mb_config.seconds(outcome.cycles);
    Ok(TracedRun { outcome, trace, sw_seconds })
}

/// Phase 2: on-chip profiling — replay the trace through the
/// branch-frequency cache and pick the hottest loop.
///
/// # Errors
///
/// [`WarpError::NoHotRegion`] if the profiler saw no loops.
pub fn profile_trace(traced: &TracedRun, options: &WarpOptions) -> Result<HotRegion, WarpError> {
    let mut profiler = Profiler::new(options.profiler);
    profiler.observe_trace(&traced.trace);
    profiler.best().ok_or(WarpError::NoHotRegion)
}

/// Phase 3: decompile the hot region into a hardware-ready kernel and
/// fingerprint it.
///
/// # Errors
///
/// [`WarpError::Decompile`] if the region is not WCLA-implementable.
pub fn decompile(built: &BuiltWorkload, hot: &HotRegion) -> Result<DecompiledKernel, WarpError> {
    let kernel = warp_cdfg::decompile_loop(&built.program, hot.head, hot.tail)
        .map_err(WarpError::Decompile)?;
    let fingerprint = kernel.fingerprint();
    let profiler_agrees = hot.head == built.kernel.head && hot.tail == built.kernel.tail;
    Ok(DecompiledKernel { kernel, fingerprint, profiler_agrees })
}

/// Phase 4: the CAD chain — synthesis, technology mapping, place &
/// route, bitstream, cycle model, and the DPM cost estimate.
///
/// A from-scratch compile runs through fresh, private [`CadCaches`]: the
/// memoizing tools *are* the CAD algorithm, so even a cold compile
/// benefits from within-chain reuse (a channel-width retry restores the
/// placement it just computed instead of re-placing), and its modeled
/// cost is identical to what an online runtime charges for the same
/// kernel through empty shared caches.
///
/// # Errors
///
/// [`WarpError::Fabric`] if the kernel does not fit or route.
pub fn compile_circuit(decompiled: &DecompiledKernel) -> Result<CompiledWcla, WarpError> {
    compile_circuit_cached(decompiled, Some(&CadCaches::new()))
}

/// [`compile_circuit`] with sub-kernel memoization: mapped cones,
/// placements, and net routes are reused from `caches` where the
/// structure matches. The circuit artifacts are bit-identical with or
/// without caches — a from-scratch compile *is* an incremental compile
/// with empty caches — but the DPM cost reflects only the work actually
/// performed, which is what makes a re-warp of a shifted-but-similar
/// kernel delta-cost on the online timeline.
///
/// # Errors
///
/// [`WarpError::Fabric`] if the kernel does not fit or route.
pub fn compile_circuit_cached(
    decompiled: &DecompiledKernel,
    caches: Option<&CadCaches>,
) -> Result<CompiledWcla, WarpError> {
    let (circuit, synth, work) =
        WclaCircuit::build_cached(decompiled.kernel.clone(), caches).map_err(WarpError::Fabric)?;
    let dpm = dpm::estimate(&circuit.kernel, &synth, &circuit.netlist, &circuit.compiled, &work);
    Ok(CompiledWcla { circuit, synth, dpm, work, fingerprint: decompiled.fingerprint })
}

/// Phase 5: plan the binary rewrite — the invocation stub goes at
/// [`stub_base_for`] the program image, and the loop head becomes a jump
/// to it.
///
/// # Errors
///
/// [`WarpError::Patch`] if the stub cannot be built.
pub fn plan_patch(
    built: &BuiltWorkload,
    compiled: &CompiledWcla,
) -> Result<PatchedBinary, WarpError> {
    plan_patch_kernel(built, &compiled.circuit.kernel)
}

/// [`plan_patch`] from the decompiled kernel alone. The plan depends
/// only on the kernel and the program image — not on the compiled
/// circuit — so an online runtime can plan the rewrite at detection
/// time, before (and concurrently with) compilation.
///
/// # Errors
///
/// [`WarpError::Patch`] if the stub cannot be built.
pub fn plan_patch_kernel(
    built: &BuiltWorkload,
    kernel: &LoopKernel,
) -> Result<PatchedBinary, WarpError> {
    let head_word = built
        .program
        .word_at(kernel.head)
        .ok_or(WarpError::Patch(PatchError::NoScratchRegister))?;
    let stub_base = stub_base_for(built.program.end());
    let plan =
        PatchPlan::new(kernel, head_word, stub_base, kernel.tail + 4).map_err(WarpError::Patch)?;
    Ok(PatchedBinary { plan })
}

/// Phase 6: run the patched binary with the WCLA device mapped, verify
/// against the golden model, and account time and energy.
///
/// # Errors
///
/// [`WarpError::PatchApply`], [`WarpError::Warped`], or
/// [`WarpError::Verification`] from the respective sub-steps.
pub fn execute_and_measure(
    built: &BuiltWorkload,
    traced: &TracedRun,
    decompiled: &DecompiledKernel,
    compiled: &CompiledWcla,
    patched: &PatchedBinary,
    options: &WarpOptions,
) -> Result<WarpMeasurement, WarpError> {
    let mb_config = MbConfig::paper_default();
    let map_stats = compiled.circuit.netlist.stats();
    let timing = compiled.circuit.compiled.timing;
    let route_stats = compiled.circuit.compiled.route_stats;
    let bitstream_bytes = compiled.circuit.compiled.bitstream.len_bytes();
    let hw_power_w =
        options.wcla_power.circuit_power_w(&map_stats, compiled.circuit.model.fabric_clock_hz);

    let mut warped = built.instantiate(&mb_config);
    let (device, hw_stats) = WclaDevice::new(compiled.circuit.clone(), mb_config.clock_hz);
    warped.map_peripheral(WCLA_BASE, WCLA_WINDOW, Box::new(device));
    apply_patch(warped.imem_mut(), &patched.plan).map_err(WarpError::PatchApply)?;

    let warped_outcome = warped
        .run(options.cycle_budget.max_cycles)
        .map_err(|e| WarpError::Warped(e.to_string()))?;
    if warped_outcome.stop == StopReason::CycleLimit {
        return Err(WarpError::Warped("cycle budget exhausted".into()));
    }

    // Verification: the warped run must produce the golden model's
    // memory exactly.
    built.verify(warped.dmem()).map_err(|e| WarpError::Verification(e.to_string()))?;

    // Time and energy accounting.
    let hw = *hw_stats.lock().expect("wcla stats lock");
    let sw_seconds = traced.sw_seconds;
    let warped_cycles = warped_outcome.cycles;
    let warped_seconds = mb_config.seconds(warped_cycles);
    let mb_stall_cycles = hw.mb_stall_cycles;
    let mb_active_cycles = warped_cycles.saturating_sub(mb_stall_cycles);
    let t_active = mb_config.seconds(mb_active_cycles);
    let t_idle = mb_config.seconds(mb_stall_cycles);
    let hw_seconds = hw.fabric_cycles as f64 / warp_wcla::FABRIC_CLOCK_HZ as f64;

    let energy_sw = warp_power::mb_only_energy(&options.mb_power, sw_seconds);
    let energy_warp =
        warp_power::figure5_energy(&options.mb_power, hw_power_w, t_active, t_idle, hw_seconds);

    let report = WarpReport {
        name: built.name.clone(),
        sw_cycles: traced.outcome.cycles,
        sw_seconds,
        warped_cycles,
        warped_seconds,
        mb_active_cycles,
        mb_stall_cycles,
        hw,
        hw_seconds,
        profiler_agrees: decompiled.profiler_agrees,
        energy_sw,
        energy_warp,
        hw_power_w,
        map_stats,
        timing,
        route_stats,
        dpm: compiled.dpm,
        dpm_clock_hz: options.dpm_clock_hz,
        bitstream_bytes,
    };
    Ok(WarpMeasurement { report, stats: PipelineStats::default() })
}

/// Runs the complete staged pipeline on one benchmark, timing each
/// stage and optionally consulting a circuit cache.
///
/// # Errors
///
/// Returns [`WarpError`] describing the failing phase.
pub fn run_staged(
    built: &BuiltWorkload,
    options: &WarpOptions,
    cache: Option<&CircuitCache>,
) -> Result<WarpMeasurement, WarpError> {
    let start = Instant::now();
    let traced = trace_software(built, options)?;
    let trace_ns = start.elapsed().as_nanos();
    let mut measurement = resume_after_trace(built, &traced, options, cache)?;
    measurement.stats.trace_ns = trace_ns;
    Ok(measurement)
}

/// Runs phases 2–6 on an already-traced benchmark.
///
/// Callers that need the trace for their own purposes (the experiment
/// harness feeds it to the ARM baseline simulators) run
/// [`trace_software`] once and resume here, instead of paying for a
/// second software simulation.
///
/// # Errors
///
/// Returns [`WarpError`] describing the failing phase.
pub fn resume_after_trace(
    built: &BuiltWorkload,
    traced: &TracedRun,
    options: &WarpOptions,
    cache: Option<&CircuitCache>,
) -> Result<WarpMeasurement, WarpError> {
    let mut stats = PipelineStats::default();

    let t = Instant::now();
    let hot = profile_trace(traced, options)?;
    stats.profile_ns = t.elapsed().as_nanos();

    let t = Instant::now();
    let decompiled = decompile(built, &hot)?;
    stats.decompile_ns = t.elapsed().as_nanos();

    let t = Instant::now();
    let (compiled, cache_hit) = match cache {
        Some(cache) => cache.lookup_or_compile(&decompiled)?,
        None => (Arc::new(compile_circuit(&decompiled)?), false),
    };
    stats.cache_hit = cache_hit;
    // A cache hit performs zero synthesis/place/route work; charge it
    // nothing so the stats prove the CAD chain was skipped.
    stats.cad_ns = if cache_hit { 0 } else { t.elapsed().as_nanos() };

    let t = Instant::now();
    let patched = plan_patch(built, &compiled)?;
    stats.patch_ns = t.elapsed().as_nanos();

    let t = Instant::now();
    let mut measurement =
        execute_and_measure(built, traced, &decompiled, &compiled, &patched, options)?;
    stats.execute_ns = t.elapsed().as_nanos();

    measurement.stats = stats;
    Ok(measurement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_sums_and_ands_hits() {
        let hit = PipelineStats { cad_ns: 0, execute_ns: 5, cache_hit: true, ..Default::default() };
        let miss =
            PipelineStats { cad_ns: 7, execute_ns: 3, cache_hit: false, ..Default::default() };
        let total = PipelineStats::accumulate(&[hit, miss]);
        assert_eq!(total.cad_ns, 7);
        assert_eq!(total.execute_ns, 8);
        assert!(!total.cache_hit, "one miss taints the aggregate");
        assert!(PipelineStats::accumulate(&[hit, hit]).cache_hit);
        assert!(!PipelineStats::accumulate(&[]).cache_hit);
        assert_eq!(total.total_ns(), 15);
    }

    #[test]
    fn stages_compose_to_the_same_report_as_warp_run() {
        let built =
            workloads::by_name("canrdr").unwrap().build(mb_isa::MbFeatures::paper_default());
        let options = WarpOptions::default();

        // Hand-composed stages.
        let traced = trace_software(&built, &options).unwrap();
        let hot = profile_trace(&traced, &options).unwrap();
        let decompiled = decompile(&built, &hot).unwrap();
        let compiled = compile_circuit(&decompiled).unwrap();
        let patched = plan_patch(&built, &compiled).unwrap();
        let by_hand =
            execute_and_measure(&built, &traced, &decompiled, &compiled, &patched, &options)
                .unwrap();

        let composed = crate::warp_run(&built, &options).unwrap();
        assert_eq!(by_hand.report, composed, "warp_run must be exactly this composition");
    }
}
