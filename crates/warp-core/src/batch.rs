//! Parallel batch execution of warp runs with deterministic results.
//!
//! The paper's Figure 4 system runs many processors against one DPM;
//! our evaluation harness has the mirror-image problem — many warp
//! *simulations* against one host machine. [`BatchRunner`] fans a batch
//! of independent pipeline runs across `std::thread::scope` workers
//! (no extra dependencies, no detached threads) while keeping the
//! output indistinguishable from a sequential loop:
//!
//! * results come back ordered by input position, never by completion
//!   order;
//! * on failure, the error reported is the one the *sequential* loop
//!   would have hit first (lowest input index), regardless of which
//!   worker failed first on the wall clock;
//! * every run is deterministic, so a parallel suite reproduces the
//!   sequential Figure 6/7 numbers exactly.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use mb_isa::MbFeatures;
use workloads::Workload;

use crate::cache::CircuitCache;
use crate::experiments::{compare_benchmark_staged, BenchmarkComparison};
use crate::pipeline::{run_staged, PipelineStats, WarpMeasurement};
use crate::system::WarpError;
use crate::WarpOptions;

/// A scoped-thread pool for warp pipelines and experiment suites.
#[derive(Clone, Debug)]
pub struct BatchRunner {
    options: WarpOptions,
    threads: usize,
}

impl BatchRunner {
    /// Creates a runner using every available hardware thread.
    #[must_use]
    pub fn new(options: WarpOptions) -> Self {
        let threads = thread::available_parallelism().map_or(1, NonZeroUsize::get);
        BatchRunner { options, threads }
    }

    /// Overrides the worker-thread count (clamped to at least one).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The options every run in this batch uses.
    #[must_use]
    pub fn options(&self) -> &WarpOptions {
        &self.options
    }

    /// Deterministic parallel map: applies `f` to every item on the
    /// worker pool and returns the outputs in input order. If any item
    /// fails, the error returned is the lowest-index one — exactly what
    /// a sequential `for` loop would have reported.
    ///
    /// # Errors
    ///
    /// The first (by input index) error produced by `f`.
    pub fn run_map<I, T, E, F>(&self, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        I: Sync,
        T: Send,
        E: Send,
        F: Fn(usize, &I) -> Result<T, E> + Sync,
    {
        let slots: Vec<Mutex<Option<Result<T, E>>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(items.len().max(1));
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(i, item);
                    *slots[i].lock().expect("result slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("result slot").expect("every slot filled"))
            .collect()
    }

    /// Warps every workload through the staged pipeline, sharing one
    /// circuit cache, and returns the measurements in input order.
    ///
    /// # Errors
    ///
    /// The first failing workload's [`WarpError`] (by input order).
    pub fn warp_all(
        &self,
        apps: &[Workload],
        cache: &CircuitCache,
    ) -> Result<Vec<WarpMeasurement>, WarpError> {
        self.run_map(apps, |_, w| {
            let built = w.build(MbFeatures::paper_default());
            run_staged(&built, &self.options, Some(cache))
        })
    }

    /// Runs the full benchmark comparison (MicroBlaze, four ARM cores,
    /// warp) for every workload, in input order — the parallel
    /// equivalent of
    /// [`run_paper_suite`](crate::experiments::run_paper_suite).
    ///
    /// # Errors
    ///
    /// The first failing benchmark's [`WarpError`] (by input order).
    pub fn run_suite(
        &self,
        apps: &[Workload],
        cache: &CircuitCache,
    ) -> Result<Vec<BenchmarkComparison>, WarpError> {
        Ok(self.run_suite_measured(apps, cache)?.0)
    }

    /// [`run_suite`](Self::run_suite), also returning each benchmark's
    /// per-stage pipeline timing so harnesses can report where the
    /// wall-clock went.
    ///
    /// # Errors
    ///
    /// The first failing benchmark's [`WarpError`] (by input order).
    pub fn run_suite_measured(
        &self,
        apps: &[Workload],
        cache: &CircuitCache,
    ) -> Result<(Vec<BenchmarkComparison>, Vec<PipelineStats>), WarpError> {
        let results =
            self.run_map(apps, |_, w| compare_benchmark_staged(w, &self.options, Some(cache)))?;
        Ok(results.into_iter().unzip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_map_preserves_input_order() {
        let runner = BatchRunner::new(WarpOptions::default()).with_threads(3);
        let items: Vec<usize> = (0..17).collect();
        let out: Vec<usize> = runner.run_map(&items, |i, &x| Ok::<_, ()>(i * 100 + x)).unwrap();
        assert_eq!(out, (0..17).map(|i| i * 101).collect::<Vec<_>>());
    }

    #[test]
    fn run_map_reports_the_sequentially_first_error() {
        let runner = BatchRunner::new(WarpOptions::default()).with_threads(4);
        let items: Vec<usize> = (0..16).collect();
        // Items 3 and 9 fail; a sequential loop would report 3.
        let err = runner
            .run_map(&items, |_, &x| if x == 3 || x == 9 { Err(x) } else { Ok(x) })
            .unwrap_err();
        assert_eq!(err, 3);
    }

    #[test]
    fn thread_count_is_clamped() {
        let runner = BatchRunner::new(WarpOptions::default()).with_threads(0);
        assert_eq!(runner.threads(), 1);
    }
}
