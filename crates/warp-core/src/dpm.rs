//! Dynamic partitioning module cost model.
//!
//! The paper implements the DPM "as another embedded MicroBlaze
//! processor core" running the ROCPART tools, and the companion papers
//! (DATE'04, DAC'04, DAC'03) emphasize that those lean tools execute in
//! seconds and well under a megabyte on such a processor. Our CAD
//! algorithms run natively in this reproduction, so the DPM's cost is
//! *modeled*: each stage is charged MicroBlaze cycles proportional to
//! the work units it actually processed (instructions decompiled, gates
//! synthesized, cuts enumerated, swaps attempted, wires explored), with
//! per-unit constants representing a straightforward embedded port of
//! the same algorithms.

use warp_cdfg::LoopKernel;
use warp_fabric::CompiledCircuit;
use warp_synth::{LutNetlist, SynthReport};
use warp_wcla::CadWork;

/// Cycles charged per unit of work in each CAD stage (MicroBlaze
/// cycles; documented model constants).
pub mod costs {
    /// Per instruction decompiled (decode, classify, DFG build).
    pub const DECOMPILE_PER_INSN: u64 = 220;
    /// Per gate created during RT synthesis.
    pub const SYNTH_PER_GATE: u64 = 90;
    /// Per gate during technology mapping (cut enumeration dominates).
    pub const MAP_PER_GATE: u64 = 260;
    /// Per placement swap attempt.
    pub const PLACE_PER_ATTEMPT: u64 = 55;
    /// Per routed wire segment (A* push/pop amortized).
    pub const ROUTE_PER_WIRE: u64 = 480;
    /// Per bitstream word written.
    pub const BITSTREAM_PER_WORD: u64 = 12;
}

/// The DPM's modeled execution cost for one warp.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DpmReport {
    /// Cycles spent decompiling.
    pub decompile_cycles: u64,
    /// Cycles spent in RT/logic synthesis.
    pub synth_cycles: u64,
    /// Cycles spent in technology mapping.
    pub map_cycles: u64,
    /// Cycles spent placing.
    pub place_cycles: u64,
    /// Cycles spent routing.
    pub route_cycles: u64,
    /// Cycles spent writing the bitstream.
    pub bitstream_cycles: u64,
    /// Peak data-structure footprint in bytes (netlists + routing
    /// state), the on-chip memory requirement.
    pub peak_memory_bytes: u64,
}

impl DpmReport {
    /// Total DPM cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.decompile_cycles
            + self.synth_cycles
            + self.map_cycles
            + self.place_cycles
            + self.route_cycles
            + self.bitstream_cycles
    }

    /// Wall-clock seconds on a DPM clocked at `clock_hz`.
    #[must_use]
    pub fn seconds(&self, clock_hz: u64) -> f64 {
        self.total_cycles() as f64 / clock_hz as f64
    }
}

/// Derives the DPM cost model from what the tools actually did.
///
/// Each stage is charged for the work units it *performed*, taken from
/// the [`CadWork`] accounting of the compile. A from-scratch compile
/// (empty caches) charges the full chain; an incremental re-warp that
/// replayed mapped cones, restored its placement, and restored its net
/// routes is charged only the delta — decompilation, full re-synthesis
/// (the sweep always runs), whatever cut enumeration and routing the
/// caches could not cover, and the bitstream write (the physical
/// reconfiguration is never skipped).
#[must_use]
pub fn estimate(
    kernel: &LoopKernel,
    synth: &SynthReport,
    netlist: &LutNetlist,
    compiled: &CompiledCircuit,
    work: &CadWork,
) -> DpmReport {
    let gates = synth.gates_before_sweep.max(1);
    let luts = netlist.lut_count() as u64;

    // Peak memory: gate netlist (≈16 B/gate), LUT netlist (≈24 B/LUT),
    // routing occupancy/history (≈8 B/wire), bitstream.
    let wires = (compiled.config.wire_count()) as u64;
    let peak_memory_bytes =
        gates * 16 + luts * 24 + wires * 8 + compiled.bitstream.len_bytes() as u64;

    DpmReport {
        decompile_cycles: kernel.body_insns as u64 * costs::DECOMPILE_PER_INSN,
        synth_cycles: gates * costs::SYNTH_PER_GATE,
        map_cycles: work.map.gates_enumerated * costs::MAP_PER_GATE,
        place_cycles: work.fabric.place_attempts * costs::PLACE_PER_ATTEMPT,
        route_cycles: work.fabric.routed_wires * costs::ROUTE_PER_WIRE,
        bitstream_cycles: compiled.bitstream.words().len() as u64 * costs::BITSTREAM_PER_WORD,
        peak_memory_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use warp_cdfg::decompile_loop;
    use warp_wcla::WclaCircuit;

    #[test]
    fn dpm_cost_is_seconds_scale_and_sub_megabyte_for_small_kernels() {
        let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
        let kernel = decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap();
        let (circuit, synth, work) = WclaCircuit::build_cached(kernel, None).unwrap();
        let report = estimate(&circuit.kernel, &synth, &circuit.netlist, &circuit.compiled, &work);
        let seconds = report.seconds(85_000_000);
        assert!(
            (0.000_01..30.0).contains(&seconds),
            "DPM time {seconds:.4}s outside the on-chip CAD band"
        );
        assert!(
            report.peak_memory_bytes < 1_500_000,
            "DPM memory {} B should stay lean",
            report.peak_memory_bytes
        );
        assert!(report.total_cycles() > 0);
    }

    #[test]
    fn bigger_kernels_cost_more() {
        let small = {
            let b = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
            let k = decompile_loop(&b.program, b.kernel.head, b.kernel.tail).unwrap();
            let (c, s, w) = WclaCircuit::build_cached(k, None).unwrap();
            estimate(&c.kernel, &s, &c.netlist, &c.compiled, &w).total_cycles()
        };
        let big = {
            let b = workloads::by_name("idct").unwrap().build(MbFeatures::paper_default());
            let k = decompile_loop(&b.program, b.kernel.head, b.kernel.tail).unwrap();
            let (c, s, w) = WclaCircuit::build_cached(k, None).unwrap();
            estimate(&c.kernel, &s, &c.netlist, &c.compiled, &w).total_cycles()
        };
        assert!(big > small * 5, "idct DPM {big} vs brev {small}");
    }
}
