//! End-to-end single-processor warp execution.
//!
//! The heavy lifting lives in [`pipeline`](crate::pipeline), where each
//! CAD phase is a typed stage; this module holds the flow's error and
//! report types and [`warp_run`], the trivial composition of those
//! stages.

use std::error::Error;
use std::fmt;

use warp_cdfg::DecompileError;
use warp_fabric::CompileError;
use warp_power::EnergyBreakdown;
use warp_wcla::patch::PatchError;
use warp_wcla::WclaStats;
use workloads::BuiltWorkload;

use crate::dpm::DpmReport;
use crate::pipeline;
use crate::WarpOptions;

/// Why a warp run failed.
#[derive(Debug)]
pub enum WarpError {
    /// The software-only run did not exit or faulted.
    Software(String),
    /// The profiler saw no loops.
    NoHotRegion,
    /// The hot region could not be decompiled.
    Decompile(DecompileError),
    /// The kernel did not fit or route on the fabric.
    Fabric(CompileError),
    /// The binary could not be patched.
    Patch(PatchError),
    /// The patch did not fit in instruction memory.
    PatchApply(mb_sim::MemError),
    /// The warped run did not exit or faulted.
    Warped(String),
    /// The warped run produced different results than the golden model.
    Verification(String),
}

impl fmt::Display for WarpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpError::Software(e) => write!(f, "software-only run failed: {e}"),
            WarpError::NoHotRegion => f.write_str("profiler found no hot region"),
            WarpError::Decompile(e) => write!(f, "decompilation rejected the kernel: {e}"),
            WarpError::Fabric(e) => write!(f, "fabric compilation failed: {e}"),
            WarpError::Patch(e) => write!(f, "binary patching failed: {e}"),
            WarpError::PatchApply(e) => write!(f, "patch application failed: {e}"),
            WarpError::Warped(e) => write!(f, "warped run failed: {e}"),
            WarpError::Verification(e) => write!(f, "warped run diverged: {e}"),
        }
    }
}

impl Error for WarpError {
    /// The wrapping variants expose the phase-specific error beneath
    /// them, so callers can walk the cause chain with
    /// [`Error::source`] instead of string-matching [`fmt::Display`]
    /// output.
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WarpError::Decompile(e) => Some(e),
            WarpError::Fabric(e) => Some(e),
            WarpError::Patch(e) => Some(e),
            WarpError::PatchApply(e) => Some(e),
            WarpError::Software(_)
            | WarpError::NoHotRegion
            | WarpError::Warped(_)
            | WarpError::Verification(_) => None,
        }
    }
}

/// Everything measured from one end-to-end warp.
#[derive(Clone, PartialEq, Debug)]
pub struct WarpReport {
    /// Benchmark name.
    pub name: String,
    /// Software-only cycles (MicroBlaze alone).
    pub sw_cycles: u64,
    /// Software-only seconds.
    pub sw_seconds: f64,
    /// Warped-run total MicroBlaze cycles (including stall).
    pub warped_cycles: u64,
    /// Warped-run seconds.
    pub warped_seconds: f64,
    /// MicroBlaze cycles actually executing during the warped run.
    pub mb_active_cycles: u64,
    /// MicroBlaze cycles stalled on the WCLA.
    pub mb_stall_cycles: u64,
    /// Hardware activity counters.
    pub hw: WclaStats,
    /// Hardware-active seconds.
    pub hw_seconds: f64,
    /// The profiler's chosen region matched the benchmark annotation.
    pub profiler_agrees: bool,
    /// Software-only energy (Figure 5 with no hardware terms).
    pub energy_sw: EnergyBreakdown,
    /// Warped energy (Figure 5).
    pub energy_warp: EnergyBreakdown,
    /// WCLA circuit power (W).
    pub hw_power_w: f64,
    /// Mapped-circuit statistics.
    pub map_stats: warp_synth::MapStats,
    /// Routed timing.
    pub timing: warp_fabric::TimingReport,
    /// Route statistics.
    pub route_stats: warp_fabric::RouteStats,
    /// DPM cost model.
    pub dpm: DpmReport,
    /// The DPM clock (from [`WarpOptions::dpm_clock_hz`]) used whenever
    /// this report converts DPM cycles to seconds.
    pub dpm_clock_hz: u64,
    /// Bitstream size in bytes.
    pub bitstream_bytes: usize,
}

impl WarpReport {
    /// Steady-state speedup of the warped system over software-only.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sw_seconds / self.warped_seconds
    }

    /// Energy reduction fraction (0.30 = 30% less energy).
    #[must_use]
    pub fn energy_reduction(&self) -> f64 {
        1.0 - self.energy_warp.total() / self.energy_sw.total()
    }

    /// One-time DPM (on-chip CAD) seconds for this warp, at the clock
    /// the run was configured with.
    #[must_use]
    pub fn dpm_seconds(&self) -> f64 {
        self.dpm.seconds(self.dpm_clock_hz)
    }

    /// Speedup including one-time DPM work amortized over `n` runs of
    /// the application (the transparent-optimization cost view).
    #[must_use]
    pub fn speedup_amortized(&self, n: u64) -> f64 {
        let dpm_s = self.dpm_seconds();
        (self.sw_seconds * n as f64) / (self.warped_seconds * n as f64 + dpm_s)
    }
}

/// Runs the complete warp flow on one benchmark.
///
/// Phases: software-only traced execution → profiling → decompilation →
/// synthesis/mapping/place&route/bitstream → binary patch → warped
/// execution with the WCLA device → verification against the golden
/// model → time/energy accounting.
///
/// This is the composition of the typed stages in
/// [`pipeline`](crate::pipeline), run uncached; callers that warp the
/// same kernels repeatedly should use
/// [`pipeline::run_staged`](crate::pipeline::run_staged) with a
/// [`CircuitCache`](crate::cache::CircuitCache).
///
/// # Errors
///
/// Returns [`WarpError`] describing the failing phase.
pub fn warp_run(built: &BuiltWorkload, options: &WarpOptions) -> Result<WarpReport, WarpError> {
    pipeline::run_staged(built, options, None).map(|m| m.report)
}
