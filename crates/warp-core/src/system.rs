//! End-to-end single-processor warp execution.

use std::error::Error;
use std::fmt;

use mb_sim::{MbConfig, StopReason};
use warp_cdfg::DecompileError;
use warp_fabric::CompileError;
use warp_power::{figure5_energy, mb_only_energy, EnergyBreakdown};
use warp_profiler::Profiler;
use warp_wcla::device::WCLA_WINDOW;
use warp_wcla::patch::{apply_patch, PatchError, PatchPlan};
use warp_wcla::{WclaCircuit, WclaDevice, WclaStats, WCLA_BASE};
use workloads::BuiltWorkload;

use crate::dpm::{self, DpmReport};
use crate::WarpOptions;

/// Why a warp run failed.
#[derive(Debug)]
pub enum WarpError {
    /// The software-only run did not exit or faulted.
    Software(String),
    /// The profiler saw no loops.
    NoHotRegion,
    /// The hot region could not be decompiled.
    Decompile(DecompileError),
    /// The kernel did not fit or route on the fabric.
    Fabric(CompileError),
    /// The binary could not be patched.
    Patch(PatchError),
    /// The patch did not fit in instruction memory.
    PatchApply(String),
    /// The warped run did not exit or faulted.
    Warped(String),
    /// The warped run produced different results than the golden model.
    Verification(String),
}

impl fmt::Display for WarpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarpError::Software(e) => write!(f, "software-only run failed: {e}"),
            WarpError::NoHotRegion => f.write_str("profiler found no hot region"),
            WarpError::Decompile(e) => write!(f, "decompilation rejected the kernel: {e}"),
            WarpError::Fabric(e) => write!(f, "fabric compilation failed: {e}"),
            WarpError::Patch(e) => write!(f, "binary patching failed: {e}"),
            WarpError::PatchApply(e) => write!(f, "patch application failed: {e}"),
            WarpError::Warped(e) => write!(f, "warped run failed: {e}"),
            WarpError::Verification(e) => write!(f, "warped run diverged: {e}"),
        }
    }
}

impl Error for WarpError {}

/// Everything measured from one end-to-end warp.
#[derive(Clone, Debug)]
pub struct WarpReport {
    /// Benchmark name.
    pub name: String,
    /// Software-only cycles (MicroBlaze alone).
    pub sw_cycles: u64,
    /// Software-only seconds.
    pub sw_seconds: f64,
    /// Warped-run total MicroBlaze cycles (including stall).
    pub warped_cycles: u64,
    /// Warped-run seconds.
    pub warped_seconds: f64,
    /// MicroBlaze cycles actually executing during the warped run.
    pub mb_active_cycles: u64,
    /// MicroBlaze cycles stalled on the WCLA.
    pub mb_stall_cycles: u64,
    /// Hardware activity counters.
    pub hw: WclaStats,
    /// Hardware-active seconds.
    pub hw_seconds: f64,
    /// The profiler's chosen region matched the benchmark annotation.
    pub profiler_agrees: bool,
    /// Software-only energy (Figure 5 with no hardware terms).
    pub energy_sw: EnergyBreakdown,
    /// Warped energy (Figure 5).
    pub energy_warp: EnergyBreakdown,
    /// WCLA circuit power (W).
    pub hw_power_w: f64,
    /// Mapped-circuit statistics.
    pub map_stats: warp_synth::MapStats,
    /// Routed timing.
    pub timing: warp_fabric::TimingReport,
    /// Route statistics.
    pub route_stats: warp_fabric::RouteStats,
    /// DPM cost model.
    pub dpm: DpmReport,
    /// Bitstream size in bytes.
    pub bitstream_bytes: usize,
}

impl WarpReport {
    /// Steady-state speedup of the warped system over software-only.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sw_seconds / self.warped_seconds
    }

    /// Energy reduction fraction (0.30 = 30% less energy).
    #[must_use]
    pub fn energy_reduction(&self) -> f64 {
        1.0 - self.energy_warp.total() / self.energy_sw.total()
    }

    /// Speedup including one-time DPM work amortized over `n` runs of
    /// the application (the transparent-optimization cost view).
    #[must_use]
    pub fn speedup_amortized(&self, n: u64, dpm_clock_hz: u64) -> f64 {
        let dpm_s = self.dpm.seconds(dpm_clock_hz);
        (self.sw_seconds * n as f64) / (self.warped_seconds * n as f64 + dpm_s)
    }
}

/// Runs the complete warp flow on one benchmark.
///
/// Phases: software-only traced execution → profiling → decompilation →
/// synthesis/mapping/place&route/bitstream → binary patch → warped
/// execution with the WCLA device → verification against the golden
/// model → time/energy accounting.
///
/// # Errors
///
/// Returns [`WarpError`] describing the failing phase.
pub fn warp_run(built: &BuiltWorkload, options: &WarpOptions) -> Result<WarpReport, WarpError> {
    let mb_config = MbConfig::paper_default();

    // Phase 1: software-only run with trace.
    let mut sys = built.instantiate(&mb_config);
    let (sw_outcome, trace) = sys
        .run_traced(options.cycle_budget.max_cycles)
        .map_err(|e| WarpError::Software(e.to_string()))?;
    if sw_outcome.stop == StopReason::CycleLimit {
        return Err(WarpError::Software("cycle budget exhausted".into()));
    }
    built.verify(sys.dmem()).map_err(|e| WarpError::Software(e.to_string()))?;

    // Phase 2: on-chip profiling.
    let mut profiler = Profiler::new(options.profiler);
    profiler.observe_trace(&trace);
    let hot = profiler.best().ok_or(WarpError::NoHotRegion)?;
    let profiler_agrees = hot.head == built.kernel.head && hot.tail == built.kernel.tail;

    // Phase 3: ROCPART — decompile and compile to the WCLA.
    let kernel = warp_cdfg::decompile_loop(&built.program, hot.head, hot.tail)
        .map_err(WarpError::Decompile)?;
    let (circuit, synth) = WclaCircuit::build(kernel).map_err(WarpError::Fabric)?;
    let dpm_report = dpm::estimate(&circuit.kernel, &synth, &circuit.netlist, &circuit.compiled);
    let map_stats = circuit.netlist.stats();
    let timing = circuit.compiled.timing;
    let route_stats = circuit.compiled.route_stats;
    let bitstream_bytes = circuit.compiled.bitstream.len_bytes();
    let hw_power_w = options.wcla_power.circuit_power_w(&map_stats, circuit.model.fabric_clock_hz);

    // Phase 4: patch the binary and re-run with the WCLA device mapped.
    let head_word = built
        .program
        .word_at(circuit.kernel.head)
        .ok_or(WarpError::Patch(PatchError::NoScratchRegister))?;
    let stub_base = built.program.end() + 32;
    let plan = PatchPlan::new(&circuit.kernel, head_word, stub_base, circuit.kernel.tail + 4)
        .map_err(WarpError::Patch)?;

    let mut warped = built.instantiate(&mb_config);
    let (device, hw_stats) = WclaDevice::new(circuit, mb_config.clock_hz);
    warped.map_peripheral(WCLA_BASE, WCLA_WINDOW, Box::new(device));
    apply_patch(warped.imem_mut(), &plan).map_err(|e| WarpError::PatchApply(e.to_string()))?;

    let warped_outcome = warped
        .run(options.cycle_budget.max_cycles)
        .map_err(|e| WarpError::Warped(e.to_string()))?;
    if warped_outcome.stop == StopReason::CycleLimit {
        return Err(WarpError::Warped("cycle budget exhausted".into()));
    }

    // Phase 5: verification — the warped run must produce the golden
    // model's memory exactly.
    built.verify(warped.dmem()).map_err(|e| WarpError::Verification(e.to_string()))?;

    // Phase 6: time and energy accounting.
    let hw = *hw_stats.borrow();
    let sw_seconds = mb_config.seconds(sw_outcome.cycles);
    let warped_cycles = warped_outcome.cycles;
    let warped_seconds = mb_config.seconds(warped_cycles);
    let mb_stall_cycles = hw.mb_stall_cycles;
    let mb_active_cycles = warped_cycles.saturating_sub(mb_stall_cycles);
    let t_active = mb_config.seconds(mb_active_cycles);
    let t_idle = mb_config.seconds(mb_stall_cycles);
    let hw_seconds = hw.fabric_cycles as f64 / warp_wcla::FABRIC_CLOCK_HZ as f64;

    let energy_sw = mb_only_energy(&options.mb_power, sw_seconds);
    let energy_warp = figure5_energy(&options.mb_power, hw_power_w, t_active, t_idle, hw_seconds);

    Ok(WarpReport {
        name: built.name.clone(),
        sw_cycles: sw_outcome.cycles,
        sw_seconds,
        warped_cycles,
        warped_seconds,
        mb_active_cycles,
        mb_stall_cycles,
        hw,
        hw_seconds,
        profiler_agrees,
        energy_sw,
        energy_warp,
        hw_power_w,
        map_stats,
        timing,
        route_stats,
        dpm: dpm_report,
        bitstream_bytes,
    })
}
