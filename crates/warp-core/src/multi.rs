//! The Figure 4 multi-processor warp system.
//!
//! "A single DPM is sufficient for performing partitioning and synthesis
//! for each of the processors in a round robin or similar fashion."
//! This module models that organization: N MicroBlaze processors each
//! run their own application with their own profiler and WCLA datapath,
//! while one shared DPM warps them one at a time. The report gives each
//! application's steady-state speedup plus the round-robin schedule —
//! when each processor's hardware became available.

use workloads::Workload;

use crate::batch::BatchRunner;
use crate::cache::CircuitCache;
use crate::{WarpError, WarpOptions, WarpReport};

/// One processor's entry in the multi-processor report.
#[derive(Clone, Debug)]
pub struct AppWarp {
    /// Application name.
    pub name: String,
    /// The end-to-end warp measurements for this processor.
    pub report: WarpReport,
    /// Seconds (of shared-DPM time) until this processor's circuit was
    /// configured, under round-robin service.
    pub dpm_ready_at_s: f64,
}

/// The multi-processor system report.
#[derive(Clone, Debug)]
pub struct MultiWarpReport {
    /// Per-processor results, in DPM service order.
    pub apps: Vec<AppWarp>,
    /// DPM clock used for the schedule.
    pub dpm_clock_hz: u64,
}

impl MultiWarpReport {
    /// Aggregate steady-state speedup: total software time over total
    /// warped time across all processors.
    #[must_use]
    pub fn aggregate_speedup(&self) -> f64 {
        let sw: f64 = self.apps.iter().map(|a| a.report.sw_seconds).sum();
        let hw: f64 = self.apps.iter().map(|a| a.report.warped_seconds).sum();
        sw / hw
    }

    /// Total one-time DPM work for the whole system (seconds).
    #[must_use]
    pub fn total_dpm_seconds(&self) -> f64 {
        self.apps.last().map_or(0.0, |a| a.dpm_ready_at_s)
    }
}

/// Warps `n` processors, one per workload, with a single shared DPM
/// serving them round-robin.
///
/// The per-processor simulations fan out across a [`BatchRunner`] with
/// one shared [`CircuitCache`] (processors running identical kernels
/// reuse one circuit, as a real shared DPM would), then the round-robin
/// schedule is accumulated in processor order at the DPM clock from
/// [`WarpOptions::dpm_clock_hz`].
///
/// # Errors
///
/// Propagates the first failing processor's [`WarpError`] (in
/// processor order).
pub fn multi_warp(apps: &[Workload], options: &WarpOptions) -> Result<MultiWarpReport, WarpError> {
    let dpm_clock_hz = options.dpm_clock_hz;
    let runner = BatchRunner::new(options.clone());
    let cache = CircuitCache::new();
    let measurements = runner.warp_all(apps, &cache)?;

    let mut out = Vec::with_capacity(apps.len());
    let mut dpm_elapsed = 0.0f64;
    for measurement in measurements {
        let report = measurement.report;
        // A cache hit means the shared DPM already built this circuit
        // for an earlier processor; the schedule still charges the CAD
        // time (the paper's DPM re-runs its chain per processor).
        dpm_elapsed += report.dpm_seconds();
        out.push(AppWarp { name: report.name.clone(), report, dpm_ready_at_s: dpm_elapsed });
    }
    Ok(MultiWarpReport { apps: out, dpm_clock_hz })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_processor_system_warps_both() {
        let apps: Vec<Workload> =
            ["brev", "canrdr"].iter().map(|n| workloads::by_name(n).unwrap()).collect();
        let report = multi_warp(&apps, &WarpOptions::default()).unwrap();
        assert_eq!(report.apps.len(), 2);
        assert!(report.aggregate_speedup() > 1.5);
        // Round-robin: the second processor waits for the first.
        assert!(report.apps[1].dpm_ready_at_s > report.apps[0].dpm_ready_at_s);
        assert!(report.total_dpm_seconds() > 0.0);
    }
}
