//! The paper's evaluation, reproduced: Figure 6 (speedups), Figure 7
//! (normalized energy), the Section 2 configurability study, and the
//! in-text summary statistics.

use arm_sim::{paper_cores, simulate};
use mb_isa::MbFeatures;
use mb_sim::MbConfig;
use warp_power::arm_energy;
use workloads::Workload;

use crate::cache::CircuitCache;
use crate::pipeline::{self, PipelineStats};
use crate::{WarpError, WarpOptions, WarpReport};

/// One ARM baseline measurement.
#[derive(Clone, PartialEq, Debug)]
pub struct ArmMeasurement {
    /// Core name (`ARM7` … `ARM11`).
    pub name: &'static str,
    /// Core clock in Hz.
    pub clock_hz: u64,
    /// Execution seconds.
    pub seconds: f64,
    /// Total energy in joules.
    pub energy_j: f64,
}

/// Full comparison for one benchmark: MicroBlaze alone, the four ARM
/// hard cores, and the warp processor.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchmarkComparison {
    /// Benchmark name.
    pub name: String,
    /// MicroBlaze-alone seconds.
    pub mb_seconds: f64,
    /// MicroBlaze-alone energy (J).
    pub mb_energy_j: f64,
    /// ARM baselines in paper order.
    pub arms: Vec<ArmMeasurement>,
    /// The warp run.
    pub warp: WarpReport,
}

impl BenchmarkComparison {
    /// Speedup of a system over the MicroBlaze alone.
    #[must_use]
    pub fn speedup_of(&self, seconds: f64) -> f64 {
        self.mb_seconds / seconds
    }

    /// Normalized energy of a system against the MicroBlaze alone.
    #[must_use]
    pub fn normalized_energy(&self, energy_j: f64) -> f64 {
        energy_j / self.mb_energy_j
    }
}

/// Runs the complete comparison for one workload.
///
/// # Errors
///
/// Propagates [`WarpError`] from any phase.
pub fn compare_benchmark(
    workload: &Workload,
    options: &WarpOptions,
) -> Result<BenchmarkComparison, WarpError> {
    compare_benchmark_staged(workload, options, None).map(|(comparison, _)| comparison)
}

/// Runs the complete comparison for one workload through the staged
/// pipeline, optionally consulting a circuit cache, and reports where
/// the wall-clock went.
///
/// The single software-only traced run feeds both the ARM baseline
/// simulators and the warp pipeline (the monolithic flow simulated the
/// software twice).
///
/// # Errors
///
/// Propagates [`WarpError`] from any phase.
pub fn compare_benchmark_staged(
    workload: &Workload,
    options: &WarpOptions,
    cache: Option<&CircuitCache>,
) -> Result<(BenchmarkComparison, PipelineStats), WarpError> {
    let built = workload.build(MbFeatures::paper_default());

    let trace_start = std::time::Instant::now();
    let traced = pipeline::trace_software(&built, options)?;
    let trace_ns = trace_start.elapsed().as_nanos();
    let mb_seconds = traced.outcome.cycles as f64 / MbConfig::paper_default().clock_hz as f64;

    let arms = paper_cores()
        .iter()
        .map(|core| {
            let r = simulate(core, &traced.trace);
            ArmMeasurement {
                name: r.name,
                clock_hz: core.clock_hz,
                seconds: r.seconds,
                energy_j: arm_energy(r.name, r.seconds),
            }
        })
        .collect();

    let mut measurement = pipeline::resume_after_trace(&built, &traced, options, cache)?;
    measurement.stats.trace_ns = trace_ns;
    let warp = measurement.report;
    let mb_energy_j = warp.energy_sw.total();

    Ok((
        BenchmarkComparison { name: built.name.clone(), mb_seconds, mb_energy_j, arms, warp },
        measurement.stats,
    ))
}

/// Runs the paper's six-benchmark suite sequentially.
///
/// The parallel equivalent is
/// [`BatchRunner::run_suite`](crate::batch::BatchRunner::run_suite),
/// which produces identical comparisons in identical order.
///
/// # Errors
///
/// Propagates the first failing benchmark's [`WarpError`].
pub fn run_paper_suite(options: &WarpOptions) -> Result<Vec<BenchmarkComparison>, WarpError> {
    workloads::paper_suite().iter().map(|w| compare_benchmark(w, options)).collect()
}

/// One row of Figure 6: speedups versus the MicroBlaze alone.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Benchmark name (or `"Average:"`).
    pub benchmark: String,
    /// `[MicroBlaze, ARM7, ARM9, ARM10, ARM11, Warp]` speedups.
    pub speedups: [f64; 6],
}

/// Builds Figure 6 (including the average row).
#[must_use]
pub fn figure6(comparisons: &[BenchmarkComparison]) -> Vec<Fig6Row> {
    let mut rows: Vec<Fig6Row> = comparisons
        .iter()
        .map(|c| {
            let mut s = [1.0f64; 6];
            for (i, a) in c.arms.iter().enumerate() {
                s[i + 1] = c.speedup_of(a.seconds);
            }
            s[5] = c.warp.speedup();
            Fig6Row { benchmark: c.name.clone(), speedups: s }
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let mut avg = [0.0f64; 6];
    for r in &rows {
        for (a, v) in avg.iter_mut().zip(r.speedups) {
            *a += v / n;
        }
    }
    rows.push(Fig6Row { benchmark: "Average:".into(), speedups: avg });
    rows
}

/// One row of Figure 7: normalized energy versus the MicroBlaze alone.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Benchmark name (or `"Average:"`).
    pub benchmark: String,
    /// `[MicroBlaze, ARM7, ARM9, ARM10, ARM11, Warp]` normalized energy.
    pub energy: [f64; 6],
}

/// Builds Figure 7 (including the average row).
#[must_use]
pub fn figure7(comparisons: &[BenchmarkComparison]) -> Vec<Fig7Row> {
    let mut rows: Vec<Fig7Row> = comparisons
        .iter()
        .map(|c| {
            let mut e = [1.0f64; 6];
            for (i, a) in c.arms.iter().enumerate() {
                e[i + 1] = c.normalized_energy(a.energy_j);
            }
            e[5] = c.normalized_energy(c.warp.energy_warp.total());
            Fig7Row { benchmark: c.name.clone(), energy: e }
        })
        .collect();
    let n = rows.len().max(1) as f64;
    let mut avg = [0.0f64; 6];
    for r in &rows {
        for (a, v) in avg.iter_mut().zip(r.energy) {
            *a += v / n;
        }
    }
    rows.push(Fig7Row { benchmark: "Average:".into(), energy: avg });
    rows
}

/// The paper's in-text summary statistics.
#[derive(Clone, Copy, Debug)]
pub struct Summary {
    /// Average warp speedup (paper: 5.8).
    pub avg_warp_speedup: f64,
    /// Average warp speedup excluding `brev` (paper: 3.6).
    pub avg_warp_speedup_excl_brev: f64,
    /// Largest warp speedup (paper: 16.9, `brev`).
    pub max_warp_speedup: f64,
    /// Average warp energy reduction (paper: 57%).
    pub avg_energy_reduction: f64,
    /// Average warp energy reduction excluding `brev` (paper: 49%).
    pub avg_energy_reduction_excl_brev: f64,
    /// Maximum energy reduction (paper: 94%, `brev`).
    pub max_energy_reduction: f64,
    /// Mean of per-benchmark ARM11-time-over-warp-time (paper: ARM11 is
    /// 2.6× faster on average).
    pub arm11_speed_over_warp: f64,
    /// Mean of per-benchmark ARM11-energy-over-warp-energy (paper: the
    /// ARM11 uses ~80% more energy).
    pub arm11_energy_over_warp: f64,
    /// Mean of per-benchmark warp-speed-over-ARM10 (paper: 1.3×).
    pub warp_speed_over_arm10: f64,
    /// Mean of per-benchmark warp-energy-over-ARM10 (paper: warp uses
    /// ~26% less).
    pub warp_energy_over_arm10: f64,
    /// Mean of per-benchmark MB-energy-over-ARM11 (paper: +48%).
    pub mb_energy_over_arm11: f64,
}

/// Computes the summary statistics over a suite of comparisons.
#[must_use]
pub fn summary(comparisons: &[BenchmarkComparison]) -> Summary {
    let n = comparisons.len().max(1) as f64;
    let mean = |f: &dyn Fn(&BenchmarkComparison) -> f64| -> f64 {
        comparisons.iter().map(f).sum::<f64>() / n
    };
    let excl: Vec<&BenchmarkComparison> = comparisons.iter().filter(|c| c.name != "brev").collect();
    let n_excl = excl.len().max(1) as f64;

    fn arm<'a>(c: &'a BenchmarkComparison, name: &str) -> &'a ArmMeasurement {
        c.arms.iter().find(|a| a.name == name).expect("core present")
    }

    Summary {
        avg_warp_speedup: mean(&|c| c.warp.speedup()),
        avg_warp_speedup_excl_brev: excl.iter().map(|c| c.warp.speedup()).sum::<f64>() / n_excl,
        max_warp_speedup: comparisons.iter().map(|c| c.warp.speedup()).fold(0.0, f64::max),
        avg_energy_reduction: mean(&|c| c.warp.energy_reduction()),
        avg_energy_reduction_excl_brev: excl.iter().map(|c| c.warp.energy_reduction()).sum::<f64>()
            / n_excl,
        max_energy_reduction: comparisons
            .iter()
            .map(|c| c.warp.energy_reduction())
            .fold(0.0, f64::max),
        arm11_speed_over_warp: mean(&|c| c.warp.warped_seconds / arm(c, "ARM11").seconds),
        arm11_energy_over_warp: mean(&|c| arm(c, "ARM11").energy_j / c.warp.energy_warp.total()),
        warp_speed_over_arm10: mean(&|c| arm(c, "ARM10").seconds / c.warp.warped_seconds),
        warp_energy_over_arm10: mean(&|c| c.warp.energy_warp.total() / arm(c, "ARM10").energy_j),
        mb_energy_over_arm11: mean(&|c| c.mb_energy_j / arm(c, "ARM11").energy_j),
    }
}

/// One row of the Section 2 configurability study.
#[derive(Clone, Debug)]
pub struct ConfigRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Configuration description.
    pub config: String,
    /// Execution cycles.
    pub cycles: u64,
    /// Slowdown versus the full configuration.
    pub slowdown: f64,
}

/// Reproduces the Section 2 study: `brev` without barrel shifter and
/// multiplier (paper: 2.1× slower) and `matmul` without multiplier
/// (paper: 1.3× slower). `idct` without multiplier is included as an
/// extension data point.
///
/// # Panics
///
/// Panics if a benchmark fails to run or verify under any
/// configuration.
#[must_use]
pub fn config_study() -> Vec<ConfigRow> {
    config_study_on(&crate::batch::BatchRunner::new(WarpOptions::default()))
}

/// [`config_study`] with the per-configuration simulations fanned
/// across a [`BatchRunner`](crate::batch::BatchRunner). Row order and
/// numbers are identical to the sequential study.
///
/// # Panics
///
/// Panics if a benchmark fails to run or verify under any
/// configuration.
#[must_use]
pub fn config_study_on(runner: &crate::batch::BatchRunner) -> Vec<ConfigRow> {
    let cases: [(&str, MbFeatures, &str); 6] = [
        ("brev", MbFeatures::paper_default(), "barrel shifter + multiplier"),
        ("brev", MbFeatures::minimal(), "no barrel shifter, no multiplier"),
        ("matmul", MbFeatures::paper_default(), "barrel shifter + multiplier"),
        ("matmul", MbFeatures::paper_default().with_multiplier(false), "no multiplier"),
        ("idct", MbFeatures::paper_default(), "barrel shifter + multiplier"),
        ("idct", MbFeatures::paper_default().with_multiplier(false), "no multiplier"),
    ];
    let cycles = runner
        .run_map(&cases, |_, (name, features, _)| -> Result<u64, std::convert::Infallible> {
            let built = workloads::by_name(name).expect("known benchmark").build(*features);
            let mut sys = built.instantiate(&MbConfig::paper_default());
            let outcome = sys.run(1_000_000_000).expect("benchmark runs");
            built.verify(sys.dmem()).expect("results correct");
            Ok(outcome.cycles)
        })
        .expect("simulation is infallible");

    // Slowdowns are relative to each benchmark's full configuration,
    // which precedes its reduced configurations in case order.
    let mut rows = Vec::new();
    let mut base_cycles = 0u64;
    for ((name, _, desc), cycles) in cases.iter().zip(cycles) {
        if desc.starts_with("barrel") {
            base_cycles = cycles;
        }
        rows.push(ConfigRow {
            benchmark: (*name).into(),
            config: (*desc).into(),
            cycles,
            slowdown: cycles as f64 / base_cycles as f64,
        });
    }
    rows
}
