//! Content-addressed circuit cache.
//!
//! The multi-processor round-robin of [`multi`](crate::multi), the
//! configurability sweeps of [`experiments`](crate::experiments), and
//! the figure/table binaries all warp the *same* kernels repeatedly.
//! The CAD chain — synthesis, mapping, place & route, bitstream — is a
//! pure function of the decompiled kernel, so its output can be shared:
//! [`CircuitCache`] stores [`CompiledWcla`] artifacts keyed by
//! [`LoopKernel::fingerprint`](warp_cdfg::LoopKernel::fingerprint), a
//! stable content hash. A hit returns the compiled circuit without
//! performing any CAD work, and (because the whole flow is
//! deterministic) yields a [`WarpReport`](crate::WarpReport)
//! bit-identical to a cold run's.
//!
//! The cache is safe to share across the
//! [`BatchRunner`](crate::batch::BatchRunner)'s worker threads and the
//! `warp-serve` session fleet: lookups take a short mutex, but
//! compilation itself runs outside the lock so concurrent misses on
//! *different* kernels still compile in parallel.
//!
//! # Bounded mode
//!
//! A long-running multi-tenant host cannot let the cache grow with
//! every kernel its sessions ever warped. [`CircuitCache::bounded`]
//! caps the store at a fixed number of entries and evicts the
//! least-recently-used circuit to admit a new one (recency is bumped on
//! every hit, probe, or insertion). The default [`CircuitCache::new`]
//! keeps the historical unbounded behavior — existing single-run flows
//! and their committed benchmarks are unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use warp_wcla::CadCaches;

use crate::pipeline::{compile_circuit, CompiledWcla, DecompiledKernel};
use crate::system::WarpError;

/// Hit/miss/eviction counters for a [`CircuitCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a compiled circuit.
    pub hits: u64,
    /// Lookups that had to run the CAD chain.
    pub misses: u64,
    /// Circuits evicted to admit new ones (bounded caches only).
    pub evictions: u64,
    /// Distinct kernels currently cached.
    pub entries: usize,
    /// Maximum entries admitted (`None` = unbounded).
    pub capacity: Option<usize>,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cached circuit plus the recency stamp the LRU policy orders by.
struct Entry {
    artifact: Arc<CompiledWcla>,
    last_used: u64,
}

/// The keyed store behind the mutex: entries plus the logical clock
/// that stamps recency (monotonic per cache, bumped on every touch).
#[derive(Default)]
struct Slots {
    map: HashMap<u64, Entry>,
    tick: u64,
}

impl Slots {
    fn touch(&mut self, fingerprint: u64) -> Option<Arc<CompiledWcla>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&fingerprint).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.artifact)
        })
    }
}

/// A thread-safe, content-addressed store of compiled WCLA circuits.
///
/// Beyond whole-circuit artifacts, the cache carries a set of
/// [`CadCaches`] — sub-kernel memoization of mapped LUT cones,
/// placements, and first-pass net routes — so an online runtime
/// attached to this cache can compile a *shifted-but-similar* kernel
/// incrementally even when its whole-kernel fingerprint misses.
pub struct CircuitCache {
    slots: Mutex<Slots>,
    /// Maximum entries; `usize::MAX` means unbounded (the default).
    capacity: usize,
    cad: Arc<CadCaches>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for CircuitCache {
    /// An unbounded cache, same as [`CircuitCache::new`].
    fn default() -> Self {
        CircuitCache {
            slots: Mutex::default(),
            capacity: usize::MAX,
            cad: Arc::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for CircuitCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitCache").field("stats", &self.stats()).finish_non_exhaustive()
    }
}

impl CircuitCache {
    /// Creates an empty, unbounded cache (the historical behavior).
    #[must_use]
    pub fn new() -> Self {
        CircuitCache::default()
    }

    /// Creates an empty cache holding at most `capacity` circuits
    /// (clamped to at least 1); admitting a circuit beyond that evicts
    /// the least-recently-used entry.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        CircuitCache { capacity: capacity.max(1), ..CircuitCache::default() }
    }

    /// The configured capacity (`None` when unbounded).
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        (self.capacity != usize::MAX).then_some(self.capacity)
    }

    /// Returns the cached circuit for a kernel fingerprint, if present,
    /// marking the entry most-recently used. Does not touch the
    /// hit/miss counters.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<Arc<CompiledWcla>> {
        self.slots.lock().expect("cache lock").touch(fingerprint)
    }

    /// The sub-kernel CAD caches carried by this circuit cache. Runtimes
    /// that compile through these caches share mapped cones, placements,
    /// and net routes with every other compile that went through them.
    #[must_use]
    pub fn cad_caches(&self) -> Arc<CadCaches> {
        Arc::clone(&self.cad)
    }

    /// Probes for an exact whole-kernel hit, verifying the kernel itself
    /// (the 64-bit fingerprint is not collision-proof). Counts a hit on
    /// success and nothing otherwise; a probe miss is expected to be
    /// followed by [`CircuitCache::insert_compiled`], which counts the
    /// miss.
    #[must_use]
    pub fn probe(&self, decompiled: &DecompiledKernel) -> Option<Arc<CompiledWcla>> {
        let hit = self.get(decompiled.fingerprint)?;
        if hit.circuit.kernel == decompiled.kernel {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(hit)
        } else {
            None
        }
    }

    /// Publishes a freshly compiled circuit, counting a miss. On a
    /// fingerprint collision the slot stays with its first owner; the
    /// caller keeps using its own artifact either way. A full bounded
    /// cache evicts its least-recently-used circuit to admit the new
    /// one (concurrent insertions each admit their entry — an insertion
    /// is never silently dropped).
    pub fn insert_compiled(&self, compiled: &Arc<CompiledWcla>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(compiled.fingerprint, compiled);
    }

    /// Inserts under the lock, evicting LRU entries down to capacity.
    fn admit(&self, fingerprint: u64, artifact: &Arc<CompiledWcla>) {
        let mut slots = self.slots.lock().expect("cache lock");
        slots.tick += 1;
        let tick = slots.tick;
        if slots.map.contains_key(&fingerprint) {
            // First owner keeps the slot; refresh its recency so a
            // racing duplicate insert does not age the shared artifact.
            if let Some(e) = slots.map.get_mut(&fingerprint) {
                e.last_used = tick;
            }
            return;
        }
        while slots.map.len() >= self.capacity.max(1) {
            let Some((&victim, _)) = slots.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            slots.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        slots.map.insert(fingerprint, Entry { artifact: Arc::clone(artifact), last_used: tick });
    }

    /// Returns the compiled circuit for a decompiled kernel, running
    /// the CAD chain only on a miss.
    ///
    /// The boolean is `true` on a hit. Compilation happens outside the
    /// cache lock, so concurrent misses on different kernels proceed in
    /// parallel; if two threads race on the *same* kernel, both compile
    /// (deterministically, to identical artifacts) and the first
    /// insertion wins.
    ///
    /// # Errors
    ///
    /// Propagates [`WarpError::Fabric`] from compilation on a miss.
    pub fn lookup_or_compile(
        &self,
        decompiled: &DecompiledKernel,
    ) -> Result<(Arc<CompiledWcla>, bool), WarpError> {
        if let Some(hit) = self.get(decompiled.fingerprint) {
            // The 64-bit FNV-1a fingerprint is not collision-proof, so a
            // hit must still match the kernel itself before the CAD chain
            // is skipped. A colliding kernel compiles fresh and is *not*
            // inserted (the slot stays with its first owner).
            if hit.circuit.kernel == decompiled.kernel {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((hit, true));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::new(compile_circuit(decompiled)?), false));
        }
        let compiled = Arc::new(compile_circuit(decompiled)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.admit(decompiled.fingerprint, &compiled);
        // Serve whatever the slot now holds so racing compilers of the
        // same kernel converge on one shared artifact; if a bounded
        // cache already evicted it again, fall back to our own copy.
        let stored = self.get(decompiled.fingerprint).unwrap_or(compiled);
        Ok((stored, false))
    }

    /// Current hit/miss/eviction/occupancy counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("cache lock").map.len(),
            capacity: self.capacity(),
        }
    }

    /// Number of distinct kernels cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache lock").map.len()
    }

    /// Whether the cache holds no circuits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached circuit (counters are kept).
    pub fn clear(&self) {
        self.slots.lock().expect("cache lock").map.clear();
    }
}

// The cache is shared by reference across scoped worker threads; fail
// the build loudly if a field ever loses thread safety.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<CircuitCache>();
    assert_sync::<CompiledWcla>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;
    use crate::WarpOptions;
    use mb_isa::MbFeatures;

    fn decompiled(name: &str) -> DecompiledKernel {
        let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
        let options = WarpOptions::default();
        let traced = pipeline::trace_software(&built, &options).unwrap();
        let hot = pipeline::profile_trace(&traced, &options).unwrap();
        pipeline::decompile(&built, &hot).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = CircuitCache::new();
        let d = decompiled("brev");
        let (cold, hit0) = cache.lookup_or_compile(&d).unwrap();
        let (warm, hit1) = cache.lookup_or_compile(&d).unwrap();
        assert!(!hit0);
        assert!(hit1);
        assert!(Arc::ptr_eq(&cold, &warm), "hit must share the cached artifact");
        assert_eq!(
            cache.stats(),
            CacheStats { hits: 1, misses: 1, evictions: 0, entries: 1, capacity: None }
        );
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_kernels_occupy_distinct_slots() {
        let cache = CircuitCache::new();
        let a = decompiled("brev");
        let b = decompiled("canrdr");
        assert_ne!(a.fingerprint, b.fingerprint);
        cache.lookup_or_compile(&a).unwrap();
        cache.lookup_or_compile(&b).unwrap();
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = CircuitCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        let a = decompiled("brev");
        let b = decompiled("canrdr");
        let c = decompiled("crc32");

        cache.lookup_or_compile(&a).unwrap();
        cache.lookup_or_compile(&b).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.probe(&a).is_some());
        cache.lookup_or_compile(&c).unwrap();

        assert_eq!(cache.len(), 2);
        assert!(cache.get(a.fingerprint).is_some(), "recently-used entry must survive");
        assert!(cache.get(b.fingerprint).is_none(), "LRU entry must be evicted");
        assert!(cache.get(c.fingerprint).is_some(), "new entry must be admitted");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn evicted_kernel_recompiles_bit_identical() {
        let cache = CircuitCache::bounded(1);
        let a = decompiled("brev");
        let b = decompiled("canrdr");
        let (first, _) = cache.lookup_or_compile(&a).unwrap();
        cache.lookup_or_compile(&b).unwrap(); // evicts `a`
        let (again, hit) = cache.lookup_or_compile(&a).unwrap();
        assert!(!hit, "evicted circuit must recompile");
        assert!(!Arc::ptr_eq(&first, &again));
        assert_eq!(first.circuit.compiled.bitstream, again.circuit.compiled.bitstream);
        assert_eq!(first.circuit.model, again.circuit.model);
        assert_eq!(first.dpm, again.dpm);
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let cache = CircuitCache::new();
        assert_eq!(cache.capacity(), None);
        for name in ["brev", "canrdr", "crc32", "fir"] {
            cache.lookup_or_compile(&decompiled(name)).unwrap();
        }
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.stats().evictions, 0);
    }
}
