//! Content-addressed circuit cache.
//!
//! The multi-processor round-robin of [`multi`](crate::multi), the
//! configurability sweeps of [`experiments`](crate::experiments), and
//! the figure/table binaries all warp the *same* kernels repeatedly.
//! The CAD chain — synthesis, mapping, place & route, bitstream — is a
//! pure function of the decompiled kernel, so its output can be shared:
//! [`CircuitCache`] stores [`CompiledWcla`] artifacts keyed by
//! [`LoopKernel::fingerprint`](warp_cdfg::LoopKernel::fingerprint), a
//! stable content hash. A hit returns the compiled circuit without
//! performing any CAD work, and (because the whole flow is
//! deterministic) yields a [`WarpReport`](crate::WarpReport)
//! bit-identical to a cold run's.
//!
//! The cache is safe to share across the
//! [`BatchRunner`](crate::batch::BatchRunner)'s worker threads: lookups
//! take a short mutex, but compilation itself runs outside the lock so
//! concurrent misses on *different* kernels still compile in parallel.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use warp_wcla::CadCaches;

use crate::pipeline::{compile_circuit, CompiledWcla, DecompiledKernel};
use crate::system::WarpError;

/// Hit/miss counters for a [`CircuitCache`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups that found a compiled circuit.
    pub hits: u64,
    /// Lookups that had to run the CAD chain.
    pub misses: u64,
    /// Distinct kernels currently cached.
    pub entries: usize,
}

/// A thread-safe, content-addressed store of compiled WCLA circuits.
///
/// Beyond whole-circuit artifacts, the cache carries a set of
/// [`CadCaches`] — sub-kernel memoization of mapped LUT cones,
/// placements, and first-pass net routes — so an online runtime
/// attached to this cache can compile a *shifted-but-similar* kernel
/// incrementally even when its whole-kernel fingerprint misses.
#[derive(Debug, Default)]
pub struct CircuitCache {
    slots: Mutex<HashMap<u64, Arc<CompiledWcla>>>,
    cad: Arc<CadCaches>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CircuitCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        CircuitCache::default()
    }

    /// Returns the cached circuit for a kernel fingerprint, if present.
    /// Does not touch the hit/miss counters.
    #[must_use]
    pub fn get(&self, fingerprint: u64) -> Option<Arc<CompiledWcla>> {
        self.slots.lock().expect("cache lock").get(&fingerprint).cloned()
    }

    /// The sub-kernel CAD caches carried by this circuit cache. Runtimes
    /// that compile through these caches share mapped cones, placements,
    /// and net routes with every other compile that went through them.
    #[must_use]
    pub fn cad_caches(&self) -> Arc<CadCaches> {
        Arc::clone(&self.cad)
    }

    /// Probes for an exact whole-kernel hit, verifying the kernel itself
    /// (the 64-bit fingerprint is not collision-proof). Counts a hit on
    /// success and nothing otherwise; a probe miss is expected to be
    /// followed by [`CircuitCache::insert_compiled`], which counts the
    /// miss.
    #[must_use]
    pub fn probe(&self, decompiled: &DecompiledKernel) -> Option<Arc<CompiledWcla>> {
        let hit = self.get(decompiled.fingerprint)?;
        if hit.circuit.kernel == decompiled.kernel {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(hit)
        } else {
            None
        }
    }

    /// Publishes a freshly compiled circuit, counting a miss. On a
    /// fingerprint collision the slot stays with its first owner; the
    /// caller keeps using its own artifact either way.
    pub fn insert_compiled(&self, compiled: &Arc<CompiledWcla>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.slots
            .lock()
            .expect("cache lock")
            .entry(compiled.fingerprint)
            .or_insert_with(|| Arc::clone(compiled));
    }

    /// Returns the compiled circuit for a decompiled kernel, running
    /// the CAD chain only on a miss.
    ///
    /// The boolean is `true` on a hit. Compilation happens outside the
    /// cache lock, so concurrent misses on different kernels proceed in
    /// parallel; if two threads race on the *same* kernel, both compile
    /// (deterministically, to identical artifacts) and the first
    /// insertion wins.
    ///
    /// # Errors
    ///
    /// Propagates [`WarpError::Fabric`] from compilation on a miss.
    pub fn lookup_or_compile(
        &self,
        decompiled: &DecompiledKernel,
    ) -> Result<(Arc<CompiledWcla>, bool), WarpError> {
        if let Some(hit) = self.get(decompiled.fingerprint) {
            // The 64-bit FNV-1a fingerprint is not collision-proof, so a
            // hit must still match the kernel itself before the CAD chain
            // is skipped. A colliding kernel compiles fresh and is *not*
            // inserted (the slot stays with its first owner).
            if hit.circuit.kernel == decompiled.kernel {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((hit, true));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::new(compile_circuit(decompiled)?), false));
        }
        let compiled = Arc::new(compile_circuit(decompiled)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let stored = self
            .slots
            .lock()
            .expect("cache lock")
            .entry(decompiled.fingerprint)
            .or_insert(compiled)
            .clone();
        Ok((stored, false))
    }

    /// Current hit/miss/occupancy counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("cache lock").len(),
        }
    }

    /// Number of distinct kernels cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache lock").len()
    }

    /// Whether the cache holds no circuits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached circuit (counters are kept).
    pub fn clear(&self) {
        self.slots.lock().expect("cache lock").clear();
    }
}

// The cache is shared by reference across scoped worker threads; fail
// the build loudly if a field ever loses thread safety.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<CircuitCache>();
    assert_sync::<CompiledWcla>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;
    use crate::WarpOptions;
    use mb_isa::MbFeatures;

    fn decompiled(name: &str) -> DecompiledKernel {
        let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
        let options = WarpOptions::default();
        let traced = pipeline::trace_software(&built, &options).unwrap();
        let hot = pipeline::profile_trace(&traced, &options).unwrap();
        pipeline::decompile(&built, &hot).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_artifact() {
        let cache = CircuitCache::new();
        let d = decompiled("brev");
        let (cold, hit0) = cache.lookup_or_compile(&d).unwrap();
        let (warm, hit1) = cache.lookup_or_compile(&d).unwrap();
        assert!(!hit0);
        assert!(hit1);
        assert!(Arc::ptr_eq(&cold, &warm), "hit must share the cached artifact");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, entries: 1 });
    }

    #[test]
    fn distinct_kernels_occupy_distinct_slots() {
        let cache = CircuitCache::new();
        let a = decompiled("brev");
        let b = decompiled("canrdr");
        assert_ne!(a.fingerprint, b.fingerprint);
        cache.lookup_or_compile(&a).unwrap();
        cache.lookup_or_compile(&b).unwrap();
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
