//! Warp processor orchestration — the paper's Figure 2 system.
//!
//! A warp processor starts executing a standard binary on the soft core
//! alone. The on-chip profiler watches the instruction bus; once the
//! critical kernel is known, the dynamic partitioning module (DPM) runs
//! the ROCPART chain — decompilation, logic synthesis, technology
//! mapping, placement, routing, bitstream generation — configures the
//! WCLA, and patches the running binary so the kernel invokes hardware.
//! All of that is implemented by the sibling crates; this crate wires
//! the phases together and measures the result:
//!
//! * [`warp_run`] — end-to-end single-processor warp execution with
//!   verification against the software-only run;
//! * [`dpm`] — the DPM's own execution-time and memory model (the
//!   "on-chip CAD is lean" claims of refs [15][16][17]);
//! * [`experiments`] — the paper's evaluation: Figure 6 (speedups),
//!   Figure 7 (normalized energy), the Section 2 configurability study,
//!   and the in-text summary statistics;
//! * [`multi`] — the Figure 4 multi-processor warp system with a single
//!   shared DPM serving processors round-robin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dpm;
pub mod experiments;
pub mod multi;
mod system;

pub use system::{warp_run, WarpError, WarpReport};

/// Workspace-wide defaults for the warp flow.
#[derive(Clone, Debug, Default)]
pub struct WarpOptions {
    /// Profiler cache configuration.
    pub profiler: warp_profiler::ProfilerConfig,
    /// MicroBlaze power model.
    pub mb_power: warp_power::MbPower,
    /// WCLA power model.
    pub wcla_power: warp_power::WclaPowerModel,
    /// Simulation cycle budget per phase.
    pub cycle_budget: CycleBudget,
}

/// Simulation limits.
#[derive(Clone, Copy, Debug)]
pub struct CycleBudget {
    /// Maximum cycles for each full-application run.
    pub max_cycles: u64,
}

impl Default for CycleBudget {
    fn default() -> Self {
        CycleBudget { max_cycles: 500_000_000 }
    }
}
