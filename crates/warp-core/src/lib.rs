//! Warp processor orchestration — the paper's Figure 2 system.
//!
//! A warp processor starts executing a standard binary on the soft core
//! alone. The on-chip profiler watches the instruction bus; once the
//! critical kernel is known, the dynamic partitioning module (DPM) runs
//! the ROCPART chain — decompilation, logic synthesis, technology
//! mapping, placement, routing, bitstream generation — configures the
//! WCLA, and patches the running binary so the kernel invokes hardware.
//! All of that is implemented by the sibling crates; this crate wires
//! the phases together and measures the result:
//!
//! * [`pipeline`] — the staged CAD pipeline: each phase is a typed
//!   function producing a typed artifact
//!   ([`TracedRun`](pipeline::TracedRun) →
//!   [`HotRegion`](pipeline::HotRegion) →
//!   [`DecompiledKernel`](pipeline::DecompiledKernel) →
//!   [`CompiledWcla`](pipeline::CompiledWcla) →
//!   [`PatchedBinary`](pipeline::PatchedBinary) →
//!   [`WarpMeasurement`]), with per-stage wall-clock timing in
//!   [`PipelineStats`];
//! * [`warp_run`] — end-to-end single-processor warp execution with
//!   verification against the software-only run, implemented as the
//!   trivial composition of the pipeline stages;
//! * [`cache`] — the content-addressed [`CircuitCache`]: compiled
//!   circuits keyed by the decompiled kernel's stable fingerprint, so a
//!   repeated warp of an identical kernel skips the CAD chain entirely;
//! * [`batch`] — the [`BatchRunner`]: fans warp runs and full
//!   figure-suite comparisons across scoped worker threads with
//!   deterministic, sequential-equal result ordering;
//! * [`dpm`] — the DPM's own execution-time and memory model (the
//!   "on-chip CAD is lean" claims of refs \[15]\[16]\[17]);
//! * [`experiments`] — the paper's evaluation: Figure 6 (speedups),
//!   Figure 7 (normalized energy), the Section 2 configurability study,
//!   and the in-text summary statistics;
//! * [`multi`] — the Figure 4 multi-processor warp system with a single
//!   shared DPM serving processors round-robin;
//! * [`service`] — the concurrent CAD service: background worker
//!   threads that overlap host-side compilation with simulation behind
//!   a poll-able [`CadHandle`], without letting host speed or thread
//!   count leak into the modeled timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod dpm;
pub mod experiments;
pub mod multi;
pub mod pipeline;
pub mod service;
mod system;

pub use batch::BatchRunner;
pub use cache::{CacheStats, CircuitCache};
pub use pipeline::{PipelineStats, WarpMeasurement};
pub use service::{CadHandle, CadService, CAD_THREADS_ENV};
pub use system::{warp_run, WarpError, WarpReport};

/// The paper's DPM clock: the dynamic partitioning module is "another
/// embedded MicroBlaze processor core", clocked like the main core at
/// 85 MHz.
pub const DEFAULT_DPM_CLOCK_HZ: u64 = 85_000_000;

/// Workspace-wide defaults for the warp flow.
#[derive(Clone, Debug)]
pub struct WarpOptions {
    /// Profiler cache configuration.
    pub profiler: warp_profiler::ProfilerConfig,
    /// MicroBlaze power model.
    pub mb_power: warp_power::MbPower,
    /// WCLA power model.
    pub wcla_power: warp_power::WclaPowerModel,
    /// Simulation cycle budget per phase.
    pub cycle_budget: CycleBudget,
    /// Clock of the dynamic partitioning module that runs the on-chip
    /// CAD chain. Every amortization and round-robin schedule derives
    /// its DPM seconds from this one knob.
    pub dpm_clock_hz: u64,
}

impl Default for WarpOptions {
    fn default() -> Self {
        WarpOptions {
            profiler: warp_profiler::ProfilerConfig::default(),
            mb_power: warp_power::MbPower::default(),
            wcla_power: warp_power::WclaPowerModel::default(),
            cycle_budget: CycleBudget::default(),
            dpm_clock_hz: DEFAULT_DPM_CLOCK_HZ,
        }
    }
}

/// Simulation limits.
#[derive(Clone, Copy, Debug)]
pub struct CycleBudget {
    /// Maximum cycles for each full-application run.
    pub max_cycles: u64,
}

impl Default for CycleBudget {
    fn default() -> Self {
        CycleBudget { max_cycles: 500_000_000 }
    }
}
