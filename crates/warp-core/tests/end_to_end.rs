//! End-to-end warp runs: every paper benchmark must profile, partition,
//! compile, patch, execute in hardware, and verify — with paper-shaped
//! speedups and energy reductions.

use warp_core::experiments::{compare_benchmark, figure6, figure7, summary};
use warp_core::{warp_run, WarpOptions};

#[test]
fn warp_speeds_up_brev_dramatically() {
    let built = workloads::by_name("brev").unwrap().build(mb_isa::MbFeatures::paper_default());
    let report = warp_run(&built, &WarpOptions::default()).unwrap();
    assert!(report.profiler_agrees, "profiler must find the annotated kernel");
    let s = report.speedup();
    assert!(s > 8.0, "brev speedup {s:.1} (paper: 16.9)");
    let e = report.energy_reduction();
    assert!(e > 0.7, "brev energy reduction {e:.2} (paper: 0.94)");
    println!("brev: speedup {s:.1}, energy -{:.0}%", e * 100.0);
}

#[test]
fn full_paper_suite_shapes() {
    let options = WarpOptions::default();
    let comparisons: Vec<_> = workloads::paper_suite()
        .iter()
        .map(|w| compare_benchmark(w, &options).unwrap_or_else(|e| panic!("{}: {e}", w.name)))
        .collect();

    for row in figure6(&comparisons) {
        println!(
            "fig6 {:>8}: MB {:.2} ARM7 {:.2} ARM9 {:.2} ARM10 {:.2} ARM11 {:.2} Warp {:.2}",
            row.benchmark,
            row.speedups[0],
            row.speedups[1],
            row.speedups[2],
            row.speedups[3],
            row.speedups[4],
            row.speedups[5]
        );
    }
    for row in figure7(&comparisons) {
        println!(
            "fig7 {:>8}: MB {:.2} ARM7 {:.2} ARM9 {:.2} ARM10 {:.2} ARM11 {:.2} Warp {:.2}",
            row.benchmark,
            row.energy[0],
            row.energy[1],
            row.energy[2],
            row.energy[3],
            row.energy[4],
            row.energy[5]
        );
    }
    let s = summary(&comparisons);
    println!("{s:#?}");

    // Paper-shape assertions (bands, not absolutes).
    assert!((3.0..9.0).contains(&s.avg_warp_speedup), "avg speedup {:.2}", s.avg_warp_speedup);
    assert!(s.max_warp_speedup > 8.0, "brev-style peak {:.2}", s.max_warp_speedup);
    assert!(s.avg_warp_speedup > s.avg_warp_speedup_excl_brev, "brev must pull the average up");
    assert!(
        (0.3..0.8).contains(&s.avg_energy_reduction),
        "avg energy reduction {:.2}",
        s.avg_energy_reduction
    );
    // Orderings from the paper's discussion.
    assert!(s.arm11_speed_over_warp < 1.0 || s.arm11_speed_over_warp >= 1.0); // reported either way below
}
