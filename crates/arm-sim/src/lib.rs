//! Trace-driven ARM hard-core timing models.
//!
//! The paper compares the MicroBlaze warp processor against ARM7
//! (100 MHz), ARM9 (250 MHz), ARM10 (325 MHz), and ARM11 (550 MHz) hard
//! cores, "determining the execution for the ARM processors using the
//! SimpleScalar simulator ported for the ARM processor". SimpleScalar
//! and the proprietary ARM binaries are not reproducible here, so this
//! crate substitutes trace-driven timing models: each core replays the
//! same instruction trace the MicroBlaze executed (same operation mix,
//! branch outcomes, and memory addresses) through a scalar pipeline
//! model with per-class latencies, instruction/data caches, and a
//! branch-penalty model that deepens with the pipeline — the factors
//! that actually separate these cores at this era.
//!
//! The models capture *relative* performance (clock ratio × CPI ratio),
//! which is all the paper's normalized figures use.
//!
//! # Example
//!
//! ```
//! use arm_sim::{arm11, simulate};
//! # use mb_isa::{Assembler, Insn, Reg};
//! # use mb_sim::{MbConfig, System, EXIT_PORT_BASE};
//! # let mut a = Assembler::new(0);
//! # a.li(Reg::R3, 5);
//! # a.label("l");
//! # a.push(Insn::addik(Reg::R3, Reg::R3, -1));
//! # a.bnei(Reg::R3, "l");
//! # a.li(Reg::R31, EXIT_PORT_BASE as i32);
//! # a.push(Insn::swi(Reg::R0, Reg::R31, 0));
//! # let p = a.finish().unwrap();
//! # let mut sys = System::new(MbConfig::paper_default());
//! # sys.load_program(&p).unwrap();
//! let (_, trace) = sys.run_traced(1_000_000).unwrap();
//! let result = simulate(&arm11(), &trace);
//! assert!(result.seconds > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mb_isa::OpClass;
use mb_sim::cache::{Cache, CacheConfig};
use mb_sim::Trace;

/// Branch handling of a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchModel {
    /// No prediction: every taken branch pays the flush penalty.
    None {
        /// Cycles lost on a taken branch.
        taken_penalty: u32,
    },
    /// Static backward-taken / forward-not-taken.
    Static {
        /// Cycles lost on a misprediction.
        mispredict_penalty: u32,
    },
    /// Dynamic bimodal predictor (2-bit counters).
    Bimodal {
        /// Predictor entries (power of two).
        entries: usize,
        /// Cycles lost on a misprediction.
        mispredict_penalty: u32,
    },
}

/// Configuration of one ARM core model.
#[derive(Clone, Debug)]
pub struct ArmCore {
    /// Core name, e.g. `"ARM9"`.
    pub name: &'static str,
    /// Clock frequency (Hz).
    pub clock_hz: u64,
    /// Pipeline depth (reporting only; penalties already encode it).
    pub pipeline_depth: u32,
    /// Multiply latency (cycles).
    pub mul_cycles: u32,
    /// Divide latency (software/hardware, cycles).
    pub div_cycles: u32,
    /// Load latency (cycles, on hit).
    pub load_cycles: u32,
    /// Store latency (cycles, on hit).
    pub store_cycles: u32,
    /// Branch handling.
    pub branch: BranchModel,
    /// Instruction cache.
    pub icache: CacheConfig,
    /// Data cache.
    pub dcache: CacheConfig,
}

/// ARM7TDMI-class core: 100 MHz, 3-stage pipeline, no prediction.
#[must_use]
pub fn arm7() -> ArmCore {
    ArmCore {
        name: "ARM7",
        clock_hz: 100_000_000,
        pipeline_depth: 3,
        mul_cycles: 4,
        div_cycles: 40,
        load_cycles: 2,
        store_cycles: 1,
        branch: BranchModel::None { taken_penalty: 2 },
        icache: CacheConfig { size_bytes: 8 * 1024, line_bytes: 16, ways: 4, miss_penalty: 8 },
        dcache: CacheConfig { size_bytes: 8 * 1024, line_bytes: 16, ways: 4, miss_penalty: 8 },
    }
}

/// ARM9 (ARM926EJ-S-class): 250 MHz, 5-stage pipeline.
#[must_use]
pub fn arm9() -> ArmCore {
    ArmCore {
        name: "ARM9",
        clock_hz: 250_000_000,
        pipeline_depth: 5,
        mul_cycles: 3,
        div_cycles: 35,
        load_cycles: 1,
        store_cycles: 1,
        branch: BranchModel::None { taken_penalty: 2 },
        icache: CacheConfig { size_bytes: 16 * 1024, line_bytes: 32, ways: 4, miss_penalty: 12 },
        dcache: CacheConfig { size_bytes: 16 * 1024, line_bytes: 32, ways: 4, miss_penalty: 12 },
    }
}

/// ARM10 (ARM1020E-class): 325 MHz, 6-stage pipeline, static prediction.
#[must_use]
pub fn arm10() -> ArmCore {
    ArmCore {
        name: "ARM10",
        clock_hz: 325_000_000,
        pipeline_depth: 6,
        mul_cycles: 2,
        div_cycles: 30,
        load_cycles: 1,
        store_cycles: 1,
        branch: BranchModel::Static { mispredict_penalty: 4 },
        icache: CacheConfig { size_bytes: 32 * 1024, line_bytes: 32, ways: 4, miss_penalty: 14 },
        dcache: CacheConfig { size_bytes: 32 * 1024, line_bytes: 32, ways: 4, miss_penalty: 14 },
    }
}

/// ARM11 (ARM1136-class): 550 MHz, 8-stage pipeline, dynamic prediction.
#[must_use]
pub fn arm11() -> ArmCore {
    ArmCore {
        name: "ARM11",
        clock_hz: 550_000_000,
        pipeline_depth: 8,
        mul_cycles: 2,
        div_cycles: 25,
        load_cycles: 1,
        store_cycles: 1,
        branch: BranchModel::Bimodal { entries: 256, mispredict_penalty: 6 },
        icache: CacheConfig { size_bytes: 32 * 1024, line_bytes: 32, ways: 4, miss_penalty: 18 },
        dcache: CacheConfig { size_bytes: 32 * 1024, line_bytes: 32, ways: 4, miss_penalty: 18 },
    }
}

/// The four baseline cores in the paper's order.
#[must_use]
pub fn paper_cores() -> Vec<ArmCore> {
    vec![arm7(), arm9(), arm10(), arm11()]
}

/// Result of replaying a trace through a core model.
#[derive(Clone, Debug)]
pub struct ArmResult {
    /// Core name.
    pub name: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Wall-clock seconds at the core's clock.
    pub seconds: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// Branch mispredictions (or unpredicted taken branches).
    pub mispredicts: u64,
    /// Instruction-cache hit rate.
    pub icache_hit_rate: f64,
    /// Data-cache hit rate.
    pub dcache_hit_rate: f64,
}

/// A 2-bit-counter bimodal predictor.
struct Bimodal {
    table: Vec<u8>,
}

impl Bimodal {
    fn new(entries: usize) -> Self {
        Bimodal { table: vec![1; entries.max(1)] } // weakly not-taken
    }

    fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let idx = ((pc >> 2) as usize) & (self.table.len() - 1);
        let predicted = self.table[idx] >= 2;
        if taken {
            self.table[idx] = (self.table[idx] + 1).min(3);
        } else {
            self.table[idx] = self.table[idx].saturating_sub(1);
        }
        predicted == taken
    }
}

/// Per-class execute cycles for one core.
fn exec_cycles(core: &ArmCore, class: OpClass) -> u32 {
    match class {
        OpClass::Alu | OpClass::BarrelShift | OpClass::ImmPrefix => 1,
        OpClass::Mul => core.mul_cycles,
        OpClass::Div => core.div_cycles,
        OpClass::Load => core.load_cycles,
        OpClass::Store => core.store_cycles,
        OpClass::Branch => 1,
    }
}

/// Replays an instruction trace through a core's timing model.
#[must_use]
pub fn simulate(core: &ArmCore, trace: &Trace) -> ArmResult {
    let mut icache = Cache::new(core.icache);
    let mut dcache = Cache::new(core.dcache);
    let mut bimodal = match core.branch {
        BranchModel::Bimodal { entries, .. } => Some(Bimodal::new(entries)),
        _ => None,
    };
    // Pre-decoded execute-cost table, the same treatment the MicroBlaze
    // fetch path got: the core's per-class costs are fixed for the whole
    // replay, so derive them once and charge each event with an array
    // load. Indexing by class (not PC) stays correct even for traces
    // recorded across a binary patch, where one PC can carry two
    // different instructions.
    let mut cost_by_class = [0u32; OpClass::ALL.len()];
    for class in OpClass::ALL {
        cost_by_class[class.index()] = exec_cycles(core, class);
    }

    let mut cycles = 0u64;
    let mut mispredicts = 0u64;
    for e in trace {
        // Fetch.
        cycles += u64::from(icache.access(e.pc));
        // Execute.
        cycles += u64::from(cost_by_class[e.insn.class().index()]);
        // Memory.
        if let Some(ea) = e.ea {
            cycles += u64::from(dcache.access(ea));
        }
        // Branch outcome.
        if let Some(taken) = e.taken {
            let penalty = match core.branch {
                BranchModel::None { taken_penalty } => {
                    if taken {
                        mispredicts += 1;
                        taken_penalty
                    } else {
                        0
                    }
                }
                BranchModel::Static { mispredict_penalty } => {
                    // Backward-taken / forward-not-taken heuristic.
                    let backward = e.target.is_some_and(|t| t <= e.pc);
                    let predicted_taken = backward;
                    if predicted_taken == taken {
                        0
                    } else {
                        mispredicts += 1;
                        mispredict_penalty
                    }
                }
                BranchModel::Bimodal { mispredict_penalty, .. } => {
                    let correct = bimodal
                        .as_mut()
                        .expect("bimodal table allocated")
                        .predict_and_update(e.pc, taken);
                    if correct {
                        0
                    } else {
                        mispredicts += 1;
                        mispredict_penalty
                    }
                }
            };
            cycles += u64::from(penalty);
        }
    }

    let instructions = trace.len() as u64;
    ArmResult {
        name: core.name,
        cycles,
        instructions,
        seconds: cycles as f64 / core.clock_hz as f64,
        cpi: if instructions == 0 { 0.0 } else { cycles as f64 / instructions as f64 },
        mispredicts,
        icache_hit_rate: icache.stats().hit_rate(),
        dcache_hit_rate: dcache.stats().hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::{Assembler, Insn, MbFeatures, Reg};
    use mb_sim::{MbConfig, System, EXIT_PORT_BASE};

    fn loop_trace(iterations: i32) -> (Trace, u64) {
        let mut a = Assembler::new(0);
        a.li(Reg::R3, iterations);
        a.la(Reg::R5, "buf");
        a.equ("buf", 0x400).unwrap();
        a.label("l");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
        a.push(Insn::addk(Reg::R9, Reg::R9, Reg::R9));
        a.push(Insn::swi(Reg::R9, Reg::R5, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "l");
        a.li(Reg::R31, EXIT_PORT_BASE as i32);
        a.push(Insn::swi(Reg::R0, Reg::R31, 0));
        let p = a.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let (out, trace) = sys.run_traced(10_000_000).unwrap();
        assert!(out.exited());
        (trace, out.cycles)
    }

    #[test]
    fn faster_cores_finish_sooner() {
        let (trace, _) = loop_trace(500);
        let times: Vec<f64> = paper_cores().iter().map(|c| simulate(c, &trace).seconds).collect();
        for pair in times.windows(2) {
            assert!(pair[1] < pair[0], "core ordering: {times:?}");
        }
    }

    #[test]
    fn arm11_beats_microblaze_on_wall_clock() {
        let (trace, mb_cycles) = loop_trace(500);
        let mb_seconds = mb_cycles as f64 / 85e6;
        let r = simulate(&arm11(), &trace);
        assert!(r.seconds < mb_seconds, "ARM11 must beat the soft core");
        let speedup = mb_seconds / r.seconds;
        assert!(
            (4.0..10.0).contains(&speedup),
            "ARM11 speedup {speedup:.2} out of the plausible band"
        );
    }

    #[test]
    fn predictor_learns_loop_branches() {
        let (trace, _) = loop_trace(500);
        let r7 = simulate(&arm7(), &trace);
        let r11 = simulate(&arm11(), &trace);
        // ARM7 pays for every taken branch; the bimodal predictor should
        // mispredict only a handful of times.
        assert!(r11.mispredicts * 10 < r7.mispredicts, "{} vs {}", r11.mispredicts, r7.mispredicts);
    }

    #[test]
    fn static_prediction_handles_backward_loops() {
        let (trace, _) = loop_trace(200);
        let r10 = simulate(&arm10(), &trace);
        // Loop-closing branches are backward: the static predictor gets
        // them right except the final not-taken.
        assert!(r10.mispredicts <= 2, "got {}", r10.mispredicts);
    }

    #[test]
    fn caches_warm_up() {
        let (trace, _) = loop_trace(500);
        let r = simulate(&arm9(), &trace);
        assert!(r.icache_hit_rate > 0.99);
        assert!(r.dcache_hit_rate > 0.9);
    }

    #[test]
    fn cpi_bands_are_plausible() {
        let (trace, _) = loop_trace(500);
        for core in paper_cores() {
            let r = simulate(&core, &trace);
            assert!(
                (1.0..2.2).contains(&r.cpi),
                "{}: CPI {:.2} outside the scalar-core band",
                core.name,
                r.cpi
            );
        }
    }

    #[test]
    fn workload_traces_replay_cleanly() {
        let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, trace) = sys.run_traced(100_000_000).unwrap();
        assert!(out.exited());
        let mb_seconds = out.cycles as f64 / 85e6;
        for core in paper_cores() {
            let r = simulate(&core, &trace);
            assert_eq!(r.instructions, trace.len() as u64);
            assert!(r.seconds > 0.0);
            let speedup = mb_seconds / r.seconds;
            assert!((0.8..12.0).contains(&speedup), "{}: {speedup:.2}", core.name);
        }
    }
}
