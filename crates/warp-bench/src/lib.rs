//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Binaries (run with `cargo run --release -p warp-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig6_speedup` | Figure 6: speedups vs. the MicroBlaze alone |
//! | `fig7_energy` | Figure 7: normalized energy consumption |
//! | `tab_config_options` | Section 2: configurable-options study |
//! | `tab_cad` | On-chip CAD cost (refs \[15]\[16]\[17] leanness claims) |
//! | `fig_multiproc` | Figure 4 extension: multi-processor warp system |
//! | `simperf` | Simulation throughput (Minsn/s) → `BENCH_sim.json` |
//! | `onlineperf` | Online-runtime timeline (time-to-warp, re-warps) → `BENCH_online.json` |
//! | `serveperf` | Multi-session serving throughput (sessions/s, fleet Minsn/s, cache hit rate) → `BENCH_serve.json` |
//!
//! Criterion benches (`cargo bench -p warp-bench`) measure the CAD
//! pipeline stages, the simulators, and the end-to-end warp flow.

// `deny` rather than `forbid`: the allocation-counting shim in
// `alloc` is the one sanctioned `unsafe` (a pass-through
// `GlobalAlloc`), locally allowed there.
#![deny(unsafe_code)]

pub mod alloc;
pub mod measure;
pub mod online;
pub mod serve;
pub mod simperf;

use warp_core::experiments::{BenchmarkComparison, Fig6Row, Fig7Row};
use warp_core::{BatchRunner, PipelineStats, WarpOptions};

/// Builds the batch runner every figure/table binary uses: all
/// available hardware threads, overridable with the
/// `WARP_BENCH_THREADS` environment variable (CI pins it to 4 for the
/// batch smoke job).
#[must_use]
pub fn batch_runner(options: WarpOptions) -> BatchRunner {
    let runner = BatchRunner::new(options);
    match std::env::var("WARP_BENCH_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(threads) => runner.with_threads(threads),
        None => runner,
    }
}

/// Formats the per-benchmark pipeline stage timing block the binaries
/// print after their tables — where the harness wall-clock went.
#[must_use]
pub fn render_stage_timing(names: &[&str], stats: &[PipelineStats]) -> String {
    let mut out = String::from("pipeline wall-clock per benchmark:\n");
    for (name, s) in names.iter().zip(stats) {
        out.push_str(&format!("{name:>10} | {s}\n"));
    }
    let total = PipelineStats::accumulate(stats);
    out.push_str(&format!("{:>10} | {total}\n", "total"));
    out
}

/// Formats a Figure 6 table in the paper's layout.
#[must_use]
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} | {:>9} {:>9} {:>9} {:>10} {:>10} {:>12}\n",
        "benchmark", "MB (85)", "ARM7(100)", "ARM9(250)", "ARM10(325)", "ARM11(550)", "MB (Warp)"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>10} | {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>10.2} {:>12.2}\n",
            r.benchmark,
            r.speedups[0],
            r.speedups[1],
            r.speedups[2],
            r.speedups[3],
            r.speedups[4],
            r.speedups[5]
        ));
    }
    out
}

/// Formats a Figure 7 table in the paper's layout.
#[must_use]
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>10} | {:>9} {:>9} {:>9} {:>10} {:>10} {:>12}\n",
        "benchmark", "MB (85)", "ARM7(100)", "ARM9(250)", "ARM10(325)", "ARM11(550)", "MB (Warp)"
    ));
    out.push_str(&"-".repeat(80));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>10} | {:>9.2} {:>9.2} {:>9.2} {:>10.2} {:>10.2} {:>12.2}\n",
            r.benchmark,
            r.energy[0],
            r.energy[1],
            r.energy[2],
            r.energy[3],
            r.energy[4],
            r.energy[5]
        ));
    }
    out
}

/// Renders the in-text summary block.
#[must_use]
pub fn render_summary(comparisons: &[BenchmarkComparison]) -> String {
    let s = warp_core::experiments::summary(comparisons);
    format!(
        "in-text statistics (paper value in parentheses):\n\
         \u{2022} average warp speedup:               {:>5.2}  (5.8)\n\
         \u{2022} average warp speedup excl. brev:    {:>5.2}  (3.6)\n\
         \u{2022} maximum warp speedup (brev):        {:>5.2}  (16.9)\n\
         \u{2022} average energy reduction:           {:>4.0}%  (57%)\n\
         \u{2022} average energy reduction excl brev: {:>4.0}%  (49%)\n\
         \u{2022} maximum energy reduction (brev):    {:>4.0}%  (94%)\n\
         \u{2022} ARM11 speed over warp:              {:>5.2}x (2.6x)\n\
         \u{2022} warp speed over ARM10:              {:>5.2}x (1.3x)\n\
         \u{2022} MicroBlaze energy over ARM11:       {:>5.2}x (1.48x)\n",
        s.avg_warp_speedup,
        s.avg_warp_speedup_excl_brev,
        s.max_warp_speedup,
        s.avg_energy_reduction * 100.0,
        s.avg_energy_reduction_excl_brev * 100.0,
        s.max_energy_reduction * 100.0,
        s.arm11_speed_over_warp,
        s.warp_speed_over_arm10,
        s.mb_energy_over_arm11,
    )
}
