//! Online-runtime benchmark harness.
//!
//! Where `simperf` measures *host* throughput, this harness measures
//! the **simulated timeline** of the online warp runtime per workload:
//! time-to-warp, the warp-event sequence (including re-warps and
//! evictions on the phased workload), end-to-end online speedup over a
//! software-only timeline, and the offline amortization numbers next to
//! it. Everything here is a function of simulated cycles, so —
//! unlike `simperf` — the measurements are bit-deterministic and CI can
//! validate them strictly (including across `WARP_CAD_THREADS`
//! settings — the background CAD workers never touch the modeled
//! timeline). [`OnlinePerf::to_json`] emits `BENCH_online.json`
//! (schema `warp-mb/bench-online/v2`, documented in the README's
//! "Online warp runtime" section). v2 adds the incremental-CAD columns
//! per event — clusters replayed from the sub-kernel caches, nets
//! re-routed, detection-to-patch overlap — and the
//! `rewarp_cad_ratio` aggregate CI gates on: the phased workload's
//! re-warp of a shifted-but-similar kernel must charge at most half
//! the modeled CAD cycles of its from-scratch first warp.

use warp_core::pipeline;
use warp_core::WarpOptions;
use warp_online::{
    NeverPolicy, OnlineConfig, OnlineReport, Orchestrator, ThresholdPolicy, TopKPolicy,
};
use warp_profiler::Profiler;
use workloads::Workload;

/// One warp event, flattened for the JSON document.
#[derive(Clone, Copy, Debug)]
pub struct EventPerf {
    /// Warped region.
    pub head: u32,
    /// Warped region tail.
    pub tail: u32,
    /// Timeline cycle of OCPM commitment.
    pub detected_cycle: u64,
    /// Lean-processor CAD budget charged to the timeline.
    pub cad_cycles: u64,
    /// Timeline cycle the patch landed.
    pub patched_cycle: u64,
    /// Whether the circuit came from the cache.
    pub cache_hit: bool,
    /// LUT clusters replayed from the sub-kernel CAD caches.
    pub reused_clusters: u64,
    /// Total LUT clusters in the mapped netlist.
    pub total_clusters: u64,
    /// Nets whose first-pass route was computed fresh.
    pub rerouted_nets: usize,
    /// Total routed nets.
    pub total_nets: usize,
    /// Modeled cycles between detection and the landed patch (the
    /// compilation-overlaps-simulation window).
    pub cad_overlap_cycles: u64,
    /// Region evicted by this warp, if any.
    pub evicted: Option<(u32, u32)>,
}

/// One workload's online measurement.
#[derive(Clone, Debug)]
pub struct OnlineWorkloadPerf {
    /// Workload name.
    pub name: String,
    /// Application repeats folded into the timeline.
    pub repeats: u32,
    /// OCPM clock used (scaled per workload so the CAD budget fits the
    /// timeline; the same clock feeds the offline amortization column).
    pub dpm_clock_hz: u64,
    /// Software-only cycles for the same repeat sequence.
    pub sw_cycles: u64,
    /// Online-runtime cycles.
    pub online_cycles: u64,
    /// Cycles to the first landed patch (`None` if never warped).
    pub time_to_first_warp: Option<u64>,
    /// Landed warps in timeline order.
    pub events: Vec<EventPerf>,
    /// Offline steady-state speedup of the same (first) kernel.
    pub offline_steady_speedup: f64,
    /// Runs the offline stop-the-world flow needs to break even.
    pub offline_break_even_runs: u64,
}

impl OnlineWorkloadPerf {
    /// End-to-end online speedup over software-only execution.
    #[must_use]
    pub fn online_speedup(&self) -> f64 {
        self.sw_cycles as f64 / self.online_cycles.max(1) as f64
    }
}

/// The whole suite's online measurements.
#[derive(Clone, Debug)]
pub struct OnlinePerf {
    /// `true` when run with smoke-mode sizes (CI).
    pub smoke: bool,
    /// Per-workload results.
    pub workloads: Vec<OnlineWorkloadPerf>,
}

impl OnlinePerf {
    /// Mean online speedup across workloads.
    #[must_use]
    pub fn mean_online_speedup(&self) -> f64 {
        if self.workloads.is_empty() {
            return 0.0;
        }
        self.workloads.iter().map(OnlineWorkloadPerf::online_speedup).sum::<f64>()
            / self.workloads.len() as f64
    }

    /// Total landed warp events.
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.workloads.iter().map(|w| w.events.len()).sum()
    }

    /// Modeled CAD cycles of the phased workload's re-warp relative to
    /// its from-scratch first warp — the incremental-CAD payoff CI
    /// gates on (`None` when the phased timeline has fewer than two
    /// warps). The second warp compiles a shifted-but-similar kernel
    /// through the sub-kernel caches its first warp populated, so it
    /// should charge a small fraction of the first warp's budget.
    #[must_use]
    pub fn rewarp_cad_ratio(&self) -> Option<f64> {
        let phased = self.workloads.iter().find(|w| w.name == "phased")?;
        let (first, second) = (phased.events.first()?, phased.events.get(1)?);
        Some(second.cad_cycles as f64 / first.cad_cycles.max(1) as f64)
    }

    /// Renders the `BENCH_online.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let event_json = |e: &EventPerf| {
            format!(
                r#"{{"head": {}, "tail": {}, "detected_cycle": {}, "cad_cycles": {}, "patched_cycle": {}, "cache_hit": {}, "reused_clusters": {}, "total_clusters": {}, "rerouted_nets": {}, "total_nets": {}, "cad_overlap_cycles": {}, "evicted": {}}}"#,
                e.head,
                e.tail,
                e.detected_cycle,
                e.cad_cycles,
                e.patched_cycle,
                e.cache_hit,
                e.reused_clusters,
                e.total_clusters,
                e.rerouted_nets,
                e.total_nets,
                e.cad_overlap_cycles,
                e.evicted.map_or("null".into(), |(h, t)| format!("[{h}, {t}]")),
            )
        };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"warp-mb/bench-online/v2\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", if self.smoke { "smoke" } else { "full" }));
        out.push_str(&format!("  \"mb_clock_hz\": {},\n", mb_sim::MB_CLOCK_HZ));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            let events: Vec<String> = w.events.iter().map(&event_json).collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"repeats\": {}, \"dpm_clock_hz\": {}, \
                 \"sw_cycles\": {}, \"online_cycles\": {}, \"online_speedup\": {:.3}, \
                 \"time_to_first_warp_cycles\": {}, \
                 \"offline_steady_speedup\": {:.3}, \"offline_break_even_runs\": {}, \
                 \"warp_events\": [{}]}}{}\n",
                w.name,
                w.repeats,
                w.dpm_clock_hz,
                w.sw_cycles,
                w.online_cycles,
                w.online_speedup(),
                w.time_to_first_warp.map_or("null".into(), |c| c.to_string()),
                w.offline_steady_speedup,
                w.offline_break_even_runs,
                events.join(", "),
                if i + 1 == self.workloads.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"aggregate\": {{\"workloads\": {}, \"total_warp_events\": {}, \
             \"mean_online_speedup\": {:.3}, \"rewarp_cad_ratio\": {}}}\n",
            self.workloads.len(),
            self.total_events(),
            self.mean_online_speedup(),
            self.rewarp_cad_ratio().map_or("null".into(), |r| format!("{r:.4}")),
        ));
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable table the binary prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:>10} | {:>4} {:>12} {:>12} {:>8} {:>12} {:>6} {:>9} {:>10}\n",
            "benchmark",
            "reps",
            "sw cycles",
            "online cyc",
            "speedup",
            "1st warp @",
            "warps",
            "steady",
            "break-even"
        );
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for w in &self.workloads {
            out.push_str(&format!(
                "{:>10} | {:>4} {:>12} {:>12} {:>7.2}x {:>12} {:>6} {:>8.2}x {:>10}\n",
                w.name,
                w.repeats,
                w.sw_cycles,
                w.online_cycles,
                w.online_speedup(),
                w.time_to_first_warp.map_or("never".into(), |c| c.to_string()),
                w.events.len(),
                w.offline_steady_speedup,
                w.offline_break_even_runs,
            ));
        }
        out
    }
}

/// The offline staged reference for one workload, with the OCPM clock
/// pre-scaled so that an online run can land the warp within a few
/// repeats.
///
/// Shared between the `onlineperf` harness and the root convergence
/// test (`tests/online_warp.rs`), so the scaling rule and the
/// amortization columns cannot drift apart.
#[derive(Clone, Debug)]
pub struct OfflineReference {
    /// [`WarpOptions`] with `dpm_clock_hz` scaled in decade steps until
    /// the CAD budget, converted to MicroBlaze timeline cycles, fits
    /// inside half a software run — idct's CAD is ~110M lean-processor
    /// cycles, three orders beyond brev's. The same options feed the
    /// offline amortization numbers, so the comparison stays
    /// self-consistent.
    pub options: WarpOptions,
    /// The offline pipeline's report (software + warped run, energy,
    /// amortization inputs).
    pub report: warp_core::WarpReport,
    /// The decompiled kernel's stable fingerprint.
    pub fingerprint: u64,
    /// The compiled circuit's cycle model.
    pub model: warp_wcla::ExecModel,
    /// The OCPM's modeled cost breakdown.
    pub dpm: warp_core::dpm::DpmReport,
    /// The annotated kernel's backward-branch total over one software
    /// run. Used as the online detection threshold: the kernel is the
    /// hottest region of a run (`profiler_agrees`), so it is the first
    /// to *reach* its own total — init loops that run earlier carry
    /// strictly less heat, and any region tying the kernel (g3fax's
    /// checksum) only finishes accumulating after the kernel already
    /// crossed.
    pub kernel_heat: u64,
    /// Runs the offline stop-the-world flow needs to break even, at the
    /// scaled clock.
    pub break_even_runs: u64,
}

/// Runs the offline staged pipeline on a built workload and derives the
/// online measurement preconditions (scaled OCPM clock, detection
/// threshold, amortization columns).
///
/// # Panics
///
/// Panics if any offline stage fails or the profiler's hottest region
/// is not the annotated kernel (harness preconditions, pinned by the
/// root test suite).
#[must_use]
pub fn offline_reference(built: &workloads::BuiltWorkload) -> OfflineReference {
    let mut options = WarpOptions::default();

    let traced = pipeline::trace_software(built, &options).expect("software run");
    let hot = pipeline::profile_trace(&traced, &options).expect("hot region");
    let decompiled = pipeline::decompile(built, &hot).expect("decompile");
    assert!(decompiled.profiler_agrees, "{}: hottest region must be the kernel", built.name);
    let compiled = pipeline::compile_circuit(&decompiled).expect("compile");

    let sw_cycles = traced.outcome.cycles;
    let mb_hz = mb_sim::MB_CLOCK_HZ;
    let dpm_total = compiled.dpm.total_cycles();
    let on_timeline =
        |dpm_hz: u64| (u128::from(dpm_total) * u128::from(mb_hz) / u128::from(dpm_hz)) as u64;
    while on_timeline(options.dpm_clock_hz) > sw_cycles / 2 {
        options.dpm_clock_hz *= 10;
    }

    let patched = pipeline::plan_patch(built, &compiled).expect("patch plan");
    let report =
        pipeline::execute_and_measure(built, &traced, &decompiled, &compiled, &patched, &options)
            .expect("offline warp")
            .report;

    let mut profiler = Profiler::new(options.profiler);
    profiler.observe_trace(&traced.trace);
    let kernel_heat = profiler.hot_regions()[0].count;

    let break_even_runs = OnlineReport::offline_break_even_runs(
        report.sw_seconds,
        report.warped_seconds,
        report.dpm_seconds(),
    );
    OfflineReference {
        options,
        fingerprint: decompiled.fingerprint,
        model: compiled.circuit.model,
        dpm: compiled.dpm,
        report,
        kernel_heat,
        break_even_runs,
    }
}

/// Measures one single-kernel workload: threshold at the kernel's
/// per-run heat, OCPM clock scaled until the CAD budget fits half a
/// run, `repeats` runs on one timeline.
///
/// # Panics
///
/// Panics if the workload fails the offline pipeline or the online run
/// (these are measurement harness preconditions, pinned by the root
/// test suite).
#[must_use]
pub fn measure_single_kernel(workload: &Workload, repeats: u32) -> OnlineWorkloadPerf {
    let built = workload.build(mb_isa::MbFeatures::paper_default());
    let offline = offline_reference(&built);

    let config = OnlineConfig {
        options: offline.options.clone(),
        slice_cycles: 10_000,
        decay_interval: 0,
        repeats,
        ..OnlineConfig::default()
    };
    let report = Orchestrator::new(&built, config)
        .with_policy(TopKPolicy { k: 1, min_count: offline.kernel_heat })
        .run()
        .expect("online run");

    perf_from(
        report,
        u64::from(repeats) * offline.report.sw_cycles,
        offline.options.dpm_clock_hz,
        offline.report.speedup(),
        offline.break_even_runs,
    )
}

/// Measures the phased workload: one long run, threshold policy, decay
/// on — the timeline must show the warp → evict → re-warp sequence.
///
/// # Panics
///
/// Panics if the online or software-only arm fails.
#[must_use]
pub fn measure_phased(
    outer_a: u32,
    outer_a2: u32,
    outer_b: u32,
    min_count: u64,
) -> OnlineWorkloadPerf {
    let built = workloads::phased::build_scaled(
        mb_isa::MbFeatures::paper_default(),
        outer_a,
        outer_a2,
        outer_b,
    );
    let config = OnlineConfig {
        slice_cycles: 20_000,
        decay_interval: 8,
        repeats: 1,
        ..OnlineConfig::default()
    };
    let report = Orchestrator::new(&built, config.clone())
        .with_policy(ThresholdPolicy { min_count })
        .run()
        .expect("phased online run");
    let software = Orchestrator::new(&built, config)
        .with_policy(NeverPolicy)
        .run()
        .expect("phased software run");

    let dpm_clock = WarpOptions::default().dpm_clock_hz;
    // The offline flow warps only the whole-run-hottest kernel; for the
    // phased workload the honest steady-state column is the software
    // baseline ratio of the online run itself, so report the measured
    // end-to-end ratio and no break-even (CAD amortizes on the timeline).
    perf_from(report, software.cycles, dpm_clock, 0.0, 0)
}

fn perf_from(
    report: OnlineReport,
    sw_cycles: u64,
    dpm_clock_hz: u64,
    offline_steady_speedup: f64,
    offline_break_even_runs: u64,
) -> OnlineWorkloadPerf {
    OnlineWorkloadPerf {
        name: report.name.clone(),
        repeats: report.repeats,
        dpm_clock_hz,
        sw_cycles,
        online_cycles: report.cycles,
        time_to_first_warp: report.time_to_first_warp(),
        events: report
            .events
            .iter()
            .map(|e| EventPerf {
                head: e.head,
                tail: e.tail,
                detected_cycle: e.detected_cycle,
                cad_cycles: e.cad_cycles,
                patched_cycle: e.patched_cycle,
                cache_hit: e.cache_hit,
                reused_clusters: e.reused_clusters,
                total_clusters: e.total_clusters,
                rerouted_nets: e.rerouted_nets,
                total_nets: e.total_nets,
                cad_overlap_cycles: e.cad_overlap_cycles,
                evicted: e.evicted,
            })
            .collect(),
        offline_steady_speedup,
        offline_break_even_runs,
    }
}

/// Measures the whole suite: every single-kernel workload plus the
/// phased re-warp scenario.
#[must_use]
pub fn measure_suite(smoke: bool) -> OnlinePerf {
    let repeats = if smoke { 2 } else { 4 };
    let mut results: Vec<OnlineWorkloadPerf> = workloads::all()
        .iter()
        .filter(|w| w.name != "phased")
        .map(|w| measure_single_kernel(w, repeats))
        .collect();
    results.push(if smoke {
        measure_phased(150, 75, 350, 1500)
    } else {
        measure_phased(300, 150, 700, 3000)
    });
    OnlinePerf { smoke, workloads: results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> OnlinePerf {
        OnlinePerf {
            smoke: true,
            workloads: vec![OnlineWorkloadPerf {
                name: "phased".into(),
                repeats: 2,
                dpm_clock_hz: 85_000_000,
                sw_cycles: 200_000,
                online_cycles: 80_000,
                time_to_first_warp: Some(40_000),
                events: vec![
                    EventPerf {
                        head: 0x14,
                        tail: 0xA4,
                        detected_cycle: 20_000,
                        cad_cycles: 14_000,
                        patched_cycle: 40_000,
                        cache_hit: false,
                        reused_clusters: 0,
                        total_clusters: 32,
                        rerouted_nets: 8,
                        total_nets: 8,
                        cad_overlap_cycles: 20_000,
                        evicted: None,
                    },
                    EventPerf {
                        head: 0x100,
                        tail: 0x140,
                        detected_cycle: 50_000,
                        cad_cycles: 3_500,
                        patched_cycle: 60_000,
                        cache_hit: false,
                        reused_clusters: 30,
                        total_clusters: 32,
                        rerouted_nets: 1,
                        total_nets: 8,
                        cad_overlap_cycles: 10_000,
                        evicted: Some((0x14, 0xA4)),
                    },
                ],
                offline_steady_speedup: 16.9,
                offline_break_even_runs: 1,
            }],
        }
    }

    #[test]
    fn json_has_schema_and_balanced_structure() {
        let json = synthetic().to_json();
        assert!(json.contains("\"schema\": \"warp-mb/bench-online/v2\""));
        assert!(json.contains("\"warp_events\""));
        assert!(json.contains("\"evicted\": [20, 164]"));
        assert!(json.contains("\"reused_clusters\": 30"));
        assert!(json.contains("\"rerouted_nets\": 1"));
        assert!(json.contains("\"cad_overlap_cycles\": 20000"));
        assert!(json.contains("\"rewarp_cad_ratio\": 0.2500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0, "quotes must pair");
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn speedup_and_aggregates_follow_the_cycles() {
        let p = synthetic();
        assert!((p.workloads[0].online_speedup() - 2.5).abs() < 1e-9);
        assert!((p.mean_online_speedup() - 2.5).abs() < 1e-9);
        assert_eq!(p.total_events(), 2);
        assert!((p.rewarp_cad_ratio().unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn table_lists_workloads_and_warp_counts() {
        let table = synthetic().render_table();
        assert!(table.contains("phased"));
        assert!(table.contains("2.50x"));
    }
}
