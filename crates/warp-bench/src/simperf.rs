//! Simulation-throughput harness.
//!
//! Simulated instructions per second is the metric that gates how many
//! scenarios the batch runner can cover, so this harness records it per
//! PR. For every workload in the paper suite it measures host wall-clock
//! for six run modes of the same simulation:
//!
//! * `reference_decode_per_fetch` — the seed loop: decode on every
//!   fetch ([`MbConfig::predecode`] off), no tracing;
//! * `predecoded` — the PR 3 fast path: pre-decoded fetch, stepping one
//!   instruction per dispatch ([`MbConfig::with_blocks`]`(false)`),
//!   [`NullSink`];
//! * `block` — the PR 5 superblock engine: fused straight-line blocks
//!   retired one per dispatch ([`MbConfig::with_traces`]`(false)`),
//!   [`NullSink`];
//! * `trace` — the megablock trace engine (the default configuration):
//!   loop bodies chained across their backward guard and iterated
//!   inside one dispatch, [`NullSink`];
//! * `summary` — trace engine streaming a [`TraceSummary`] through the
//!   batched `retire_block` hook;
//! * `full_trace` — trace engine recording the complete event vector.
//!
//! A seventh measurement covers the lockstep lane engine: one
//! [`LaneGroup`] executing [`LOCKSTEP_LANES`] seeded instances of each
//! workload against the same instances run sequentially on the trace
//! engine, with per-lane outcomes asserted bit-identical before any
//! number is published.
//!
//! Every mode asserts [`System::active_engine`] before timing — the
//! engine measured is the engine claimed, never a silent downgrade.
//! Simulated cycle/instruction counts are identical across all six
//! modes (asserted here, locked in by `tests/sim_fast_path.rs`); only
//! host speed differs. [`SimPerf::to_json`] emits the `BENCH_sim.json`
//! document (schema `warp-mb/bench-sim/v6`) CI validates and archives
//! per PR; the schema is documented in the README's "Performance"
//! section.
//!
//! v5 added per-workload **engine coverage**: the fraction of retired
//! instructions the trace-config run attributed to each execution tier
//! (per-instruction step, superblock dispatch, megablock trace
//! chaining). Coverage explains the `below_floor` outliers — a
//! workload whose trace fraction is low spends its retirements in
//! dispatch overhead or stepping, so no amount of trace-tier speed can
//! lift its trace-vs-block ratio.
//!
//! v6 adds **floor waivers**: every `below_floor` entry carries a
//! `floor_waiver` diagnosis string (or `null`). Workloads listed in
//! [`FLOOR_WAIVERS`] are known floor-limited — their diagnosis rides in
//! the document and the harness binary no longer warns about them;
//! only *new* below-floor entrants reach stderr.

use mb_isa::{MbFeatures, OpClass};
use mb_sim::{
    Engine, LaneGroup, MbConfig, NullSink, Outcome, StopReason, System, Trace, TraceSummary,
    LOCKSTEP_ENGINE,
};
use workloads::BuiltWorkload;

use crate::measure::best_of_seconds_with;

/// Cycle budget per measured run (matches the warp flow's default).
const MAX_CYCLES: u64 = 500_000_000;

/// Lanes in the lockstep measurement: eight seeded instances of each
/// workload executed by one [`LaneGroup`] against the same eight run
/// sequentially on the trace engine.
pub const LOCKSTEP_LANES: usize = 8;

/// Per-workload advisory floor for `trace_speedup_vs_block`: workloads
/// below it are listed in the JSON `below_floor` array. (The
/// *aggregate* floor is the CI gate; individual workloads structurally
/// unable to gain from trace chaining are reported, not failed.)
pub const PER_WORKLOAD_TRACE_FLOOR: f64 = 1.5;

/// Known, diagnosed below-floor workloads. Each entry pairs the
/// workload name with the diagnosis recorded in its JSON `below_floor`
/// entry (`floor_waiver`); the harness binary warns on stderr only for
/// below-floor workloads *not* in this list — a waived workload
/// re-appearing every run is noise, a new entrant is a regression
/// signal.
pub const FLOOR_WAIVERS: &[(&str, &str)] = &[
    (
        "brev",
        "floor-limited by a tiny loop body (PR 8 diagnosis): nearly every retirement is the \
         dispatch's first iteration, leaving trace chaining no tail to amortize",
    ),
    (
        "g3fax",
        "floor-limited by short run-length loop bodies (PR 8 diagnosis): the block tier already \
         retires most iterations, so chaining adds little",
    ),
    (
        "idct",
        "loop bodies too large to gain from trace chaining: the superblock tier already retires \
         them as straight lines, so the trace tier's share of retirements is structurally low",
    ),
];

/// The waiver diagnosis for `name`, if it has one.
#[must_use]
pub fn floor_waiver(name: &str) -> Option<&'static str> {
    FLOOR_WAIVERS.iter().find(|(n, _)| *n == name).map(|(_, d)| *d)
}

/// One run mode's measurement for one workload.
#[derive(Clone, Copy, Debug)]
pub struct ModePerf {
    /// Best-of-reps host seconds for the run.
    pub seconds: f64,
    /// Millions of simulated instructions retired per host second.
    pub minsn_per_s: f64,
    /// The [`Engine`] identifier asserted before timing
    /// ([`Engine::as_str`]) — recorded so the JSON document proves
    /// which engine produced each number.
    pub engine: &'static str,
}

impl ModePerf {
    fn from_best(best_seconds: f64, instructions: u64, engine: Engine) -> Self {
        let seconds = best_seconds.max(1e-9);
        ModePerf {
            seconds,
            minsn_per_s: instructions as f64 / seconds / 1e6,
            engine: engine.as_str(),
        }
    }
}

/// All mode measurements for one workload.
#[derive(Clone, Debug)]
pub struct WorkloadPerf {
    /// Benchmark name.
    pub name: String,
    /// Instructions retired by one run (identical in every mode).
    pub instructions: u64,
    /// Simulated MicroBlaze cycles of one run.
    pub mb_cycles: u64,
    /// The seed decode-per-fetch loop, untraced.
    pub reference: ModePerf,
    /// Pre-decoded fetch, per-instruction stepping, no sink.
    pub predecoded: ModePerf,
    /// Superblock engine (traces off), no sink.
    pub block: ModePerf,
    /// Megablock trace engine, no sink.
    pub trace: ModePerf,
    /// Trace engine, streaming summary sink.
    pub summary: ModePerf,
    /// Trace engine, full event vector.
    pub full_trace: ModePerf,
    /// Fraction of retired instructions the trace-config run stepped
    /// one at a time.
    pub step_fraction: f64,
    /// Fraction retired through the superblock tier (first body/guard
    /// of each block dispatch).
    pub block_fraction: f64,
    /// Fraction retired through the megablock trace tier (iterations
    /// chained in place past a dispatch's first).
    pub trace_fraction: f64,
}

impl WorkloadPerf {
    /// Host speedup of the block engine over the per-instruction
    /// predecoded path (both untraced).
    #[must_use]
    pub fn block_speedup(&self) -> f64 {
        self.predecoded.seconds / self.block.seconds
    }

    /// Host speedup of the trace engine over the superblock engine
    /// (both untraced) — the number the `SIMPERF_TRACE_FLOOR` CI gate
    /// watches per PR 6.
    #[must_use]
    pub fn trace_speedup(&self) -> f64 {
        self.block.seconds / self.trace.seconds
    }

    /// Host speedup of the predecoded path over the seed loop.
    #[must_use]
    pub fn predecoded_speedup(&self) -> f64 {
        self.reference.seconds / self.predecoded.seconds
    }
}

/// One workload's lockstep-vs-sequential measurement.
#[derive(Clone, Debug)]
pub struct LockstepWorkloadPerf {
    /// Benchmark name.
    pub name: String,
    /// Instructions retired across all lanes (identical in both modes).
    pub instructions: u64,
    /// One [`LaneGroup`] running [`LOCKSTEP_LANES`] seeded instances.
    pub lockstep: ModePerf,
    /// The same seeded instances run one after another on the trace
    /// engine.
    pub sequential: ModePerf,
}

impl LockstepWorkloadPerf {
    /// Host speedup of the lane group over the sequential runs.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.sequential.seconds / self.lockstep.seconds
    }
}

/// The lockstep lane engine's suite measurement.
#[derive(Clone, Debug)]
pub struct LockstepPerf {
    /// Lanes per group ([`LOCKSTEP_LANES`]).
    pub lanes: usize,
    /// Per-workload results in suite order.
    pub workloads: Vec<LockstepWorkloadPerf>,
}

impl LockstepPerf {
    /// Renders the human-readable lockstep table the binary prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:>10} | {:>12} {:>12} {:>12} {:>8}\n",
            "benchmark", "insns(all)", "seq Mi/s", "lock Mi/s", "laneup"
        );
        out.push_str(&"-".repeat(62));
        out.push('\n');
        for w in &self.workloads {
            out.push_str(&format!(
                "{:>10} | {:>12} {:>12.1} {:>12.1} {:>7.2}x\n",
                w.name,
                w.instructions,
                w.sequential.minsn_per_s,
                w.lockstep.minsn_per_s,
                w.speedup(),
            ));
        }
        out.push_str(&format!(
            "{:>10} | {:>12} {:>12.1} {:>12.1} {:>7.2}x\n",
            "suite",
            self.workloads.iter().map(|w| w.instructions).sum::<u64>(),
            self.aggregate_minsn(|w| w.sequential),
            self.aggregate_minsn(|w| w.lockstep),
            self.aggregate_speedup(),
        ));
        out
    }

    /// Suite-level Minsn/s for a mode.
    #[must_use]
    pub fn aggregate_minsn(&self, mode: impl Fn(&LockstepWorkloadPerf) -> ModePerf) -> f64 {
        let insns: f64 = self.workloads.iter().map(|w| w.instructions as f64).sum();
        let secs: f64 = self.workloads.iter().map(|w| mode(w).seconds).sum();
        insns / secs.max(1e-9) / 1e6
    }

    /// Suite-level lockstep speedup over sequential (total seconds over
    /// total seconds) — the number the `SIMPERF_LANES_FLOOR` CI gate
    /// watches.
    #[must_use]
    pub fn aggregate_speedup(&self) -> f64 {
        let seq: f64 = self.workloads.iter().map(|w| w.sequential.seconds).sum();
        let lock: f64 = self.workloads.iter().map(|w| w.lockstep.seconds).sum();
        seq / lock.max(1e-9)
    }
}

/// The whole suite's measurements.
#[derive(Clone, Debug)]
pub struct SimPerf {
    /// `true` when run with smoke-mode iteration counts (CI).
    pub smoke: bool,
    /// Repetitions per mode (best-of).
    pub reps: usize,
    /// Per-workload results in suite order.
    pub workloads: Vec<WorkloadPerf>,
    /// Lockstep lane-engine measurement over the same suite.
    pub lockstep: LockstepPerf,
}

impl SimPerf {
    fn totals(&self, f: impl Fn(&WorkloadPerf) -> f64) -> f64 {
        self.workloads.iter().map(f).sum()
    }

    /// Suite-level Minsn/s for a mode: total instructions over total
    /// seconds.
    #[must_use]
    pub fn aggregate_minsn(&self, mode: impl Fn(&WorkloadPerf) -> ModePerf) -> f64 {
        let insns = self.totals(|w| w.instructions as f64);
        let secs = self.totals(|w| mode(w).seconds);
        insns / secs.max(1e-9) / 1e6
    }

    /// Suite-level block-engine speedup over the per-instruction
    /// predecoded path (total seconds over total seconds) — the number
    /// the `SIMPERF_BLOCK_FLOOR` CI gate watches.
    #[must_use]
    pub fn aggregate_block_speedup(&self) -> f64 {
        self.totals(|w| w.predecoded.seconds) / self.totals(|w| w.block.seconds).max(1e-9)
    }

    /// Suite-level predecoded-path speedup over the decode-per-fetch
    /// reference (the PR 3 number, still tracked).
    #[must_use]
    pub fn aggregate_predecoded_speedup(&self) -> f64 {
        self.totals(|w| w.reference.seconds) / self.totals(|w| w.predecoded.seconds).max(1e-9)
    }

    /// Suite-level block-engine speedup over the seed loop.
    #[must_use]
    pub fn aggregate_block_speedup_vs_reference(&self) -> f64 {
        self.totals(|w| w.reference.seconds) / self.totals(|w| w.block.seconds).max(1e-9)
    }

    /// Suite-level trace-engine speedup over the superblock engine —
    /// the `SIMPERF_TRACE_FLOOR` CI gate.
    #[must_use]
    pub fn aggregate_trace_speedup(&self) -> f64 {
        self.totals(|w| w.block.seconds) / self.totals(|w| w.trace.seconds).max(1e-9)
    }

    /// Suite-level trace-engine speedup over the seed loop.
    #[must_use]
    pub fn aggregate_trace_speedup_vs_reference(&self) -> f64 {
        self.totals(|w| w.reference.seconds) / self.totals(|w| w.trace.seconds).max(1e-9)
    }

    /// Workloads whose per-workload `trace_speedup_vs_block` sits below
    /// [`PER_WORKLOAD_TRACE_FLOOR`] — outliers reported in the JSON
    /// `below_floor` array (with their [`floor_waiver`] diagnosis when
    /// one is recorded).
    #[must_use]
    pub fn below_floor(&self) -> Vec<(&str, f64)> {
        self.workloads
            .iter()
            .filter(|w| w.trace_speedup() < PER_WORKLOAD_TRACE_FLOOR)
            .map(|w| (w.name.as_str(), w.trace_speedup()))
            .collect()
    }

    /// Below-floor workloads with **no** recorded waiver — the new
    /// entrants the harness binary warns about. Diagnosed floor-limited
    /// workloads ([`FLOOR_WAIVERS`]) re-appear in every run and are
    /// recorded in the JSON instead of re-warned.
    #[must_use]
    pub fn new_below_floor(&self) -> Vec<(&str, f64)> {
        self.below_floor().into_iter().filter(|(name, _)| floor_waiver(name).is_none()).collect()
    }

    /// Renders the `BENCH_sim.json` document (schema
    /// `warp-mb/bench-sim/v6`: v5 — the `lockstep` mode block, the
    /// `below_floor` outlier list, and the per-workload
    /// `engine_coverage` fractions — plus a `floor_waiver` diagnosis
    /// string (or `null`) on every `below_floor` entry, so known
    /// floor-limited workloads carry their explanation instead of
    /// re-triggering warnings run after run).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mode_json = |m: &ModePerf| {
            format!(
                r#"{{"engine": "{}", "seconds": {:.6}, "minsn_per_s": {:.3}}}"#,
                m.engine, m.seconds, m.minsn_per_s
            )
        };
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"warp-mb/bench-sim/v6\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", if self.smoke { "smoke" } else { "full" }));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str(&format!("  \"mb_clock_hz\": {},\n", mb_sim::MB_CLOCK_HZ));
        out.push_str("  \"workloads\": [\n");
        for (i, w) in self.workloads.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"instructions\": {}, \"mb_cycles\": {}, \
                 \"modes\": {{\"reference_decode_per_fetch\": {}, \"predecoded\": {}, \
                 \"block\": {}, \"trace\": {}, \"summary\": {}, \"full_trace\": {}}}, \
                 \"engine_coverage\": {{\"step\": {:.4}, \"block\": {:.4}, \"trace\": {:.4}}}, \
                 \"trace_speedup_vs_block\": {:.3}, \
                 \"block_speedup_vs_predecoded\": {:.3}, \
                 \"predecoded_speedup_vs_reference\": {:.3}}}{}\n",
                w.name,
                w.instructions,
                w.mb_cycles,
                mode_json(&w.reference),
                mode_json(&w.predecoded),
                mode_json(&w.block),
                mode_json(&w.trace),
                mode_json(&w.summary),
                mode_json(&w.full_trace),
                w.step_fraction,
                w.block_fraction,
                w.trace_fraction,
                w.trace_speedup(),
                w.block_speedup(),
                w.predecoded_speedup(),
                if i + 1 == self.workloads.len() { "" } else { "," },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"below_floor\": [{}],\n",
            self.below_floor()
                .iter()
                .map(|(name, speedup)| {
                    let waiver = floor_waiver(name)
                        .map_or("null".into(), |d| format!("\"{d}\""));
                    format!(
                        r#"{{"name": "{name}", "trace_speedup_vs_block": {speedup:.3}, "floor": {PER_WORKLOAD_TRACE_FLOOR}, "floor_waiver": {waiver}}}"#
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
        ));
        out.push_str(&format!("  \"lockstep\": {{\"lanes\": {},\n", self.lockstep.lanes));
        out.push_str("    \"workloads\": [\n");
        for (i, w) in self.lockstep.workloads.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"name\": \"{}\", \"instructions\": {}, \
                 \"modes\": {{\"lockstep\": {}, \"sequential\": {}}}, \
                 \"lockstep_speedup_vs_sequential\": {:.3}}}{}\n",
                w.name,
                w.instructions,
                mode_json(&w.lockstep),
                mode_json(&w.sequential),
                w.speedup(),
                if i + 1 == self.lockstep.workloads.len() { "" } else { "," },
            ));
        }
        out.push_str("    ],\n");
        out.push_str(&format!(
            "    \"aggregate\": {{\"lockstep_minsn_per_s\": {:.3}, \
             \"sequential_minsn_per_s\": {:.3}, \
             \"lockstep_speedup_vs_sequential\": {:.3}}}\n",
            self.lockstep.aggregate_minsn(|w| w.lockstep),
            self.lockstep.aggregate_minsn(|w| w.sequential),
            self.lockstep.aggregate_speedup(),
        ));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"aggregate\": {{\"trace_minsn_per_s\": {:.3}, \"block_minsn_per_s\": {:.3}, \
             \"predecoded_minsn_per_s\": {:.3}, \
             \"summary_minsn_per_s\": {:.3}, \"full_trace_minsn_per_s\": {:.3}, \
             \"reference_minsn_per_s\": {:.3}, \"trace_speedup_vs_block\": {:.3}, \
             \"block_speedup_vs_predecoded\": {:.3}, \
             \"predecoded_speedup_vs_reference\": {:.3}, \
             \"trace_speedup_vs_reference\": {:.3}, \
             \"block_speedup_vs_reference\": {:.3}}}\n",
            self.aggregate_minsn(|w| w.trace),
            self.aggregate_minsn(|w| w.block),
            self.aggregate_minsn(|w| w.predecoded),
            self.aggregate_minsn(|w| w.summary),
            self.aggregate_minsn(|w| w.full_trace),
            self.aggregate_minsn(|w| w.reference),
            self.aggregate_trace_speedup(),
            self.aggregate_block_speedup(),
            self.aggregate_predecoded_speedup(),
            self.aggregate_trace_speedup_vs_reference(),
            self.aggregate_block_speedup_vs_reference(),
        ));
        out.push_str("}\n");
        out
    }

    /// Renders the human-readable table the binary prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:>10} | {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}\n",
            "benchmark",
            "insns",
            "ref Mi/s",
            "predec",
            "block",
            "trace",
            "summary",
            "full",
            "blockup",
            "traceup"
        );
        out.push_str(&"-".repeat(107));
        out.push('\n');
        let mut row = |name: &str,
                       insns: u64,
                       r: f64,
                       p: f64,
                       b: f64,
                       t: f64,
                       s: f64,
                       f: f64,
                       blockup: f64,
                       traceup: f64| {
            out.push_str(&format!(
                "{name:>10} | {insns:>12} {r:>9.1} {p:>9.1} {b:>9.1} {t:>9.1} {s:>9.1} {f:>9.1} {blockup:>7.2}x {traceup:>7.2}x\n",
            ));
        };
        for w in &self.workloads {
            row(
                &w.name,
                w.instructions,
                w.reference.minsn_per_s,
                w.predecoded.minsn_per_s,
                w.block.minsn_per_s,
                w.trace.minsn_per_s,
                w.summary.minsn_per_s,
                w.full_trace.minsn_per_s,
                w.block_speedup(),
                w.trace_speedup(),
            );
        }
        row(
            "suite",
            self.workloads.iter().map(|w| w.instructions).sum::<u64>(),
            self.aggregate_minsn(|w| w.reference),
            self.aggregate_minsn(|w| w.predecoded),
            self.aggregate_minsn(|w| w.block),
            self.aggregate_minsn(|w| w.trace),
            self.aggregate_minsn(|w| w.summary),
            self.aggregate_minsn(|w| w.full_trace),
            self.aggregate_block_speedup(),
            self.aggregate_trace_speedup(),
        );
        out
    }
}

/// Best-of-`reps` wall-clock for one run mode, checking that the
/// simulated outcome matches the expected cycle/instruction counts
/// and that the system dispatches the [`Engine`] the mode claims to
/// measure — a config drift that silently downgraded the engine would
/// otherwise publish mislabeled numbers. System construction, the
/// [`System::prewarm`] of the decode/block stores, and the checks all
/// happen off the clock — the timed region is the steady-state run
/// itself, so every mode is measured on the same footing instead of
/// folding one-time lowering cost into whichever engine runs shortest.
fn time_mode(
    built: &BuiltWorkload,
    config: &MbConfig,
    engine: Engine,
    reps: usize,
    expected: (u64, u64),
    run: impl Fn(&mut mb_sim::System) -> mb_sim::Outcome,
) -> f64 {
    assert_eq!(
        System::new(config.clone()).active_engine(),
        engine,
        "{}: mode must measure the engine it claims",
        built.name
    );
    // One workload run is sub-millisecond — too short to time against
    // host frequency drift and interrupt noise — so each timed rep
    // executes a batch of independent runs and reports the per-run
    // share.
    const TIMED_BATCH: usize = 12;
    let best = best_of_seconds_with(
        reps,
        || {
            (0..TIMED_BATCH)
                .map(|_| {
                    let mut sys = built.instantiate(config);
                    sys.prewarm();
                    sys
                })
                .collect::<Vec<_>>()
        },
        |systems| systems.into_iter().map(|mut sys| run(&mut sys)).collect::<Vec<_>>(),
        |outcomes| {
            for outcome in outcomes {
                assert!(outcome.exited(), "{}: run must exit", built.name);
                assert_eq!(
                    (outcome.cycles, outcome.instructions),
                    expected,
                    "{}: simulated timing must be mode-independent",
                    built.name
                );
            }
        },
    );
    best / TIMED_BATCH as f64
}

/// The seed run loop, reproduced: step by step with the budget checked
/// by summing the per-class cycle counters every iteration — exactly
/// what the original `run_inner` did before the grand totals existed.
/// Combined with `predecode: false` (decode per fetch, per-instruction
/// exit-port poll) this is the baseline the fast paths are measured
/// against.
fn run_seed_style(sys: &mut mb_sim::System) -> Outcome {
    let linear_cycles =
        |s: &mb_sim::ExecStats| OpClass::ALL.iter().map(|&c| s.cycles_of(c)).sum::<u64>();
    let linear_insns =
        |s: &mb_sim::ExecStats| OpClass::ALL.iter().map(|&c| s.instructions_of(c)).sum::<u64>();
    let start_cycles = linear_cycles(sys.stats());
    let start_insns = linear_insns(sys.stats());
    loop {
        if let Some(code) = sys.halted() {
            return Outcome {
                stop: StopReason::Exited(code),
                cycles: linear_cycles(sys.stats()) - start_cycles,
                instructions: linear_insns(sys.stats()) - start_insns,
            };
        }
        if linear_cycles(sys.stats()) - start_cycles >= MAX_CYCLES {
            return Outcome {
                stop: StopReason::CycleLimit,
                cycles: linear_cycles(sys.stats()) - start_cycles,
                instructions: linear_insns(sys.stats()) - start_insns,
            };
        }
        sys.step(&mut NullSink).unwrap();
    }
}

/// Measures one workload across all six modes.
#[must_use]
pub fn measure_workload(workload: &workloads::Workload, reps: usize) -> WorkloadPerf {
    let built = workload.build(MbFeatures::paper_default());
    let trace = MbConfig::paper_default();
    let block = trace.clone().with_traces(false);
    let predecoded = block.clone().with_blocks(false);
    let reference = predecoded.clone().with_predecode(false);

    // Establish the expected simulated counts once; the same run yields
    // the engine-coverage fractions for the trace configuration.
    let mut sys = built.instantiate(&trace);
    let outcome = sys.run(MAX_CYCLES).expect("workload runs");
    assert!(outcome.exited());
    let expected = (outcome.cycles, outcome.instructions);
    let (step_fraction, block_fraction, trace_fraction) = sys.stats().engine_coverage();

    let run_untraced =
        |sys: &mut mb_sim::System| sys.run_with_sink(MAX_CYCLES, &mut NullSink).unwrap();
    let t_trace = time_mode(&built, &trace, Engine::Trace, reps, expected, run_untraced);
    let t_block = time_mode(&built, &block, Engine::Block, reps, expected, run_untraced);
    let t_predecoded = time_mode(&built, &predecoded, Engine::Step, reps, expected, run_untraced);
    let t_summary = time_mode(&built, &trace, Engine::Trace, reps, expected, |sys| {
        let mut summary = TraceSummary::new();
        sys.run_with_sink(MAX_CYCLES, &mut summary).unwrap()
    });
    let t_full = time_mode(&built, &trace, Engine::Trace, reps, expected, |sys| {
        let mut trace = Trace::new();
        sys.run_with_sink(MAX_CYCLES, &mut trace).unwrap()
    });
    let t_ref = time_mode(&built, &reference, Engine::Reference, reps, expected, run_seed_style);

    WorkloadPerf {
        name: built.name.clone(),
        instructions: expected.1,
        mb_cycles: expected.0,
        reference: ModePerf::from_best(t_ref, expected.1, Engine::Reference),
        predecoded: ModePerf::from_best(t_predecoded, expected.1, Engine::Step),
        block: ModePerf::from_best(t_block, expected.1, Engine::Block),
        trace: ModePerf::from_best(t_trace, expected.1, Engine::Trace),
        summary: ModePerf::from_best(t_summary, expected.1, Engine::Trace),
        full_trace: ModePerf::from_best(t_full, expected.1, Engine::Trace),
        step_fraction,
        block_fraction,
        trace_fraction,
    }
}

/// Measures one workload's lockstep-vs-sequential throughput: one
/// [`LaneGroup`] executing [`LOCKSTEP_LANES`] seeded instances of the
/// program against the same builds run one after another on the trace
/// engine. Both sides assert bit-identical per-lane [`Outcome`]s against
/// an untimed reference pass (which also verifies the seeded golden
/// results), so the published speedup compares equal work.
#[must_use]
pub fn measure_lockstep(workload: &workloads::Workload, reps: usize) -> LockstepWorkloadPerf {
    const SEED_BASE: u64 = 0x10C4_57E9;
    let config = MbConfig::paper_default();
    let builds: [BuiltWorkload; LOCKSTEP_LANES] = core::array::from_fn(|lane| {
        workload.build_seeded(MbFeatures::paper_default(), SEED_BASE + lane as u64)
    });

    let expected: Vec<Outcome> = builds
        .iter()
        .map(|b| {
            let mut sys = b.instantiate(&config);
            let out = sys.run(MAX_CYCLES).expect("workload runs");
            assert!(out.exited(), "{}: seeded run must exit", workload.name);
            b.verify(sys.dmem()).expect("seeded golden results hold");
            out
        })
        .collect();
    let instructions: u64 = expected.iter().map(|o| o.instructions).sum();

    // Same batching rationale as `time_mode`: amortize timer noise over
    // a batch of independent runs built and checked off the clock.
    const TIMED_BATCH: usize = 4;
    let t_lock = best_of_seconds_with(
        reps,
        || {
            (0..TIMED_BATCH)
                .map(|_| {
                    let mut group: LaneGroup<LOCKSTEP_LANES> =
                        workloads::instantiate_lanes(&builds, &config);
                    group.prewarm();
                    group
                })
                .collect::<Vec<_>>()
        },
        |groups| groups.into_iter().map(|mut g| g.run(MAX_CYCLES)).collect::<Vec<_>>(),
        |batches| {
            for results in batches {
                for (lane, r) in results.iter().enumerate() {
                    let out = r.as_ref().expect("lane runs");
                    assert_eq!(
                        out, &expected[lane],
                        "{}: lockstep lane {lane} must match its sequential run",
                        workload.name
                    );
                }
            }
        },
    ) / TIMED_BATCH as f64;

    let t_seq = best_of_seconds_with(
        reps,
        || {
            (0..TIMED_BATCH)
                .map(|_| {
                    builds
                        .iter()
                        .map(|b| {
                            let mut sys = b.instantiate(&config);
                            sys.prewarm();
                            sys
                        })
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
        |batch| {
            batch
                .into_iter()
                .map(|systems| {
                    systems
                        .into_iter()
                        .map(|mut sys| sys.run_with_sink(MAX_CYCLES, &mut NullSink).unwrap())
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        },
        |batches| {
            for outcomes in batches {
                for (lane, out) in outcomes.iter().enumerate() {
                    assert_eq!(out, &expected[lane], "{}: sequential lane {lane}", workload.name);
                }
            }
        },
    ) / TIMED_BATCH as f64;

    let lock_seconds = t_lock.max(1e-9);
    LockstepWorkloadPerf {
        name: workload.name.into(),
        instructions,
        lockstep: ModePerf {
            seconds: lock_seconds,
            minsn_per_s: instructions as f64 / lock_seconds / 1e6,
            engine: LOCKSTEP_ENGINE,
        },
        sequential: ModePerf::from_best(t_seq, instructions, Engine::Trace),
    }
}

/// Measures the whole paper suite.
#[must_use]
pub fn measure_suite(reps: usize, smoke: bool) -> SimPerf {
    let suite = workloads::paper_suite();
    let workloads = suite.iter().map(|w| measure_workload(w, reps)).collect();
    let lockstep = LockstepPerf {
        lanes: LOCKSTEP_LANES,
        workloads: suite.iter().map(|w| measure_lockstep(w, reps)).collect(),
    };
    SimPerf { smoke, reps, workloads, lockstep }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> SimPerf {
        let mode = |s: f64, e: Engine| ModePerf::from_best(s, 1_000_000, e);
        SimPerf {
            smoke: true,
            reps: 1,
            workloads: vec![WorkloadPerf {
                name: "brev".into(),
                instructions: 1_000_000,
                mb_cycles: 1_500_000,
                reference: mode(0.4, Engine::Reference),
                predecoded: mode(0.1, Engine::Step),
                block: mode(0.05, Engine::Block),
                trace: mode(0.025, Engine::Trace),
                summary: mode(0.06, Engine::Trace),
                full_trace: mode(0.2, Engine::Trace),
                step_fraction: 0.02,
                block_fraction: 0.08,
                trace_fraction: 0.9,
            }],
            lockstep: LockstepPerf {
                lanes: LOCKSTEP_LANES,
                workloads: vec![LockstepWorkloadPerf {
                    name: "brev".into(),
                    instructions: 8_000_000,
                    lockstep: ModePerf {
                        seconds: 0.05,
                        minsn_per_s: 8_000_000.0 / 0.05 / 1e6,
                        engine: LOCKSTEP_ENGINE,
                    },
                    sequential: ModePerf::from_best(0.2, 8_000_000, Engine::Trace),
                }],
            },
        }
    }

    #[test]
    fn json_has_schema_and_balanced_structure() {
        let json = synthetic().to_json();
        assert!(json.contains("\"schema\": \"warp-mb/bench-sim/v6\""));
        assert!(json.contains(
            "\"engine_coverage\": {\"step\": 0.0200, \"block\": 0.0800, \"trace\": 0.9000}"
        ));
        assert!(json.contains("\"trace_speedup_vs_block\""));
        assert!(json.contains("\"block_speedup_vs_predecoded\""));
        assert!(json.contains("\"predecoded_speedup_vs_reference\""));
        assert!(json.contains("\"modes\": {\"reference_decode_per_fetch\""));
        assert!(json.contains("\"block\": {"));
        assert!(json.contains("\"trace\": {\"engine\": \"trace\""));
        assert!(json.contains("\"engine\": \"predecoded_step\""));
        assert!(json.contains("\"engine\": \"reference_decode_per_fetch\""));
        assert!(json.contains("\"trace_minsn_per_s\""));
        assert!(json.contains("\"below_floor\": ["));
        assert!(json.contains("\"lockstep\": {\"lanes\": 8"));
        assert!(json.contains("\"engine\": \"lockstep_lanes\""));
        assert!(json.contains("\"lockstep_speedup_vs_sequential\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0, "quotes must pair");
        // No NaN/inf can ever leak into the document.
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn below_floor_flags_only_outliers() {
        let mut p = synthetic();
        // Synthetic trace speedup is 2.0 — above the 1.5 floor.
        assert!(p.below_floor().is_empty());
        // Slow the trace mode below the floor and it must be listed.
        p.workloads[0].trace = ModePerf::from_best(0.045, 1_000_000, Engine::Trace);
        let below = p.below_floor();
        assert_eq!(below.len(), 1);
        assert_eq!(below[0].0, "brev");
        assert!(below[0].1 < PER_WORKLOAD_TRACE_FLOOR);
        let json = p.to_json();
        assert!(json.contains(r#""below_floor": [{"name": "brev""#));
        // brev carries its waiver diagnosis in the document...
        assert!(json.contains(r#""floor_waiver": "floor-limited by a tiny loop body"#));
        // ...and therefore is not a *new* entrant.
        assert!(p.new_below_floor().is_empty());
    }

    #[test]
    fn unwaived_entrants_are_flagged_as_new() {
        let mut p = synthetic();
        p.workloads[0].name = "matmul".into();
        p.workloads[0].trace = ModePerf::from_best(0.045, 1_000_000, Engine::Trace);
        assert_eq!(p.new_below_floor(), vec![("matmul", p.workloads[0].trace_speedup())]);
        assert!(p.to_json().contains(r#""name": "matmul", "trace_speedup_vs_block": 1.111, "floor": 1.5, "floor_waiver": null"#));
    }

    #[test]
    fn every_waiver_names_a_diagnosis() {
        for (name, diagnosis) in FLOOR_WAIVERS {
            assert!(!diagnosis.is_empty(), "{name} waiver needs a diagnosis");
            assert_eq!(floor_waiver(name), Some(*diagnosis));
        }
        assert_eq!(floor_waiver("matmul"), None);
    }

    #[test]
    fn lockstep_speedups_follow_the_seconds() {
        let p = synthetic();
        let w = &p.lockstep.workloads[0];
        assert!((w.speedup() - 4.0).abs() < 1e-9);
        assert!((p.lockstep.aggregate_speedup() - 4.0).abs() < 1e-9);
        assert!((p.lockstep.aggregate_minsn(|w| w.lockstep) - 160.0).abs() < 1e-6);
        assert!((p.lockstep.aggregate_minsn(|w| w.sequential) - 40.0).abs() < 1e-6);
        let table = p.lockstep.render_table();
        assert!(table.contains("laneup"));
        assert!(table.contains("suite"));
    }

    #[test]
    fn speedups_and_aggregates_follow_the_seconds() {
        let p = synthetic();
        let w = &p.workloads[0];
        assert!((w.block_speedup() - 2.0).abs() < 1e-9);
        assert!((w.trace_speedup() - 2.0).abs() < 1e-9);
        assert!((w.predecoded_speedup() - 4.0).abs() < 1e-9);
        assert!((p.aggregate_block_speedup() - 2.0).abs() < 1e-9);
        assert!((p.aggregate_trace_speedup() - 2.0).abs() < 1e-9);
        assert!((p.aggregate_predecoded_speedup() - 4.0).abs() < 1e-9);
        assert!((p.aggregate_block_speedup_vs_reference() - 8.0).abs() < 1e-9);
        assert!((p.aggregate_trace_speedup_vs_reference() - 16.0).abs() < 1e-9);
        assert!((p.aggregate_minsn(|w| w.block) - 20.0).abs() < 1e-6);
        assert!((p.aggregate_minsn(|w| w.trace) - 40.0).abs() < 1e-6);
    }

    #[test]
    fn table_lists_every_workload_and_the_suite_row() {
        let table = synthetic().render_table();
        assert!(table.contains("brev"));
        assert!(table.contains("suite"));
        assert!(table.contains("blockup"));
        assert!(table.contains("traceup"));
    }
}
