//! Fleet-scale measurement of the warp-serve scheduler: how many
//! concurrent warp-simulation sessions one server sustains, what the
//! aggregate simulated-instruction throughput is, how time-to-first-warp
//! distributes across tenants, and how much the shared circuit cache
//! saves the fleet. [`ServePerf::to_json`] emits `BENCH_serve.json`
//! (schema `warp-mb/bench-serve/v2`, documented in the README's "Warp
//! as a service" section).
//!
//! v2 splits the wall clock into `setup_seconds` (warming the server —
//! one tenant per binary runs to completion so program images and
//! compiled circuits are hot — then building the seeded workloads and
//! registering the fleet) and `execute_seconds` (first measured grant
//! to last report — the serving window every throughput figure divides
//! by), and adds `allocations`: heap allocations performed during the
//! execute window, counted by the debug-only shim in [`crate::alloc`]
//! (`null` in release builds, where counting is compiled out). The
//! split makes the pooled hot path's win attributable: image captures,
//! first-boot compiles, and constructors amortize into setup; the
//! execute window pays only for serving.
//!
//! Unlike `onlineperf`'s numbers, the throughput figures here are
//! host wall-clock (like `simperf`'s): they depend on the machine and
//! the worker count. The *simulated* figures riding along (cycles,
//! warps, time-to-first-warp, cache hit counts) are functions of the
//! fleet composition only.

use std::sync::Arc;
use std::time::Instant;

use mb_isa::MbFeatures;
use warp_core::{CacheStats, CadService, CircuitCache};
use warp_online::{OnlineConfig, OnlineSession, TopKPolicy};
use warp_serve::{ServeConfig, Server};

/// Sessions driven in `--smoke` mode (the CI gate: ≥256 sessions on 4
/// workers).
pub const SMOKE_SESSIONS: usize = 256;
/// Sessions driven in full mode (the acceptance bar: ≥1k concurrent).
pub const FULL_SESSIONS: usize = 1024;

/// Distribution summary of time-to-first-warp across the fleet.
#[derive(Clone, Copy, Debug, Default)]
pub struct TtfwDistribution {
    /// Sessions that landed at least one warp.
    pub sessions: u64,
    /// Minimum simulated cycles to the first landed patch.
    pub min: u64,
    /// Mean simulated cycles to the first landed patch.
    pub mean: f64,
    /// Median (p50).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// Maximum.
    pub max: u64,
}

impl TtfwDistribution {
    fn from_samples(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return TtfwDistribution::default();
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&v| u128::from(v)).sum();
        let pct = |p: usize| samples[(samples.len() - 1) * p / 100];
        TtfwDistribution {
            sessions: samples.len() as u64,
            min: samples[0],
            mean: sum as f64 / samples.len() as f64,
            p50: pct(50),
            p90: pct(90),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Everything `serveperf` measured.
#[derive(Clone, Debug)]
pub struct ServePerf {
    /// Whether this was a smoke (CI-sized) run.
    pub smoke: bool,
    /// Scheduler worker threads.
    pub workers: usize,
    /// Fairness quantum in scheduler slices.
    pub quantum_slices: u64,
    /// Sessions created and served to completion.
    pub sessions: usize,
    /// Sessions that finished with a verified report.
    pub finished: u64,
    /// Sessions that failed.
    pub failed: u64,
    /// Scheduling quanta the pool executed.
    pub quanta: u64,
    /// Wall-clock seconds warming the server (one tenant per binary,
    /// run to completion so images and circuits are hot), building the
    /// seeded workloads, and registering the fleet — everything before
    /// the first measured grant.
    pub setup_seconds: f64,
    /// Wall-clock seconds from first grant to last report — the
    /// serving window the throughput figures divide by.
    pub execute_seconds: f64,
    /// Heap allocations during the execute window, via the debug-only
    /// counter ([`crate::alloc`]); `None` when compiled out (release).
    pub allocations: Option<u64>,
    /// Total simulated cycles across the fleet.
    pub sim_cycles: u64,
    /// Total software instructions retired across the fleet.
    pub sim_instructions: u64,
    /// Total warp events landed across the fleet.
    pub warps: u64,
    /// Time-to-first-warp distribution.
    pub ttfw: TtfwDistribution,
    /// Shared circuit cache counters at end of run.
    pub cache: CacheStats,
}

impl ServePerf {
    /// Total wall clock: setup plus the serving window.
    #[must_use]
    pub fn wall_seconds(&self) -> f64 {
        self.setup_seconds + self.execute_seconds
    }

    /// Sessions served to completion per second of the serving window.
    #[must_use]
    pub fn sessions_per_second(&self) -> f64 {
        self.finished as f64 / self.execute_seconds.max(1e-9)
    }

    /// Aggregate fleet throughput in millions of simulated instructions
    /// per second of the serving window.
    #[must_use]
    pub fn minsn_per_second(&self) -> f64 {
        self.sim_instructions as f64 / 1e6 / self.execute_seconds.max(1e-9)
    }

    /// Renders the `BENCH_serve.json` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"warp-mb/bench-serve/v2\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", if self.smoke { "smoke" } else { "full" }));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"quantum_slices\": {},\n", self.quantum_slices));
        out.push_str(&format!("  \"sessions\": {},\n", self.sessions));
        out.push_str(&format!("  \"finished\": {},\n", self.finished));
        out.push_str(&format!("  \"failed\": {},\n", self.failed));
        out.push_str(&format!("  \"quanta\": {},\n", self.quanta));
        out.push_str(&format!("  \"wall_seconds\": {:.4},\n", self.wall_seconds()));
        out.push_str(&format!("  \"setup_seconds\": {:.4},\n", self.setup_seconds));
        out.push_str(&format!("  \"execute_seconds\": {:.4},\n", self.execute_seconds));
        out.push_str(&format!(
            "  \"allocations\": {},\n",
            self.allocations.map_or("null".into(), |n| n.to_string())
        ));
        out.push_str(&format!("  \"sessions_per_second\": {:.2},\n", self.sessions_per_second()));
        out.push_str(&format!("  \"minsn_per_second\": {:.2},\n", self.minsn_per_second()));
        out.push_str(&format!("  \"sim_cycles\": {},\n", self.sim_cycles));
        out.push_str(&format!("  \"sim_instructions\": {},\n", self.sim_instructions));
        out.push_str(&format!("  \"warps\": {},\n", self.warps));
        out.push_str(&format!(
            "  \"time_to_first_warp\": {{\"sessions\": {}, \"min\": {}, \"mean\": {:.1}, \"p50\": {}, \"p90\": {}, \"max\": {}}},\n",
            self.ttfw.sessions, self.ttfw.min, self.ttfw.mean, self.ttfw.p50, self.ttfw.p90, self.ttfw.max
        ));
        out.push_str(&format!(
            "  \"shared_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \"capacity\": {}, \"hit_rate\": {:.4}}}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            self.cache.capacity.map_or("null".into(), |c| c.to_string()),
            self.cache.hit_rate(),
        ));
        out.push_str("}\n");
        out
    }

    /// Human-readable summary table.
    #[must_use]
    pub fn render_table(&self) -> String {
        format!(
            "sessions           {:>10}\n\
             finished/failed    {:>6} / {}\n\
             workers            {:>10}\n\
             setup seconds      {:>10.2}\n\
             execute seconds    {:>10.2}\n\
             allocations        {:>10}\n\
             sessions/s         {:>10.1}\n\
             aggregate Minsn/s  {:>10.1}\n\
             warps landed       {:>10}\n\
             ttfw p50/p90 (cyc) {:>7} / {}\n\
             cache hit rate     {:>9.1}%  ({} hits, {} misses, {} evictions)\n",
            self.sessions,
            self.finished,
            self.failed,
            self.workers,
            self.setup_seconds,
            self.execute_seconds,
            self.allocations.map_or("n/a (release)".into(), |n| n.to_string()),
            self.sessions_per_second(),
            self.minsn_per_second(),
            self.warps,
            self.ttfw.p50,
            self.ttfw.p90,
            100.0 * self.cache.hit_rate(),
            self.cache.hits,
            self.cache.misses,
            self.cache.evictions,
        )
    }
}

/// Drives a fleet of seeded sessions through one server and measures
/// it. The fleet cycles through the whole workload registry with a
/// distinct data seed per session, every session sharing one bounded
/// circuit cache — so tenants running the same kernel warm-start from
/// each other and the measured hit rate is the cross-session one.
#[must_use]
pub fn measure_fleet(smoke: bool, workers: usize) -> ServePerf {
    let sessions = if smoke { SMOKE_SESSIONS } else { FULL_SESSIONS };
    let specs = workloads::all();
    // Capacity below the distinct-kernel count: the cache must evict
    // under real fleet pressure, not just grow to fit.
    let cache = Arc::new(CircuitCache::bounded(specs.len().saturating_sub(2).max(1)));
    let cad = Arc::new(CadService::from_env());
    let config = ServeConfig { workers, ..ServeConfig::default() };
    let quantum_slices = config.quantum_slices;
    let server = Server::start(config);

    // Create the whole fleet parked, then grant everything at once:
    // the setup window is warm-up plus fleet registration, the execute
    // window is pure serving.
    let setup_start = Instant::now();
    let mk_session = |spec: &workloads::Workload, seed: u64| {
        let built = Arc::new(spec.build_seeded(MbFeatures::paper_default(), seed));
        OnlineSession::new(built, OnlineConfig::default())
            .with_policy(TopKPolicy { k: 2, min_count: 256 })
            .with_cache(Arc::clone(&cache))
            .with_service(Arc::clone(&cad))
    };

    // Steady-state discipline: one warm-up tenant per binary runs to
    // completion first, through the server itself, so the worker
    // pools' shared image store and the circuit caches are hot. The
    // measured window then reflects the long-running server the fleet
    // bar is about — serving work — not first-boot image captures and
    // compile storms, which amortize into setup.
    let warm: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(j, spec)| server.create(mk_session(spec, (sessions + j) as u64)))
        .collect();
    for &id in &warm {
        server.run(id).expect("warm-up session just created");
    }
    for &id in &warm {
        let _ = server.wait(id);
    }

    let ids: Vec<_> = (0..sessions)
        .map(|i| server.create(mk_session(&specs[i % specs.len()], i as u64)))
        .collect();
    let setup_seconds = setup_start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut ttfw = Vec::new();
    let (mut finished, mut failed) = (0u64, 0u64);
    let (mut sim_cycles, mut sim_instructions, mut warps) = (0u64, 0u64, 0u64);
    let ((), allocations) = crate::alloc::delta_during(|| {
        for &id in &ids {
            server.run(id).expect("session just created");
        }
        for &id in &ids {
            match server.wait(id) {
                Ok(report) => {
                    finished += 1;
                    sim_cycles += report.cycles;
                    sim_instructions += report.instructions;
                    warps += report.events.len() as u64;
                    if let Some(t) = report.time_to_first_warp() {
                        ttfw.push(t);
                    }
                }
                Err(_) => failed += 1,
            }
        }
    });
    let execute_seconds = start.elapsed().as_secs_f64();
    let fleet = server.fleet();

    ServePerf {
        smoke,
        workers,
        quantum_slices,
        sessions,
        finished,
        failed,
        quanta: fleet.quanta,
        setup_seconds,
        execute_seconds,
        allocations,
        sim_cycles,
        sim_instructions,
        warps,
        ttfw: TtfwDistribution::from_samples(ttfw),
        cache: cache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> ServePerf {
        ServePerf {
            smoke: true,
            workers: 4,
            quantum_slices: 32,
            sessions: 256,
            finished: 256,
            failed: 0,
            quanta: 4096,
            setup_seconds: 0.5,
            execute_seconds: 2.0,
            allocations: Some(12_345),
            sim_cycles: 1_000_000_000,
            sim_instructions: 400_000_000,
            warps: 300,
            ttfw: TtfwDistribution::from_samples(vec![100, 200, 300, 400, 500, 600, 700, 800]),
            cache: CacheStats {
                hits: 240,
                misses: 16,
                evictions: 7,
                entries: 7,
                capacity: Some(7),
            },
        }
    }

    #[test]
    fn throughput_figures_divide_by_wall_clock() {
        let p = synthetic();
        assert!((p.sessions_per_second() - 128.0).abs() < 1e-9);
        assert!((p.minsn_per_second() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn ttfw_distribution_is_order_statistics() {
        let d = TtfwDistribution::from_samples(vec![500, 100, 300, 200, 400]);
        assert_eq!((d.sessions, d.min, d.max), (5, 100, 500));
        assert_eq!(d.p50, 300);
        assert_eq!(d.p90, 400, "p90 of 5 samples indexes the 4th");
        assert!((d.mean - 300.0).abs() < 1e-9);
        // Empty fleets don't divide by zero.
        assert_eq!(TtfwDistribution::from_samples(vec![]).sessions, 0);
    }

    #[test]
    fn json_has_schema_and_required_fields() {
        let json = synthetic().to_json();
        assert!(json.contains("\"schema\": \"warp-mb/bench-serve/v2\""));
        for key in [
            "\"sessions\": 256",
            "\"sessions_per_second\": 128.00",
            "\"minsn_per_second\": 200.00",
            "\"wall_seconds\": 2.5000",
            "\"setup_seconds\": 0.5000",
            "\"execute_seconds\": 2.0000",
            "\"allocations\": 12345",
            "\"time_to_first_warp\"",
            "\"shared_cache\"",
            "\"hit_rate\": 0.9375",
            "\"capacity\": 7",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces — the document must parse.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn compiled_out_counter_serializes_as_null() {
        let mut p = synthetic();
        p.allocations = None;
        assert!(p.to_json().contains("\"allocations\": null"));
        assert!(p.render_table().contains("n/a (release)"));
    }

    /// A miniature fleet end-to-end: the measurement path itself, at
    /// test scale (the full ≥1k-session bar runs in the bench binary).
    #[test]
    fn tiny_fleet_measures_nonzero_throughput_and_hits() {
        let mut mini = measure_mini(24, 2);
        // Clamp for assertion stability on loaded machines.
        mini.execute_seconds = mini.execute_seconds.max(1e-6);
        assert_eq!(mini.finished, 24);
        assert_eq!(mini.failed, 0);
        assert!(mini.warps >= 1);
        assert!(mini.cache.hits >= 1, "same-kernel tenants must warm-start");
        assert!(mini.sessions_per_second() > 0.0);
        assert!(mini.minsn_per_second() > 0.0);
    }

    fn measure_mini(sessions: usize, workers: usize) -> ServePerf {
        // Same path as measure_fleet but tiny: cycle two kernels so the
        // cache sees same-kernel tenants quickly.
        let specs: Vec<_> =
            ["brev", "crc32"].iter().map(|n| workloads::by_name(n).unwrap()).collect();
        let cache = Arc::new(CircuitCache::bounded(4));
        let cad = Arc::new(CadService::from_env());
        let server = Server::start(ServeConfig { workers, quantum_slices: 16 });
        let setup_start = Instant::now();
        let ids: Vec<_> = (0..sessions)
            .map(|i| {
                let spec = &specs[i % specs.len()];
                let built = Arc::new(spec.build_seeded(MbFeatures::paper_default(), i as u64));
                let session = OnlineSession::new(built, OnlineConfig::default())
                    .with_policy(TopKPolicy { k: 1, min_count: 256 })
                    .with_cache(Arc::clone(&cache))
                    .with_service(Arc::clone(&cad));
                let id = server.create(session);
                server.run(id).unwrap();
                id
            })
            .collect();
        let setup_seconds = setup_start.elapsed().as_secs_f64();
        let start = Instant::now();
        let mut ttfw = Vec::new();
        let (mut cyc, mut insn, mut warps, mut failed) = (0, 0, 0, 0);
        for id in ids {
            match server.wait(id) {
                Ok(r) => {
                    cyc += r.cycles;
                    insn += r.instructions;
                    warps += r.events.len() as u64;
                    ttfw.extend(r.time_to_first_warp());
                }
                Err(_) => failed += 1,
            }
        }
        let fleet = server.fleet();
        ServePerf {
            smoke: true,
            workers,
            quantum_slices: 16,
            sessions,
            finished: fleet.finished,
            failed,
            quanta: fleet.quanta,
            setup_seconds,
            execute_seconds: start.elapsed().as_secs_f64(),
            allocations: None,
            sim_cycles: cyc,
            sim_instructions: insn,
            warps,
            ttfw: TtfwDistribution::from_samples(ttfw),
            cache: cache.stats(),
        }
    }
}
