//! Measurement plumbing shared by the bench harnesses.
//!
//! The best-of-N wall-clock helper and the `--smoke`/`--out` CLI
//! handling were previously duplicated between the `simperf` and
//! `onlineperf` halves of the crate; they live here so the two
//! harnesses (and any future one) cannot drift apart on methodology.

use std::time::Instant;

/// Best-of-`reps` wall-clock seconds of `run`. Single runs are ~1 ms,
/// so repetitions are cheap and taking the minimum filters scheduler
/// noise — the same methodology for every mode keeps ratios honest.
pub fn best_of_seconds(reps: usize, mut run: impl FnMut()) -> f64 {
    best_of_seconds_with(reps, || (), |()| run(), |()| {})
}

/// Like [`best_of_seconds`], but each repetition's `setup` (building
/// the measured subject) and `verify` (checking `run`'s result) execute
/// *outside* the timed region — only `run` itself is on the clock.
/// Single runs are ~1 ms, so a constant setup cost left inside the
/// timer would inflate the fast modes proportionally more than the slow
/// ones and quietly compress every speedup ratio.
pub fn best_of_seconds_with<T, R>(
    reps: usize,
    mut setup: impl FnMut() -> T,
    mut run: impl FnMut(T) -> R,
    mut verify: impl FnMut(R),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let subject = setup();
        let start = Instant::now();
        let result = run(subject);
        best = best.min(start.elapsed().as_secs_f64());
        verify(result);
    }
    best
}

/// The `--smoke`/`--out` arguments shared by the bench binaries.
#[derive(Clone, Debug)]
pub struct BenchCli {
    /// Run with CI-sized iteration counts.
    pub smoke: bool,
    /// Where to write the JSON document.
    pub out_path: String,
}

impl BenchCli {
    /// Parses `--smoke` (also settable through `smoke_env`, e.g.
    /// `SIMPERF_SMOKE=1`) and `--out <path>` (defaulting to
    /// `default_out`) from the process arguments.
    #[must_use]
    pub fn parse(smoke_env: &str, default_out: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let smoke = args.iter().any(|a| a == "--smoke")
            || std::env::var(smoke_env).is_ok_and(|v| v != "0" && !v.is_empty());
        let out_path = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| default_out.into());
        BenchCli { smoke, out_path }
    }

    /// Writes the rendered JSON document to the chosen path and prints
    /// the confirmation line the harness binaries end with.
    ///
    /// # Panics
    ///
    /// Panics when the path cannot be written — a bench run without its
    /// document is a failed run.
    pub fn write_json(&self, json: &str) {
        std::fs::write(&self.out_path, json)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", self.out_path));
        println!("wrote {} ({} bytes)", self.out_path, json.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_takes_the_minimum() {
        let mut calls = 0;
        let s = best_of_seconds(3, || calls += 1);
        assert_eq!(calls, 3);
        assert!(s >= 0.0 && s.is_finite());
        // Zero reps still measures once.
        let mut calls = 0;
        best_of_seconds(0, || calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn setup_and_verify_bracket_every_rep() {
        let (mut setups, mut runs, mut verifies) = (0, 0, 0);
        let s = best_of_seconds_with(
            4,
            || {
                setups += 1;
                setups
            },
            |n| {
                runs += 1;
                n * 2
            },
            |r| {
                verifies += 1;
                assert_eq!(r, verifies * 2);
            },
        );
        assert_eq!((setups, runs, verifies), (4, 4, 4));
        assert!(s >= 0.0 && s.is_finite());
    }
}
