//! Measures the online warp runtime's simulated timeline per workload —
//! time-to-warp, warp/evict/re-warp events, online speedup over a
//! software-only timeline, offline amortization columns — and writes
//! `BENCH_online.json`.
//!
//! Usage: `onlineperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `ONLINEPERF_SMOKE=1`) uses smaller repeat counts and a
//! shorter phased workload for CI. All numbers are simulated cycles, so
//! the document is bit-deterministic across hosts — including across
//! `WARP_CAD_THREADS` settings, since background CAD workers trade host
//! wall-clock only; the schema (`warp-mb/bench-online/v2`, with
//! per-event incremental-CAD counters and the `rewarp_cad_ratio`
//! aggregate) is described in the README's "Online warp runtime"
//! section.

use warp_bench::measure::BenchCli;
use warp_bench::online;

fn main() {
    let cli = BenchCli::parse("ONLINEPERF_SMOKE", "BENCH_online.json");

    let perf = online::measure_suite(cli.smoke);
    println!("online warp runtime timeline, {} mode:\n", if cli.smoke { "smoke" } else { "full" });
    print!("{}", perf.render_table());
    println!(
        "\n{} warp events across {} workloads; mean online speedup {:.2}x",
        perf.total_events(),
        perf.workloads.len(),
        perf.mean_online_speedup()
    );

    cli.write_json(&perf.to_json());
}
