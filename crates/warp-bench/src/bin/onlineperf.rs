//! Measures the online warp runtime's simulated timeline per workload —
//! time-to-warp, warp/evict/re-warp events, online speedup over a
//! software-only timeline, offline amortization columns — and writes
//! `BENCH_online.json`.
//!
//! Usage: `onlineperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `ONLINEPERF_SMOKE=1`) uses smaller repeat counts and a
//! shorter phased workload for CI. All numbers are simulated cycles, so
//! the document is bit-deterministic across hosts; the schema
//! (`warp-mb/bench-online/v1`) is described in the README's "Online
//! warp runtime" section.

use warp_bench::online;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("ONLINEPERF_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_online.json".into());

    let perf = online::measure_suite(smoke);
    println!("online warp runtime timeline, {} mode:\n", if smoke { "smoke" } else { "full" });
    print!("{}", perf.render_table());
    println!(
        "\n{} warp events across {} workloads; mean online speedup {:.2}x",
        perf.total_events(),
        perf.workloads.len(),
        perf.mean_online_speedup()
    );

    let json = perf.to_json();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path} ({} bytes)", json.len());
}
