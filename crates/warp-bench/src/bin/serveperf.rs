//! Measures the warp-serve scheduler at fleet scale — ≥1k concurrent
//! seeded sessions (256 in smoke mode) time-sliced over a fixed worker
//! pool, all sharing one bounded circuit cache — and writes
//! `BENCH_serve.json` (schema `warp-mb/bench-serve/v2`: setup vs
//! execute wall-clock split plus the debug-only allocation count).
//!
//! Usage: `serveperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `SERVEPERF_SMOKE=1`) drives the CI-sized fleet.
//! `SERVEPERF_WORKERS` overrides the worker-thread count (default 4,
//! which is what CI pins). Two env gates abort the run nonzero when
//! breached: `SERVEPERF_FLOOR` (sessions per second of the serving
//! window) and `SERVEPERF_MINSN_FLOOR` (aggregate fleet Minsn/s).

use warp_bench::measure::BenchCli;
use warp_bench::serve;

fn env_floor(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|v| v.parse::<f64>().ok())
}

fn main() {
    let cli = BenchCli::parse("SERVEPERF_SMOKE", "BENCH_serve.json");
    let workers =
        std::env::var("SERVEPERF_WORKERS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(4);

    let perf = serve::measure_fleet(cli.smoke, workers);
    println!(
        "warp-serve fleet, {} mode, {} workers:\n",
        if cli.smoke { "smoke" } else { "full" },
        workers
    );
    print!("{}", perf.render_table());

    assert_eq!(perf.failed, 0, "every served session must verify");
    assert!(
        perf.cache.hits > 0,
        "fleet of same-kernel tenants must produce cross-session cache hits"
    );

    if let Some(floor) = env_floor("SERVEPERF_FLOOR") {
        let got = perf.sessions_per_second();
        assert!(
            got >= floor,
            "serving throughput {got:.1} sessions/s below the SERVEPERF_FLOOR of {floor:.1}"
        );
        println!("\nSERVEPERF_FLOOR {floor:.1} sessions/s: ok ({got:.1})");
    }
    if let Some(floor) = env_floor("SERVEPERF_MINSN_FLOOR") {
        let got = perf.minsn_per_second();
        assert!(
            got >= floor,
            "fleet throughput {got:.1} Minsn/s below the SERVEPERF_MINSN_FLOOR of {floor:.1}"
        );
        println!("SERVEPERF_MINSN_FLOOR {floor:.1} Minsn/s: ok ({got:.1})");
    }

    cli.write_json(&perf.to_json());
}
