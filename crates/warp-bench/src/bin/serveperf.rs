//! Measures the warp-serve scheduler at fleet scale — ≥1k concurrent
//! seeded sessions (256 in smoke mode) time-sliced over a fixed worker
//! pool, all sharing one bounded circuit cache — and writes
//! `BENCH_serve.json` (schema `warp-mb/bench-serve/v1`).
//!
//! Usage: `serveperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `SERVEPERF_SMOKE=1`) drives the CI-sized fleet.
//! `SERVEPERF_WORKERS` overrides the worker-thread count (default 4,
//! which is what CI pins). `SERVEPERF_FLOOR`, when set, is a hard gate:
//! the run aborts nonzero if sessions-per-second lands below it.

use warp_bench::measure::BenchCli;
use warp_bench::serve;

fn main() {
    let cli = BenchCli::parse("SERVEPERF_SMOKE", "BENCH_serve.json");
    let workers =
        std::env::var("SERVEPERF_WORKERS").ok().and_then(|v| v.parse::<usize>().ok()).unwrap_or(4);

    let perf = serve::measure_fleet(cli.smoke, workers);
    println!(
        "warp-serve fleet, {} mode, {} workers:\n",
        if cli.smoke { "smoke" } else { "full" },
        workers
    );
    print!("{}", perf.render_table());

    assert_eq!(perf.failed, 0, "every served session must verify");
    assert!(
        perf.cache.hits > 0,
        "fleet of same-kernel tenants must produce cross-session cache hits"
    );

    if let Some(floor) = std::env::var("SERVEPERF_FLOOR").ok().and_then(|v| v.parse::<f64>().ok()) {
        let got = perf.sessions_per_second();
        assert!(
            got >= floor,
            "serving throughput {got:.1} sessions/s below the SERVEPERF_FLOOR of {floor:.1}"
        );
        println!("\nSERVEPERF_FLOOR {floor:.1} sessions/s: ok ({got:.1})");
    }

    cli.write_json(&perf.to_json());
}
