//! Regenerates Figure 7: normalized energy consumption of the warp
//! processor and the ARM hard cores compared to the MicroBlaze alone.

use warp_bench::{render_fig7, render_summary};
use warp_core::experiments::{figure7, run_paper_suite};
use warp_core::WarpOptions;

fn main() {
    let comparisons = run_paper_suite(&WarpOptions::default()).expect("paper suite runs");
    println!("Figure 7: normalized energy vs. MicroBlaze alone (clock MHz in parentheses)\n");
    print!("{}", render_fig7(&figure7(&comparisons)));
    println!();
    print!("{}", render_summary(&comparisons));
}
