//! Regenerates Figure 7: normalized energy consumption of the warp
//! processor and the ARM hard cores compared to the MicroBlaze alone.
//!
//! The suite fans out across the batch runner (`WARP_BENCH_THREADS`
//! overrides the worker count) with a shared circuit cache; the numbers
//! are identical to a sequential run.

use warp_bench::{batch_runner, render_fig7, render_stage_timing, render_summary};
use warp_core::experiments::figure7;
use warp_core::{CircuitCache, WarpOptions};

fn main() {
    let runner = batch_runner(WarpOptions::default());
    let cache = CircuitCache::new();
    let (comparisons, stats) =
        runner.run_suite_measured(&workloads::paper_suite(), &cache).expect("paper suite runs");
    println!("Figure 7: normalized energy vs. MicroBlaze alone (clock MHz in parentheses)\n");
    print!("{}", render_fig7(&figure7(&comparisons)));
    println!();
    print!("{}", render_summary(&comparisons));
    println!();
    let names: Vec<&str> = comparisons.iter().map(|c| c.name.as_str()).collect();
    print!("{}", render_stage_timing(&names, &stats));
}
