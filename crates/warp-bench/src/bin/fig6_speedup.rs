//! Regenerates Figure 6: speedups of the MicroBlaze-based warp processor
//! and the ARM7/9/10/11 hard cores compared to the MicroBlaze alone.

use warp_bench::{render_fig6, render_summary};
use warp_core::experiments::{figure6, run_paper_suite};
use warp_core::WarpOptions;

fn main() {
    let comparisons = run_paper_suite(&WarpOptions::default()).expect("paper suite runs");
    println!("Figure 6: speedups vs. MicroBlaze alone (clock MHz in parentheses)\n");
    print!("{}", render_fig6(&figure6(&comparisons)));
    println!();
    print!("{}", render_summary(&comparisons));
}
