//! Measures simulation throughput (Minsn/s) across the paper suite in
//! five run modes — decode-per-fetch reference, per-instruction
//! predecoded path, superblock engine, streaming summary, full trace —
//! and writes `BENCH_sim.json`.
//!
//! Usage: `simperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `SIMPERF_SMOKE=1`) runs three repetitions per mode for
//! CI; the default is best-of-10 (single runs are ~1 ms, so repetitions
//! are cheap and the minimum filters scheduler noise). The JSON schema
//! (`warp-mb/bench-sim/v2`) is described in the README's "Performance"
//! section.

use warp_bench::measure::BenchCli;
use warp_bench::simperf;

fn main() {
    let cli = BenchCli::parse("SIMPERF_SMOKE", "BENCH_sim.json");
    let reps = if cli.smoke { 3 } else { 10 };

    let perf = simperf::measure_suite(reps, cli.smoke);
    println!(
        "simulation throughput, {} mode (best of {} rep{}):\n",
        if cli.smoke { "smoke" } else { "full" },
        reps,
        if reps == 1 { "" } else { "s" },
    );
    print!("{}", perf.render_table());
    println!(
        "\nblock engine vs. predecoded per-instruction path: {:.2}x",
        perf.aggregate_block_speedup()
    );
    println!(
        "predecoded path vs. seed decode-per-fetch loop:   {:.2}x (block vs. seed: {:.2}x)",
        perf.aggregate_predecoded_speedup(),
        perf.aggregate_block_speedup_vs_reference()
    );

    cli.write_json(&perf.to_json());
}
