//! Measures simulation throughput (Minsn/s) across the paper suite in
//! six run modes — decode-per-fetch reference, per-instruction
//! predecoded path, superblock engine, megablock trace engine,
//! streaming summary, full trace — plus the lockstep lane engine
//! (an 8-lane group vs. the same 8 seeded runs sequential), and writes
//! `BENCH_sim.json`. Each mode asserts the engine it measures via
//! `System::active_engine`, so a silent downgrade fails the run instead
//! of publishing mislabeled numbers.
//!
//! Usage: `simperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `SIMPERF_SMOKE=1`) runs three repetitions per mode for
//! CI; the default is best-of-10 (single runs are ~1 ms, so repetitions
//! are cheap and the minimum filters scheduler noise). The JSON schema
//! (`warp-mb/bench-sim/v6`, with per-workload `engine_coverage`
//! fractions showing which tier — step, block, trace — retired the
//! instructions) is described in the README's "Performance" section.
//! Workloads whose per-workload trace-vs-block speedup sits below the
//! advisory floor are listed in the JSON `below_floor` array, each with
//! its `floor_waiver` diagnosis when one is recorded; stderr warnings
//! fire only for *new* entrants without a waiver.

use warp_bench::measure::BenchCli;
use warp_bench::simperf;

fn main() {
    let cli = BenchCli::parse("SIMPERF_SMOKE", "BENCH_sim.json");
    // Runs are sub-millisecond, so best-of needs a deep rep count to
    // converge on the noise floor — host frequency drift between modes
    // otherwise skews the published mode-vs-mode ratios.
    let reps = if cli.smoke { 3 } else { 40 };

    let perf = simperf::measure_suite(reps, cli.smoke);
    println!(
        "simulation throughput, {} mode (best of {} rep{}):\n",
        if cli.smoke { "smoke" } else { "full" },
        reps,
        if reps == 1 { "" } else { "s" },
    );
    print!("{}", perf.render_table());
    println!(
        "\ntrace engine vs. superblock engine:               {:.2}x",
        perf.aggregate_trace_speedup()
    );
    println!(
        "block engine vs. predecoded per-instruction path: {:.2}x",
        perf.aggregate_block_speedup()
    );
    println!(
        "predecoded path vs. seed decode-per-fetch loop:   {:.2}x (trace vs. seed: {:.2}x)",
        perf.aggregate_predecoded_speedup(),
        perf.aggregate_trace_speedup_vs_reference()
    );

    println!("\nlockstep lane engine ({} lanes, seeded instances):\n", perf.lockstep.lanes);
    print!("{}", perf.lockstep.render_table());
    println!(
        "\nlockstep lane group vs. sequential trace runs:    {:.2}x",
        perf.lockstep.aggregate_speedup()
    );

    for (name, speedup) in perf.below_floor() {
        match simperf::floor_waiver(name) {
            // Known floor-limited: the diagnosis rides in the JSON;
            // re-warning every run is noise.
            Some(diagnosis) => {
                println!("note: {name} below trace floor ({speedup:.3}x), waived: {diagnosis}");
            }
            None => eprintln!(
                "warning: {name}: trace_speedup_vs_block {speedup:.3} is below the {:.1}x \
                 per-workload advisory floor and has no recorded waiver",
                simperf::PER_WORKLOAD_TRACE_FLOOR
            ),
        }
    }

    cli.write_json(&perf.to_json());
}
