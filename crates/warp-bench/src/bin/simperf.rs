//! Measures simulation throughput (Minsn/s) across the paper suite in
//! four run modes — decode-per-fetch reference, untraced fast path,
//! streaming summary, full trace — and writes `BENCH_sim.json`.
//!
//! Usage: `simperf [--smoke] [--out <path>]`
//!
//! `--smoke` (or `SIMPERF_SMOKE=1`) runs three repetitions per mode for
//! CI; the default is best-of-10 (single runs are ~1 ms, so repetitions
//! are cheap and the minimum filters scheduler noise). The JSON schema is described in the README's
//! "Performance" section.

use warp_bench::simperf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke")
        || std::env::var("SIMPERF_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sim.json".into());
    let reps = if smoke { 3 } else { 10 };

    let perf = simperf::measure_suite(reps, smoke);
    println!(
        "simulation throughput, {} mode (best of {} rep{}):\n",
        if smoke { "smoke" } else { "full" },
        reps,
        if reps == 1 { "" } else { "s" },
    );
    print!("{}", perf.render_table());
    println!(
        "\nuntraced fast path vs. seed decode-per-fetch loop: {:.2}x",
        perf.aggregate_untraced_speedup()
    );

    let json = perf.to_json();
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path} ({} bytes)", json.len());
}
