//! Figure 4 extension study: a multi-processor warp system with a
//! single shared DPM serving the processors round-robin.
//!
//! The per-processor simulations run on the batch runner inside
//! [`multi_warp`]; the schedule is accumulated in processor order at
//! the DPM clock from `WarpOptions`.

use warp_core::multi::multi_warp;
use warp_core::WarpOptions;

fn main() {
    let apps: Vec<workloads::Workload> = workloads::paper_suite();
    let report = multi_warp(&apps, &WarpOptions::default()).expect("multi-processor warp");
    println!("Multi-processor warp system: {} MicroBlazes, one shared DPM\n", report.apps.len());
    println!(
        "{:>9} | {:>9} | {:>10} | {:>13}",
        "processor", "speedup", "energy red.", "HW ready at"
    );
    println!("{}", "-".repeat(52));
    for app in &report.apps {
        println!(
            "{:>9} | {:>8.2}x | {:>9.0}% | {:>11.3} s",
            app.name,
            app.report.speedup(),
            app.report.energy_reduction() * 100.0,
            app.dpm_ready_at_s
        );
    }
    println!("\naggregate steady-state speedup: {:.2}x", report.aggregate_speedup());
    println!("total one-time DPM work:        {:.3} s", report.total_dpm_seconds());
}
