//! On-chip CAD cost table: per-benchmark circuit sizes, tool work, DPM
//! execution-time model, and memory footprint — the leanness claims of
//! the ROCPART tool papers (refs [15][16][17]).

use mb_isa::MbFeatures;
use warp_core::dpm;
use warp_wcla::WclaCircuit;

fn main() {
    println!("On-chip CAD (DPM) cost per benchmark — MicroBlaze DPM at 85 MHz\n");
    println!(
        "{:>9} | {:>5} {:>5} {:>4} {:>5} | {:>7} {:>6} | {:>9} {:>9} | {:>8}",
        "benchmark",
        "gates",
        "LUTs",
        "FFs",
        "MACs",
        "crit ns",
        "tracks",
        "DPM cyc",
        "DPM sec",
        "mem KiB"
    );
    println!("{}", "-".repeat(100));
    for w in workloads::all() {
        let built = w.build(MbFeatures::paper_default());
        let kernel =
            warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail)
                .expect("kernel decompiles");
        let (circuit, synth) = WclaCircuit::build(kernel).expect("kernel compiles");
        let report = dpm::estimate(&circuit.kernel, &synth, &circuit.netlist, &circuit.compiled);
        let st = circuit.netlist.stats();
        println!(
            "{:>9} | {:>5} {:>5} {:>4} {:>5} | {:>7.1} {:>6} | {:>9} {:>9.3} | {:>8.1}",
            built.name,
            synth.stats.gates,
            st.luts,
            st.ffs,
            st.macs,
            circuit.compiled.timing.critical_path_ns,
            circuit.compiled.route_stats.tracks,
            report.total_cycles(),
            report.seconds(85_000_000),
            report.peak_memory_bytes as f64 / 1024.0,
        );
    }
}
