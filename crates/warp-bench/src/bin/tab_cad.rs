//! On-chip CAD cost table: per-benchmark circuit sizes, tool work, DPM
//! execution-time model, and memory footprint — the leanness claims of
//! the ROCPART tool papers (refs \[15]\[16]\[17]).
//!
//! Each benchmark's CAD chain runs as the typed pipeline stages
//! (decompile → compile), fanned across the batch runner with the rows
//! printed in deterministic benchmark order.

use mb_isa::MbFeatures;
use warp_bench::batch_runner;
use warp_core::pipeline::{self, CompiledWcla, HotRegion};
use warp_core::{WarpError, WarpOptions};

fn main() {
    let options = WarpOptions::default();
    let dpm_clock_hz = options.dpm_clock_hz;
    let runner = batch_runner(options);
    let workloads = workloads::all();
    let compiled: Vec<(String, CompiledWcla)> = runner
        .run_map(&workloads, |_, w| -> Result<_, WarpError> {
            let built = w.build(MbFeatures::paper_default());
            // The annotated kernel bounds stand in for a profiler pass:
            // this table measures the CAD chain, not loop detection.
            let hot = HotRegion { head: built.kernel.head, tail: built.kernel.tail, count: 0 };
            let decompiled = pipeline::decompile(&built, &hot)?;
            let compiled = pipeline::compile_circuit(&decompiled)?;
            Ok((built.name, compiled))
        })
        .expect("every kernel compiles");

    println!("On-chip CAD (DPM) cost per benchmark — MicroBlaze DPM at 85 MHz\n");
    println!(
        "{:>9} | {:>5} {:>5} {:>4} {:>5} | {:>7} {:>6} | {:>9} {:>9} | {:>8}",
        "benchmark",
        "gates",
        "LUTs",
        "FFs",
        "MACs",
        "crit ns",
        "tracks",
        "DPM cyc",
        "DPM sec",
        "mem KiB"
    );
    println!("{}", "-".repeat(100));
    for (name, c) in &compiled {
        let st = c.circuit.netlist.stats();
        println!(
            "{:>9} | {:>5} {:>5} {:>4} {:>5} | {:>7.1} {:>6} | {:>9} {:>9.3} | {:>8.1}",
            name,
            c.synth.stats.gates,
            st.luts,
            st.ffs,
            st.macs,
            c.circuit.compiled.timing.critical_path_ns,
            c.circuit.compiled.route_stats.tracks,
            c.dpm.total_cycles(),
            c.dpm.seconds(dpm_clock_hz),
            c.dpm.peak_memory_bytes as f64 / 1024.0,
        );
    }
}
