//! Ablation studies for the CAD design choices DESIGN.md calls out:
//!
//! 1. **Adder architecture**: carry-select (the flow's default) vs.
//!    ripple-carry — area/depth trade-off that sets the fabric clock.
//! 2. **MAC fusion**: multiply-accumulate onto the hard MAC vs. adders
//!    in the fabric (measured as fabric gates on MAC-heavy kernels).
//! 3. **ROCM minimization**: two-level literal cost of mapped LUT
//!    functions before and after the on-chip minimizer.

use mb_isa::MbFeatures;
use warp_bench::batch_runner;
use warp_core::pipeline::{self, HotRegion};
use warp_core::{WarpError, WarpOptions};
use warp_synth::bits::{GateNetlist, InputWord};
use warp_synth::map::map_netlist;
use warp_synth::rocm::Cover;

fn main() {
    adder_ablation();
    mac_fusion_ablation();
    rocm_ablation();
}

fn adder_ablation() {
    println!("1) adder architecture (32-bit add, mapped to 3-LUTs)\n");
    println!("{:>14} | {:>6} | {:>6} | {:>9}", "architecture", "gates", "LUTs", "LUT depth");
    println!("{}", "-".repeat(46));
    for (name, carry_select) in [("carry-select", true), ("ripple-carry", false)] {
        let mut n = GateNetlist::new();
        let a = n.input_word(InputWord::Load { stream: 0, offset: 0 });
        let b = n.input_word(InputWord::Load { stream: 1, offset: 0 });
        let s = if carry_select { n.add_word(a, b, false) } else { n.add_word_ripple(a, b, false) };
        n.output(0, s);
        let gates = n.stats().gates;
        let mapped = map_netlist(&n);
        let st = mapped.stats();
        println!("{:>14} | {:>6} | {:>6} | {:>9}", name, gates, st.luts, st.depth);
    }
    println!("\ncarry-select buys ~3x shallower logic for ~1.7x the area —");
    println!("that depth sets the WCLA's multi-cycle settle count.\n");
}

fn mac_fusion_ablation() {
    println!("2) MAC fusion (fabric logic left after fusing mul+add onto the MAC)\n");
    println!("{:>9} | {:>6} | {:>5} | {:>5}", "kernel", "gates", "LUTs", "MACs");
    println!("{}", "-".repeat(36));
    let names = ["matmul", "fir", "idct"];
    let rows = batch_runner(WarpOptions::default())
        .run_map(&names, |_, name| -> Result<_, WarpError> {
            let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
            let hot = HotRegion { head: built.kernel.head, tail: built.kernel.tail, count: 0 };
            let decompiled = pipeline::decompile(&built, &hot)?;
            let report = warp_synth::synthesize(&decompiled.kernel);
            let mapped = map_netlist(&report.netlist);
            Ok((report.stats.gates, mapped.lut_count(), mapped.macs().len()))
        })
        .expect("every kernel synthesizes");
    for (name, (gates, luts, macs)) in names.iter().zip(rows) {
        println!("{name:>9} | {gates:>6} | {luts:>5} | {macs:>5}");
    }
    println!("\nmatmul and fir collapse to zero fabric logic: the whole body");
    println!("runs on the multiplier-accumulator, as the WCLA intends.\n");
}

fn rocm_ablation() {
    println!("3) ROCM two-level minimization (random 6-variable covers)\n");
    println!("{:>10} | {:>11} | {:>11} | {:>9}", "density", "lits before", "lits after", "saved");
    println!("{}", "-".repeat(50));
    let mut seed = 0x5EEDu64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for density in [25u64, 50, 75] {
        let mut before = 0u64;
        let mut after = 0u64;
        for _ in 0..50 {
            let minterms: Vec<u16> = (0..64u16).filter(|_| next() % 100 < density).collect();
            let cover = Cover::from_minterms(6, &minterms);
            before += u64::from(cover.literal_count());
            after += u64::from(cover.minimize().literal_count());
        }
        println!(
            "{:>9}% | {:>11} | {:>11} | {:>8.0}%",
            density,
            before,
            after,
            (1.0 - after as f64 / before.max(1) as f64) * 100.0
        );
    }
    println!("\na single expand+irredundant pass recovers most of the literal");
    println!("savings Espresso would — at on-chip cost (the DAC'03 claim).");
}
