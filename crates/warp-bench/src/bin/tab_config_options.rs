//! Regenerates the Section 2 configurability study: execution-time
//! impact of excluding the barrel shifter and multiplier.
//! Paper: brev 2.1x slower without barrel shifter + multiplier; matmul
//! 1.3x slower without the multiplier.
//!
//! The per-configuration simulations fan across the batch runner
//! (`WARP_BENCH_THREADS` overrides the worker count) with rows in the
//! study's fixed order.

use warp_bench::batch_runner;
use warp_core::experiments::config_study_on;
use warp_core::WarpOptions;

fn main() {
    let runner = batch_runner(WarpOptions::default());
    println!("Section 2 study: configurable-option impact on execution time\n");
    println!("{:>9} | {:<34} | {:>12} | {:>8}", "benchmark", "configuration", "cycles", "slowdown");
    println!("{}", "-".repeat(74));
    for row in config_study_on(&runner) {
        println!(
            "{:>9} | {:<34} | {:>12} | {:>7.2}x",
            row.benchmark, row.config, row.cycles, row.slowdown
        );
    }
    println!(
        "\npaper: brev 2.1x without barrel shifter+multiplier; matmul 1.3x without multiplier"
    );
}
