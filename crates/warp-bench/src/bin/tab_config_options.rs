//! Regenerates the Section 2 configurability study: execution-time
//! impact of excluding the barrel shifter and multiplier.
//! Paper: brev 2.1x slower without barrel shifter + multiplier; matmul
//! 1.3x slower without the multiplier.

use warp_core::experiments::config_study;

fn main() {
    println!("Section 2 study: configurable-option impact on execution time\n");
    println!("{:>9} | {:<34} | {:>12} | {:>8}", "benchmark", "configuration", "cycles", "slowdown");
    println!("{}", "-".repeat(74));
    for row in config_study() {
        println!(
            "{:>9} | {:<34} | {:>12} | {:>7.2}x",
            row.benchmark, row.config, row.cycles, row.slowdown
        );
    }
    println!(
        "\npaper: brev 2.1x without barrel shifter+multiplier; matmul 1.3x without multiplier"
    );
}
