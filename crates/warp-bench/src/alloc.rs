//! Debug-only heap-allocation counter behind the process allocator.
//!
//! The serving hot path claims to be allocation-free in steady state
//! (shared program images, recycled `System` carcasses, preallocated
//! profiler scratch). Claims like that rot silently, so this module
//! puts a counting shim in front of the system allocator: in **debug**
//! builds every `alloc`/`realloc`/`alloc_zeroed` bumps a process-wide
//! counter; in **release** builds the counting is compiled out entirely
//! and the shim forwards straight to the system allocator, so the
//! published bench numbers are unperturbed.
//!
//! `serveperf` reports the execute-window count in `BENCH_serve.json`
//! (`"allocations"`, `null` when the counter is compiled out), and the
//! debug test suite asserts the steady-state slice path allocates
//! nothing (`tests/steady_state_alloc.rs`) — which is what CI runs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Whether the counter is live (debug builds only).
pub const COUNTING: bool = cfg!(debug_assertions);

/// Counting shim over the system allocator; registered as this crate's
/// `#[global_allocator]`, so every binary and test of `warp-bench`
/// allocates through it.
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

// SAFETY: pure pass-through to `System`; the counter has no effect on
// the returned memory.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        #[cfg(debug_assertions)]
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as the caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator with this layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        #[cfg(debug_assertions)]
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        #[cfg(debug_assertions)]
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Total allocations since process start (frozen at 0 in release).
#[must_use]
pub fn count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Runs `f` and returns its result plus the number of heap allocations
/// it (and any concurrent thread) performed — `None` when the counter
/// is compiled out (release builds).
pub fn delta_during<R>(f: impl FnOnce() -> R) -> (R, Option<u64>) {
    let before = count();
    let result = f();
    let delta = COUNTING.then(|| count() - before);
    (result, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_live_exactly_in_debug_builds() {
        let (v, delta) = delta_during(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        // The Option must mirror the compile-time switch exactly…
        assert_eq!(delta.is_some(), COUNTING);
        // …and a live counter must have seen the fresh Vec.
        if let Some(n) = delta {
            assert!(n >= 1, "a fresh Vec must be counted");
        }
    }
}
