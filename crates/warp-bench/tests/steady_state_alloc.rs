//! The serving hot path's allocation-free claim, asserted.
//!
//! A pooled [`OnlineSession`] that has attached its shared program
//! image and recycled a `System` carcass must advance slices without
//! touching the heap: the fetch stores are frozen, the profiler
//! ranking rebuilds into preallocated scratch, and the slice loop
//! carries no per-slice state. This test pins that with the
//! [`warp_bench::alloc`] counter — it is meaningful only in debug
//! builds (the counter is compiled out in release, and the `#[cfg]`
//! compiles the test out with it), which is why CI runs
//! `cargo test -p warp-bench` without `--release`.

#![cfg(debug_assertions)]

use std::sync::Arc;

use mb_isa::MbFeatures;
use warp_bench::alloc;
use warp_online::{NeverPolicy, OnlineConfig, OnlineSession, SessionPool, SessionStatus};

#[test]
fn pooled_steady_state_slices_allocate_nothing() {
    let built = Arc::new(workloads::by_name("crc32").unwrap().build(MbFeatures::paper_default()));
    // Fine slices so the run spans many of them.
    let config = OnlineConfig { slice_cycles: 2_000, ..OnlineConfig::default() };
    let pool = Arc::new(SessionPool::new());

    // First session end-to-end: builds the shared image, parks the
    // warm-run carcass, exercises every cold path once.
    let mut warmup = OnlineSession::new(Arc::clone(&built), config.clone())
        .with_policy(NeverPolicy)
        .with_pool(Arc::clone(&pool));
    while warmup.advance(u64::MAX) == SessionStatus::Runnable {}
    warmup.into_outcome().expect("warmup completed").expect("warmup verified");

    // Second session recycles the carcass. The first slice re-attaches
    // the image and reloads data (setup, not steady state); everything
    // after it is the serving hot path.
    let mut session = OnlineSession::new(Arc::clone(&built), config)
        .with_policy(NeverPolicy)
        .with_pool(Arc::clone(&pool));
    assert_eq!(session.advance(3), SessionStatus::Runnable, "run must outlast the warm slices");
    // Two recycles: the warmup session itself ran on the image
    // capture's carcass, and this session runs on the warmup's.
    assert_eq!(pool.stats().recycled, 2, "the session must be running on a recycled carcass");

    let (status, delta) = alloc::delta_during(|| session.advance(8));
    assert_eq!(status, SessionStatus::Runnable, "measured slices must be steady-state ones");
    assert_eq!(
        delta.expect("counter is live under cfg(debug_assertions)"),
        0,
        "steady-state pooled slices must not allocate"
    );

    // And the session still finishes correctly afterwards.
    while session.advance(u64::MAX) == SessionStatus::Runnable {}
    session.into_outcome().expect("session completed").expect("session verified");
}
