//! Criterion benches for the simulation substrates: the MicroBlaze
//! system simulator, the ARM baseline models, and the WCLA executor.

use criterion::{criterion_group, criterion_main, Criterion};
use mb_isa::MbFeatures;
use mb_sim::MbConfig;
use std::hint::black_box;

fn bench_mb_sim(c: &mut Criterion) {
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
    c.bench_function("sim/microblaze/canrdr", |b| {
        b.iter(|| {
            let mut sys = built.instantiate(&MbConfig::paper_default());
            black_box(sys.run(100_000_000).unwrap())
        })
    });
    // The seed decode-per-fetch loop, for the fast-path delta.
    c.bench_function("sim/microblaze/canrdr/decode-per-fetch", |b| {
        b.iter(|| {
            let mut sys = built.instantiate(&MbConfig::paper_default().with_predecode(false));
            black_box(sys.run(100_000_000).unwrap())
        })
    });
    // Streaming aggregates: what the trace costs when only region/class
    // totals are needed.
    c.bench_function("sim/microblaze/canrdr/summary", |b| {
        b.iter(|| {
            let mut sys = built.instantiate(&MbConfig::paper_default());
            black_box(sys.run_summarized(100_000_000).unwrap())
        })
    });
}

fn bench_arm_models(c: &mut Criterion) {
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
    let mut sys = built.instantiate(&MbConfig::paper_default());
    let (_, trace) = sys.run_traced(100_000_000).unwrap();
    for core in arm_sim::paper_cores() {
        c.bench_function(&format!("sim/{}/canrdr", core.name.to_lowercase()), |b| {
            b.iter(|| arm_sim::simulate(black_box(&core), black_box(&trace)))
        });
    }
}

fn bench_profiler(c: &mut Criterion) {
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
    let mut sys = built.instantiate(&MbConfig::paper_default());
    let (_, trace) = sys.run_traced(100_000_000).unwrap();
    c.bench_function("sim/profiler/canrdr", |b| {
        b.iter(|| {
            let mut p = warp_profiler::Profiler::new(warp_profiler::ProfilerConfig::default());
            p.observe_trace(black_box(&trace));
            p.best()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mb_sim, bench_arm_models, bench_profiler
}
criterion_main!(benches);
