//! Criterion benches for the on-chip CAD pipeline stages — the
//! just-in-time compilation path the warp processor runs on its DPM.

use criterion::{criterion_group, criterion_main, Criterion};
use mb_isa::MbFeatures;
use std::hint::black_box;
use warp_fabric::FabricConfig;
use warp_synth::map::map_netlist;

fn kernel_for(name: &str) -> warp_cdfg::LoopKernel {
    let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
    warp_cdfg::decompile_loop(&built.program, built.kernel.head, built.kernel.tail).unwrap()
}

fn bench_decompile(c: &mut Criterion) {
    let built = workloads::by_name("canrdr").unwrap().build(MbFeatures::paper_default());
    c.bench_function("cad/decompile/canrdr", |b| {
        b.iter(|| {
            warp_cdfg::decompile_loop(
                black_box(&built.program),
                built.kernel.head,
                built.kernel.tail,
            )
            .unwrap()
        })
    });
}

fn bench_synthesis(c: &mut Criterion) {
    for name in ["canrdr", "bitmnp"] {
        let kernel = kernel_for(name);
        c.bench_function(&format!("cad/synthesize/{name}"), |b| {
            b.iter(|| warp_synth::synthesize(black_box(&kernel)))
        });
    }
}

fn bench_mapping(c: &mut Criterion) {
    let kernel = kernel_for("bitmnp");
    let report = warp_synth::synthesize(&kernel);
    c.bench_function("cad/map/bitmnp", |b| b.iter(|| map_netlist(black_box(&report.netlist))));
}

fn bench_place_route(c: &mut Criterion) {
    let kernel = kernel_for("canrdr");
    let report = warp_synth::synthesize(&kernel);
    let netlist = map_netlist(&report.netlist);
    let config = FabricConfig::sized_for(netlist.lut_count(), netlist.ffs().len());
    c.bench_function("cad/place_route/canrdr", |b| {
        b.iter(|| warp_fabric::compile(black_box(&netlist), &config).unwrap())
    });
}

fn bench_rocm(c: &mut Criterion) {
    use warp_synth::rocm::Cover;
    // A 6-variable cover with structure to minimize.
    let minterms: Vec<u16> = (0..64).filter(|m| m % 3 != 0).collect();
    let cover = Cover::from_minterms(6, &minterms);
    c.bench_function("cad/rocm/6var", |b| b.iter(|| black_box(&cover).minimize()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_decompile, bench_synthesis, bench_mapping, bench_place_route, bench_rocm
}
criterion_main!(benches);
