//! Criterion benches for the end-to-end experiment flow: one complete
//! warp (Figure 6/7 data point) and the Section 2 configuration study.

use criterion::{criterion_group, criterion_main, Criterion};
use mb_isa::MbFeatures;
use std::hint::black_box;
use warp_core::{warp_run, WarpOptions};

fn bench_warp_run(c: &mut Criterion) {
    let options = WarpOptions::default();
    for name in ["brev", "canrdr"] {
        let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
        c.bench_function(&format!("figure6/warp_run/{name}"), |b| {
            b.iter(|| warp_run(black_box(&built), &options).unwrap())
        });
    }
}

fn bench_config_study(c: &mut Criterion) {
    c.bench_function("section2/config_study", |b| b.iter(warp_core::experiments::config_study));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_warp_run, bench_config_study
}
criterion_main!(benches);
