//! Criterion benches for the end-to-end experiment flow: one complete
//! warp (Figure 6/7 data point), the staged pipeline with a warm
//! circuit cache, the batch-runner suite, and the Section 2
//! configuration study.

use criterion::{criterion_group, criterion_main, Criterion};
use mb_isa::MbFeatures;
use std::hint::black_box;
use warp_core::pipeline::run_staged;
use warp_core::{warp_run, BatchRunner, CircuitCache, WarpOptions};

fn bench_warp_run(c: &mut Criterion) {
    let options = WarpOptions::default();
    for name in ["brev", "canrdr"] {
        let built = workloads::by_name(name).unwrap().build(MbFeatures::paper_default());
        c.bench_function(&format!("figure6/warp_run/{name}"), |b| {
            b.iter(|| warp_run(black_box(&built), &options).unwrap())
        });
    }
}

fn bench_warm_pipeline(c: &mut Criterion) {
    // The staged pipeline with a warm circuit cache: every iteration
    // hits, so this measures everything *except* the CAD chain.
    let options = WarpOptions::default();
    let built = workloads::by_name("brev").unwrap().build(MbFeatures::paper_default());
    let cache = CircuitCache::new();
    run_staged(&built, &options, Some(&cache)).unwrap();
    c.bench_function("pipeline/cached_warp/brev", |b| {
        b.iter(|| {
            let m = run_staged(black_box(&built), &options, Some(&cache)).unwrap();
            assert!(m.stats.cache_hit);
            m
        })
    });
}

fn bench_batch_suite(c: &mut Criterion) {
    // The full Figure 6/7 suite through the batch runner — the
    // figure-binary hot path.
    let runner = BatchRunner::new(WarpOptions::default());
    let suite = workloads::paper_suite();
    c.bench_function("figure6/batch_suite", |b| {
        b.iter(|| {
            let cache = CircuitCache::new();
            runner.run_suite(black_box(&suite), &cache).unwrap()
        })
    });
}

fn bench_config_study(c: &mut Criterion) {
    c.bench_function("section2/config_study", |b| b.iter(warp_core::experiments::config_study));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_warp_run, bench_warm_pipeline, bench_batch_suite, bench_config_study
}
criterion_main!(benches);
