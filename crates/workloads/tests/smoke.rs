//! Smoke test: every registered workload builds under the paper's
//! default feature set and exposes a sane, non-empty kernel range.

use mb_isa::MbFeatures;

#[test]
fn every_workload_builds_with_a_nonempty_kernel() {
    let all = workloads::all();
    assert!(!all.is_empty(), "workload registry must not be empty");

    for workload in all {
        let built = workload.build(MbFeatures::paper_default());
        assert_eq!(built.name, workload.name, "{}: built name matches registry", workload.name);
        assert!(built.program.iter_insns().next().is_some(), "{}: program non-empty", built.name);

        // The kernel range is half-open and non-empty: head < tail.
        assert!(
            built.kernel.head < built.kernel.tail,
            "{}: kernel head {:#x} must precede tail {:#x}",
            built.name,
            built.kernel.head,
            built.kernel.tail
        );
        assert!(built.kernel.words() >= 2, "{}: kernel has at least two insns", built.name);

        // The kernel must lie inside the assembled program.
        let (head, end) = built.kernel.range();
        assert!(
            built.program.insn_at(head).is_some(),
            "{}: kernel head {head:#x} decodes",
            built.name
        );
        assert!(
            built.program.insn_at(end - 4).is_some(),
            "{}: kernel tail {:#x} decodes",
            built.name,
            end - 4
        );
        assert!(end <= built.program.end(), "{}: kernel inside program", built.name);

        // Every check region is non-empty: a workload with nothing to
        // verify cannot participate in correctness tests.
        assert!(!built.checks.is_empty(), "{}: has memory checks", built.name);
    }
}

#[test]
fn paper_suite_is_the_figure_order_and_by_name_round_trips() {
    let names: Vec<&str> = workloads::paper_suite().iter().map(|w| w.name).collect();
    assert_eq!(names, ["brev", "g3fax", "canrdr", "bitmnp", "idct", "matmul"]);

    for workload in workloads::all() {
        let found = workloads::by_name(workload.name)
            .unwrap_or_else(|| panic!("{} resolvable by name", workload.name));
        assert_eq!(found.name, workload.name);
    }
    assert!(workloads::by_name("no-such-workload").is_none());
}

#[test]
fn workload_names_are_unique() {
    let mut names: Vec<&str> = workloads::all().iter().map(|w| w.name).collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate workload names");
}
