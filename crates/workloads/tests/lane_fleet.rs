//! Lane-fleet equality suite: the lockstep lane engine must be
//! bit-identical — outcome, CPU state, execution statistics, and final
//! data memory — to running the same N program instances sequentially,
//! on every workload in the registry, including forced control-flow
//! divergence, mid-run hot patches, and budget expiry mid-trace.

use mb_isa::MbFeatures;
use mb_sim::{LaneGroup, MbConfig, Outcome, RunError, System};
use workloads::{all, by_name, instantiate_lanes, BuiltWorkload};

const LANES: usize = 4;
const BUDGET: u64 = 200_000_000;

/// Builds one seeded instance per lane and the matching sequential
/// systems.
fn fleet(
    name: &str,
    features: MbFeatures,
    config: &MbConfig,
) -> ([BuiltWorkload; LANES], LaneGroup<LANES>, Vec<System>) {
    let w = by_name(name).unwrap_or_else(|| panic!("workload {name}"));
    let builds: [BuiltWorkload; LANES] =
        core::array::from_fn(|lane| w.build_seeded(features, 0x5EED_0000 + lane as u64));
    let group = instantiate_lanes(&builds, config);
    let systems: Vec<System> = builds.iter().map(|b| b.instantiate(config)).collect();
    (builds, group, systems)
}

/// Asserts every lane of a finished group matches its sequential twin.
fn assert_lanes_match(
    name: &str,
    builds: &[BuiltWorkload; LANES],
    group: &LaneGroup<LANES>,
    lane_results: &[Result<Outcome, RunError>; LANES],
    systems: &mut [System],
    seq_results: &[Result<Outcome, RunError>],
) {
    for lane in 0..LANES {
        let ctx = format!("{name} lane {lane}");
        assert_eq!(lane_results[lane], seq_results[lane], "{ctx}: outcome");
        assert_eq!(&group.cpu(lane), systems[lane].cpu(), "{ctx}: cpu state");
        assert_eq!(group.stats(lane), systems[lane].stats(), "{ctx}: stats");
        assert_eq!(group.dmem(lane), systems[lane].dmem(), "{ctx}: data memory");
        assert_eq!(group.halted(lane), systems[lane].halted(), "{ctx}: exit code");
        if let Ok(out) = &lane_results[lane] {
            if out.exited() {
                builds[lane]
                    .verify(group.dmem(lane))
                    .unwrap_or_else(|e| panic!("{ctx}: verify: {e}"));
            }
        }
    }
}

#[test]
fn every_workload_matches_sequential_runs() {
    let config = MbConfig::paper_default();
    for w in all() {
        let (builds, mut group, mut systems) = fleet(w.name, MbFeatures::paper_default(), &config);
        let lane_results = group.run(BUDGET);
        let seq_results: Vec<_> = systems.iter_mut().map(|s| s.run(BUDGET)).collect();
        for (lane, r) in lane_results.iter().enumerate() {
            let out = r.as_ref().unwrap_or_else(|e| panic!("{} lane {lane}: {e:?}", w.name));
            assert!(out.exited(), "{} lane {lane} must exit", w.name);
        }
        assert_lanes_match(w.name, &builds, &group, &lane_results, &mut systems, &seq_results);
    }
}

#[test]
fn forced_divergence_matches_sequential_runs() {
    // Without the hardware multiplier, `matmul` calls the shift-add
    // software multiply, whose trip count depends on operand values —
    // so lanes with different seeded matrices genuinely diverge and
    // must fall back to scalar stepping before reconverging.
    let config = MbConfig::paper_default();
    let features = MbFeatures::paper_default().with_multiplier(false);
    let (builds, mut group, mut systems) = fleet("matmul", features, &config);
    let lane_results = group.run(BUDGET);
    let seq_results: Vec<_> = systems.iter_mut().map(|s| s.run(BUDGET)).collect();
    for r in &lane_results {
        assert!(r.as_ref().unwrap().exited());
    }
    assert_lanes_match("matmul/no-mul", &builds, &group, &lane_results, &mut systems, &seq_results);
}

#[test]
fn budget_expiry_mid_trace_matches_sliced_sequential_runs() {
    // Tiny budget slices force the trace engine to stop mid-megablock
    // and resume; the lane group must land on exactly the same boundary
    // states as sequential systems driven with the same slice pattern.
    let config = MbConfig::paper_default();
    let (builds, mut group, mut systems) = fleet("crc32", MbFeatures::paper_default(), &config);
    const SLICE: u64 = 1_013;
    let mut lane_results = group.run(SLICE);
    let mut seq_results: Vec<_> = systems.iter_mut().map(|s| s.run(SLICE)).collect();
    for _ in 0..200_000 {
        if lane_results.iter().all(|r| r.as_ref().map(Outcome::exited).unwrap_or(true)) {
            break;
        }
        lane_results = group.run(SLICE);
        seq_results = systems.iter_mut().map(|s| s.run(SLICE)).collect();
    }
    for r in &lane_results {
        assert!(r.as_ref().unwrap().exited(), "sliced run must finish");
    }
    assert_lanes_match("crc32/sliced", &builds, &group, &lane_results, &mut systems, &seq_results);
}

#[test]
fn mid_run_hot_patch_matches_sequential_runs() {
    // Patch a kernel instruction while the program is running — through
    // the same dual-ported instruction BRAM interface the dynamic
    // partitioning module uses — on both the lane group and the
    // sequential systems, at the same budget boundary. The shared
    // predecode/block caches must pick up the change on every side.
    let config = MbConfig::paper_default();
    let (_builds, mut group, mut systems) = fleet("crc32", MbFeatures::paper_default(), &config);
    let head = _builds[0].kernel.head;

    const SLICE: u64 = 5_000;
    let mut lane_results = group.run(SLICE);
    let mut seq_results: Vec<_> = systems.iter_mut().map(|s| s.run(SLICE)).collect();

    // Overwrite the instruction after the kernel's load with a copy of
    // the load itself: still valid code, but different semantics — the
    // run must reflect the patch identically on both engines.
    let patch_addr = head + 4;
    let patch_word = group.imem().read_word(head).unwrap();
    group.imem_mut().write_word(patch_addr, patch_word).unwrap();
    for sys in &mut systems {
        sys.imem_mut().write_word(patch_addr, patch_word).unwrap();
    }

    for _ in 0..200_000 {
        if lane_results.iter().all(|r| r.as_ref().map(Outcome::exited).unwrap_or(true)) {
            break;
        }
        lane_results = group.run(SLICE);
        seq_results = systems.iter_mut().map(|s| s.run(SLICE)).collect();
    }
    for lane in 0..LANES {
        assert_eq!(lane_results[lane], seq_results[lane], "patched lane {lane}: outcome");
        assert_eq!(&group.cpu(lane), systems[lane].cpu(), "patched lane {lane}: cpu");
        assert_eq!(group.stats(lane), systems[lane].stats(), "patched lane {lane}: stats");
        assert_eq!(group.dmem(lane), systems[lane].dmem(), "patched lane {lane}: dmem");
    }
}

#[test]
fn engines_agree_on_seeded_inputs() {
    // Differential: the same seeded build must produce identical final
    // memory on the reference decoder, the predecoded stepper, the
    // block engine, the trace engine, and the lockstep lane engine.
    let w = by_name("bitmnp").unwrap();
    let built = w.build_seeded(MbFeatures::paper_default(), 0xD1FF);
    let configs = [
        MbConfig::paper_default().with_predecode(false).with_blocks(false).with_traces(false),
        MbConfig::paper_default().with_blocks(false).with_traces(false),
        MbConfig::paper_default().with_traces(false),
        MbConfig::paper_default(),
    ];
    let mut reference_dmem = None;
    for config in configs {
        let mut sys = built.instantiate(&config);
        let out = sys.run(BUDGET).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
        let dmem = sys.dmem().clone();
        if let Some(prev) = &reference_dmem {
            assert_eq!(&dmem, prev, "engines must agree on final memory");
        }
        // The lane engine over a single lane must match too.
        let builds = [built.clone()];
        let mut group: LaneGroup<1> = instantiate_lanes(&builds, &config);
        let [lane_out] = group.run(BUDGET);
        assert_eq!(lane_out.unwrap(), out, "lane engine outcome");
        assert_eq!(group.dmem(0), &dmem, "lane engine final memory");
        reference_dmem = Some(dmem);
    }
}
