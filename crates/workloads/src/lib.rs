//! Powerstone/EEMBC-style benchmark kernels for the warp-processing study.
//!
//! The paper evaluates six embedded applications: `brev`, `g3fax`, and
//! `matmul` from Motorola's Powerstone suite, and `canrdr`, `bitmnp`, and
//! `idct` from EEMBC. The original sources are proprietary, so this crate
//! reconstructs each benchmark from its documented structure: the same
//! critical-kernel shape (bit reversal by shifts, run-length expansion,
//! CAN message filtering, bit manipulation, 8-point IDCT, matrix multiply)
//! embedded in realistic surrounding code (initialization, checksum
//! verification) that sets the kernel's share of execution time.
//!
//! Every benchmark provides:
//!
//! * a MicroBlaze assembly implementation built through the
//!   configuration-aware [`mb_isa::codegen`] helpers (so the barrel
//!   shifter / multiplier options change the generated code exactly as the
//!   paper's Section 2 describes),
//! * a pure-Rust golden model used to pre-compute expected results,
//! * kernel annotations (loop head/tail addresses) checked against what
//!   the on-chip profiler discovers,
//! * post-run memory verification.
//!
//! # Example
//!
//! ```
//! use workloads::by_name;
//! use mb_isa::MbFeatures;
//!
//! let brev = by_name("brev").expect("brev is a paper benchmark");
//! let built = brev.build(MbFeatures::paper_default());
//! let mut sys = built.instantiate(&mb_sim::MbConfig::paper_default());
//! let outcome = sys.run(10_000_000).unwrap();
//! assert!(outcome.exited());
//! built.verify(sys.dmem()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmnp;
mod brev;
mod canrdr;
pub mod common;
mod extra;
mod g3fax;
mod idct;
mod matmul;
pub mod phased;

use std::error::Error;
use std::fmt;

use mb_isa::{MbFeatures, Program};
use mb_sim::{Bram, MbConfig, System};

/// Which benchmark suite a workload reconstructs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// Motorola Powerstone.
    Powerstone,
    /// EEMBC (automotive/consumer).
    Eembc,
    /// Additional workloads beyond the paper's six.
    Extra,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Powerstone => f.write_str("Powerstone"),
            Suite::Eembc => f.write_str("EEMBC"),
            Suite::Extra => f.write_str("extra"),
        }
    }
}

/// Byte-address bounds of a benchmark's critical kernel loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct KernelBounds {
    /// Address of the loop head (the backward branch's target).
    pub head: u32,
    /// Address of the loop's backward branch.
    pub tail: u32,
}

impl KernelBounds {
    /// The half-open byte range `[head, end)` covering the whole loop.
    #[must_use]
    pub fn range(&self) -> (u32, u32) {
        (self.head, self.tail + 4)
    }

    /// Address of the first instruction after the loop.
    #[must_use]
    pub fn after(&self) -> u32 {
        self.tail + 4
    }

    /// Number of instruction words in the loop.
    #[must_use]
    pub fn words(&self) -> u32 {
        (self.tail + 4 - self.head) / 4
    }
}

/// An expected final memory region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemCheck {
    /// What this region holds (for diagnostics).
    pub label: String,
    /// Byte address of the first word.
    pub addr: u32,
    /// Expected word values.
    pub expected: Vec<u32>,
}

/// Verification failure: simulated memory does not match the golden model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifyError {
    /// Which check failed.
    pub label: String,
    /// First mismatching word's byte address.
    pub addr: u32,
    /// Expected word.
    pub expected: u32,
    /// Actual word.
    pub actual: u32,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: mismatch at {:#010x}: expected {:#010x}, got {:#010x}",
            self.label, self.addr, self.expected, self.actual
        )
    }
}

impl Error for VerifyError {}

/// A benchmark built for a specific processor feature configuration.
#[derive(Clone, Debug)]
pub struct BuiltWorkload {
    /// Benchmark name (`brev`, `g3fax`, …).
    pub name: String,
    /// Which suite the benchmark reconstructs.
    pub suite: Suite,
    /// The assembled binary.
    pub program: Program,
    /// Initial data memory regions.
    pub data: Vec<(u32, Vec<u32>)>,
    /// The critical kernel the profiler is expected to find.
    pub kernel: KernelBounds,
    /// Expected final memory contents.
    pub checks: Vec<MemCheck>,
    /// The feature configuration this binary was compiled for.
    pub features: MbFeatures,
}

impl BuiltWorkload {
    /// Creates a simulated system with the program and data loaded.
    ///
    /// # Panics
    ///
    /// Panics if the program or data do not fit in the configured
    /// memories (workload images are fixed-size and known to fit the
    /// default 64 KiB configuration).
    #[must_use]
    pub fn instantiate(&self, config: &MbConfig) -> System {
        let config = config.clone().with_features(self.features);
        let mut sys = System::new(config);
        sys.load_program(&self.program).expect("program fits instruction BRAM");
        for (addr, words) in &self.data {
            sys.load_data(*addr, words).expect("data fits data BRAM");
        }
        sys
    }

    /// A stable identity for "this binary under this machine
    /// configuration" — the key a serving-fleet session pool uses to
    /// share one frozen program image (and recycle `System` carcasses)
    /// across sessions.
    ///
    /// Hashes (FNV-1a) the program base and words plus the *effective*
    /// configuration the workload instantiates with (`config` with this
    /// build's features applied) — everything that determines the
    /// decoded slots and block tables. Initial data and expected
    /// results are deliberately excluded: seeded builds share the
    /// unseeded binary, so every seed of a workload maps to one image.
    #[must_use]
    pub fn fingerprint(&self, config: &MbConfig) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= u64::from(b);
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        mix(&mut h, &self.program.base.to_le_bytes());
        for w in &self.program.words {
            mix(&mut h, &w.to_le_bytes());
        }
        let effective = config.clone().with_features(self.features);
        mix(&mut h, format!("{effective:?}").as_bytes());
        h
    }

    /// Checks final data memory against the golden model.
    ///
    /// Regions are read with one bulk [`Bram::read_words_into`] each
    /// into a buffer reused across checks — this runs after every
    /// simulated execution (including each warped run), so it must not
    /// allocate per word.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    pub fn verify(&self, dmem: &Bram) -> Result<(), VerifyError> {
        let mut buf: Vec<u32> = Vec::new();
        for check in &self.checks {
            buf.clear();
            buf.resize(check.expected.len(), 0);
            if dmem.read_words_into(check.addr, &mut buf).is_err() {
                // Region (partially) outside memory: fall back to the
                // word-by-word path so the first unreadable or wrong
                // word is reported, exactly as before.
                buf.clear();
                buf.extend(
                    (0..check.expected.len()).map(|i| {
                        dmem.read_word(check.addr + (i as u32) * 4).unwrap_or(0xDEAD_DEAD)
                    }),
                );
            }
            for (i, (&expected, &actual)) in check.expected.iter().zip(&buf).enumerate() {
                if actual != expected {
                    let addr = check.addr + (i as u32) * 4;
                    return Err(VerifyError { label: check.label.clone(), addr, expected, actual });
                }
            }
        }
        Ok(())
    }
}

/// A benchmark definition that can be built for any feature configuration.
#[derive(Clone, Copy, Debug)]
pub struct Workload {
    /// Benchmark name.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// One-line description of the critical kernel.
    pub description: &'static str,
    build_fn: fn(MbFeatures) -> BuiltWorkload,
    build_seeded_fn: fn(MbFeatures, u64) -> BuiltWorkload,
}

impl Workload {
    /// Builds the benchmark binary for a feature configuration.
    #[must_use]
    pub fn build(&self, features: MbFeatures) -> BuiltWorkload {
        (self.build_fn)(features)
    }

    /// Builds the benchmark with input data drawn from `seed`.
    ///
    /// The program binary and kernel bounds are identical to
    /// [`build`](Workload::build) — only the initial data and the
    /// expected results (recomputed through the golden model) change.
    /// The same seed always produces the same data; different seeds
    /// produce different data. Inputs come from the workspace `rand`
    /// shim (SplitMix64) via [`common::seeded_words`].
    #[must_use]
    pub fn build_seeded(&self, features: MbFeatures, seed: u64) -> BuiltWorkload {
        (self.build_seeded_fn)(features, seed)
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.name, self.suite, self.description)
    }
}

/// The six benchmarks evaluated in the paper, in figure order.
#[must_use]
pub fn paper_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "brev",
            suite: Suite::Powerstone,
            description: "bit reversal of a word array using shift/mask stages",
            build_fn: brev::build,
            build_seeded_fn: brev::build_seeded,
        },
        Workload {
            name: "g3fax",
            suite: Suite::Powerstone,
            description: "Group-3 fax run-length expansion into scanline words",
            build_fn: g3fax::build,
            build_seeded_fn: g3fax::build_seeded,
        },
        Workload {
            name: "canrdr",
            suite: Suite::Eembc,
            description: "CAN bus message filtering and payload extraction",
            build_fn: canrdr::build,
            build_seeded_fn: canrdr::build_seeded,
        },
        Workload {
            name: "bitmnp",
            suite: Suite::Eembc,
            description: "bit manipulation: interleave/parity/swap per word",
            build_fn: bitmnp::build,
            build_seeded_fn: bitmnp::build_seeded,
        },
        Workload {
            name: "idct",
            suite: Suite::Eembc,
            description: "fixed-point 8-point inverse DCT over coefficient rows",
            build_fn: idct::build,
            build_seeded_fn: idct::build_seeded,
        },
        Workload {
            name: "matmul",
            suite: Suite::Powerstone,
            description: "integer matrix multiply with MAC inner loop",
            build_fn: matmul::build,
            build_seeded_fn: matmul::build_seeded,
        },
    ]
}

/// Additional workloads beyond the paper (FIR filter, CRC32) used by the
/// extension studies.
#[must_use]
pub fn extra_suite() -> Vec<Workload> {
    vec![
        Workload {
            name: "fir",
            suite: Suite::Extra,
            description: "8-tap FIR filter over a sample stream",
            build_fn: extra::build_fir,
            build_seeded_fn: extra::build_fir_seeded,
        },
        Workload {
            name: "crc32",
            suite: Suite::Extra,
            description: "word-parallel checksum over a message buffer",
            build_fn: extra::build_crc32,
            build_seeded_fn: extra::build_crc32_seeded,
        },
        Workload {
            name: "phased",
            suite: Suite::Extra,
            description: "two-phase run whose hot kernel shifts mid-execution",
            build_fn: phased::build,
            build_seeded_fn: phased::build_seeded,
        },
    ]
}

/// All workloads: the paper's six plus the extras.
#[must_use]
pub fn all() -> Vec<Workload> {
    let mut v = paper_suite();
    v.extend(extra_suite());
    v
}

/// Finds a workload by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

/// Creates a lockstep [`mb_sim::LaneGroup`] from per-lane builds of the
/// same workload — typically one [`Workload::build_seeded`] per lane, so
/// every lane runs the shared program over its own input data.
///
/// # Panics
///
/// Panics if the builds disagree on program image or features (the lane
/// engine shares one instruction fetch), or if the program or data do
/// not fit the configured memories.
#[must_use]
pub fn instantiate_lanes<const LANES: usize>(
    builds: &[BuiltWorkload; LANES],
    config: &MbConfig,
) -> mb_sim::LaneGroup<LANES> {
    let first = &builds[0];
    for b in &builds[1..] {
        assert_eq!(b.program.words, first.program.words, "lane programs must be identical");
        assert_eq!(b.program.base, first.program.base, "lane programs must share a base");
        assert_eq!(b.features, first.features, "lane features must be identical");
    }
    let config = config.clone().with_features(first.features);
    let mut group = mb_sim::LaneGroup::new(config);
    group.load_program(&first.program).expect("program fits instruction BRAM");
    for (lane, b) in builds.iter().enumerate() {
        for (addr, words) in &b.data {
            group.load_data(lane, *addr, words).expect("data fits data BRAM");
        }
    }
    group
}

/// The matrix dimension of the `matmul` benchmark (its inner loop is
/// invoked once per output element).
#[must_use]
pub fn matmul_dim() -> usize {
    matmul::DIM
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_matches_figure_order() {
        let names: Vec<&str> = paper_suite().iter().map(|w| w.name).collect();
        assert_eq!(names, ["brev", "g3fax", "canrdr", "bitmnp", "idct", "matmul"]);
    }

    #[test]
    fn by_name_finds_every_workload() {
        for w in all() {
            assert!(by_name(w.name).is_some(), "{} must be findable", w.name);
        }
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn kernel_bounds_arithmetic() {
        let k = KernelBounds { head: 0x100, tail: 0x140 };
        assert_eq!(k.range(), (0x100, 0x144));
        assert_eq!(k.after(), 0x144);
        assert_eq!(k.words(), 17);
    }

    #[test]
    fn seeded_builds_are_deterministic_per_seed() {
        let features = MbFeatures::paper_default();
        for w in all() {
            let a = w.build_seeded(features, 42);
            let b = w.build_seeded(features, 42);
            assert_eq!(a.data, b.data, "{}: same seed must give same data", w.name);
            assert_eq!(a.checks, b.checks, "{}: same seed must give same checks", w.name);
        }
    }

    #[test]
    fn seeded_builds_differ_across_seeds() {
        let features = MbFeatures::paper_default();
        for w in all() {
            let a = w.build_seeded(features, 1);
            let b = w.build_seeded(features, 2);
            assert_ne!(a.data, b.data, "{}: different seeds must give different data", w.name);
            assert_ne!(
                a.checks, b.checks,
                "{}: different seeds must give different expected results",
                w.name
            );
        }
    }

    #[test]
    fn seeded_builds_share_the_unseeded_program() {
        let features = MbFeatures::paper_default();
        for w in all() {
            let plain = w.build(features);
            for seed in [0u64, 1, 0xDEAD_BEEF] {
                let seeded = w.build_seeded(features, seed);
                assert_eq!(
                    seeded.program.words, plain.program.words,
                    "{}: program must not depend on the seed",
                    w.name
                );
                assert_eq!(seeded.kernel, plain.kernel, "{}: kernel bounds fixed", w.name);
            }
        }
    }

    #[test]
    fn fingerprints_key_on_binary_and_config_not_seed() {
        let features = MbFeatures::paper_default();
        let config = MbConfig::paper_default();
        let brev = by_name("brev").unwrap();
        let base = brev.build(features).fingerprint(&config);
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            assert_eq!(
                brev.build_seeded(features, seed).fingerprint(&config),
                base,
                "seeds share the binary, so they must share the fingerprint"
            );
        }
        assert_ne!(
            by_name("g3fax").unwrap().build(features).fingerprint(&config),
            base,
            "different binaries must not collide"
        );
        let mut no_blocks = config.clone();
        no_blocks.blocks = false;
        assert_ne!(
            brev.build(features).fingerprint(&no_blocks),
            base,
            "the machine configuration is part of the image identity"
        );
    }

    #[test]
    fn seeded_build_runs_and_verifies() {
        // End-to-end check that the recomputed golden results match what
        // the program actually produces on seeded data.
        let w = by_name("brev").unwrap();
        let built = w.build_seeded(MbFeatures::paper_default(), 7);
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn instantiate_lanes_loads_per_lane_data() {
        let w = by_name("crc32").unwrap();
        let builds: [BuiltWorkload; 2] =
            core::array::from_fn(|lane| w.build_seeded(MbFeatures::paper_default(), lane as u64));
        let mut group = instantiate_lanes(&builds, &MbConfig::paper_default());
        let results = group.run(100_000_000);
        for (lane, (r, b)) in results.iter().zip(&builds).enumerate() {
            let out = r.as_ref().unwrap();
            assert!(out.exited(), "lane {lane} must exit");
            b.verify(group.dmem(lane)).unwrap_or_else(|e| panic!("lane {lane}: {e}"));
        }
    }
}
