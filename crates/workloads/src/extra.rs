//! Extra workloads beyond the paper's six, used by the extension studies:
//! an 8-tap FIR filter (MAC-dominated, like `idct` but with a sliding
//! window) and a rotate-xor stream checksum (`crc32`-style) whose kernel
//! carries *only* a scalar accumulator — no output stream — exercising
//! the live-out register path of the WCLA.

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common;
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// FIR: number of output samples.
pub const FIR_N: usize = 600;
/// FIR: filter taps (8.8 fixed point).
pub const FIR_TAPS: [i16; 8] = [26, -49, 77, 181, 181, 77, -49, 26];

const FIR_IN: u32 = 0x1000;
const FIR_OUT: u32 = 0x3000;
const FIR_CSUM: u32 = 0x0100;

/// Golden model of the FIR kernel (bit-exact wrapping arithmetic).
#[must_use]
pub fn fir_golden(x: &[u32]) -> Vec<u32> {
    (0..FIR_N)
        .map(|i| {
            let mut acc = 0i32;
            for (k, &h) in FIR_TAPS.iter().enumerate() {
                acc = acc.wrapping_add((x[i + k] as i32).wrapping_mul(i32::from(h)));
            }
            (acc >> 8) as u32
        })
        .collect()
}

/// Shapes raw words into signed 12-bit samples centred on zero.
fn shape_samples(raw: &[u32]) -> Vec<u32> {
    raw.iter().map(|v| ((v & 0xFFF) as i32 - 2048) as u32).collect()
}

/// Builds the FIR workload with samples drawn from `seed` (the program
/// is identical to [`build_fir`]; only data and expected results
/// change).
pub fn build_fir_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_fir_with_input(features, shape_samples(&common::seeded_words(FIR_N + 8, seed, 0xF1)))
}

/// Builds the FIR workload.
pub fn build_fir(features: MbFeatures) -> BuiltWorkload {
    build_fir_with_input(
        features,
        shape_samples(&common::lcg_fill(FIR_N + 8, 0xF1_0001, 1_664_525, 7)),
    )
}

fn build_fir_with_input(features: MbFeatures, x: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("x", FIR_IN).unwrap();
    cg.asm_mut().equ("y", FIR_OUT).unwrap();
    cg.asm_mut().equ("csum", FIR_CSUM).unwrap();

    // Kernel: one output sample per iteration, 8 unrolled taps.
    // Registers clear of the __mulsi3 clobber set (r3, r5-r9, r15).
    {
        let a = cg.asm_mut();
        a.la(Reg::R28, "x");
        a.la(Reg::R29, "y");
        a.li(Reg::R4, FIR_N as i32);
        a.label("k_head");
    }
    // acc (r22) = sum of tap products.
    cg.asm_mut().push(Insn::addk(Reg::R22, Reg::R0, Reg::R0));
    for (k, &h) in FIR_TAPS.iter().enumerate() {
        cg.asm_mut().push(Insn::lwi(Reg::R10, Reg::R28, (k * 4) as i16));
        cg.mul_const(Reg::R11, Reg::R10, h);
        cg.asm_mut().push(Insn::addk(Reg::R22, Reg::R22, Reg::R11));
    }
    cg.sar_const(Reg::R22, Reg::R22, 8);
    {
        let a = cg.asm_mut();
        a.push(Insn::swi(Reg::R22, Reg::R29, 0));
        a.push(Insn::addik(Reg::R28, Reg::R28, 4));
        a.push(Insn::addik(Reg::R29, Reg::R29, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
    }

    common::emit_checksum(&mut cg, "y", "y", (FIR_N - 20) as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("fir assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let y = fir_golden(&x);
    let csum = common::checksum(&y[..FIR_N - 20]);

    BuiltWorkload {
        name: "fir".into(),
        suite: Suite::Extra,
        program,
        data: vec![(FIR_IN, x)],
        kernel,
        checks: vec![
            MemCheck { label: "fir output".into(), addr: FIR_OUT, expected: y },
            MemCheck { label: "fir checksum".into(), addr: FIR_CSUM, expected: vec![csum] },
        ],
        features,
    }
}

/// CRC: number of words folded into the running state.
pub const CRC_N: usize = 2000;

const CRC_IN: u32 = 0x1000;
const CRC_OUT: u32 = 0x0100;

/// Golden model of the rotate-xor stream checksum.
#[must_use]
pub fn crc_golden(words: &[u32]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    for &w in words {
        state = state.rotate_left(1) ^ w;
    }
    state
}

/// Builds the CRC workload with a message drawn from `seed` (the
/// program is identical to [`build_crc32`]; only data and expected
/// results change).
pub fn build_crc32_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_crc32_with_input(features, common::seeded_words(CRC_N, seed, 0xC4C))
}

/// Builds the CRC workload (accumulator-only kernel).
pub fn build_crc32(features: MbFeatures) -> BuiltWorkload {
    build_crc32_with_input(features, common::lcg_fill(CRC_N, 0xC4C_0001, 22_695_477, 3))
}

fn build_crc32_with_input(features: MbFeatures, msg: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("msg", CRC_IN).unwrap();
    cg.asm_mut().equ("out", CRC_OUT).unwrap();

    {
        let a = cg.asm_mut();
        a.la(Reg::R21, "msg");
        a.li(Reg::R4, CRC_N as i32);
        a.li(Reg::R22, -1); // state = 0xFFFF_FFFF
        a.label("k_head");
        a.push(Insn::lwi(Reg::R9, Reg::R21, 0));
    }
    // state = rotl(state, 1) ^ w  —  rotl1 = (s << 1) | (s >> 31).
    cg.shl_const(Reg::R10, Reg::R22, 1);
    cg.shr_const(Reg::R11, Reg::R22, 31);
    {
        let a = cg.asm_mut();
        a.push(Insn::Or { rd: Reg::R22, ra: Reg::R10, rb: Reg::R11 });
        a.push(Insn::Xor { rd: Reg::R22, ra: Reg::R22, rb: Reg::R9 });
        a.push(Insn::addik(Reg::R21, Reg::R21, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
        a.la(Reg::R16, "out");
        a.push(Insn::swi(Reg::R22, Reg::R16, 0));
    }
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("crc32 assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let crc = crc_golden(&msg);

    BuiltWorkload {
        name: "crc32".into(),
        suite: Suite::Extra,
        program,
        data: vec![(CRC_IN, msg)],
        kernel,
        checks: vec![MemCheck { label: "crc state".into(), addr: CRC_OUT, expected: vec![crc] }],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    #[test]
    fn fir_matches_golden() {
        let built = build_fir(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(100_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn fir_impulse_response_reproduces_taps() {
        // x = unit impulse at index 7 (so every tap sees it once as the
        // window slides), scaled up to survive the >> 8.
        let mut x = vec![0u32; FIR_N + 8];
        x[7] = 256;
        let y = fir_golden(&x);
        // y[i] = taps[7-i] for the first 8 outputs.
        for i in 0..8 {
            assert_eq!(y[i] as i32, i32::from(FIR_TAPS[7 - i]), "slot {i}");
        }
        assert_eq!(y[8], 0);
    }

    #[test]
    fn crc_matches_golden() {
        let built = build_crc32(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(100_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn crc_detects_single_bit_change() {
        let msg = common::lcg_fill(64, 1, 1_664_525, 7);
        let mut tampered = msg.clone();
        tampered[30] ^= 1 << 9;
        assert_ne!(crc_golden(&msg), crc_golden(&tampered));
    }

    #[test]
    fn crc_kernel_has_no_store_stream() {
        // The kernel body between head and tail must contain loads but no
        // stores — the state lives in a register.
        let built = build_crc32(MbFeatures::paper_default());
        let (s, e) = built.kernel.range();
        let mut loads = 0;
        let mut stores = 0;
        for (addr, insn) in built.program.iter_insns() {
            if addr >= s && addr < e {
                match insn.class() {
                    mb_isa::OpClass::Load => loads += 1,
                    mb_isa::OpClass::Store => stores += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(loads, 1);
        assert_eq!(stores, 0);
    }
}
