//! `idct` (EEMBC consumer): fixed-point 8-point inverse DCT.
//!
//! The kernel applies an integer 8-point inverse DCT to consecutive
//! coefficient rows (the row pass of the 2-D transform used by image
//! decoders): an even/odd butterfly decomposition with 14 constant
//! multiplies per row, all in 8.8 fixed point. On the warp processor the
//! constant multiplies map onto the WCLA's 32-bit MAC, which serializes
//! them one per fabric cycle.

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common;
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Number of 8-coefficient rows transformed.
pub const ROWS: usize = 400;
const SETUP_N: usize = 390;
const CSUM_N: usize = 390;

const IN_ADDR: u32 = 0x1000;
const OUT_ADDR: u32 = 0x5000;
const PRE_ADDR: u32 = 0x0200;
const CSUM_ADDR: u32 = 0x0100;

// 8.8 fixed-point cosine constants.
const C_SQRT2: i16 = 181;
const K237: i16 = 237;
const K98: i16 = 98;
const K251: i16 = 251;
const K50: i16 = 50;
const K213: i16 = 213;
const K142: i16 = 142;

/// Golden model: one 8-point inverse DCT row (bit-exact with the
/// assembly, including wrapping arithmetic and the final `>> 8`).
#[must_use]
pub fn idct_row(s: &[i32; 8]) -> [i32; 8] {
    let m = |a: i32, c: i16| a.wrapping_mul(i32::from(c));
    let t0 = m(s[0].wrapping_add(s[4]), C_SQRT2);
    let t1 = m(s[0].wrapping_sub(s[4]), C_SQRT2);
    let t2 = m(s[2], K237).wrapping_add(m(s[6], K98));
    let t3 = m(s[2], K98).wrapping_sub(m(s[6], K237));
    let e0 = t0.wrapping_add(t2);
    let e1 = t1.wrapping_add(t3);
    let e2 = t1.wrapping_sub(t3);
    let e3 = t0.wrapping_sub(t2);
    let o0 = m(s[1], K251).wrapping_add(m(s[7], K50));
    let o1 = m(s[3], K213).wrapping_add(m(s[5], K142));
    let o2 = m(s[3], K142).wrapping_sub(m(s[5], K213));
    let o3 = m(s[1], K50).wrapping_sub(m(s[7], K251));
    let p0 = o0.wrapping_add(o1);
    let p1 = o0.wrapping_sub(o1);
    let p2 = o2.wrapping_add(o3);
    let p3 = o3.wrapping_sub(o2);
    [
        e0.wrapping_add(p0) >> 8,
        e1.wrapping_add(p1) >> 8,
        e2.wrapping_add(p2) >> 8,
        e3.wrapping_add(p3) >> 8,
        e3.wrapping_sub(p3) >> 8,
        e2.wrapping_sub(p2) >> 8,
        e1.wrapping_sub(p1) >> 8,
        e0.wrapping_sub(p0) >> 8,
    ]
}

/// Golden model over a flat coefficient array (`8 * ROWS` words).
#[must_use]
pub fn golden(input: &[u32]) -> Vec<u32> {
    input
        .chunks(8)
        .flat_map(|row| {
            let s: [i32; 8] = core::array::from_fn(|i| row[i] as i32);
            idct_row(&s).map(|d| d as u32)
        })
        .collect()
}

/// Shapes raw words into DCT coefficients in a plausible dynamic range
/// (-512..511).
fn shape_coefficients(raw: &[u32]) -> Vec<u32> {
    raw.iter().map(|x| ((x & 0x3FF) as i32 - 512) as u32).collect()
}

fn input_data() -> Vec<u32> {
    shape_coefficients(&common::lcg_fill(8 * ROWS, 0x1DC7_0003, 1_664_525, 12345))
}

/// Builds `idct` with coefficient rows drawn from `seed` (the program
/// is identical to [`build`]; only data and expected results change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_with_input(features, shape_coefficients(&common::seeded_words(8 * ROWS, seed, 0x1DC7)))
}

// Register plan (safe with the no-multiplier runtime, which clobbers
// r3, r5-r9, r15):
//   s0..s7 -> r10 r11 r12 r13 r14 r17 r18 r19
//   t0..t3 -> r20..r23, e0..e3 -> r24..r27
//   o0..o3 -> r20..r23 (t dead), p0..p3 -> r10..r13 (s dead)
//   scratch mul -> r30, store temp -> r14, ptrs -> r28/r29, count -> r4.
const S: [Reg; 8] =
    [Reg::R10, Reg::R11, Reg::R12, Reg::R13, Reg::R14, Reg::R17, Reg::R18, Reg::R19];
const T: [Reg; 4] = [Reg::R20, Reg::R21, Reg::R22, Reg::R23];
const E: [Reg; 4] = [Reg::R24, Reg::R25, Reg::R26, Reg::R27];
const P: [Reg; 4] = [Reg::R10, Reg::R11, Reg::R12, Reg::R13];
const SCRATCH: Reg = Reg::R30;
const DTMP: Reg = Reg::R14;
const IN_PTR: Reg = Reg::R28;
const OUT_PTR: Reg = Reg::R29;

/// Emits `rd = ra*ca + rb*cb` (cb may be negative via `sub = true`).
fn emit_mac2(cg: &mut CodeGen, rd: Reg, ra: Reg, ca: i16, rb: Reg, cb: i16, sub: bool) {
    cg.mul_const(rd, ra, ca);
    cg.mul_const(SCRATCH, rb, cb);
    if sub {
        // rd = rd - scratch.
        cg.asm_mut().push(Insn::rsubk(rd, SCRATCH, rd));
    } else {
        cg.asm_mut().push(Insn::addk(rd, rd, SCRATCH));
    }
}

/// Builds `idct` for a feature configuration.
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_with_input(features, input_data())
}

fn build_with_input(features: MbFeatures, input: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("in", IN_ADDR).unwrap();
    cg.asm_mut().equ("out", OUT_ADDR).unwrap();
    cg.asm_mut().equ("pre", PRE_ADDR).unwrap();
    cg.asm_mut().equ("csum", CSUM_ADDR).unwrap();

    // Setup pass (non-kernel): DC-coefficient sum over leading rows.
    {
        let a = cg.asm_mut();
        a.la(Reg::R16, "in");
        a.li(Reg::R17, SETUP_N as i32);
        a.push(Insn::addk(Reg::R18, Reg::R0, Reg::R0));
        a.label("presum");
        a.push(Insn::lwi(Reg::R19, Reg::R16, 0));
        a.push(Insn::addk(Reg::R18, Reg::R18, Reg::R19));
        a.push(Insn::addik(Reg::R16, Reg::R16, 32));
        a.push(Insn::addik(Reg::R17, Reg::R17, -1));
        a.bnei(Reg::R17, "presum");
        a.la(Reg::R16, "pre");
        a.push(Insn::swi(Reg::R18, Reg::R16, 0));
    }

    // Kernel: one row per iteration.
    {
        let a = cg.asm_mut();
        a.la(IN_PTR, "in");
        a.la(OUT_PTR, "out");
        a.li(Reg::R4, ROWS as i32);
        a.label("k_head");
        for (i, &s) in S.iter().enumerate() {
            a.push(Insn::lwi(s, IN_PTR, (i * 4) as i16));
        }
    }
    // Even part.
    cg.asm_mut().push(Insn::addk(T[0], S[0], S[4]));
    cg.mul_const(T[0], T[0], C_SQRT2);
    cg.asm_mut().push(Insn::rsubk(T[1], S[4], S[0])); // s0 - s4
    cg.mul_const(T[1], T[1], C_SQRT2);
    emit_mac2(&mut cg, T[2], S[2], K237, S[6], K98, false);
    emit_mac2(&mut cg, T[3], S[2], K98, S[6], K237, true);
    {
        let a = cg.asm_mut();
        a.push(Insn::addk(E[0], T[0], T[2]));
        a.push(Insn::addk(E[1], T[1], T[3]));
        a.push(Insn::rsubk(E[2], T[3], T[1])); // t1 - t3
        a.push(Insn::rsubk(E[3], T[2], T[0])); // t0 - t2
    }
    // Odd part (reuses T registers).
    emit_mac2(&mut cg, T[0], S[1], K251, S[7], K50, false);
    emit_mac2(&mut cg, T[1], S[3], K213, S[5], K142, false);
    emit_mac2(&mut cg, T[2], S[3], K142, S[5], K213, true);
    emit_mac2(&mut cg, T[3], S[1], K50, S[7], K251, true);
    {
        let a = cg.asm_mut();
        a.push(Insn::addk(P[0], T[0], T[1]));
        a.push(Insn::rsubk(P[1], T[1], T[0])); // o0 - o1
        a.push(Insn::addk(P[2], T[2], T[3]));
        a.push(Insn::rsubk(P[3], T[2], T[3])); // o3 - o2
    }
    // Outputs: d[i] = (e±p) >> 8.
    for (slot, e, p, sub) in [
        (0i16, E[0], P[0], false),
        (1, E[1], P[1], false),
        (2, E[2], P[2], false),
        (3, E[3], P[3], false),
        (4, E[3], P[3], true),
        (5, E[2], P[2], true),
        (6, E[1], P[1], true),
        (7, E[0], P[0], true),
    ] {
        if sub {
            cg.asm_mut().push(Insn::rsubk(DTMP, p, e));
        } else {
            cg.asm_mut().push(Insn::addk(DTMP, e, p));
        }
        cg.sar_const(DTMP, DTMP, 8);
        cg.asm_mut().push(Insn::swi(DTMP, OUT_PTR, slot * 4));
    }
    {
        let a = cg.asm_mut();
        a.push(Insn::addik(IN_PTR, IN_PTR, 32));
        a.push(Insn::addik(OUT_PTR, OUT_PTR, 32));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
    }

    common::emit_checksum(&mut cg, "out", "out", CSUM_N as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("idct assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let output = golden(&input);
    let pre = input.chunks(8).take(SETUP_N).fold(0u32, |a, r| a.wrapping_add(r[0]));
    let csum = common::checksum(&output[..CSUM_N]);

    BuiltWorkload {
        name: "idct".into(),
        suite: Suite::Eembc,
        program,
        data: vec![(IN_ADDR, input)],
        kernel,
        checks: vec![
            MemCheck { label: "idct output".into(), addr: OUT_ADDR, expected: output },
            MemCheck { label: "idct dc sum".into(), addr: PRE_ADDR, expected: vec![pre] },
            MemCheck { label: "idct checksum".into(), addr: CSUM_ADDR, expected: vec![csum] },
        ],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    #[test]
    fn output_matches_golden() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(100_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn dc_only_row_spreads_energy_evenly() {
        // A DC-only input must produce a flat output row.
        let d = idct_row(&[256, 0, 0, 0, 0, 0, 0, 0]);
        assert!(d.iter().all(|&v| v == d[0]), "flat row expected, got {d:?}");
        assert!(d[0] > 0);
    }

    #[test]
    fn zero_row_stays_zero() {
        assert_eq!(idct_row(&[0; 8]), [0; 8]);
    }

    #[test]
    fn transform_is_linear() {
        let a = [3, -7, 20, 0, 5, 1, -2, 8];
        let b: [i32; 8] = core::array::from_fn(|i| a[i] * 2);
        let da = idct_row(&a);
        let db = idct_row(&b);
        // Linearity up to the shared final shift: compare pre-shift sums
        // by reconstructing approximate doubling.
        for i in 0..8 {
            assert!((db[i] - 2 * da[i]).abs() <= 1, "slot {i}: {} vs {}", db[i], da[i]);
        }
    }

    #[test]
    fn kernel_dominates() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(100_000_000).unwrap();
        let (s, e) = built.kernel.range();
        let frac = summary.cycles_in_range(s, e) as f64 / out.cycles as f64;
        assert!(frac > 0.8, "idct kernel fraction {frac:.3}");
    }

    #[test]
    fn works_without_multiplier_with_same_results() {
        let built = build(MbFeatures::paper_default().with_multiplier(false));
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(200_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }
}
