//! `brev` (Powerstone): bit reversal of a word array.
//!
//! The paper singles this benchmark out twice: its kernel "performs an
//! efficient bit reversal but heavily relies on shift operations", so a
//! core without the barrel shifter runs the application 2.1× slower
//! (Section 2); and after partitioning, "the resulting hardware circuit is
//! much more efficient, requiring only wires to implement the bit
//! reversal", giving the largest warp speedup (16.9×).
//!
//! The kernel reverses each 32-bit word with the classic five-stage
//! shift/mask network; in hardware every stage is pure wiring.

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common::{self, emit_and_mask};
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Number of words reversed by the kernel.
pub const N: usize = 2048;
/// Words covered by the verification checksum (the non-kernel share).
const CSUM_WORDS: usize = 448;

const IN_ADDR: u32 = 0x1000;
const OUT_ADDR: u32 = 0x4000;
const CSUM_ADDR: u32 = 0x0100;

/// Golden model: the five-stage network is exactly 32-bit reversal.
#[must_use]
pub fn golden(input: &[u32]) -> Vec<u32> {
    input.iter().map(|x| x.reverse_bits()).collect()
}

fn input_data() -> Vec<u32> {
    common::lcg_fill(N, 0xB5E7_CAFE, 1_664_525, 1_013_904_223)
}

/// Builds `brev` with input words drawn from `seed` (the program is
/// identical to [`build`]; only data and expected results change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_with_input(features, common::seeded_words(N, seed, 0xB5E7))
}

/// One shift/mask stage: `x = ((x >> k) & mask) | ((x & mask) << k)`.
fn emit_stage(cg: &mut CodeGen, x: Reg, t0: Reg, t1: Reg, k: u8, mask: u32) {
    cg.shr_const(t0, x, k);
    emit_and_mask(cg, t0, t0, mask);
    emit_and_mask(cg, t1, x, mask);
    cg.shl_const(t1, t1, k);
    cg.asm_mut().push(Insn::Or { rd: x, ra: t0, rb: t1 });
}

/// Builds `brev` for a feature configuration.
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_with_input(features, input_data())
}

fn build_with_input(features: MbFeatures, input: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("in", IN_ADDR).unwrap();
    cg.asm_mut().equ("out", OUT_ADDR).unwrap();
    cg.asm_mut().equ("csum", CSUM_ADDR).unwrap();

    // Kernel pointers and trip count.
    {
        let a = cg.asm_mut();
        a.la(Reg::R5, "in");
        a.la(Reg::R6, "out");
        a.li(Reg::R4, N as i32);
        a.label("k_head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
    }
    emit_stage(&mut cg, Reg::R9, Reg::R10, Reg::R11, 1, 0x5555_5555);
    emit_stage(&mut cg, Reg::R9, Reg::R10, Reg::R11, 2, 0x3333_3333);
    emit_stage(&mut cg, Reg::R9, Reg::R10, Reg::R11, 4, 0x0F0F_0F0F);
    emit_stage(&mut cg, Reg::R9, Reg::R10, Reg::R11, 8, 0x00FF_00FF);
    // Final stage: swap halves — (x << 16) | (x >> 16).
    cg.shl_const(Reg::R10, Reg::R9, 16);
    cg.shr_const(Reg::R11, Reg::R9, 16);
    {
        let a = cg.asm_mut();
        a.push(Insn::Or { rd: Reg::R9, ra: Reg::R10, rb: Reg::R11 });
        a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
    }

    // Non-kernel share: verification checksum over part of the output.
    common::emit_checksum(&mut cg, "out", "out", CSUM_WORDS as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("brev assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let output = golden(&input);
    let csum = common::checksum(&output[..CSUM_WORDS]);

    BuiltWorkload {
        name: "brev".into(),
        suite: Suite::Powerstone,
        program,
        data: vec![(IN_ADDR, input)],
        kernel,
        checks: vec![
            MemCheck { label: "brev output".into(), addr: OUT_ADDR, expected: output },
            MemCheck { label: "brev checksum".into(), addr: CSUM_ADDR, expected: vec![csum] },
        ],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    fn run(features: MbFeatures) -> (BuiltWorkload, mb_sim::Outcome, mb_sim::System) {
        let built = build(features);
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited(), "brev must exit");
        (built, out, sys)
    }

    #[test]
    fn output_matches_golden_with_barrel_shifter() {
        let (built, _, sys) = run(MbFeatures::paper_default());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn output_identical_without_optional_units() {
        let (built, _, sys) = run(MbFeatures::minimal());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn missing_barrel_shifter_slows_execution_about_2x() {
        let (_, with_bs, _) = run(MbFeatures::paper_default());
        let (_, without, _) = run(MbFeatures::minimal());
        let ratio = without.cycles as f64 / with_bs.cycles as f64;
        // Paper Section 2 reports 2.1×; accept a band around it.
        assert!(
            (1.6..=2.6).contains(&ratio),
            "brev slowdown without barrel shifter/multiplier: {ratio:.2}"
        );
    }

    #[test]
    fn kernel_dominates_execution() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(50_000_000).unwrap();
        let (start, end) = built.kernel.range();
        let kernel_cycles = summary.cycles_in_range(start, end);
        let frac = kernel_cycles as f64 / out.cycles as f64;
        assert!(frac > 0.9, "brev kernel fraction {frac:.3} should dominate");
    }

    #[test]
    fn kernel_bounds_point_at_loop() {
        let built = build(MbFeatures::paper_default());
        assert!(built.kernel.tail > built.kernel.head);
        // The tail must be the backward branch.
        let insn = built.program.insn_at(built.kernel.tail).unwrap();
        assert!(insn.is_control_flow(), "kernel tail must be the loop branch, got {insn}");
    }
}
