//! `canrdr` (EEMBC automotive): CAN bus message filtering.
//!
//! The EEMBC "CAN Remote Data Request" benchmark reads controller-area-
//! network messages and dispatches on their identifiers. Our
//! reconstruction processes a buffer of (id, data) message pairs: the
//! kernel matches each identifier against an acceptance filter and
//! produces either the payload or the message tag, entirely branch-free
//! (the compare is the `(t | -t) >> 31` sign idiom, which the warp fabric
//! implements as plain logic).

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common;
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Number of CAN messages processed by the kernel.
pub const N: usize = 2048;
/// Messages scanned by the setup pass (fewer iterations than the kernel
/// so the profiler ranks the kernel first).
const SETUP_N: usize = 1800;
/// Output words covered by the verification checksum.
const CSUM_N: usize = 1700;

const MSGS_ADDR: u32 = 0x1000;
const OUT_ADDR: u32 = 0x5000;
const IDSUM_ADDR: u32 = 0x0200;
const CSUM_ADDR: u32 = 0x0100;

/// Acceptance filter: bits 4–10 of the id must equal `0x12` << 4.
const FILTER_MASK: u32 = 0x7F0;
const FILTER_MATCH: u32 = 0x120;

/// Golden model of the kernel.
///
/// For each message: `t = (id & 0x7F0) ^ 0x120`; if `t == 0` the message
/// is accepted and the payload passes through, otherwise the low 8 bits
/// of the id (the message tag) are emitted.
#[must_use]
pub fn golden(msgs: &[u32]) -> Vec<u32> {
    msgs.chunks(2)
        .map(|m| {
            let (id, data) = (m[0], m[1]);
            let t = (id & FILTER_MASK) ^ FILTER_MATCH;
            let mask = common::nonzero_mask(t); // all-ones when rejected
            (data & !mask) | ((id & 0xFF) & mask)
        })
        .collect()
}

/// Shapes raw words into (id, payload) pairs: ids constrained to an
/// 11-bit CAN identifier, payload arbitrary.
fn shape_messages(raw: &[u32]) -> Vec<u32> {
    raw.chunks(2).flat_map(|c| [c[0] & 0x7FF, c[1]]).collect()
}

fn messages() -> Vec<u32> {
    shape_messages(&common::lcg_fill(2 * N, 0xCA_4D11, 1_664_525, 1_013_904_223))
}

/// Builds `canrdr` with messages drawn from `seed` (the program is
/// identical to [`build`]; only data and expected results change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_with_input(features, shape_messages(&common::seeded_words(2 * N, seed, 0xCA4D)))
}

/// Builds `canrdr` for a feature configuration.
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_with_input(features, messages())
}

fn build_with_input(features: MbFeatures, msgs: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("msgs", MSGS_ADDR).unwrap();
    cg.asm_mut().equ("out", OUT_ADDR).unwrap();
    cg.asm_mut().equ("idsum", IDSUM_ADDR).unwrap();
    cg.asm_mut().equ("csum", CSUM_ADDR).unwrap();

    // Setup pass (non-kernel): running xor of the first SETUP_N ids.
    {
        let a = cg.asm_mut();
        a.la(Reg::R16, "msgs");
        a.li(Reg::R17, SETUP_N as i32);
        a.push(Insn::addk(Reg::R18, Reg::R0, Reg::R0));
        a.label("idscan");
        a.push(Insn::lwi(Reg::R19, Reg::R16, 0));
        a.push(Insn::Xor { rd: Reg::R18, ra: Reg::R18, rb: Reg::R19 });
        a.push(Insn::addik(Reg::R16, Reg::R16, 8));
        a.push(Insn::addik(Reg::R17, Reg::R17, -1));
        a.bnei(Reg::R17, "idscan");
        a.la(Reg::R16, "idsum");
        a.push(Insn::swi(Reg::R18, Reg::R16, 0));
    }

    // Kernel: filter each message.
    {
        let a = cg.asm_mut();
        a.la(Reg::R21, "msgs");
        a.la(Reg::R22, "out");
        a.li(Reg::R4, N as i32);
        a.label("k_head");
        a.push(Insn::lwi(Reg::R9, Reg::R21, 0)); // id
        a.push(Insn::lwi(Reg::R10, Reg::R21, 4)); // data
        a.push(Insn::Andi { rd: Reg::R11, ra: Reg::R9, imm: FILTER_MASK as i16 });
        a.push(Insn::Xori { rd: Reg::R11, ra: Reg::R11, imm: FILTER_MATCH as i16 });
    }
    common::emit_nonzero_mask(&mut cg, Reg::R12, Reg::R11, Reg::R13);
    {
        let a = cg.asm_mut();
        a.push(Insn::Andn { rd: Reg::R13, ra: Reg::R10, rb: Reg::R12 }); // data & !mask
        a.push(Insn::Andi { rd: Reg::R14, ra: Reg::R9, imm: 0xFF });
        a.push(Insn::And { rd: Reg::R14, ra: Reg::R14, rb: Reg::R12 }); // tag & mask
        a.push(Insn::Or { rd: Reg::R13, ra: Reg::R13, rb: Reg::R14 });
        a.push(Insn::swi(Reg::R13, Reg::R22, 0));
        a.push(Insn::addik(Reg::R21, Reg::R21, 8));
        a.push(Insn::addik(Reg::R22, Reg::R22, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
    }

    // Verification checksum (non-kernel).
    common::emit_checksum(&mut cg, "out", "out", CSUM_N as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("canrdr assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let output = golden(&msgs);
    let idsum = msgs.chunks(2).take(SETUP_N).fold(0u32, |acc, m| acc ^ m[0]);
    let csum = common::checksum(&output[..CSUM_N]);

    BuiltWorkload {
        name: "canrdr".into(),
        suite: Suite::Eembc,
        program,
        data: vec![(MSGS_ADDR, msgs)],
        kernel,
        checks: vec![
            MemCheck { label: "canrdr output".into(), addr: OUT_ADDR, expected: output },
            MemCheck { label: "canrdr id xor".into(), addr: IDSUM_ADDR, expected: vec![idsum] },
            MemCheck { label: "canrdr checksum".into(), addr: CSUM_ADDR, expected: vec![csum] },
        ],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    #[test]
    fn output_matches_golden() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn golden_accepts_and_rejects() {
        // Accepted: id bits 4-10 = 0x12.
        let accepted = golden(&[0x123, 0xAABB_CCDD]);
        assert_eq!(accepted[0], 0xAABB_CCDD);
        // Rejected: tag (low byte) passes instead.
        let rejected = golden(&[0x7F5, 0xAABB_CCDD]);
        assert_eq!(rejected[0], 0xF5);
    }

    #[test]
    fn some_messages_match_filter() {
        let msgs = messages();
        let accepted = msgs.chunks(2).filter(|m| (m[0] & FILTER_MASK) == FILTER_MATCH).count();
        assert!(accepted > 0, "dataset must exercise the accept path");
        assert!(accepted < N, "dataset must exercise the reject path");
    }

    #[test]
    fn kernel_fraction_is_moderate() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(50_000_000).unwrap();
        let (s, e) = built.kernel.range();
        let frac = summary.cycles_in_range(s, e) as f64 / out.cycles as f64;
        assert!((0.45..0.8).contains(&frac), "canrdr kernel fraction {frac:.3}");
    }
}
