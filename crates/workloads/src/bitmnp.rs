//! `bitmnp` (EEMBC automotive): bit manipulation.
//!
//! The EEMBC bit-manipulation benchmark exercises dense shift/mask/logic
//! sequences per data word. Our reconstruction applies a nibble swap, a
//! half-word fold, and mask arithmetic to every input word — the kind of
//! bit-level shuffling that costs dozens of processor cycles in software
//! but collapses to wires and a few LUTs in the warp fabric.

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common::{self, emit_and_mask, emit_or_imm, emit_xor_imm};
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Number of words transformed by the kernel.
pub const N: usize = 1600;
const SETUP_N: usize = 1500;
const CSUM_N: usize = 1000;

const IN_ADDR: u32 = 0x1000;
const OUT_ADDR: u32 = 0x3000;
const PRE_ADDR: u32 = 0x0200;
const CSUM_ADDR: u32 = 0x0100;

/// Golden model of the per-word transform.
#[must_use]
pub fn transform(x: u32) -> u32 {
    let a = (x >> 4) & 0x0F0F_0F0F;
    let b = (x & 0x0F0F_0F0F) << 4;
    let y = a | b; // nibble swap
    let c = y ^ (y >> 16); // half-word fold
    let d = c.wrapping_add(x | 0x00FF_00FF); // mask arithmetic
    d ^ 0xA5A5_A5A5
}

/// Golden model over a slice.
#[must_use]
pub fn golden(input: &[u32]) -> Vec<u32> {
    input.iter().map(|&x| transform(x)).collect()
}

fn input_data() -> Vec<u32> {
    common::lcg_fill(N, 0xB17_0001, 22_695_477, 1)
}

/// Builds `bitmnp` with input words drawn from `seed` (the program is
/// identical to [`build`]; only data and expected results change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_with_input(features, common::seeded_words(N, seed, 0xB17))
}

/// Builds `bitmnp` for a feature configuration.
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_with_input(features, input_data())
}

fn build_with_input(features: MbFeatures, input: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("in", IN_ADDR).unwrap();
    cg.asm_mut().equ("out", OUT_ADDR).unwrap();
    cg.asm_mut().equ("pre", PRE_ADDR).unwrap();
    cg.asm_mut().equ("csum", CSUM_ADDR).unwrap();

    // Setup pass (non-kernel): population-style summary of pairs.
    {
        let a = cg.asm_mut();
        a.la(Reg::R16, "in");
        a.li(Reg::R17, SETUP_N as i32);
        a.push(Insn::addk(Reg::R18, Reg::R0, Reg::R0));
        a.label("presum");
        a.push(Insn::lwi(Reg::R19, Reg::R16, 0));
        a.push(Insn::addk(Reg::R18, Reg::R18, Reg::R19));
        a.push(Insn::addik(Reg::R16, Reg::R16, 4));
        a.push(Insn::addik(Reg::R17, Reg::R17, -1));
        a.bnei(Reg::R17, "presum");
        a.la(Reg::R16, "pre");
        a.push(Insn::swi(Reg::R18, Reg::R16, 0));
    }

    // Kernel.
    {
        let a = cg.asm_mut();
        a.la(Reg::R21, "in");
        a.la(Reg::R22, "out");
        a.li(Reg::R4, N as i32);
        a.label("k_head");
        a.push(Insn::lwi(Reg::R9, Reg::R21, 0));
    }
    // a = (x >> 4) & 0x0F0F0F0F
    cg.shr_const(Reg::R10, Reg::R9, 4);
    emit_and_mask(&mut cg, Reg::R10, Reg::R10, 0x0F0F_0F0F);
    // b = (x & 0x0F0F0F0F) << 4
    emit_and_mask(&mut cg, Reg::R11, Reg::R9, 0x0F0F_0F0F);
    cg.shl_const(Reg::R11, Reg::R11, 4);
    cg.asm_mut().push(Insn::Or { rd: Reg::R12, ra: Reg::R10, rb: Reg::R11 });
    // c = y ^ (y >> 16)
    cg.shr_const(Reg::R13, Reg::R12, 16);
    cg.asm_mut().push(Insn::Xor { rd: Reg::R12, ra: Reg::R12, rb: Reg::R13 });
    // d = c + (x | 0x00FF00FF)
    emit_or_imm(&mut cg, Reg::R14, Reg::R9, 0x00FF_00FF);
    cg.asm_mut().push(Insn::addk(Reg::R12, Reg::R12, Reg::R14));
    // out = d ^ 0xA5A5A5A5
    emit_xor_imm(&mut cg, Reg::R12, Reg::R12, 0xA5A5_A5A5);
    {
        let a = cg.asm_mut();
        a.push(Insn::swi(Reg::R12, Reg::R22, 0));
        a.push(Insn::addik(Reg::R21, Reg::R21, 4));
        a.push(Insn::addik(Reg::R22, Reg::R22, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
    }

    common::emit_checksum(&mut cg, "out", "out", CSUM_N as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("bitmnp assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let output = golden(&input);
    let pre = input.iter().take(SETUP_N).fold(0u32, |a, &x| a.wrapping_add(x));
    let csum = common::checksum(&output[..CSUM_N]);

    BuiltWorkload {
        name: "bitmnp".into(),
        suite: Suite::Eembc,
        program,
        data: vec![(IN_ADDR, input)],
        kernel,
        checks: vec![
            MemCheck { label: "bitmnp output".into(), addr: OUT_ADDR, expected: output },
            MemCheck { label: "bitmnp presum".into(), addr: PRE_ADDR, expected: vec![pre] },
            MemCheck { label: "bitmnp checksum".into(), addr: CSUM_ADDR, expected: vec![csum] },
        ],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    #[test]
    fn output_matches_golden() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn transform_is_nibble_swap_based() {
        // For a value whose nibbles are distinct, the swap is visible in
        // the intermediate `y`; spot-check the full transform against a
        // hand-computed value.
        let x = 0x1234_5678;
        let y = 0x2143_6587u32; // nibbles swapped
        let c = y ^ (y >> 16);
        let d = c.wrapping_add(x | 0x00FF_00FF);
        assert_eq!(transform(x), d ^ 0xA5A5_A5A5);
    }

    #[test]
    fn identical_results_without_units() {
        let built = build(MbFeatures::minimal());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(100_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn kernel_fraction_matches_design() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(50_000_000).unwrap();
        let (s, e) = built.kernel.range();
        let frac = summary.cycles_in_range(s, e) as f64 / out.cycles as f64;
        assert!((0.55..0.85).contains(&frac), "bitmnp kernel fraction {frac:.3}");
    }
}
