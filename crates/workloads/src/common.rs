//! Shared building blocks: program scaffolding, init/checksum loops, and
//! their golden-model equivalents.
//!
//! Each benchmark is built as: constant/data setup, one or more
//! initialization loops, the annotated critical kernel loop, verification
//! loops (checksums), and the exit-port store. The non-kernel loops give
//! each benchmark a realistic kernel-vs-total execution profile; they are
//! deliberately split into several loops so that the kernel keeps the
//! highest backward-branch count (which is what the frequency-based
//! on-chip profiler ranks by).

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, Reg};
use mb_sim::EXIT_PORT_BASE;

/// Emits the exit sequence: a word store to the exit port.
pub fn emit_exit(cg: &mut CodeGen) {
    let a = cg.asm_mut();
    a.li(Reg::R31, EXIT_PORT_BASE as i32);
    a.push(Insn::swi(Reg::R0, Reg::R31, 0));
}

/// Emits a loop filling `n` words at `base` with the LCG sequence
/// `x = x * mult + inc` (storing each new `x`). Uses the configuration's
/// multiply (hardware `mul` or the `__mulsi3` software routine).
///
/// Clobbers r16–r19 plus the runtime-clobber set when no multiplier is
/// configured.
pub fn emit_lcg_fill(
    cg: &mut CodeGen,
    tag: &str,
    base: &str,
    n: i32,
    seed: i32,
    mult: i32,
    inc: i16,
) {
    let top = format!("__fill_{tag}");
    {
        let a = cg.asm_mut();
        a.la(Reg::R16, base);
        a.li(Reg::R17, n);
        a.li(Reg::R18, seed);
        a.li(Reg::R19, mult);
        a.label(top.clone());
    }
    cg.mul(Reg::R18, Reg::R18, Reg::R19);
    let a = cg.asm_mut();
    a.push(Insn::addik(Reg::R18, Reg::R18, inc));
    a.push(Insn::swi(Reg::R18, Reg::R16, 0));
    a.push(Insn::addik(Reg::R16, Reg::R16, 4));
    a.push(Insn::addik(Reg::R17, Reg::R17, -1));
    a.bnei(Reg::R17, top);
}

/// Fills `n` words from the workspace `rand` shim (SplitMix64) seeded
/// with `seed ^ tag`.
///
/// This is the input source for the seeded workload variants
/// ([`crate::Workload::build_seeded`]): `tag` separates the streams of
/// workloads (and of multiple arrays within one workload) so that the
/// same user seed does not hand every benchmark correlated data.
#[must_use]
pub fn seeded_words(n: usize, seed: u64, tag: u64) -> Vec<u32> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ tag);
    (0..n).map(|_| rng.gen::<u32>()).collect()
}

/// Golden model of [`emit_lcg_fill`].
#[must_use]
pub fn lcg_fill(n: usize, seed: u32, mult: u32, inc: u32) -> Vec<u32> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(mult).wrapping_add(inc);
            x
        })
        .collect()
}

/// Emits a checksum loop over `n` words at `base`, storing the result at
/// `out`: `acc = acc + (word ^ (acc >> 1))` (wrapping).
///
/// Uses only single-bit shifts, so its cost is identical across feature
/// configurations. Clobbers r16–r20.
pub fn emit_checksum(cg: &mut CodeGen, tag: &str, base: &str, n: i32, out: &str) {
    let top = format!("__csum_{tag}");
    let a = cg.asm_mut();
    a.la(Reg::R16, base);
    a.li(Reg::R17, n);
    a.push(Insn::addk(Reg::R18, Reg::R0, Reg::R0));
    a.label(top.clone());
    a.push(Insn::lwi(Reg::R19, Reg::R16, 0));
    a.push(Insn::Srl { rd: Reg::R20, ra: Reg::R18 });
    a.push(Insn::Xor { rd: Reg::R19, ra: Reg::R19, rb: Reg::R20 });
    a.push(Insn::addk(Reg::R18, Reg::R18, Reg::R19));
    a.push(Insn::addik(Reg::R16, Reg::R16, 4));
    a.push(Insn::addik(Reg::R17, Reg::R17, -1));
    a.bnei(Reg::R17, top);
    a.la(Reg::R16, out);
    a.push(Insn::swi(Reg::R18, Reg::R16, 0));
}

/// Golden model of [`emit_checksum`].
#[must_use]
pub fn checksum(words: &[u32]) -> u32 {
    let mut acc = 0u32;
    for &w in words {
        acc = acc.wrapping_add(w ^ (acc >> 1));
    }
    acc
}

/// Emits `andi rd, ra, mask` for a full 32-bit mask (with `imm` prefix
/// when the mask does not fit in a sign-extended 16-bit immediate).
pub fn emit_and_mask(cg: &mut CodeGen, rd: Reg, ra: Reg, mask: u32) {
    let a = cg.asm_mut();
    if fits_i16(mask) {
        a.push(Insn::Andi { rd, ra, imm: mask as i16 });
    } else {
        a.push(Insn::Imm { imm: (mask >> 16) as i16 });
        a.push(Insn::Andi { rd, ra, imm: mask as i16 });
    }
}

/// Emits `xori rd, ra, value` for a full 32-bit value.
pub fn emit_xor_imm(cg: &mut CodeGen, rd: Reg, ra: Reg, value: u32) {
    let a = cg.asm_mut();
    if fits_i16(value) {
        a.push(Insn::Xori { rd, ra, imm: value as i16 });
    } else {
        a.push(Insn::Imm { imm: (value >> 16) as i16 });
        a.push(Insn::Xori { rd, ra, imm: value as i16 });
    }
}

/// Emits `ori rd, ra, value` for a full 32-bit value.
pub fn emit_or_imm(cg: &mut CodeGen, rd: Reg, ra: Reg, value: u32) {
    let a = cg.asm_mut();
    if fits_i16(value) {
        a.push(Insn::Ori { rd, ra, imm: value as i16 });
    } else {
        a.push(Insn::Imm { imm: (value >> 16) as i16 });
        a.push(Insn::Ori { rd, ra, imm: value as i16 });
    }
}

/// Whether a 32-bit value round-trips through a sign-extended 16-bit
/// immediate.
#[must_use]
pub fn fits_i16(value: u32) -> bool {
    value as i32 >= i32::from(i16::MIN) && value as i32 <= i32::from(i16::MAX)
}

/// Emits the branch-free "is non-zero" idiom: `rd = (ra != 0) ? all-ones
/// : 0`, computed as `(ra | (0 - ra)) >> 31` arithmetic.
///
/// Clobbers `scratch`.
pub fn emit_nonzero_mask(cg: &mut CodeGen, rd: Reg, ra: Reg, scratch: Reg) {
    cg.asm_mut().push(Insn::rsubk(scratch, ra, Reg::R0)); // 0 - ra
    cg.asm_mut().push(Insn::Or { rd: scratch, ra, rb: scratch });
    cg.sar_const(rd, scratch, 31);
}

/// Golden model of [`emit_nonzero_mask`].
#[must_use]
pub fn nonzero_mask(v: u32) -> u32 {
    if v != 0 {
        u32::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_isa::MbFeatures;
    use mb_sim::{MbConfig, System};

    fn run(cg: CodeGen) -> System {
        let p = cg.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        let out = sys.run(10_000_000).unwrap();
        assert!(out.exited());
        sys
    }

    #[test]
    fn lcg_fill_matches_golden() {
        let mut cg = CodeGen::new(0, MbFeatures::paper_default());
        cg.asm_mut().equ("buf", 0x400).unwrap();
        emit_lcg_fill(&mut cg, "t", "buf", 16, 0x1234, 1664525, 1013);
        emit_exit(&mut cg);
        let sys = run(cg);
        let expected = lcg_fill(16, 0x1234, 1664525, 1013);
        let actual = sys.dmem().read_words(0x400, 16).unwrap();
        assert_eq!(actual, expected);
    }

    #[test]
    fn lcg_fill_same_values_without_multiplier() {
        let mut cg = CodeGen::new(0, MbFeatures::minimal());
        cg.asm_mut().equ("buf", 0x400).unwrap();
        emit_lcg_fill(&mut cg, "t", "buf", 8, 99, 22695477, 1);
        emit_exit(&mut cg);
        let sys = run(cg);
        assert_eq!(sys.dmem().read_words(0x400, 8).unwrap(), lcg_fill(8, 99, 22695477, 1));
    }

    #[test]
    fn checksum_matches_golden() {
        let data: Vec<u32> = (0..32).map(|i| 0x0101_0101u32.wrapping_mul(i)).collect();
        let mut cg = CodeGen::new(0, MbFeatures::paper_default());
        cg.asm_mut().equ("buf", 0x400).unwrap();
        cg.asm_mut().equ("out", 0x300).unwrap();
        emit_checksum(&mut cg, "t", "buf", 32, "out");
        emit_exit(&mut cg);
        let p = cg.finish().unwrap();
        let mut sys = System::new(MbConfig::paper_default());
        sys.load_program(&p).unwrap();
        sys.load_data(0x400, &data).unwrap();
        sys.run(1_000_000).unwrap();
        assert_eq!(sys.dmem().read_word(0x300).unwrap(), checksum(&data));
    }

    #[test]
    fn mask_helpers_handle_wide_and_narrow() {
        let mut cg = CodeGen::new(0, MbFeatures::paper_default());
        cg.asm_mut().li(Reg::R3, -1);
        emit_and_mask(&mut cg, Reg::R4, Reg::R3, 0x0F0F_0F0F);
        emit_and_mask(&mut cg, Reg::R5, Reg::R3, 0x0123);
        emit_xor_imm(&mut cg, Reg::R6, Reg::R4, 0xFFFF_0000);
        emit_or_imm(&mut cg, Reg::R7, Reg::R5, 0x00FF_0000);
        emit_exit(&mut cg);
        let sys = run(cg);
        assert_eq!(sys.cpu().reg(Reg::R4), 0x0F0F_0F0F);
        assert_eq!(sys.cpu().reg(Reg::R5), 0x0123);
        assert_eq!(sys.cpu().reg(Reg::R6), 0x0F0F_0F0F ^ 0xFFFF_0000);
        assert_eq!(sys.cpu().reg(Reg::R7), 0x0123 | 0x00FF_0000);
    }

    #[test]
    fn nonzero_mask_idiom() {
        for (input, want) in [(0u32, 0u32), (1, u32::MAX), (0x8000_0000, u32::MAX)] {
            let mut cg = CodeGen::new(0, MbFeatures::paper_default());
            cg.asm_mut().li(Reg::R3, input as i32);
            emit_nonzero_mask(&mut cg, Reg::R4, Reg::R3, Reg::R5);
            emit_exit(&mut cg);
            let sys = run(cg);
            assert_eq!(sys.cpu().reg(Reg::R4), want, "input {input:#x}");
            assert_eq!(want, nonzero_mask(input));
        }
    }

    #[test]
    fn fits_i16_boundaries() {
        assert!(fits_i16(0x7FFF));
        assert!(!fits_i16(0x8000));
        assert!(fits_i16(0xFFFF_8000)); // -32768
        assert!(!fits_i16(0xFFFF_7FFF));
    }
}
