//! `matmul` (Powerstone): integer matrix multiply.
//!
//! The critical region is the innermost product loop
//! `acc += a[i][k] * b[k][j]` — on the warp processor it maps directly
//! onto the WCLA's data address generator (two strided streams) and
//! 32-bit MAC. Section 2 of the paper studies this benchmark without the
//! hardware multiplier, where "the compiler will use a software function
//! to perform every multiplication"; the cost of that software multiply
//! is data-dependent (shift-add with early exit), and the operand
//! matrices here are sparse with small values, as in the original
//! benchmark's data set.

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common;
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Matrix dimension (N×N).
pub const DIM: usize = 20;

const A_ADDR: u32 = 0x1000;
const B_ADDR: u32 = 0x2000;
const C_ADDR: u32 = 0x3000;
const CSUM_ADDR: u32 = 0x0100;

/// Golden model: `c = a × b` over row-major `DIM×DIM` matrices.
#[must_use]
pub fn golden(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut c = vec![0u32; DIM * DIM];
    for i in 0..DIM {
        for j in 0..DIM {
            let mut acc = 0u32;
            for k in 0..DIM {
                acc = acc.wrapping_add(a[i * DIM + k].wrapping_mul(b[k * DIM + j]));
            }
            c[i * DIM + j] = acc;
        }
    }
    c
}

/// Shapes raw words into sparse small-valued matrix entries: ~75%
/// zeros, the rest 1–3 (matching the original benchmark's data set).
fn sparse_shape(raw: &[u32]) -> Vec<u32> {
    raw.iter()
        .map(|&x| {
            let sel = (x >> 7) & 3;
            if sel == 0 {
                ((x >> 11) & 3).max(1)
            } else {
                0
            }
        })
        .collect()
}

/// Sparse small-valued matrix entries from the legacy LCG stream.
fn sparse_entries(seed: u32) -> Vec<u32> {
    sparse_shape(&common::lcg_fill(DIM * DIM, seed, 1_664_525, 1_013_904_223))
}

/// Builds `matmul` with both operand matrices drawn from `seed` (the
/// program is identical to [`build`]; only data and expected results
/// change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    let a = sparse_shape(&common::seeded_words(DIM * DIM, seed, 0xA11CE));
    let b = sparse_shape(&common::seeded_words(DIM * DIM, seed, 0xB0B57));
    build_with_input(features, a, b)
}

/// Builds `matmul` for a feature configuration.
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_with_input(features, sparse_entries(0xA11CE), sparse_entries(0xB0B57))
}

fn build_with_input(features: MbFeatures, a: Vec<u32>, b: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("a", A_ADDR).unwrap();
    cg.asm_mut().equ("b", B_ADDR).unwrap();
    cg.asm_mut().equ("c", C_ADDR).unwrap();
    cg.asm_mut().equ("csum", CSUM_ADDR).unwrap();

    let row_bytes = (DIM * 4) as i16;

    // Outer loops in software; only the innermost product loop is the
    // kernel. Register plan (safe with __mulsi3 clobbers r3, r5-r9, r15):
    //   r23 i-count, r24 a-row ptr, r25 c ptr, r26 b-col ptr, r27 j-count,
    //   r20 a work ptr, r21 b work ptr, r22 acc, r4 k-count,
    //   r10/r11 operands, r12 product.
    {
        let a = cg.asm_mut();
        a.li(Reg::R23, DIM as i32);
        a.la(Reg::R24, "a");
        a.la(Reg::R25, "c");
        a.label("i_loop");
        a.la(Reg::R26, "b");
        a.li(Reg::R27, DIM as i32);
        a.label("j_loop");
        a.push(Insn::addk(Reg::R22, Reg::R0, Reg::R0)); // acc = 0
        a.push(Insn::addk(Reg::R20, Reg::R24, Reg::R0)); // a row cursor
        a.push(Insn::addk(Reg::R21, Reg::R26, Reg::R0)); // b column cursor
        a.li(Reg::R4, DIM as i32);
        a.label("k_head");
        a.push(Insn::lwi(Reg::R10, Reg::R20, 0));
        a.push(Insn::lwi(Reg::R11, Reg::R21, 0));
    }
    cg.mul(Reg::R12, Reg::R10, Reg::R11);
    {
        let a = cg.asm_mut();
        a.push(Insn::addk(Reg::R22, Reg::R22, Reg::R12));
        a.push(Insn::addik(Reg::R20, Reg::R20, 4));
        a.push(Insn::addik(Reg::R21, Reg::R21, row_bytes));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
        // c[i][j] = acc; advance j.
        a.push(Insn::swi(Reg::R22, Reg::R25, 0));
        a.push(Insn::addik(Reg::R25, Reg::R25, 4));
        a.push(Insn::addik(Reg::R26, Reg::R26, 4));
        a.push(Insn::addik(Reg::R27, Reg::R27, -1));
        a.bnei(Reg::R27, "j_loop");
        // Advance i: next a row (c pointer already advanced by the j loop).
        a.push(Insn::addik(Reg::R24, Reg::R24, row_bytes));
        a.push(Insn::addik(Reg::R23, Reg::R23, -1));
        a.bnei(Reg::R23, "i_loop");
    }

    common::emit_checksum(&mut cg, "c", "c", (DIM * DIM) as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("matmul assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let c = golden(&a, &b);
    let csum = common::checksum(&c);

    BuiltWorkload {
        name: "matmul".into(),
        suite: Suite::Powerstone,
        program,
        data: vec![(A_ADDR, a), (B_ADDR, b)],
        kernel,
        checks: vec![
            MemCheck { label: "matmul product".into(), addr: C_ADDR, expected: c },
            MemCheck { label: "matmul checksum".into(), addr: CSUM_ADDR, expected: vec![csum] },
        ],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    #[test]
    fn output_matches_golden() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn identity_times_anything() {
        let mut ident = vec![0u32; DIM * DIM];
        for i in 0..DIM {
            ident[i * DIM + i] = 1;
        }
        let m = sparse_entries(7);
        assert_eq!(golden(&ident, &m), m);
    }

    #[test]
    fn matrices_are_sparse_small() {
        let m = sparse_entries(0xA11CE);
        let zeros = m.iter().filter(|&&v| v == 0).count();
        assert!(zeros * 10 >= m.len() * 6, "expect >=60% zeros, got {zeros}/{}", m.len());
        assert!(m.iter().all(|&v| v <= 3));
        assert!(m.iter().any(|&v| v > 0));
    }

    #[test]
    fn software_multiply_produces_identical_product() {
        let built = build(MbFeatures::paper_default().with_multiplier(false));
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(200_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn missing_multiplier_slows_moderately() {
        let with_mul = {
            let built = build(MbFeatures::paper_default());
            let mut sys = built.instantiate(&MbConfig::paper_default());
            sys.run(200_000_000).unwrap().cycles
        };
        let without = {
            let built = build(MbFeatures::paper_default().with_multiplier(false));
            let mut sys = built.instantiate(&MbConfig::paper_default());
            sys.run(200_000_000).unwrap().cycles
        };
        let ratio = without as f64 / with_mul as f64;
        // Paper Section 2 reports 1.3×; the exact value is data- and
        // libgcc-dependent, so accept a band.
        assert!((1.1..=1.9).contains(&ratio), "matmul no-mul slowdown {ratio:.2}");
    }

    #[test]
    fn inner_loop_is_the_kernel() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(50_000_000).unwrap();
        let (s, e) = built.kernel.range();
        let frac = summary.cycles_in_range(s, e) as f64 / out.cycles as f64;
        assert!(frac > 0.7, "matmul inner-loop fraction {frac:.3}");
    }
}
