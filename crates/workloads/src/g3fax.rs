//! `g3fax` (Powerstone): Group-3 fax run-length expansion.
//!
//! The Powerstone benchmark decodes Group-3 facsimile data. Our
//! reconstruction keeps the documented kernel shape: a loop that expands
//! run-length codes into scanline pixel words. Each input code packs a
//! run color (bit 0) and a run length (bits 1–5); the kernel produces one
//! 32-pixel output word per code: the run's pixels set from the MSB side.
//!
//! The expansion uses a *dynamic* shift by the run length, which the
//! barrel shifter performs in hardware and the warp fabric implements as
//! a mux network; a decode/setup pass before the kernel and a scanline
//! checksum after it form the benchmark's non-kernel share.

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common;
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Number of run-length codes expanded by the kernel.
pub const N: usize = 1500;

const CODES_ADDR: u32 = 0x1000;
const OUT_ADDR: u32 = 0x3000;
const CSUM_ADDR: u32 = 0x0100;
const LINE_ADDR: u32 = 0x0200;

/// Golden model of the kernel: one scanline word per code.
///
/// `len = (code >> 1) & 31`, `color = code & 1`;
/// `out = (0 - color) << (32 - len)` with MicroBlaze shift semantics
/// (shift amounts taken mod 32).
#[must_use]
pub fn golden(codes: &[u32]) -> Vec<u32> {
    codes
        .iter()
        .map(|&code| {
            let len = (code >> 1) & 31;
            let color = 0u32.wrapping_sub(code & 1);
            let sh = (32 - len) & 31;
            // A zero-length run yields sh == 0 (mod 32), i.e. the full
            // color word; the assembly does the same, keeping software,
            // golden model, and hardware bit-identical.
            color << sh
        })
        .collect()
}

fn input_codes() -> Vec<u32> {
    // Mix of runs with varying lengths and colors.
    common::lcg_fill(N, 0x6FA0_0001, 22_695_477, 1).iter().map(|x| x & 0x3F).collect()
}

/// Builds `g3fax` with run-length codes drawn from `seed` (the program
/// is identical to [`build`]; only data and expected results change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    let codes = common::seeded_words(N, seed, 0x6FA0).iter().map(|x| x & 0x3F).collect();
    build_with_input(features, codes)
}

/// Builds `g3fax` for a feature configuration.
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_with_input(features, input_codes())
}

fn build_with_input(features: MbFeatures, codes: Vec<u32>) -> BuiltWorkload {
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("codes", CODES_ADDR).unwrap();
    cg.asm_mut().equ("out", OUT_ADDR).unwrap();
    cg.asm_mut().equ("csum", CSUM_ADDR).unwrap();
    cg.asm_mut().equ("line", LINE_ADDR).unwrap();

    // Setup pass (non-kernel): build a line-status table from the codes —
    // one word per 8 codes, xor-folded.
    {
        let a = cg.asm_mut();
        a.la(Reg::R16, "codes");
        a.li(Reg::R17, (N / 8) as i32);
        a.la(Reg::R19, "line");
        a.label("setup");
        a.push(Insn::lwi(Reg::R18, Reg::R16, 0));
        a.push(Insn::lwi(Reg::R20, Reg::R16, 4));
        a.push(Insn::Xor { rd: Reg::R18, ra: Reg::R18, rb: Reg::R20 });
        a.push(Insn::swi(Reg::R18, Reg::R19, 0));
        a.push(Insn::addik(Reg::R16, Reg::R16, 32));
        a.push(Insn::addik(Reg::R19, Reg::R19, 4));
        a.push(Insn::addik(Reg::R17, Reg::R17, -1));
        a.bnei(Reg::R17, "setup");
    }

    // Kernel: expand each code into a 32-pixel word.
    {
        let a = cg.asm_mut();
        a.la(Reg::R21, "codes");
        a.la(Reg::R22, "out");
        a.li(Reg::R4, N as i32);
        a.label("k_head");
        a.push(Insn::lwi(Reg::R9, Reg::R21, 0));
    }
    // len = (code >> 1) & 31
    cg.shr_const(Reg::R10, Reg::R9, 1);
    cg.asm_mut().push(Insn::Andi { rd: Reg::R10, ra: Reg::R10, imm: 31 });
    // color mask = 0 - (code & 1)
    cg.asm_mut().push(Insn::Andi { rd: Reg::R11, ra: Reg::R9, imm: 1 });
    cg.asm_mut().push(Insn::rsubk(Reg::R11, Reg::R11, Reg::R0));
    // sh = 32 - len  (taken mod 32 by the shifter)
    cg.asm_mut().push(Insn::Rsubi {
        rd: Reg::R12,
        ra: Reg::R10,
        imm: 32,
        keep_carry: true,
        use_carry: false,
    });
    // out = color << sh (dynamic shift — barrel shifter or runtime call)
    cg.shl_dyn(Reg::R13, Reg::R11, Reg::R12);
    {
        let a = cg.asm_mut();
        a.push(Insn::swi(Reg::R13, Reg::R22, 0));
        a.push(Insn::addik(Reg::R21, Reg::R21, 4));
        a.push(Insn::addik(Reg::R22, Reg::R22, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k_tail");
        a.bnei(Reg::R4, "k_head");
    }

    // Verification passes (non-kernel).
    common::emit_checksum(&mut cg, "out", "out", N as i32, "csum");
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("g3fax assembles");
    let kernel = KernelBounds {
        head: program.symbol("k_head").unwrap(),
        tail: program.symbol("k_tail").unwrap(),
    };

    let output = golden(&codes);
    let csum = common::checksum(&output);
    let line: Vec<u32> = codes.chunks(8).take(N / 8).map(|c| c[0] ^ c[1]).collect();

    BuiltWorkload {
        name: "g3fax".into(),
        suite: Suite::Powerstone,
        program,
        data: vec![(CODES_ADDR, codes)],
        kernel,
        checks: vec![
            MemCheck { label: "g3fax scanlines".into(), addr: OUT_ADDR, expected: output },
            MemCheck { label: "g3fax line table".into(), addr: LINE_ADDR, expected: line },
            MemCheck { label: "g3fax checksum".into(), addr: CSUM_ADDR, expected: vec![csum] },
        ],
        features,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    #[test]
    fn output_matches_golden() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    // Literals are grouped as the run-length code fields `len_color`,
    // not in even digit groups.
    #[allow(clippy::unusual_byte_groupings)]
    fn golden_run_shapes() {
        // len=4, color=1 -> top 4 pixels set.
        assert_eq!(golden(&[0b0100_1])[0], 0xF000_0000);
        // len=4, color=0 -> zero.
        assert_eq!(golden(&[0b0100_0])[0], 0);
        // len=0, color=1 -> full word (documented mod-32 behaviour).
        assert_eq!(golden(&[0b0000_1])[0], u32::MAX);
        // len=31, color=1 -> all but the LSB.
        assert_eq!(golden(&[0b11111_1])[0], !1);
    }

    #[test]
    fn works_without_barrel_shifter() {
        let built = build(MbFeatures::minimal());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(100_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn kernel_fraction_is_moderate() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(50_000_000).unwrap();
        let (s, e) = built.kernel.range();
        let frac = summary.cycles_in_range(s, e) as f64 / out.cycles as f64;
        assert!(
            (0.4..0.8).contains(&frac),
            "g3fax kernel fraction {frac:.3} should be moderate (Amdahl-limited benchmark)"
        );
    }
}
