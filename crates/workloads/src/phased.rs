//! `phased`: a multi-kernel workload whose hot loop *shifts mid-run*.
//!
//! The paper's dynamic-partitioning premise is that the warp processor
//! tracks the application as it executes — and real applications move
//! between phases. This workload makes that scenario concrete in three
//! phases: phase A repeatedly runs a word-mixing stream kernel
//! (shift/xor network with a loop-invariant mixing constant) over an
//! input array; phase A′ runs a *shifted-but-similar* variant of the
//! same mixer (different shift distances and constant, a different
//! buffer) — the realistic "the kernel moved and changed a little"
//! re-warp; phase B then repeatedly folds a message buffer into a
//! rotate-xor accumulator, a structurally unrelated kernel. Each
//! phase's inner loop dominates while it runs, so an online profiler
//! with decay sees the hot region *move*: `k1_head..k1_tail`, then
//! `k1b_head..k1b_tail`, then `k2_head..k2_tail`, forcing two
//! evictions and re-warps — the second of which (A → A′) is exactly
//! the shape incremental CAD exploits.
//!
//! Phase A retires more total backward branches than either later
//! phase, so the *offline* whole-run profile still names kernel 1,
//! which is what the benchmark annotation carries — the offline warp
//! flow remains consistent on this workload.
//!
//! [`build_scaled`] produces the long-running variant the online
//! runtime needs: the outer repeat counts stretch each phase so it
//! comfortably outlasts the modeled on-chip CAD latency without
//! changing any kernel's shape (all variants decompile to the same
//! circuits).

use mb_isa::codegen::CodeGen;
use mb_isa::{Insn, MbFeatures, Reg};

use crate::common;
use crate::{BuiltWorkload, KernelBounds, MemCheck, Suite};

/// Words transformed per phase-A inner-loop entry.
pub const N_A: usize = 128;
/// Words folded per phase-B inner-loop entry.
pub const N_B: usize = 64;
/// Phase-A outer repeats in the registry (small) variant.
pub const OUTER_A: u32 = 20;
/// Phase-A′ outer repeats in the registry (small) variant.
pub const OUTER_A2: u32 = 10;
/// Phase-B outer repeats in the registry (small) variant.
pub const OUTER_B: u32 = 6;
/// The loop-invariant mixing constant phase A xors into every word.
pub const MIX: u32 = 0x9E37_79B9;
/// The loop-invariant mixing constant of the phase-A′ variant.
pub const MIX2: u32 = 0x85EB_CA6B;
/// Phase-B accumulator seed.
pub const SEED_B: u32 = 0xFFFF_FFFF;

const IN_A: u32 = 0x1000;
const OUT_A: u32 = 0x2000;
const IN_B: u32 = 0x3000;
const OUT_B: u32 = 0x0100;
const IN_A2: u32 = 0x4000;
const OUT_A2: u32 = 0x5000;

/// Golden model of one phase-A pass: `y = (x << 3) ^ (x >> 7) ^ MIX`.
#[must_use]
pub fn golden_a(input: &[u32]) -> Vec<u32> {
    input.iter().map(|&x| (x << 3) ^ (x >> 7) ^ MIX).collect()
}

/// Golden model of one phase-A′ pass: `y = (x << 5) ^ (x >> 9) ^ MIX2`.
#[must_use]
pub fn golden_a2(input: &[u32]) -> Vec<u32> {
    input.iter().map(|&x| (x << 5) ^ (x >> 9) ^ MIX2).collect()
}

/// Golden model of one phase-B pass: fold `s = rotl3(s) ^ w` over the
/// message, starting from [`SEED_B`].
#[must_use]
pub fn golden_b(msg: &[u32]) -> u32 {
    msg.iter().fold(SEED_B, |s, &w| s.rotate_left(3) ^ w)
}

/// Builds the registry variant (small: fits the trace-everything tests).
pub fn build(features: MbFeatures) -> BuiltWorkload {
    build_scaled(features, OUTER_A, OUTER_A2, OUTER_B)
}

/// Builds the registry variant with all phase inputs drawn from `seed`
/// (the program is identical to [`build`]; only data and expected
/// results change).
pub fn build_seeded(features: MbFeatures, seed: u64) -> BuiltWorkload {
    build_with_inputs(
        features,
        OUTER_A,
        OUTER_A2,
        OUTER_B,
        common::seeded_words(N_A, seed, 0xA5),
        common::seeded_words(N_A, seed, 0xC5),
        common::seeded_words(N_B, seed, 0xB5),
    )
}

/// Builds `phased` with explicit outer repeat counts.
///
/// The online runtime uses large counts so each phase outlasts the
/// modeled CAD latency; keep `outer_a * (N_A - 1)` above both
/// `outer_a2 * (N_A - 1)` and `outer_b * (N_B - 1)` so the whole-run
/// profile (and therefore the offline flow) still names kernel 1.
///
/// # Panics
///
/// Panics if any count is zero (each phase must run).
pub fn build_scaled(
    features: MbFeatures,
    outer_a: u32,
    outer_a2: u32,
    outer_b: u32,
) -> BuiltWorkload {
    let input_a = common::lcg_fill(N_A, 0x00A5_0001, 1_664_525, 1013);
    let input_a2 = common::lcg_fill(N_A, 0x00C5_0001, 69_069, 12_345);
    let msg_b = common::lcg_fill(N_B, 0x00B5_0001, 22_695_477, 7);
    build_with_inputs(features, outer_a, outer_a2, outer_b, input_a, input_a2, msg_b)
}

#[allow(clippy::too_many_lines)]
fn build_with_inputs(
    features: MbFeatures,
    outer_a: u32,
    outer_a2: u32,
    outer_b: u32,
    input_a: Vec<u32>,
    input_a2: Vec<u32>,
    msg_b: Vec<u32>,
) -> BuiltWorkload {
    assert!(outer_a > 0 && outer_a2 > 0 && outer_b > 0, "all phases must execute");
    let mut cg = CodeGen::new(0, features);
    cg.asm_mut().equ("in_a", IN_A).unwrap();
    cg.asm_mut().equ("out_a", OUT_A).unwrap();
    cg.asm_mut().equ("in_b", IN_B).unwrap();
    cg.asm_mut().equ("out_b", OUT_B).unwrap();
    cg.asm_mut().equ("in_a2", IN_A2).unwrap();
    cg.asm_mut().equ("out_a2", OUT_A2).unwrap();

    // ---- Phase A: stream-mixing kernel, repeated outer_a times ----
    {
        let a = cg.asm_mut();
        a.li(Reg::R20, MIX as i32); // loop-invariant mixing constant
        a.li(Reg::R3, outer_a as i32);
        a.label("a_outer");
        a.la(Reg::R5, "in_a");
        a.la(Reg::R6, "out_a");
        a.li(Reg::R4, N_A as i32);
        a.label("k1_head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
    }
    cg.shl_const(Reg::R10, Reg::R9, 3);
    cg.shr_const(Reg::R11, Reg::R9, 7);
    {
        let a = cg.asm_mut();
        a.push(Insn::Xor { rd: Reg::R9, ra: Reg::R10, rb: Reg::R11 });
        a.push(Insn::Xor { rd: Reg::R9, ra: Reg::R9, rb: Reg::R20 });
        a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k1_tail");
        a.bnei(Reg::R4, "k1_head");
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "a_outer");
    }

    // ---- Phase A': the shifted mixer variant, repeated outer_a2 times.
    // Same loop shape as phase A — load, two shifts, two xors, store —
    // but different shift distances, mixing constant, and buffers, so it
    // decompiles to a *similar but distinct* kernel (the incremental
    // re-warp scenario). ----
    {
        let a = cg.asm_mut();
        a.li(Reg::R20, MIX2 as i32);
        a.li(Reg::R3, outer_a2 as i32);
        a.label("a2_outer");
        a.la(Reg::R5, "in_a2");
        a.la(Reg::R6, "out_a2");
        a.li(Reg::R4, N_A as i32);
        a.label("k1b_head");
        a.push(Insn::lwi(Reg::R9, Reg::R5, 0));
    }
    cg.shl_const(Reg::R10, Reg::R9, 5);
    cg.shr_const(Reg::R11, Reg::R9, 9);
    {
        let a = cg.asm_mut();
        a.push(Insn::Xor { rd: Reg::R9, ra: Reg::R10, rb: Reg::R11 });
        a.push(Insn::Xor { rd: Reg::R9, ra: Reg::R9, rb: Reg::R20 });
        a.push(Insn::swi(Reg::R9, Reg::R6, 0));
        a.push(Insn::addik(Reg::R5, Reg::R5, 4));
        a.push(Insn::addik(Reg::R6, Reg::R6, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k1b_tail");
        a.bnei(Reg::R4, "k1b_head");
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "a2_outer");
    }

    // ---- Phase B: rotate-xor accumulator, repeated outer_b times ----
    {
        let a = cg.asm_mut();
        a.li(Reg::R3, outer_b as i32);
        a.label("b_outer");
        a.la(Reg::R21, "in_b");
        a.li(Reg::R4, N_B as i32);
        a.li(Reg::R22, SEED_B as i32);
        a.label("k2_head");
        a.push(Insn::lwi(Reg::R9, Reg::R21, 0));
    }
    cg.shl_const(Reg::R10, Reg::R22, 3);
    cg.shr_const(Reg::R11, Reg::R22, 29);
    {
        let a = cg.asm_mut();
        a.push(Insn::Or { rd: Reg::R22, ra: Reg::R10, rb: Reg::R11 });
        a.push(Insn::Xor { rd: Reg::R22, ra: Reg::R22, rb: Reg::R9 });
        a.push(Insn::addik(Reg::R21, Reg::R21, 4));
        a.push(Insn::addik(Reg::R4, Reg::R4, -1));
        a.label("k2_tail");
        a.bnei(Reg::R4, "k2_head");
        a.la(Reg::R16, "out_b");
        a.push(Insn::swi(Reg::R22, Reg::R16, 0));
        a.push(Insn::addik(Reg::R3, Reg::R3, -1));
        a.bnei(Reg::R3, "b_outer");
    }
    common::emit_exit(&mut cg);

    let program = cg.finish().expect("phased assembles");
    let kernel = KernelBounds {
        head: program.symbol("k1_head").unwrap(),
        tail: program.symbol("k1_tail").unwrap(),
    };

    let out_a = golden_a(&input_a);
    let out_a2 = golden_a2(&input_a2);
    let out_b = golden_b(&msg_b);

    BuiltWorkload {
        name: "phased".into(),
        suite: Suite::Extra,
        program,
        data: vec![(IN_A, input_a), (IN_A2, input_a2), (IN_B, msg_b)],
        kernel,
        checks: vec![
            MemCheck { label: "phase A output".into(), addr: OUT_A, expected: out_a },
            MemCheck { label: "phase A' output".into(), addr: OUT_A2, expected: out_a2 },
            MemCheck { label: "phase B state".into(), addr: OUT_B, expected: vec![out_b] },
        ],
        features,
    }
}

/// The three annotated kernels, phase order: `[phase A, phase A′,
/// phase B]`.
///
/// The [`BuiltWorkload::kernel`] field carries only phase A (the
/// whole-run hottest region, which the offline flow warps); the online
/// re-warp tests need all three.
#[must_use]
pub fn phase_kernels(built: &BuiltWorkload) -> [KernelBounds; 3] {
    let bounds = |h: &str, t: &str| KernelBounds {
        head: built.program.symbol(h).expect("phased symbol"),
        tail: built.program.symbol(t).expect("phased symbol"),
    };
    [bounds("k1_head", "k1_tail"), bounds("k1b_head", "k1b_tail"), bounds("k2_head", "k2_tail")]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_sim::MbConfig;

    fn run_small() -> (BuiltWorkload, mb_sim::Outcome, mb_sim::System) {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited(), "phased must exit");
        (built, out, sys)
    }

    #[test]
    fn output_matches_golden() {
        let (built, _, sys) = run_small();
        built.verify(sys.dmem()).unwrap();
    }

    #[test]
    fn annotation_is_phase_a_and_bounds_are_ordered() {
        let built = build(MbFeatures::paper_default());
        let [ka, ka2, kb] = phase_kernels(&built);
        assert_eq!((ka.head, ka.tail), (built.kernel.head, built.kernel.tail));
        assert!(ka.head < ka.tail && ka.tail < ka2.head && ka2.head < ka2.tail);
        assert!(ka2.tail < kb.head && kb.head < kb.tail);
        // Every tail must be its loop's backward branch.
        for k in [ka, ka2, kb] {
            assert!(built.program.insn_at(k.tail).unwrap().is_control_flow());
        }
    }

    #[test]
    fn phase_a_dominates_the_whole_run_profile() {
        let built = build(MbFeatures::paper_default());
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let (out, summary) = sys.run_summarized(50_000_000).unwrap();
        let [ka, ka2, kb] = phase_kernels(&built);
        let a_events = summary.backward_taken_at(ka.tail);
        let a2_events = summary.backward_taken_at(ka2.tail);
        let b_events = summary.backward_taken_at(kb.tail);
        assert_eq!(a_events, u64::from(OUTER_A) * (N_A as u64 - 1));
        assert_eq!(a2_events, u64::from(OUTER_A2) * (N_A as u64 - 1));
        assert_eq!(b_events, u64::from(OUTER_B) * (N_B as u64 - 1));
        assert!(a_events > a2_events, "offline hottest must stay kernel 1");
        assert!(a_events > b_events, "offline hottest must stay kernel 1");
        let (s, e) = built.kernel.range();
        let frac = summary.cycles_in_range(s, e) as f64 / out.cycles as f64;
        assert!(frac > 0.45, "phase A kernel fraction {frac:.3}");
    }

    #[test]
    fn scaled_variant_stretches_phases_without_changing_results() {
        let built = build_scaled(MbFeatures::paper_default(), 3, 2, 2);
        let mut sys = built.instantiate(&MbConfig::paper_default());
        let out = sys.run(50_000_000).unwrap();
        assert!(out.exited());
        built.verify(sys.dmem()).unwrap();
    }
}
